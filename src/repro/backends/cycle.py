"""The cycle-approximate backend: the out-of-order core behind the contract.

This module owns the wiring that used to live in
``repro.eval.harness.build_single_core``: generator → front-end predictor →
JRS confidence table → fetch engine → :class:`~repro.pipeline.core.OutOfOrderCore`.
The construction order (and the ``wrongpath_seed = seed + 1`` convention)
is kept exactly as before so cycle-backend results stay bit-identical to
the pre-refactor harness.
"""

from __future__ import annotations

from typing import Optional

from repro.backends.base import (
    Instrumentation,
    SimulationBackend,
    SimulationSession,
    Workload,
)
from repro.branch_predictor.frontend import FrontEndPredictor
from repro.confidence.jrs import JRSConfidencePredictor
from repro.pipeline.config import MachineConfig
from repro.pipeline.core import CoreStats, InstanceObserver, OutOfOrderCore
from repro.pipeline.fetch import FetchEngine
from repro.pipeline.gating import NoGating
from repro.workloads.generator import WorkloadGenerator


def build_frontend(config: MachineConfig) -> FrontEndPredictor:
    """Build the front-end predictor with the machine's table geometries."""
    return FrontEndPredictor(
        history_bits=config.branch_history_bits,
        direction_index_bits=config.direction_index_bits,
        btb_sets=config.btb_sets,
        btb_ways=config.btb_ways,
        ras_depth=config.ras_depth,
    )


def build_confidence(config: MachineConfig) -> JRSConfidencePredictor:
    """Build the JRS confidence table with the machine's geometry."""
    return JRSConfidencePredictor(
        index_bits=config.jrs_index_bits,
        mdc_bits=config.jrs_mdc_bits,
        history_bits=config.branch_history_bits,
    )


def build_fetch_engine(workload: Workload, config: MachineConfig,
                       instrument: Instrumentation) -> FetchEngine:
    """Wire the per-thread front end shared by every backend."""
    generator = WorkloadGenerator(workload.spec, seed=workload.seed,
                                  thread_id=workload.thread_id)
    return FetchEngine(
        generator=generator,
        frontend=build_frontend(config),
        confidence=build_confidence(config),
        path_confidence=instrument.path_confidence,
        wrongpath_seed=workload.resolved_wrongpath_seed(),
    )


class CycleSession(SimulationSession):
    """Adapter presenting an :class:`OutOfOrderCore` as a session."""

    def __init__(self, core: OutOfOrderCore) -> None:
        self.core = core

    @property
    def stats(self) -> CoreStats:
        return self.core.stats

    @property
    def fetch_engine(self) -> FetchEngine:
        return self.core.fetch_engine

    def add_observer(self, observer: InstanceObserver) -> None:
        self.core.add_observer(observer)

    def run(self, max_instructions: int,
            max_cycles: Optional[int] = None) -> CoreStats:
        return self.core.run(max_instructions, max_cycles=max_cycles)


class CycleBackend(SimulationBackend):
    """The full cycle-approximate out-of-order core (ground truth)."""

    name = "cycle"
    supports_timing = True
    supports_gating = True

    def build(self, workload: Workload, config: MachineConfig,
              instrument: Instrumentation) -> CycleSession:
        fetch_engine = build_fetch_engine(workload, config, instrument)
        core = OutOfOrderCore(
            config=config,
            fetch_engine=fetch_engine,
            gating_policy=(instrument.gating_policy
                           if instrument.gating_policy is not None
                           else NoGating()),
        )
        for observer in instrument.observers:
            core.add_observer(observer)
        return CycleSession(core)
