"""The trace-replay backend: predictor-level statistics without a pipeline.

:class:`TraceBackend` drives the branch predictors, BTB/RAS and the
confidence machinery directly over the workload generator's *branch*
stream — the same :class:`~repro.pipeline.fetch.FetchEngine`, front-end
predictor, JRS table and path confidence predictors as the cycle model.
The branch-content streams (``site-selection``, ``branch-outcomes``) are
consumed only by branches, so the good-path branch sequence the predictors
see (PCs, directions, targets, kinds) is bit-identical to the cycle
model's for unphased benchmarks, and statistically identical for phased
ones (branch positions, and therefore phase assignment near boundaries,
come from the replay's own gap process).

The replay is *branch-driven and batched*: non-branch instructions are
never generated at all, and branches are produced and consumed in blocks.
Per block (``--block-size`` / ``REPRO_TRACE_BLOCK``, default
:data:`DEFAULT_TRACE_BLOCK`):

* the geometric inter-branch gaps are drawn in one
  :meth:`~repro.common.rng.DeterministicRng.geometric_block` call (one
  uniform per branch, exactly the draws the scalar path made);
* the branches themselves come from
  :meth:`~repro.workloads.generator.WorkloadGenerator.next_branch_block`
  as struct-of-arrays :class:`~repro.workloads.generator.BranchBlock`
  columns — no :class:`~repro.isa.instruction.Instruction` objects exist
  on this path at all (the cycle backend keeps them, bit-identically);
* prediction and resolution run straight over the columns through the
  record-based engine entry points
  (:meth:`~repro.pipeline.fetch.FetchEngine.predict_from_block` /
  :meth:`~repro.pipeline.fetch.FetchEngine.resolve_record`), with the
  in-flight window holding the
  :class:`~repro.branch_predictor.engine.BranchRecord` itself;
* a wrong-path episode is fused the same way: all of its gap lengths
  come from one
  :meth:`~repro.common.rng.DeterministicRng.geometric_episode` call and
  all of its branches from one
  :meth:`~repro.workloads.generator.WrongPathGenerator.next_branch_block`
  call (the gap and content streams are independent, so batching each
  preserves its per-stream draw order bit for bit).

Blocking changes *when* values are computed, never *which*: every stream
is consumed in the same per-branch order as the scalar path, phased
benchmarks split blocks at phase boundaries (a boundary block falls back
to slot-by-slot stepping so phase-aware observers read the right phase at
every run boundary), and the observer-run event boundaries — branch
fetch/resolve/squash, re-log passes, phase boundaries — are exactly the
scalar flush points.  Results are byte-identical to the pre-batching
replay, which is itself parity-gated against the cycle model.

The gap between consecutive branches is drawn in closed form from the
same geometric distribution the per-instruction Bernoulli process
induces, and everything a gap contributes — fetch/retire counters,
instance observations, window residency — is pure integer arithmetic.
Timing is replaced by two calibrated windows:

* every fetched slot *completes* (resolves, trains, retires)
  ``resolve_window`` slots after fetch, standing in for the
  fetch-to-resolve depth of the pipeline;
* a good-path misprediction replays the wrong-path stream for
  ``mispredict_window`` slots before the branch resolves and fetch is
  redirected, standing in for the wrong-path fetch episode (calibrated
  against the cycle model's wrong-path-fetches-per-flush, roughly twice
  the minimum misprediction penalty).

The replay clock models an idealized IPC-1 machine (one cycle per slot,
plus redirect stalls), which keeps cycle-periodic machinery — PaCo's
re-logarithmizing pass — at a per-instruction cadence comparable to the
cycle model's.  Instance observations are batched in two stages.  First,
between two predictor state changes every instance carries identical
observable state, so the engine counts instances in run counters and
closes the run — one ``(kind, on_goodpath, cycle, count)`` event — at
each scalar flush point.  Second, closed events themselves buffer in a
flat stride-4 column list across every span where predictor state
provably does not change: a *conditional* branch prediction or
resolution (``path_token`` set), a re-log pass that reports a change,
and a phase roll force the buffer out through
:meth:`~repro.pipeline.core.InstanceObserver.record_runs`, while
non-conditional resolutions and quiet ticks merely close events into it.
An observer therefore reads predictor state once per delivered batch,
and reads exactly the values the per-event calls would have read —
delivery happens strictly before the next state change.

The same two calibrated windows double as a *timing estimator*: the
replay clock (slots fetched, plus redirect stalls, plus gated stalls) is
an estimated cycle count, so ``stats.ipc`` is meaningful — not
cycle-accurate, but preserving the orderings the application studies
consume (``supports_timing``).  Fetch gating is modelled on top of it by
:class:`GatedTraceSession` (``supports_gating``): a gated cycle stalls
fetch while the oldest in-flight slot completes, so good-path gated
cycles show up as pure IPC loss while wrong-path gated cycles trade
fetched wrong-path slots for (nearly free) stall cycles — exactly the
energy/performance trade-off of fig10.  SMT arbitration over two
interleaved trace sessions lives in :mod:`repro.backends.smt_trace`.

Parity with the cycle backend for fig2 MDC rates, fig3 counters, fig8/9
reliability, table7 RMS and tableA1 MRT variants — and for the fig10
gating-throttle and fig12 SMT-priority orderings — is enforced (with
stated tolerances) by ``tests/test_backends.py``.  What this backend
still does **not** model: cycle-accurate IPC and wrong-path cache/BTB
pollution timing; the cycle backend remains ground truth for absolute
timing numbers.
"""

from __future__ import annotations

import linecache
import math
import os
from collections import deque
from typing import Deque, Optional

from repro.backends.base import (
    Instrumentation,
    SimulationBackend,
    SimulationSession,
    Workload,
)
from repro.backends.cycle import build_fetch_engine
from repro.branch_predictor.engine import BranchRecord
from repro.common.rng import RngPool
from repro.isa.types import BranchKind
from repro.pathconf.base import PathConfidencePredictor
from repro.pathconf.composite import CompositePathConfidence
from repro.pipeline.config import MachineConfig
from repro.pipeline.core import CoreStats, InstanceObserver, SimulationTruncated
from repro.pipeline.fetch import FetchEngine
from repro.pipeline.gating import GatingPolicy, NoGating
from repro.workloads.generator import BranchBlock

#: Branches generated (and gaps drawn) per batch.  Block size is pure
#: mechanism — results are bit-identical for every value >= 1 (pinned by
#: ``tests/test_backends.py``) — so it rides in neither Job identities
#: nor result-cache keys.
DEFAULT_TRACE_BLOCK = 256

#: Environment knob overriding the default block size (the CLI's
#: ``--block-size`` flag sets it so worker processes inherit the value).
TRACE_BLOCK_ENV = "REPRO_TRACE_BLOCK"


def resolve_trace_block_size(value: object,
                             source: str = "block size") -> int:
    """Validate a trace block size from a CLI flag or environment knob.

    Accepts an ``int`` or an integer-shaped string and requires it to be
    at least 1; ``source`` names the knob in the error message (the same
    contract as :func:`repro.runner.sweep.resolve_worker_count`).
    """
    try:
        size = int(str(value).strip())
    except (TypeError, ValueError):
        raise ValueError(
            f"invalid {source} value {value!r}: expected an integer >= 1"
        ) from None
    if size < 1:
        raise ValueError(
            f"invalid {source} value {value!r}: block sizes must be >= 1"
        )
    return size


def _has_cycle_work(path_confidence) -> bool:
    """Whether ``on_cycle`` can ever do (or report) state-changing work.

    :meth:`~repro.pathconf.base.PathConfidencePredictor.on_cycle` is a
    no-op unless overridden, and the composite delegates only to members
    that override it — so a predictor stack with no cycle-periodic
    machinery can skip the per-branch tick (and the event deliveries
    bracketing it) entirely.  Anything that overrides ``on_cycle`` is
    conservatively treated as cycle work, so custom predictors keep the
    exact per-branch call sequence.
    """
    if isinstance(path_confidence, CompositePathConfidence):
        return bool(path_confidence._cycle_predictors)
    cls_on_cycle = getattr(type(path_confidence), "on_cycle", None)
    return cls_on_cycle is not PathConfidencePredictor.on_cycle


# --------------------------------------------------------------------- #
# The one drain body.
#
# Completing the oldest in-flight slots is needed in four places — after
# a good-path gap, after a good-path branch, inside a wrong-path episode
# and on a gated stall cycle — and it must run on *loop locals* in the
# batched paths (an attribute round-trip per slot would dominate the hot
# loop).  Rather than maintaining textual copies that can drift, the body
# exists once below and is compiled into each consumer: the block step,
# the fused wrong-path episode, and the self-state
# ``_complete_oldest(excess)`` wrapper the scalar/gated paths call.
# ``tests/test_trace_drain.py`` pins all consumers against a reference
# implementation.
#
# Local vocabulary (bound by every consumer): ``window`` (deque of
# BranchRecord-or-signed-int runs), ``excess`` (slots still to
# complete), ``inflight``, ``engine``, ``cycle``, the pending-run
# counters ``run_fetch``/``run_execute``/``run_goodpath``, the event
# buffer ``events`` + ``observers``/``has_observers``,
# ``kind_conditional``, and the stat deltas ``good_executed``/
# ``bad_executed``/``retired``/``branches_retired``/
# ``branch_misp_retired``/``cond_retired``/``cond_misp_retired``.
# --------------------------------------------------------------------- #

_DRAIN_BODY = '''\
entry = window[0]
if type(entry) is int:
    if entry > 0:
        take = entry if entry <= excess else excess
        good_executed += take
        retired += take
    else:
        take = -entry if -entry <= excess else excess
        bad_executed += take
    run_execute += take
    if take < (entry if entry > 0 else -entry):
        window[0] = entry - take if entry > 0 else entry + take
    else:
        window.popleft()
    excess -= take
    inflight -= take
else:
    window.popleft()
    inflight -= 1
    excess -= 1
    # A branch resolution closes the pending instance run.  Only a
    # *conditional* resolution (path_token set) can change confidence
    # state, so only those force the buffered events out; the rest
    # close into the buffer and ride along.
    if has_observers:
        if run_fetch:
            events.extend(("fetch", run_goodpath, cycle, run_fetch))
        if run_execute:
            events.extend(("execute", run_goodpath, cycle, run_execute))
        if events and entry.path_token is not None:
            for observer in observers:
                observer.record_runs(events)
            del events[:]
    run_fetch = 0
    run_execute = 0
    engine.resolve_record(entry)
    run_goodpath = not engine.on_wrong_path
    if entry.on_goodpath:
        good_executed += 1
        retired += 1
        branches_retired += 1
        if entry.mispredicted:
            branch_misp_retired += 1
        if entry.kind is kind_conditional:
            cond_retired += 1
            if entry.mispredicted:
                cond_misp_retired += 1
    else:
        bad_executed += 1
    run_execute += 1
'''


def _indent(source: str, levels: int) -> str:
    pad = "    " * levels
    return "".join(pad + line if line.strip() else line
                   for line in source.splitlines(True))


def _compile_method(name: str, source: str):
    """Compile one template method; register the source for tracebacks."""
    filename = f"<repro.backends.trace:{name}>"
    namespace: dict = {}
    exec(compile(source, filename, "exec"), globals(), namespace)
    linecache.cache[filename] = (len(source), None,
                                 source.splitlines(True), filename)
    return namespace[name]


_STEP_BLOCK_SRC = '''\
def _step_block(self, max_instructions, max_cycles):
    """Advance the replay by up to one block of gap+branch steps.

    The batched twin of the scalar per-branch step: per staged branch
    it accounts the inter-branch gap, closes the pending observer run,
    predicts the branch straight from the block columns, and either
    appends the record to the in-flight window (draining and running
    the per-cycle confidence work exactly as the scalar path does) or
    replays the fused wrong-path episode.  Run events buffer in
    ``self._events`` and are delivered just before the next predictor
    state change (see the module docstring).  Stops early — leaving
    the buffer position for the next call or :meth:`run` leg — when
    the instruction budget or cycle limit is reached.
    """
    if self._branch_pos >= self._branch_len:
        if not self._refill_block():
            self._step_boundary_branch()
            return

    engine = self.fetch_engine
    stats = self.stats
    window = self._window
    observers = self.observers
    has_observers = bool(observers)
    events = self._events
    path_confidence = engine.path_confidence
    cycle_work = self._cycle_work_possible
    resolve_window = self.resolve_window
    kind_conditional = BranchKind.CONDITIONAL
    block = self._block
    block_kinds = block.kind
    gaps = self._gap_buf
    gap_pos = self._gap_pos
    i = self._branch_pos
    stop = self._branch_len
    next_seq = self._next_seq
    cycle = self._cycle
    inflight = self._inflight
    run_fetch = self._run_fetch
    run_execute = self._run_execute
    run_goodpath = self._run_goodpath
    # Stats deltas, folded into the CoreStats record (and the fetch
    # engine's mirror counters) at sync points only.
    retired_base = stats.retired_instructions
    good_fetched = 0
    good_executed = 0
    bad_executed = 0
    retired = 0
    branches_retired = 0
    branch_misp_retired = 0
    cond_retired = 0
    cond_misp_retired = 0

    while i < stop:
        if retired_base + retired >= max_instructions or cycle >= max_cycles:
            break
        gap = gaps[gap_pos]
        gap_pos += 1
        if gap:
            # _fetch_good_gap, inlined.
            good_fetched += gap
            cycle += gap
            run_fetch += gap
            if window and type(window[-1]) is int and window[-1] > 0:
                window[-1] += gap
            else:
                window.append(gap)
            inflight += gap
        # The one drain body serves both drain points of the scalar
        # step: the first pass completes the slots the gap pushed past
        # the window depth, the second the branch's own slot.  (On
        # entry to an iteration ``inflight <= resolve_window`` holds,
        # so the first pass is a no-op when the gap was empty.)
        took_episode = False
        predicted = False
        while True:
            if inflight > resolve_window:
                excess = inflight - resolve_window
                while excess > 0:
%(drain)s
            if predicted:
                break
            predicted = True
            # The branch itself: the pending run ends here.  Only a
            # *conditional* prediction is about to change confidence
            # state, so only those force the buffered events out.
            if has_observers:
                if run_fetch:
                    events.extend(("fetch", run_goodpath, cycle, run_fetch))
                if run_execute:
                    events.extend(("execute", run_goodpath, cycle,
                                   run_execute))
                if events and block_kinds[i] is kind_conditional:
                    for observer in observers:
                        observer.record_runs(events)
                    del events[:]
            run_fetch = 0
            run_execute = 0
            seq = next_seq
            next_seq += 1
            record = engine.predict_from_block(block, i, seq)
            i += 1
            good_fetched += 1
            cycle += 1
            run_fetch += 1
            if engine.on_wrong_path:
                run_goodpath = False
                # Sync everything and take the (rare) wrong-path
                # episode through the fused episode method, then
                # reload.
                self._next_seq = next_seq
                self._cycle = cycle
                self._inflight = inflight
                self._run_fetch = run_fetch
                self._run_execute = run_execute
                self._run_goodpath = run_goodpath
                stats.goodpath_fetched += good_fetched
                engine.goodpath_fetched += good_fetched
                stats.goodpath_executed += good_executed
                stats.badpath_executed += bad_executed
                stats.retired_instructions += retired
                stats.branches_retired += branches_retired
                stats.branch_mispredicts_retired += branch_misp_retired
                stats.conditional_branches_retired += cond_retired
                stats.conditional_mispredicts_retired += cond_misp_retired
                good_fetched = good_executed = bad_executed = retired = 0
                branches_retired = branch_misp_retired = 0
                cond_retired = cond_misp_retired = 0

                self._replay_wrongpath(record)

                next_seq = self._next_seq
                cycle = self._cycle
                inflight = self._inflight
                run_fetch = self._run_fetch
                run_execute = self._run_execute
                run_goodpath = self._run_goodpath
                retired_base = stats.retired_instructions
                took_episode = True
                break
            run_goodpath = True
            window.append(record)
            inflight += 1
        if took_episode:
            continue
        if cycle_work:
            # Cycle-periodic confidence work (PaCo's re-log pass) can
            # change predictor state: deliver events closed at earlier
            # (state-preserving) boundaries before the tick so they
            # are observed with pre-tick state, and close the open run
            # after a tick that reports a change — the scalar flush
            # points exactly.
            if has_observers and events:
                for observer in observers:
                    observer.record_runs(events)
                del events[:]
            if path_confidence.on_cycle(cycle):
                if has_observers:
                    if run_fetch:
                        events.extend(("fetch", run_goodpath, cycle,
                                       run_fetch))
                    if run_execute:
                        events.extend(("execute", run_goodpath, cycle,
                                       run_execute))
                    if events:
                        for observer in observers:
                            observer.record_runs(events)
                        del events[:]
                run_fetch = 0
                run_execute = 0

    # Sync the locals back (loop finished or budget/cycle stop).
    self._branch_pos = i
    self._gap_pos = gap_pos
    self._next_seq = next_seq
    self._cycle = cycle
    self._inflight = inflight
    self._run_fetch = run_fetch
    self._run_execute = run_execute
    self._run_goodpath = run_goodpath
    stats.goodpath_fetched += good_fetched
    engine.goodpath_fetched += good_fetched
    stats.goodpath_executed += good_executed
    stats.badpath_executed += bad_executed
    stats.retired_instructions += retired
    stats.branches_retired += branches_retired
    stats.branch_mispredicts_retired += branch_misp_retired
    stats.conditional_branches_retired += cond_retired
    stats.conditional_mispredicts_retired += cond_misp_retired
''' % {"drain": _indent(_DRAIN_BODY, 5)}


_REPLAY_WRONGPATH_SRC = '''\
def _replay_wrongpath(self, record):
    """Replay the wrong-path stream for the calibrated resolution window.

    Fused like ``_step_block``: all gap lengths for the episode's
    ``mispredict_window`` budget come from one
    :meth:`~repro.common.rng.DeterministicRng.geometric_episode` call,
    all wrong-path branches are staged into the reusable episode-sized
    block by one
    :meth:`~repro.workloads.generator.WrongPathGenerator.next_branch_block`
    call, and cycle/inflight/run bookkeeping stays in loop locals
    synced at episode end.  The gap and branch-content streams are
    independent, so drawing each one episode-at-a-time preserves its
    per-stream draw order — and therefore every value — bit for bit.
    """
    engine = self.fetch_engine
    stats = self.stats
    window = self._window
    observers = self.observers
    has_observers = bool(observers)
    events = self._events
    path_confidence = engine.path_confidence
    cycle_work = self._cycle_work_possible
    resolve_window = self.resolve_window
    kind_conditional = BranchKind.CONDITIONAL
    wp_gaps = self._wp_gap_buf
    n_gaps, n_branches = self._wp_gap_rng.geometric_episode(
        self._log_one_minus_p, wp_gaps, self.mispredict_window)
    wp_block = self._wp_episode_block
    if n_branches:
        engine.wrongpath_generator.next_branch_block(wp_block, n_branches)
    next_seq = self._next_seq
    cycle = self._cycle
    inflight = self._inflight
    run_fetch = self._run_fetch
    run_execute = self._run_execute
    run_goodpath = self._run_goodpath
    bad_fetched = 0
    good_executed = 0
    bad_executed = 0
    retired = 0
    branches_retired = 0
    branch_misp_retired = 0
    cond_retired = 0
    cond_misp_retired = 0

    for g in range(n_gaps):
        gap = wp_gaps[g]
        if gap:
            # _fetch_bad_gap, inlined.
            bad_fetched += gap
            cycle += gap
            run_fetch += gap
            if window and type(window[-1]) is int and window[-1] < 0:
                window[-1] -= gap
            else:
                window.append(-gap)
            inflight += gap
        fetched_branch = False
        while True:
            if inflight > resolve_window:
                excess = inflight - resolve_window
                while excess > 0:
%(drain)s
            if fetched_branch or g >= n_branches:
                break
            fetched_branch = True
            # Wrong-path branches are all conditional: the prediction
            # changes confidence state, so close the pending run and
            # deliver everything buffered first.
            if has_observers:
                if run_fetch:
                    events.extend(("fetch", run_goodpath, cycle, run_fetch))
                if run_execute:
                    events.extend(("execute", run_goodpath, cycle,
                                   run_execute))
                if events:
                    for observer in observers:
                        observer.record_runs(events)
                    del events[:]
            run_fetch = 0
            run_execute = 0
            seq = next_seq
            next_seq += 1
            wp_record = engine.predict_from_block(wp_block, g, seq,
                                                  on_goodpath=False)
            bad_fetched += 1
            cycle += 1
            run_fetch += 1
            window.append(wp_record)
            inflight += 1
        if g >= n_branches:
            # The clamped final gap ended the episode: no branch, no
            # cycle tick — exactly where the scalar loop broke out.
            break
        if cycle_work:
            if has_observers and events:
                for observer in observers:
                    observer.record_runs(events)
                del events[:]
            if path_confidence.on_cycle(cycle):
                if has_observers:
                    if run_fetch:
                        events.extend(("fetch", run_goodpath, cycle,
                                       run_fetch))
                    if run_execute:
                        events.extend(("execute", run_goodpath, cycle,
                                       run_execute))
                    if events:
                        for observer in observers:
                            observer.record_runs(events)
                        del events[:]
                run_fetch = 0
                run_execute = 0

    self._next_seq = next_seq
    self._cycle = cycle
    self._inflight = inflight
    self._run_fetch = run_fetch
    self._run_execute = run_execute
    self._run_goodpath = run_goodpath
    stats.badpath_fetched += bad_fetched
    engine.badpath_fetched += bad_fetched
    stats.goodpath_executed += good_executed
    stats.badpath_executed += bad_executed
    stats.retired_instructions += retired
    stats.branches_retired += branches_retired
    stats.branch_mispredicts_retired += branch_misp_retired
    stats.conditional_branches_retired += cond_retired
    stats.conditional_mispredicts_retired += cond_misp_retired
    # Estimate of the wrong-path slots that issued before the squash:
    # everything fetched more than a front-end depth ahead of
    # resolution has left the front end and consumed execution
    # resources.  The episode fetches exactly ``mispredict_window``
    # slots, so the estimate is a per-episode constant.
    self._finish_wrongpath(
        record, self.mispredict_window - self.config.frontend_depth)
''' % {"drain": _indent(_DRAIN_BODY, 5)}


_COMPLETE_OLDEST_SRC = '''\
def _complete_oldest(self, excess):
    """Complete the ``excess`` oldest in-flight slots.

    The self-state wrapper around the one shared drain body (the same
    source the block loops compile inline): used by the scalar helpers
    — gap fetches past the window depth, the boundary step, the gated
    scalar paths — and, with ``excess == 1``, by the gated session's
    stall cycles.
    """
    engine = self.fetch_engine
    stats = self.stats
    window = self._window
    observers = self.observers
    has_observers = bool(observers)
    events = self._events
    kind_conditional = BranchKind.CONDITIONAL
    cycle = self._cycle
    inflight = self._inflight
    run_fetch = self._run_fetch
    run_execute = self._run_execute
    run_goodpath = self._run_goodpath
    good_executed = 0
    bad_executed = 0
    retired = 0
    branches_retired = 0
    branch_misp_retired = 0
    cond_retired = 0
    cond_misp_retired = 0
    while excess > 0:
%(drain)s
    self._inflight = inflight
    self._run_fetch = run_fetch
    self._run_execute = run_execute
    self._run_goodpath = run_goodpath
    stats.goodpath_executed += good_executed
    stats.badpath_executed += bad_executed
    stats.retired_instructions += retired
    stats.branches_retired += branches_retired
    stats.branch_mispredicts_retired += branch_misp_retired
    stats.conditional_branches_retired += cond_retired
    stats.conditional_mispredicts_retired += cond_misp_retired
''' % {"drain": _indent(_DRAIN_BODY, 2)}


class TraceSession(SimulationSession):
    """One branch-driven replay: a fetch engine plus a slot window.

    The in-flight window is a deque whose entries are either a
    :class:`~repro.branch_predictor.engine.BranchRecord` (a branch
    occupying one slot) or an ``int`` run of non-branch slots — positive
    for good-path slots, negative for wrong-path slots.  ``_inflight``
    tracks the total slot count so drains are O(1) amortized per branch,
    not per instruction.

    Branches arrive through a reusable :class:`BranchBlock` buffer that
    carries over between :meth:`run` legs: a leg that stops mid-block
    (budget or cycle limit) resumes from the buffered position, so the
    consumed stream order — and therefore every statistic — matches the
    scalar one-branch-at-a-time replay bit for bit.
    """

    def __init__(self, fetch_engine: FetchEngine, config: MachineConfig,
                 observers, resolve_window: int,
                 mispredict_window: int,
                 block_size: Optional[int] = None) -> None:
        if resolve_window < 1:
            raise ValueError("resolve window must be at least one instruction")
        if mispredict_window < 1:
            raise ValueError("mispredict window must be at least one instruction")
        if block_size is None:
            block_size = resolve_trace_block_size(
                os.environ.get(TRACE_BLOCK_ENV, DEFAULT_TRACE_BLOCK),
                source=TRACE_BLOCK_ENV,
            )
        else:
            block_size = resolve_trace_block_size(block_size)
        self.fetch_engine = fetch_engine
        self.config = config
        self.stats = CoreStats()
        self.observers = list(observers)
        self.resolve_window = resolve_window
        self.mispredict_window = mispredict_window
        self.block_size = block_size

        spec = fetch_engine.generator.spec
        pool = RngPool(fetch_engine.generator._pool.master_seed).fork("trace-gaps")
        self._gap_rng = pool.stream("goodpath")
        self._wp_gap_rng = pool.stream("wrongpath")
        branch_fraction = min(max(spec.branch_fraction, 1e-9), 1.0)
        #: log(1 - p) of the per-instruction branch probability, used to
        #: draw geometric inter-branch gaps in closed form.
        self._log_one_minus_p = (math.log(1.0 - branch_fraction)
                                 if branch_fraction < 1.0 else None)

        self._window: Deque[object] = deque()
        self._inflight = 0
        self._cycle = 0
        self._next_seq = 0
        self._started = False

        # Batched generation buffers.  Good-path gaps and branches are
        # drawn block-at-a-time and consumed in lockstep; a phase
        # boundary splits a block (``_refill_block`` returns 0 and the
        # boundary branch is stepped slot-by-slot instead).
        self._block = BranchBlock(block_size)
        self._boundary_block = BranchBlock(1)
        self._wp_block = BranchBlock(1)
        self._gap_buf = [0] * block_size
        self._gap_pos = 0
        self._gap_len = 0
        self._branch_pos = 0
        self._branch_len = 0
        self._wp_gap_scratch = [0]
        # Fused wrong-path episode buffers (the gated session keeps the
        # scalar per-slot episode — gating decisions interleave with the
        # draws — so the one-slot buffers above stay for it).
        self._wp_gap_buf = [0] * mispredict_window
        self._wp_episode_block = BranchBlock(mispredict_window)

        # Batched instance recording (see module docstring): the pending
        # run counters plus the closed-run event buffer awaiting
        # delivery at the next predictor state change.
        self._run_fetch = 0
        self._run_execute = 0
        self._run_goodpath = True
        self._events: list = []
        self._has_phases = bool(spec.phases)
        self._cycle_work_possible = _has_cycle_work(
            fetch_engine.path_confidence)

    # ------------------------------------------------------------------ #
    # public API (the SimulationSession contract)
    # ------------------------------------------------------------------ #

    def add_observer(self, observer: InstanceObserver) -> None:
        # Instances recorded while this observer was not attached must not
        # leak into it: flush the pending run (and deliver the buffered
        # events) to the existing observers first.
        self._flush_runs()
        self.observers.append(observer)

    def run(self, max_instructions: int,
            max_cycles: Optional[int] = None) -> CoreStats:
        """Replay until ``max_instructions`` good-path instructions retired."""
        if max_instructions <= 0:
            raise ValueError("instruction budget must be positive")
        if max_cycles is None:
            max_cycles = max_instructions * 40
        if not self._started:
            self._started = True
            self.fetch_engine.path_confidence.on_cycle(0)
        stats = self.stats
        while (stats.retired_instructions < max_instructions
               and self._cycle < max_cycles):
            self._step_block(max_instructions, max_cycles)
        self._flush_runs()
        stats.cycles = self._cycle
        if stats.retired_instructions < max_instructions:
            raise SimulationTruncated(stats, max_instructions, max_cycles)
        return stats

    @property
    def cycle(self) -> int:
        return self._cycle

    @property
    def window_occupancy(self) -> int:
        return self._inflight

    # ------------------------------------------------------------------ #
    # batched replay mechanics
    # ------------------------------------------------------------------ #

    def _refill_block(self) -> int:
        """Refill the branch buffer; return the number of branches staged.

        Draws a fresh gap block when the gap buffer is spent, then
        generates as many branches as fit before the next phase boundary
        (all of them for unphased benchmarks).  Generator-side state
        (instruction count, phase schedule, RNG streams) is advanced for
        the whole staged block up front; because no boundary falls inside
        it, nothing observable differs from slot-by-slot advancement.
        Returns 0 when the very next branch straddles a boundary — the
        caller steps that one branch with :meth:`_step_boundary_branch`.
        """
        generator = self.fetch_engine.generator
        if self._gap_pos >= self._gap_len:
            n = self.block_size
            self._gap_rng.geometric_block(self._log_one_minus_p,
                                          self._gap_buf, n)
            self._gap_pos = 0
            self._gap_len = n
        available = self._gap_len - self._gap_pos
        if not self._has_phases:
            m = available
            pos = self._gap_pos
            gap_slots = sum(self._gap_buf[pos:pos + m])
        else:
            # Largest prefix of (gap + branch) steps that leaves at least
            # one slot of the current phase unconsumed (i.e. no roll).
            remaining_budget = generator._phase_remaining - 1
            gaps = self._gap_buf
            pos = self._gap_pos
            m = 0
            total = 0
            for k in range(available):
                step = gaps[pos + k] + 1
                if total + step > remaining_budget:
                    break
                total += step
                m += 1
            if m == 0:
                return 0
            gap_slots = total - m
        if gap_slots:
            taken = generator.advance_instructions(gap_slots)
            assert taken == gap_slots  # no boundary inside the block
        generator.next_branch_block(self._next_seq, m, self._block)
        self._branch_pos = 0
        self._branch_len = m
        return m

    # The hot loops: compiled from the module-level templates so the
    # drain body exists exactly once (see the note above _DRAIN_BODY).
    _step_block = _compile_method("_step_block", _STEP_BLOCK_SRC)
    _replay_wrongpath = _compile_method("_replay_wrongpath",
                                        _REPLAY_WRONGPATH_SRC)
    _complete_oldest = _compile_method("_complete_oldest",
                                       _COMPLETE_OLDEST_SRC)

    def _step_boundary_branch(self) -> None:
        """One gap+branch step with the gap applied slot-by-slot.

        Taken when a phase boundary falls inside the next branch's gap
        (or on the branch itself): instances on either side of the
        boundary belong to different phases, so the gap is advanced in
        boundary-bounded chunks with an observer flush between them —
        exactly the scalar path — and the branch is generated only after
        the schedule has settled, so phase-aware observers and the
        per-phase site selection read the right phase.
        """
        # Events closed before the boundary must be observed with the
        # pre-roll phase label: deliver them before the schedule can
        # advance.  (The *open* run keeps riding across the roll and is
        # closed by the chunk flushes below, exactly as the scalar path
        # always did.)
        self._deliver_events()
        generator = self.fetch_engine.generator
        gap = self._gap_buf[self._gap_pos]
        self._gap_pos += 1
        while gap:
            taken = generator.advance_instructions(gap)
            self._fetch_good_gap(taken)
            gap -= taken
            if gap:
                # Phase boundary inside the gap: instances on either
                # side belong to different phases; close the run.
                self._flush_runs()
        self._flush_runs()
        seq = self._next_seq
        self._next_seq = seq + 1
        block = self._boundary_block
        generator.next_branch_block(seq, 1, block)
        engine = self.fetch_engine
        stats = self.stats
        record = engine.predict_from_block(block, 0, seq)
        engine.goodpath_fetched += 1
        stats.goodpath_fetched += 1
        self._cycle += 1
        self._run_goodpath = not engine.on_wrong_path
        self._run_fetch += 1
        if engine.on_wrong_path:
            self._replay_wrongpath(record)
            return
        self._window.append(record)
        self._inflight += 1
        self._drain()
        self._cycle_tick()

    def _fetch_good_gap(self, count: int) -> None:
        """Account ``count`` good-path non-branch slots in one step."""
        if count <= 0:
            return
        stats = self.stats
        stats.goodpath_fetched += count
        self.fetch_engine.goodpath_fetched += count
        self._cycle += count
        self._run_fetch += count
        window = self._window
        if window and type(window[-1]) is int and window[-1] > 0:
            window[-1] += count
        else:
            window.append(count)
        self._inflight += count
        self._drain()

    def _fetch_bad_gap(self, count: int) -> None:
        """Account ``count`` wrong-path non-branch slots in one step."""
        if count <= 0:
            return
        stats = self.stats
        stats.badpath_fetched += count
        self.fetch_engine.badpath_fetched += count
        self._cycle += count
        self._run_fetch += count
        window = self._window
        if window and type(window[-1]) is int and window[-1] < 0:
            window[-1] -= count
        else:
            window.append(-count)
        self._inflight += count
        self._drain()

    def _drain(self) -> None:
        """Complete the oldest slots once the window exceeds its depth."""
        excess = self._inflight - self.resolve_window
        if excess > 0:
            self._complete_oldest(excess)

    def _finish_wrongpath(self, record: BranchRecord, issued: int) -> None:
        """Resolve the mispredicted branch: the shared episode tail.

        Mirrors the cycle core's recovery order — account the
        ``issued`` wrong-path slots estimated to have left the front
        end, resolve (train/repair), squash everything younger, redirect
        fetch, then record the execute instance.  Shared by the fused
        episode and the gated session's scalar one.
        """
        engine = self.fetch_engine
        stats = self.stats
        if issued > 0:
            stats.badpath_executed += issued
        self._flush_runs()
        stats.flushes += 1
        engine.resolve_record(record)
        window = self._window
        while window:
            entry = window[-1]
            if type(entry) is int:
                if entry > 0:
                    break
                window.pop()
                self._inflight += entry  # entry is negative
            elif entry.on_goodpath:
                break
            else:
                window.pop()
                self._inflight -= 1
                engine.squash_record(entry)
        engine.recover(record)
        self._retire_branch(record)
        self._run_goodpath = not engine.on_wrong_path
        self._run_execute += 1
        stats.fetch_stall_cycles += self.config.redirect_penalty
        self._cycle += self.config.redirect_penalty
        self._cycle_tick()

    def _retire_branch(self, record: BranchRecord) -> None:
        stats = self.stats
        stats.goodpath_executed += 1
        stats.retired_instructions += 1
        stats.branches_retired += 1
        if record.mispredicted:
            stats.branch_mispredicts_retired += 1
        if record.kind is BranchKind.CONDITIONAL:
            stats.conditional_branches_retired += 1
            if record.mispredicted:
                stats.conditional_mispredicts_retired += 1

    # ------------------------------------------------------------------ #
    # batched instance recording
    # ------------------------------------------------------------------ #

    def _deliver_events(self) -> None:
        """Deliver the buffered run events to the observers.

        Legal at any point up to (and including) the moment predictor
        state next changes: no state change happened since the events
        were closed, so the observers read exactly the values the
        per-event calls would have read.
        """
        events = self._events
        if events:
            for observer in self.observers:
                observer.record_runs(events)
            del events[:]

    def _flush_runs(self) -> None:
        """Close the pending instance run and deliver everything buffered."""
        fetches = self._run_fetch
        executes = self._run_execute
        self._run_fetch = 0
        self._run_execute = 0
        observers = self.observers
        if not observers:
            return
        events = self._events
        if fetches:
            events.extend(("fetch", self._run_goodpath, self._cycle, fetches))
        if executes:
            events.extend(("execute", self._run_goodpath, self._cycle,
                           executes))
        if events:
            for observer in observers:
                observer.record_runs(events)
            del events[:]

    def _cycle_tick(self) -> None:
        """Per-cycle confidence work for the scalar (self-state) paths.

        Buffered events are delivered before the tick (pre-mutation
        state) and the open run is closed after a tick that reports a
        change — the scalar flush points.  Skipped entirely when the
        predictor stack has no cycle-periodic machinery.
        """
        if not self._cycle_work_possible:
            return
        self._deliver_events()
        if self.fetch_engine.path_confidence.on_cycle(self._cycle):
            self._flush_runs()


class GatedTraceSession(TraceSession):
    """A trace replay with a fetch gating policy in the loop.

    The gating predicate is evaluated before every good-path fetch step
    and before every wrong-path slot of a misprediction episode — the
    points where the predictors' state (and therefore the predicate) can
    have changed.  A gated cycle stalls fetch for one estimated cycle
    while the oldest in-flight slot completes, mirroring how the cycle
    model's back end keeps draining under a gated front end:

    * on the good path a gated cycle is pure delay — the completed slot
      would have drained for free at the next fetch — so good-path
      gating shows up as IPC loss;
    * inside a wrong-path episode the mispredicted branch resolves on
      its own schedule, so a gated cycle substitutes for a wrong-path
      fetch slot at (nearly) no time cost — the episode still spans
      ``mispredict_window`` estimated cycles but fetches fewer
      wrong-path slots, which is the energy saving gating exists for.

    Termination is guaranteed: a gated cycle always completes a slot, and
    an empty window means every branch has resolved, which zeroes the
    low-confidence count / path-confidence register that gates fetch.
    The ``while`` guard still fails open on an empty window in case a
    policy gates on something else.

    The ungated :class:`TraceSession` fast path is untouched — a
    ``NoGating`` policy builds the base class, keeping existing trace
    results bit-identical.
    """

    def __init__(self, fetch_engine: FetchEngine, config: MachineConfig,
                 observers, resolve_window: int, mispredict_window: int,
                 gating_policy: GatingPolicy,
                 block_size: Optional[int] = None) -> None:
        super().__init__(fetch_engine, config, observers, resolve_window,
                         mispredict_window, block_size=block_size)
        self.gating_policy = gating_policy

    def _step_block(self, max_instructions: int, max_cycles: int) -> None:
        """Scalar gating-aware twin of the batched good-path step.

        Gating decisions depend on predictor state that changes branch by
        branch, so the gated session steps one (gate-check, gap, branch)
        tuple at a time through the self-state helpers instead of the
        compiled block loop.  Stream consumption order is identical, so
        the predictors see the same branches.
        """
        if self._branch_pos >= self._branch_len:
            if not self._refill_block():
                if self.gating_policy.should_gate():
                    self._gated_wait()
                self._step_boundary_branch()
                return
        engine = self.fetch_engine
        stats = self.stats
        block = self._block
        while self._branch_pos < self._branch_len:
            if (stats.retired_instructions >= max_instructions
                    or self._cycle >= max_cycles):
                return
            if self.gating_policy.should_gate():
                self._gated_wait()
                if (stats.retired_instructions >= max_instructions
                        or self._cycle >= max_cycles):
                    return
            gap = self._gap_buf[self._gap_pos]
            self._gap_pos += 1
            if gap:
                self._fetch_good_gap(gap)
            self._flush_runs()
            i = self._branch_pos
            self._branch_pos = i + 1
            seq = self._next_seq
            self._next_seq = seq + 1
            record = engine.predict_from_block(block, i, seq)
            engine.goodpath_fetched += 1
            stats.goodpath_fetched += 1
            self._cycle += 1
            self._run_fetch += 1
            if engine.on_wrong_path:
                self._run_goodpath = False
                self._replay_wrongpath(record)
                continue
            self._run_goodpath = True
            self._window.append(record)
            self._inflight += 1
            self._drain()
            self._cycle_tick()

    def _gated_step(self) -> None:
        """One gated cycle: fetch stalls, the oldest in-flight slot completes.

        The completion is the shared drain body with an excess of one —
        the gated session's parameterization of the single drain
        implementation.
        """
        self.stats.gated_cycles += 1
        self._cycle += 1
        if self._window:
            self._complete_oldest(1)
        self._cycle_tick()

    def _gated_wait(self) -> None:
        """Stall good-path fetch until the policy stops gating."""
        policy = self.gating_policy
        while policy.should_gate() and self._window:
            self._gated_step()

    def _replay_wrongpath(self, record: BranchRecord) -> None:
        """The wrong-path episode with the gate in the fetch loop.

        The episode budget counts estimated *cycles*, not fetched slots:
        the mispredicted branch resolves ``mispredict_window`` cycles
        after fetch whether or not the front end kept fetching, so a
        gated cycle consumes episode budget without fetching a wrong-path
        slot.  Stays scalar — the gate interleaves with the draws — but
        resolution and recovery share :meth:`_finish_wrongpath` with the
        fused ungated episode.
        """
        engine = self.fetch_engine
        wrongpath = engine.wrongpath_generator
        stats = self.stats
        wp_block = self._wp_block
        gap_scratch = self._wp_gap_scratch
        log1p = self._log_one_minus_p
        wp_rng = self._wp_gap_rng
        policy = self.gating_policy
        remaining = self.mispredict_window
        fetched = 0
        while remaining:
            if policy.should_gate():
                self._gated_step()
                remaining -= 1
                continue
            wp_rng.geometric_block(log1p, gap_scratch, 1)
            gap = gap_scratch[0]
            if gap > remaining:
                gap = remaining
            if gap:
                self._fetch_bad_gap(gap)
                remaining -= gap
                fetched += gap
            if not remaining:
                break
            self._flush_runs()
            seq = self._next_seq
            self._next_seq = seq + 1
            wrongpath.next_branch_into(wp_block, 0)
            wp_record = engine.predict_from_block(wp_block, 0, seq,
                                                  on_goodpath=False)
            engine.badpath_fetched += 1
            stats.badpath_fetched += 1
            self._cycle += 1
            self._run_fetch += 1
            self._window.append(wp_record)
            self._inflight += 1
            self._drain()
            remaining -= 1
            fetched += 1
            self._cycle_tick()
        # Same issued-before-squash estimate as the ungated episode, over
        # the slots this episode actually fetched: gated cycles consume
        # episode budget without fetching, so gating directly shrinks the
        # wrong-path work both fetched and executed.
        self._finish_wrongpath(record, fetched - self.config.frontend_depth)


class TraceBackend(SimulationBackend):
    """Fast branch-driven replay for predictor-level experiments.

    Parameters
    ----------
    resolve_window:
        Slots between fetch and resolution.  Defaults to
        ``width * frontend_depth`` of the machine configuration
        (calibrated against the cycle model's outstanding-branch window
        and reliability diagrams; see tests/test_backends.py).
    mispredict_window:
        Wrong-path slots replayed per good-path misprediction.  Defaults
        to ``2 * min_mispredict_penalty`` (calibrated against the cycle
        model's wrong-path fetches per flush).
    block_size:
        Branches generated per batch.  Defaults to the
        ``REPRO_TRACE_BLOCK`` environment knob (or
        :data:`DEFAULT_TRACE_BLOCK`); results are bit-identical for any
        value >= 1, so this is never part of a job identity or cache key.
    """

    #: Cycles/IPC are *estimates* over the calibrated windows — ordering-
    #: preserving (parity-gated by tests/test_backends.py), not
    #: cycle-accurate; the cycle backend stays ground truth.
    name = "trace"
    supports_timing = True
    supports_gating = True

    def __init__(self, resolve_window: Optional[int] = None,
                 mispredict_window: Optional[int] = None,
                 block_size: Optional[int] = None) -> None:
        self.resolve_window = resolve_window
        self.mispredict_window = mispredict_window
        self.block_size = block_size

    def build(self, workload: Workload, config: MachineConfig,
              instrument: Instrumentation) -> TraceSession:
        fetch_engine = build_fetch_engine(workload, config, instrument)
        resolve_window = (self.resolve_window if self.resolve_window is not None
                          else config.width * config.frontend_depth)
        mispredict_window = (self.mispredict_window
                             if self.mispredict_window is not None
                             else 2 * config.min_mispredict_penalty)
        gating = instrument.gating_policy
        if gating is not None and not isinstance(gating, NoGating):
            # The gated session steps scalar (gating decisions change
            # branch to branch); the ungated batched fast path stays
            # bit-identical to previous releases.
            return GatedTraceSession(fetch_engine, config,
                                     instrument.observers, resolve_window,
                                     mispredict_window, gating,
                                     block_size=self.block_size)
        session = TraceSession(fetch_engine, config, instrument.observers,
                               resolve_window, mispredict_window,
                               block_size=self.block_size)
        return session
