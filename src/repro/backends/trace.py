"""The trace-replay backend: predictor-level statistics without a pipeline.

:class:`TraceBackend` drives the branch predictors, BTB/RAS and the
confidence machinery directly over the workload generator's *branch*
stream — the same :class:`~repro.pipeline.fetch.FetchEngine`, front-end
predictor, JRS table and path confidence predictors as the cycle model.
The branch-content streams (``site-selection``, ``branch-outcomes``) are
consumed only by branches, so the good-path branch sequence the predictors
see (PCs, directions, targets, kinds) is bit-identical to the cycle
model's for unphased benchmarks, and statistically identical for phased
ones (branch positions, and therefore phase assignment near boundaries,
come from the replay's own gap process).

The replay is *branch-driven*: non-branch instructions are never
generated at all.  The gap between consecutive branches is drawn in
closed form from the same geometric distribution the per-instruction
Bernoulli process induces (one uniform draw per branch instead of one per
instruction), and everything a gap contributes — fetch/retire counters,
instance observations, window residency — is pure integer arithmetic.
Timing is replaced by two calibrated windows:

* every fetched slot *completes* (resolves, trains, retires)
  ``resolve_window`` slots after fetch, standing in for the
  fetch-to-resolve depth of the pipeline;
* a good-path misprediction replays the wrong-path stream for
  ``mispredict_window`` slots before the branch resolves and fetch is
  redirected, standing in for the wrong-path fetch episode (calibrated
  against the cycle model's wrong-path-fetches-per-flush, roughly twice
  the minimum misprediction penalty).

The replay clock models an idealized IPC-1 machine (one cycle per slot,
plus redirect stalls), which keeps cycle-periodic machinery — PaCo's
re-logarithmizing pass — at a per-instruction cadence comparable to the
cycle model's.  Instance observations are batched: between two predictor
state changes every instance carries identical observable state, so the
engine counts them and emits one :meth:`InstanceObserver.record_run` per
kind at the next change (branch fetch/resolve/squash, re-log pass, phase
boundary).

Parity with the cycle backend for fig2 MDC rates, fig3 counters, fig8/9
reliability, table7 RMS and tableA1 MRT variants is enforced (with stated
tolerances) by ``tests/test_backends.py``.  What this backend does **not**
model: cycle-accurate IPC, wrong-path cache/BTB pollution timing, fetch
gating and SMT arbitration.  Experiments that consume those (fig10,
fig12) must stay on the cycle backend, and :meth:`TraceBackend.build`
rejects gating instrumentation outright.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Optional

from repro.backends.base import (
    Instrumentation,
    SimulationBackend,
    SimulationSession,
    Workload,
)
from repro.backends.cycle import build_fetch_engine
from repro.common.rng import RngPool
from repro.isa.instruction import Instruction
from repro.isa.types import BranchKind
from repro.pipeline.config import MachineConfig
from repro.pipeline.core import CoreStats, InstanceObserver, SimulationTruncated
from repro.pipeline.fetch import FetchEngine
from repro.pipeline.gating import NoGating


class TraceSession(SimulationSession):
    """One branch-driven replay: a fetch engine plus a slot window.

    The in-flight window is a deque whose entries are either an
    :class:`Instruction` (a branch occupying one slot) or an ``int`` run
    of non-branch slots — positive for good-path slots, negative for
    wrong-path slots.  ``_inflight`` tracks the total slot count so drains
    are O(1) amortized per branch, not per instruction.
    """

    def __init__(self, fetch_engine: FetchEngine, config: MachineConfig,
                 observers, resolve_window: int,
                 mispredict_window: int) -> None:
        if resolve_window < 1:
            raise ValueError("resolve window must be at least one instruction")
        if mispredict_window < 1:
            raise ValueError("mispredict window must be at least one instruction")
        self.fetch_engine = fetch_engine
        self.config = config
        self.stats = CoreStats()
        self.observers = list(observers)
        self.resolve_window = resolve_window
        self.mispredict_window = mispredict_window

        spec = fetch_engine.generator.spec
        pool = RngPool(fetch_engine.generator._pool.master_seed).fork("trace-gaps")
        self._gap_rng = pool.stream("goodpath")
        self._wp_gap_rng = pool.stream("wrongpath")
        branch_fraction = min(max(spec.branch_fraction, 1e-9), 1.0)
        #: log(1 - p) of the per-instruction branch probability, used to
        #: draw geometric inter-branch gaps in closed form.
        self._log_one_minus_p = (math.log(1.0 - branch_fraction)
                                 if branch_fraction < 1.0 else None)

        self._window: Deque[object] = deque()
        self._inflight = 0
        self._cycle = 0
        self._next_seq = 0
        self._started = False

        # Batched instance recording (see module docstring).
        self._run_fetch = 0
        self._run_execute = 0
        self._run_goodpath = True
        self._has_phases = bool(spec.phases)

    # ------------------------------------------------------------------ #
    # public API (the SimulationSession contract)
    # ------------------------------------------------------------------ #

    def add_observer(self, observer: InstanceObserver) -> None:
        # Instances recorded while this observer was not attached must not
        # leak into it: flush the pending run to the existing observers
        # first (the new one starts at the next instance).
        self._flush_runs()
        self.observers.append(observer)

    def run(self, max_instructions: int,
            max_cycles: Optional[int] = None) -> CoreStats:
        """Replay until ``max_instructions`` good-path instructions retired."""
        if max_instructions <= 0:
            raise ValueError("instruction budget must be positive")
        if max_cycles is None:
            max_cycles = max_instructions * 40
        if not self._started:
            self._started = True
            self.fetch_engine.path_confidence.on_cycle(0)
        stats = self.stats
        while (stats.retired_instructions < max_instructions
               and self._cycle < max_cycles):
            self._step_branch()
        self._flush_runs()
        stats.cycles = self._cycle
        if stats.retired_instructions < max_instructions:
            raise SimulationTruncated(stats, max_instructions, max_cycles)
        return stats

    @property
    def cycle(self) -> int:
        return self._cycle

    @property
    def window_occupancy(self) -> int:
        return self._inflight

    # ------------------------------------------------------------------ #
    # replay mechanics
    # ------------------------------------------------------------------ #

    def _gap(self, rng) -> int:
        """Draw one geometric inter-branch gap (non-branch slots)."""
        log1p = self._log_one_minus_p
        if log1p is None:
            return 0
        u = rng.random()
        if u <= 0.0:
            return 0
        return int(math.log(u) / log1p)

    def _step_branch(self) -> None:
        """Advance the replay by one good-path inter-branch gap + branch."""
        engine = self.fetch_engine
        generator = engine.generator
        stats = self.stats
        window = self._window
        # _gap() inlined (one geometric draw per good-path branch).
        log1p = self._log_one_minus_p
        if log1p is None:
            gap = 0
        else:
            u = self._gap_rng.random()
            gap = int(math.log(u) / log1p) if u > 0.0 else 0
        if gap:
            if not self._has_phases:
                # Unphased fast path: the whole gap is one arithmetic step.
                generator.instructions_generated += gap
                self._fetch_good_gap(gap)
            else:
                while gap:
                    taken = generator.advance_instructions(gap)
                    self._fetch_good_gap(taken)
                    gap -= taken
                    if gap:
                        # Phase boundary inside the gap: instances on either
                        # side belong to different phases; close the run.
                        self._flush_runs()
        # The branch itself: prediction mutates predictor state, so the
        # pending run ends here and the branch's own fetch instance starts
        # the next one.
        self._flush_runs()
        seq = self._next_seq
        self._next_seq = seq + 1
        branch = generator.next_branch(seq)
        branch.fetch_cycle = self._cycle
        engine.goodpath_fetched += 1
        engine._predict_branch(branch)
        stats.goodpath_fetched += 1
        self._cycle += 1
        self._run_goodpath = not engine.on_wrong_path
        self._run_fetch += 1
        if engine.on_wrong_path:
            self._replay_wrongpath(branch)
            return
        window.append(branch)
        self._inflight += 1
        if self._inflight > self.resolve_window:
            self._drain()
        if engine.path_confidence.on_cycle(self._cycle):
            self._flush_runs()

    def _fetch_good_gap(self, count: int) -> None:
        """Account ``count`` good-path non-branch slots in one step."""
        if count <= 0:
            return
        stats = self.stats
        stats.goodpath_fetched += count
        self.fetch_engine.goodpath_fetched += count
        self._cycle += count
        self._run_fetch += count
        window = self._window
        if window and type(window[-1]) is int and window[-1] > 0:
            window[-1] += count
        else:
            window.append(count)
        self._inflight += count
        if self._inflight > self.resolve_window:
            self._drain()

    def _fetch_bad_gap(self, count: int) -> None:
        """Account ``count`` wrong-path non-branch slots in one step."""
        if count <= 0:
            return
        stats = self.stats
        stats.badpath_fetched += count
        self.fetch_engine.badpath_fetched += count
        self._cycle += count
        self._run_fetch += count
        window = self._window
        if window and type(window[-1]) is int and window[-1] < 0:
            window[-1] -= count
        else:
            window.append(-count)
        self._inflight += count
        if self._inflight > self.resolve_window:
            self._drain()

    def _replay_wrongpath(self, branch: Instruction) -> None:
        """Replay the wrong-path stream for the calibrated resolution window."""
        engine = self.fetch_engine
        wrongpath = engine.wrongpath_generator
        stats = self.stats
        remaining = self.mispredict_window
        while remaining:
            gap = min(self._gap(self._wp_gap_rng), remaining)
            if gap:
                self._fetch_bad_gap(gap)
                remaining -= gap
            if not remaining:
                break
            self._flush_runs()
            seq = self._next_seq
            self._next_seq = seq + 1
            wp_branch = wrongpath.next_branch(seq)
            engine.fetch_generated(wp_branch, self._cycle)
            stats.badpath_fetched += 1
            self._cycle += 1
            self._run_fetch += 1
            self._window.append(wp_branch)
            self._inflight += 1
            if self._inflight > self.resolve_window:
                self._drain()
            remaining -= 1
            if engine.path_confidence.on_cycle(self._cycle):
                self._flush_runs()
        # The mispredicted branch resolves: mirror the cycle core's
        # recovery order — resolve (train/repair), squash everything
        # younger, redirect fetch, then record the execute instance.
        self._flush_runs()
        stats.flushes += 1
        engine.resolve_branch(branch)
        window = self._window
        while window:
            entry = window[-1]
            if type(entry) is int:
                if entry > 0:
                    break
                window.pop()
                self._inflight += entry  # entry is negative
            elif entry.on_goodpath:
                break
            else:
                window.pop()
                self._inflight -= 1
                engine.squash_branch(entry)
        engine.recover(branch)
        self._retire_branch(branch)
        self._run_goodpath = not engine.on_wrong_path
        self._run_execute += 1
        stats.fetch_stall_cycles += self.config.redirect_penalty
        self._cycle += self.config.redirect_penalty
        if engine.path_confidence.on_cycle(self._cycle):
            self._flush_runs()

    def _drain(self) -> None:
        """Complete the oldest slots once the window exceeds its depth."""
        excess = self._inflight - self.resolve_window
        if excess <= 0:
            return
        stats = self.stats
        window = self._window
        while excess > 0:
            entry = window[0]
            if type(entry) is int:
                if entry > 0:
                    take = entry if entry <= excess else excess
                    stats.goodpath_executed += take
                    stats.retired_instructions += take
                else:
                    take = -entry if -entry <= excess else excess
                    stats.badpath_executed += take
                self._run_execute += take
                if take < abs(entry):
                    window[0] = entry - take if entry > 0 else entry + take
                else:
                    window.popleft()
                excess -= take
                self._inflight -= take
            else:
                window.popleft()
                self._inflight -= 1
                excess -= 1
                # A branch resolution changes predictor state: close the
                # pending run first, as the cycle model's per-instance
                # recording would.
                self._flush_runs()
                self.fetch_engine.resolve_branch(entry)
                self._run_goodpath = not self.fetch_engine.on_wrong_path
                if entry.on_goodpath:
                    self._retire_branch(entry)
                else:
                    stats.badpath_executed += 1
                self._run_execute += 1

    def _retire_branch(self, instr: Instruction) -> None:
        stats = self.stats
        stats.goodpath_executed += 1
        stats.retired_instructions += 1
        stats.branches_retired += 1
        if instr.mispredicted:
            stats.branch_mispredicts_retired += 1
        if instr.branch_kind is BranchKind.CONDITIONAL:
            stats.conditional_branches_retired += 1
            if instr.mispredicted:
                stats.conditional_mispredicts_retired += 1

    # ------------------------------------------------------------------ #
    # batched instance recording
    # ------------------------------------------------------------------ #

    def _flush_runs(self) -> None:
        """Emit the pending fetch/execute instance runs to the observers."""
        fetches = self._run_fetch
        executes = self._run_execute
        if not fetches and not executes:
            return
        self._run_fetch = 0
        self._run_execute = 0
        on_goodpath = self._run_goodpath
        cycle = self._cycle
        for observer in self.observers:
            if fetches:
                observer.record_run("fetch", on_goodpath, cycle, fetches)
            if executes:
                observer.record_run("execute", on_goodpath, cycle, executes)


class TraceBackend(SimulationBackend):
    """Fast branch-driven replay for predictor-level experiments.

    Parameters
    ----------
    resolve_window:
        Slots between fetch and resolution.  Defaults to
        ``width * frontend_depth`` of the machine configuration
        (calibrated against the cycle model's outstanding-branch window
        and reliability diagrams; see tests/test_backends.py).
    mispredict_window:
        Wrong-path slots replayed per good-path misprediction.  Defaults
        to ``2 * min_mispredict_penalty`` (calibrated against the cycle
        model's wrong-path fetches per flush).
    """

    name = "trace"
    supports_timing = False
    supports_gating = False

    def __init__(self, resolve_window: Optional[int] = None,
                 mispredict_window: Optional[int] = None) -> None:
        self.resolve_window = resolve_window
        self.mispredict_window = mispredict_window

    def build(self, workload: Workload, config: MachineConfig,
              instrument: Instrumentation) -> TraceSession:
        gating = instrument.gating_policy
        if gating is not None and not isinstance(gating, NoGating):
            raise ValueError(
                "the trace backend does not model fetch gating; run gating "
                "experiments on backend='cycle'"
            )
        fetch_engine = build_fetch_engine(workload, config, instrument)
        resolve_window = (self.resolve_window if self.resolve_window is not None
                          else config.width * config.frontend_depth)
        mispredict_window = (self.mispredict_window
                             if self.mispredict_window is not None
                             else 2 * config.min_mispredict_penalty)
        session = TraceSession(fetch_engine, config, instrument.observers,
                               resolve_window, mispredict_window)
        return session
