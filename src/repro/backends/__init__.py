"""Pluggable simulation backends.

Every experiment harness runs its workloads through a
:class:`~repro.backends.base.SimulationBackend`.  The backend decides
*how* the statistics are produced:

``cycle``
    :class:`~repro.backends.cycle.CycleBackend` — the full
    cycle-approximate out-of-order core.  Ground truth, supports timing
    (IPC), gating and SMT.
``trace``
    :class:`~repro.backends.trace.TraceBackend` — the fast trace-replay
    engine for predictor- and confidence-level statistics.
``trace-vec``
    :class:`~repro.backends.vec.VecTraceBackend` — the trace replay with
    numpy-staged predictor columns and fused predict/resolve loops.
    Bit-identical to ``trace``; needs numpy (the ``repro-paco[vec]``
    extra).  Without numpy the name stays in the registry as
    *unavailable* — selecting it raises
    :class:`~repro.backends.base.BackendUnavailableError` with the
    install hint, and ``cycle``/``trace`` are untouched.

Select one by name through :func:`~repro.backends.base.get_backend`, the
``backend=`` parameter of the harness entry points, the ``backend`` field
of :class:`~repro.runner.jobs.Job`, or ``python -m repro run <experiment>
--backend {cycle,trace,trace-vec}``.
"""

from repro.backends.base import (
    DEFAULT_BACKEND,
    BackendUnavailableError,
    Instrumentation,
    SimulationBackend,
    SimulationSession,
    UnknownBackendError,
    Workload,
    backend_names,
    describe_backends,
    get_backend,
    register_backend,
    register_unavailable,
    unavailable_backends,
    validate_backend_name,
)
from repro.backends.cycle import CycleBackend, CycleSession, build_fetch_engine
from repro.backends.trace import TraceBackend, TraceSession

register_backend(CycleBackend.name, CycleBackend)
register_backend(TraceBackend.name, TraceBackend)

try:
    import numpy as _numpy  # noqa: F401 - availability probe only
except ImportError:  # pragma: no cover - exercised via subprocess test
    _numpy = None

if _numpy is not None:
    from repro.backends.vec import (  # noqa: E402
        VecTraceBackend,
        VecTraceSession,
        VectorEngine,
    )

    register_backend(VecTraceBackend.name, VecTraceBackend)
else:  # pragma: no cover - exercised via subprocess test
    VecTraceBackend = None
    VecTraceSession = None
    VectorEngine = None
    register_unavailable(
        "trace-vec",
        "requires numpy; install the optional extra with"
        " 'pip install repro-paco[vec]'",
    )

__all__ = [
    "DEFAULT_BACKEND",
    "BackendUnavailableError",
    "CycleBackend",
    "CycleSession",
    "Instrumentation",
    "SimulationBackend",
    "SimulationSession",
    "TraceBackend",
    "TraceSession",
    "UnknownBackendError",
    "VecTraceBackend",
    "VecTraceSession",
    "VectorEngine",
    "Workload",
    "backend_names",
    "build_fetch_engine",
    "describe_backends",
    "get_backend",
    "register_backend",
    "register_unavailable",
    "unavailable_backends",
    "validate_backend_name",
]
