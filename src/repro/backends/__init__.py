"""Pluggable simulation backends.

Every experiment harness runs its workloads through a
:class:`~repro.backends.base.SimulationBackend`.  The backend decides
*how* the statistics are produced:

``cycle``
    :class:`~repro.backends.cycle.CycleBackend` — the full
    cycle-approximate out-of-order core.  Ground truth, supports timing
    (IPC), gating and SMT.
``trace``
    :class:`~repro.backends.trace.TraceBackend` — the fast trace-replay
    engine for predictor- and confidence-level statistics.

Select one by name through :func:`~repro.backends.base.get_backend`, the
``backend=`` parameter of the harness entry points, the ``backend`` field
of :class:`~repro.runner.jobs.Job`, or ``python -m repro run <experiment>
--backend {cycle,trace}``.
"""

from repro.backends.base import (
    DEFAULT_BACKEND,
    Instrumentation,
    SimulationBackend,
    SimulationSession,
    UnknownBackendError,
    Workload,
    backend_names,
    get_backend,
    register_backend,
)
from repro.backends.cycle import CycleBackend, CycleSession, build_fetch_engine
from repro.backends.trace import TraceBackend, TraceSession

register_backend(CycleBackend.name, CycleBackend)
register_backend(TraceBackend.name, TraceBackend)

__all__ = [
    "DEFAULT_BACKEND",
    "CycleBackend",
    "CycleSession",
    "Instrumentation",
    "SimulationBackend",
    "SimulationSession",
    "TraceBackend",
    "TraceSession",
    "UnknownBackendError",
    "Workload",
    "backend_names",
    "build_fetch_engine",
    "get_backend",
    "register_backend",
]
