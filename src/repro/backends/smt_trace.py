"""SMT fetch prioritization over interleaved trace replays.

:class:`TraceSMTCore` models the paper's 2-thread SMT machine (Table 11)
at the same level of abstraction as the single-thread trace backend: each
hardware thread is a branch-driven replay — its own
:class:`~repro.pipeline.fetch.FetchEngine`, geometric inter-branch gaps,
an in-flight window of ``resolve_window`` slots, and a time-based
wrong-path episode of ``mispredict_window`` estimated cycles per
good-path misprediction.  The shared front end is arbitrated by the same
:class:`~repro.pipeline.fetch_policy.FetchPolicy` objects the cycle model
uses, over the same :class:`~repro.pipeline.fetch_policy.ThreadView`
signals (in-flight count, per-thread path confidence predictor).

The replay advances in *grants* rather than cycles: the selected thread
fetches its next inter-branch gap plus branch (the estimated clock
advances one cycle per fetched slot, the idealized IPC-1 front end of the
trace backend), while every other thread's in-flight window drains one
slot per elapsed cycle — completing, retiring and resolving its oldest
work exactly as the shared back end would.  Draining the loser is what
keeps the policies honest: a deprioritized thread's unresolved
low-confidence branches resolve as its window empties, so its confidence
signal recovers and fetch priority oscillates instead of starving.  A
grant is clamped so it never skips past a pending misprediction
resolution, which happens at its recorded estimated cycle: resolve,
squash younger wrong-path work, recover, retire the branch, and stall
the thread's fetch for the redirect penalty.

Per-thread IPCs out of this model are *estimates* (bounded by the IPC-1
front end), but the fig12 metric — HMWIPC over per-thread SMT/single
IPC ratios — consumes only relative throughput, and the fetch policies
consume only ordering signals, so the policy ranking survives; the
trace-vs-cycle parity gates in ``tests/test_backends.py`` pin that.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, List, Optional, Sequence

from repro.branch_predictor.engine import BranchRecord
from repro.common.rng import RngPool
from repro.pipeline.config import SMTConfig
from repro.pipeline.fetch import FetchEngine
from repro.pipeline.fetch_policy import FetchPolicy, ICountPolicy, ThreadView
from repro.pipeline.smt import SMTStats, ThreadStats
from repro.workloads.generator import BranchBlock

#: Geometric gaps drawn per refill of a thread's gap buffers.  Grants
#: consume one gap at a time, so buffering amortizes the draw-call
#: overhead without changing per-stream draw order (each stream's gaps
#: are consumed in exactly the order they are drawn).
GAP_BUFFER = 64


class TraceSMTThread(ThreadView):
    """One hardware thread of the trace SMT model.

    Holds the thread's fetch engine, its in-flight slot window (the same
    ``BranchRecord``-or-signed-int-run encoding as
    :class:`~repro.backends.trace.TraceSession`), its gap RNG streams and
    its pending wrong-path episode, and exposes the
    :class:`~repro.pipeline.fetch_policy.ThreadView` signals the fetch
    policies arbitrate on.
    """

    def __init__(self, thread_id: int, fetch_engine: FetchEngine) -> None:
        self.thread_id = thread_id
        self.fetch_engine = fetch_engine
        self.stats = ThreadStats()
        self.window: Deque[object] = deque()
        self.inflight = 0
        self.next_seq = 0
        self.fetch_stall_until = 0
        self.pending_gap = 0
        #: The unresolved good-path mispredict, if any, and the estimated
        #: cycle its episode ends (time-based, like the gated replay).
        self.wp_record: Optional[BranchRecord] = None
        self.wp_resolve_at = 0

        spec = fetch_engine.generator.spec
        pool = RngPool(fetch_engine.generator._pool.master_seed).fork(
            "trace-gaps")
        self.gap_rng = pool.stream("goodpath")
        self.wp_gap_rng = pool.stream("wrongpath")
        branch_fraction = min(max(spec.branch_fraction, 1e-9), 1.0)
        self.log_one_minus_p = (math.log(1.0 - branch_fraction)
                                if branch_fraction < 1.0 else None)
        self.block = BranchBlock(1)
        self.wp_block = BranchBlock(1)
        # Buffered gap draws, one buffer per stream (see GAP_BUFFER); a
        # position at the end marks the buffer as spent.
        self.gap_buf = [0] * GAP_BUFFER
        self.gap_pos = GAP_BUFFER
        self.wp_gap_buf = [0] * GAP_BUFFER
        self.wp_gap_pos = GAP_BUFFER

    def next_good_gap(self) -> int:
        """The next good-path inter-branch gap (refilling the buffer)."""
        pos = self.gap_pos
        if pos >= GAP_BUFFER:
            self.gap_rng.geometric_block(self.log_one_minus_p,
                                         self.gap_buf, GAP_BUFFER)
            pos = 0
        self.gap_pos = pos + 1
        return self.gap_buf[pos]

    def next_bad_gap(self) -> int:
        """The next wrong-path inter-branch gap (refilling the buffer)."""
        pos = self.wp_gap_pos
        if pos >= GAP_BUFFER:
            self.wp_gap_rng.geometric_block(self.log_one_minus_p,
                                            self.wp_gap_buf, GAP_BUFFER)
            pos = 0
        self.wp_gap_pos = pos + 1
        return self.wp_gap_buf[pos]

    @property
    def in_flight_instructions(self) -> int:
        return self.inflight + (1 if self.wp_record is not None else 0)

    @property
    def path_confidence(self) -> object:
        return self.fetch_engine.path_confidence


class TraceSMTCore:
    """The 8-wide 2-thread SMT machine as two interleaved trace replays."""

    def __init__(self, config: SMTConfig, threads: List[TraceSMTThread],
                 fetch_policy: Optional[FetchPolicy] = None,
                 resolve_window: Optional[int] = None,
                 mispredict_window: Optional[int] = None) -> None:
        if len(threads) != config.num_threads:
            raise ValueError(
                f"expected {config.num_threads} threads, got {len(threads)}")
        self.config = config
        self.machine = config.machine
        self.threads = threads
        self.fetch_policy = (fetch_policy if fetch_policy is not None
                             else ICountPolicy())
        machine = config.machine
        self.resolve_window = (resolve_window if resolve_window is not None
                               else machine.width * machine.frontend_depth)
        self.mispredict_window = (mispredict_window
                                  if mispredict_window is not None
                                  else 2 * machine.min_mispredict_penalty)
        if self.resolve_window < 1 or self.mispredict_window < 1:
            raise ValueError("trace windows must be at least one slot")
        self._cycle = 0
        self.stats = SMTStats(threads=[t.stats for t in threads])

    # ------------------------------------------------------------------ #

    def run(self, max_total_instructions: int,
            max_cycles: Optional[int] = None) -> SMTStats:
        """Run until the threads together retire the instruction budget."""
        if max_total_instructions <= 0:
            raise ValueError("instruction budget must be positive")
        if max_cycles is None:
            max_cycles = max_total_instructions * 40
        while (self.stats.total_retired < max_total_instructions
               and self._cycle < max_cycles):
            self._step()
        self.stats.cycles = self._cycle
        return self.stats

    @property
    def cycle(self) -> int:
        return self._cycle

    # ------------------------------------------------------------------ #

    def _step(self) -> None:
        """One arbitration event: resolve due mispredicts, grant fetch."""
        cycle = self._cycle
        for thread in self.threads:
            thread.fetch_engine.path_confidence.on_cycle(cycle)
            if thread.wp_record is not None and cycle >= thread.wp_resolve_at:
                self._resolve_mispredict(thread, cycle)

        eligible = [i for i, t in enumerate(self.threads)
                    if cycle >= t.fetch_stall_until]
        if not eligible:
            # Every thread is redirect-stalled: idle the front end until
            # the earliest wake-up, draining the back end meanwhile.
            target = min(t.fetch_stall_until for t in self.threads)
            for thread in self.threads:
                if thread.wp_record is not None:
                    target = min(target, thread.wp_resolve_at)
            target = max(target, cycle + 1)
            for thread in self.threads:
                self._drain_slots(thread, target - cycle)
            self._cycle = target
            return
        if len(eligible) == len(self.threads):
            index = self.fetch_policy.select(cycle, self.threads)
        else:
            index = eligible[0]
        thread = self.threads[index]
        slots = self._fetch_grant(thread, cycle)
        thread.stats.fetch_cycles_granted += slots
        for other in self.threads:
            if other is not thread:
                self._drain_slots(other, slots)
        self._cycle = cycle + slots

    def _grant_limit(self, cycle: int) -> Optional[int]:
        """Cycles until the earliest pending mispredict resolution."""
        limit: Optional[int] = None
        for thread in self.threads:
            if thread.wp_record is not None:
                due = thread.wp_resolve_at - cycle
                if limit is None or due < limit:
                    limit = max(1, due)
        return limit

    def _fetch_grant(self, thread: TraceSMTThread, cycle: int) -> int:
        """Fetch one gap+branch grant for ``thread``; return slots fetched."""
        engine = thread.fetch_engine
        limit = self._grant_limit(cycle)
        if engine.on_wrong_path:
            return self._fetch_wrongpath_grant(thread, cycle, limit)
        if thread.pending_gap:
            gap = thread.pending_gap
        else:
            gap = thread.next_good_gap()
        if limit is not None and gap >= limit:
            # Fetch only the prefix of the gap that fits before the next
            # pending resolution; bank the rest for the next grant.
            self._fetch_good_run(thread, limit)
            thread.pending_gap = gap - limit
            return limit
        if gap:
            self._fetch_good_run(thread, gap)
        thread.pending_gap = 0
        seq = thread.next_seq
        thread.next_seq = seq + 1
        generator = engine.generator
        generator.next_branch_block(seq, 1, thread.block)
        record = engine.predict_from_block(thread.block, 0, seq)
        engine.goodpath_fetched += 1
        thread.stats.goodpath_fetched += 1
        if engine.on_wrong_path:
            # The episode is time-based: the branch resolves a calibrated
            # number of estimated cycles after its fetch, regardless of
            # how much wrong-path work the policy lets this thread fetch.
            thread.wp_record = record
            thread.wp_resolve_at = cycle + gap + 1 + self.mispredict_window
        else:
            self._append_record(thread, record)
        return gap + 1

    def _fetch_wrongpath_grant(self, thread: TraceSMTThread, cycle: int,
                               limit: Optional[int]) -> int:
        """One wrong-path gap+branch grant (bounded by the episode end)."""
        engine = thread.fetch_engine
        budget = thread.wp_resolve_at - cycle
        if limit is not None:
            budget = min(budget, limit)
        budget = max(1, budget)
        gap = thread.next_bad_gap()
        if gap >= budget:
            self._fetch_bad_run(thread, budget)
            return budget
        if gap:
            self._fetch_bad_run(thread, gap)
        seq = thread.next_seq
        thread.next_seq = seq + 1
        engine.wrongpath_generator.next_branch_into(thread.wp_block, 0)
        record = engine.predict_from_block(thread.wp_block, 0, seq,
                                           on_goodpath=False)
        engine.badpath_fetched += 1
        thread.stats.badpath_fetched += 1
        self._append_record(thread, record)
        return gap + 1

    # ------------------------------------------------------------------ #
    # window bookkeeping
    # ------------------------------------------------------------------ #

    def _fetch_good_run(self, thread: TraceSMTThread, count: int) -> None:
        generator = thread.fetch_engine.generator
        remaining = count
        while remaining:
            remaining -= generator.advance_instructions(remaining)
        thread.fetch_engine.goodpath_fetched += count
        thread.stats.goodpath_fetched += count
        window = thread.window
        if window and type(window[-1]) is int and window[-1] > 0:
            window[-1] += count
        else:
            window.append(count)
        thread.inflight += count
        if thread.inflight > self.resolve_window:
            self._drain_slots(thread, thread.inflight - self.resolve_window)

    def _fetch_bad_run(self, thread: TraceSMTThread, count: int) -> None:
        thread.fetch_engine.badpath_fetched += count
        thread.stats.badpath_fetched += count
        window = thread.window
        if window and type(window[-1]) is int and window[-1] < 0:
            window[-1] -= count
        else:
            window.append(-count)
        thread.inflight += count
        if thread.inflight > self.resolve_window:
            self._drain_slots(thread, thread.inflight - self.resolve_window)

    def _append_record(self, thread: TraceSMTThread,
                       record: BranchRecord) -> None:
        thread.window.append(record)
        thread.inflight += 1
        if thread.inflight > self.resolve_window:
            self._drain_slots(thread, thread.inflight - self.resolve_window)

    def _drain_slots(self, thread: TraceSMTThread, count: int) -> None:
        """Complete up to ``count`` oldest in-flight slots of ``thread``."""
        window = thread.window
        stats = thread.stats
        engine = thread.fetch_engine
        while count > 0 and window:
            entry = window[0]
            if type(entry) is int:
                size = entry if entry > 0 else -entry
                take = size if size <= count else count
                if entry > 0:
                    stats.retired_instructions += take
                else:
                    stats.badpath_executed += take
                if take < size:
                    window[0] = entry - take if entry > 0 else entry + take
                else:
                    window.popleft()
                thread.inflight -= take
                count -= take
            else:
                window.popleft()
                thread.inflight -= 1
                count -= 1
                engine.resolve_record(entry)
                if entry.on_goodpath:
                    stats.retired_instructions += 1
                    stats.branches_retired += 1
                    if entry.mispredicted:
                        stats.branch_mispredicts_retired += 1
                else:
                    stats.badpath_executed += 1

    def _resolve_mispredict(self, thread: TraceSMTThread,
                            cycle: int) -> None:
        """The pending mispredict's episode ended: recover the thread."""
        record = thread.wp_record
        thread.wp_record = None
        engine = thread.fetch_engine
        engine.resolve_record(record)
        window = thread.window
        while window:
            entry = window[-1]
            if type(entry) is int:
                if entry > 0:
                    break
                window.pop()
                thread.inflight += entry  # entry is negative
            elif entry.on_goodpath:
                break
            else:
                window.pop()
                thread.inflight -= 1
                engine.squash_record(entry)
        engine.recover(record)
        stats = thread.stats
        stats.retired_instructions += 1
        stats.branches_retired += 1
        if record.mispredicted:
            stats.branch_mispredicts_retired += 1
        thread.fetch_stall_until = max(
            thread.fetch_stall_until,
            cycle + self.machine.redirect_penalty)


def build_trace_smt_core(fetch_engines: Sequence[FetchEngine],
                         config: Optional[SMTConfig] = None,
                         fetch_policy: Optional[FetchPolicy] = None
                         ) -> TraceSMTCore:
    """Wire per-thread fetch engines into a :class:`TraceSMTCore`.

    The engines must be built with the same per-thread seeds the cycle
    SMT harness uses (``seed + thread_id`` / ``wrongpath_seed = seed +
    10 + thread_id``) so both backends replay the same streams.
    """
    config = config if config is not None else SMTConfig()
    threads = [TraceSMTThread(thread_id, engine)
               for thread_id, engine in enumerate(fetch_engines)]
    return TraceSMTCore(config, threads, fetch_policy=fetch_policy)
