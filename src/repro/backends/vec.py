"""The vectorized trace backend: numpy index precomputation + fused loops.

:class:`VecTraceBackend` (``--backend trace-vec``) is the third backend.
It reuses every mechanism of the batched :class:`TraceBackend` — block
staging, closed-form gap drawing, the in-flight slot window, run-event
batching — and replaces the per-branch python predictor work on the
good-path hot loop with two cooperating engines over the *same* columnar
predictor state (:class:`~repro.branch_predictor.columns.PredictorColumns`):

* :class:`VectorEngine` precomputes, per staged :class:`BranchBlock`, the
  speculative global history at every branch position and the gshare /
  bimodal / chooser / JRS (and per-branch-MRT) table indices as numpy
  array operations.  The key observation making whole-block precompute
  possible: on the good path a *correctly predicted* conditional branch
  pushes its predicted == actual direction into the history register, so
  as long as no misprediction intervenes the history at position ``i`` is
  a pure function of ``h0`` and the block's outcome column — computed for
  all positions with one cumulative-sum + one convolution.
* Codegen-fused step/episode loops (compiled per predictor-stack shape,
  exactly like the trace backend's ``_compile_method`` templates) consume
  the precomputed columns and inline the scalar table reads/updates, the
  path confidence predictor fan-out and the observer run batching —
  removing the per-branch ``predict_from_block`` / ``resolve_record`` /
  composite call chain entirely.

Everything that is *not* the straight-line good path falls back to the
scalar machinery on the shared state: phase-boundary branches step
through :meth:`TraceSession._step_boundary_branch`, non-conditional
branches predict through ``FetchEngine.predict_from_block`` (RAS /
indirect-target state stays live), gated sessions use the scalar
:class:`GatedTraceSession` unchanged, and a misprediction re-stages the
remaining block columns from the recovered history (the precomputed
history column is invalidated by the episode's history repair).  Predictor
stacks the fused templates do not model — custom path confidence
predictors, oracle tokens, JRS-less configurations — build a plain
:class:`TraceSession`; ``trace-vec`` then *is* ``trace``.

The contract is bit-identity: the run-event stream, every statistic and
every trained table must equal the pure-python trace backend's exactly
(``tests/test_backends.py::TestVecTraceStreamParity`` pins block sizes
1/17/256/4096 for paco/counter, gated and wrong-path-heavy configs, and
the reliability diagrams' float accumulators at the harness level).
numpy is an optional dependency (the ``repro-paco[vec]`` extra); without
it the registry reports the backend as unavailable with an install hint
and cycle/trace keep working untouched.
"""

from __future__ import annotations

import linecache
from typing import Optional

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via subprocess test
    _np = None

from repro.backends.base import (
    BackendUnavailableError,
    Instrumentation,
    SimulationBackend,
    Workload,
)
from repro.backends.cycle import build_fetch_engine
from repro.backends.trace import (
    GatedTraceSession,
    TraceSession,
    _has_cycle_work,
    _indent,
)
from repro.branch_predictor.btb import _BTBSet
from repro.branch_predictor.engine import BranchRecord
from repro.eval.observers import MultiPredictorObserver
from repro.eval.profiling import MDCProfiler
from repro.isa.types import BranchKind
from repro.pathconf.composite import CompositePathConfidence
from repro.pathconf.paco import PaCoPredictor
from repro.pathconf.per_branch_mrt import PerBranchMRTPredictor
from repro.pathconf.static_mrt import StaticMRTPredictor
from repro.pathconf.threshold_count import ThresholdAndCountPredictor
from repro.pipeline.config import MachineConfig
from repro.pipeline.core import RunEventBatch
from repro.pipeline.fetch import FetchEngine
from repro.pipeline.gating import NoGating


class VectorEngine:
    """Whole-block history/index precompute over the shared columns.

    Operates on the same :class:`PredictorColumns` the scalar
    :class:`PredictorStateEngine` trains in place — staging reads the
    tables' geometry (masks, history width), never their contents, so a
    staged block stays valid across in-place training and is invalidated
    only by a history divergence (misprediction episode), after which the
    caller re-stages the remaining positions from the repaired history.

    All array math runs in uint64: with ``history_bits <= 32`` (enforced
    by :func:`_fused_plan`) the shifted seed plus the outcome convolution
    cannot overflow, and the contribution bits are provably disjoint from
    the shifted-seed bits, so ``+`` is the ``|`` the hardware computes.
    """

    def __init__(self, columns, pbm: Optional[PerBranchMRTPredictor] = None
                 ) -> None:
        self.columns = columns
        width = columns.history_bits
        self._width = width
        self._hist_mask = _np.uint64(columns.history_mask)
        self._g_hmask = _np.uint64(columns.gshare_history_mask)
        self._g_mask = _np.uint64(columns.gshare_mask)
        self._b_mask = _np.uint64(columns.bimodal_mask)
        self._c_hmask = _np.uint64(columns.chooser_history_mask)
        self._c_mask = _np.uint64(columns.chooser_mask)
        self._j_hmask = _np.uint64(columns.jrs_history_mask)
        self._j_mask = _np.uint64(columns.jrs_mask)
        if pbm is not None:
            self._p_hmask = _np.uint64(pbm._history_mask)
            self._p_mask = _np.uint64(pbm._mask)
        else:
            self._p_hmask = None
            self._p_mask = None
        #: kernel[d] == 1 << d: convolving the 0/1 outcome column with it
        #: packs, at every position, the last ``width`` outcomes into the
        #: integer the history shift register would hold.
        self._kernel = _np.array([1 << d for d in range(width)],
                                 dtype=_np.uint64)
        self._cond_kind = BranchKind.CONDITIONAL

    def stage(self, block, start: int, stop: int, h0: int):
        """Precompute history + table-index columns for ``[start, stop)``.

        ``h0`` is the live history value at position ``start``.  Returns
        ``(col_f, col_g, col_b, col_c, col_j, col_pbm)`` as plain python
        lists aligned to *absolute* block positions (entries below
        ``start`` are zero padding); ``col_f`` has one extra trailing
        entry — the history value *after* the last staged branch — so the
        consumer can sync the live register at any stop position.
        ``col_pbm`` is None when no per-branch MRT is attached.

        ``col_f[i]`` is exact as long as every conditional branch in
        ``[start, i)`` was *correctly* predicted (its speculative push
        equals its outcome bit); the fused loop re-stages from the live
        register after any misprediction episode, which restores the
        invariant for the remaining positions.  The JRS enhanced-index
        XOR depends on the *predicted* direction, so it is applied
        scalar by the consuming loop.
        """
        m = stop - start
        pad = [0] * start
        has_pbm = self._p_mask is not None
        if m <= 0:
            return (pad + [h0], list(pad), list(pad), list(pad), list(pad),
                    list(pad) if has_pbm else None)
        kinds = block.kind
        cond_kind = self._cond_kind
        cond = _np.fromiter((kinds[j] is cond_kind
                             for j in range(start, stop)),
                            dtype=bool, count=m)
        taken = _np.fromiter(block.taken[start:stop], dtype=_np.uint64,
                             count=m)
        # counts[i] = number of conditional branches in [start, start+i):
        # only those push a history bit.
        counts = _np.empty(m + 1, dtype=_np.int64)
        counts[0] = 0
        _np.cumsum(cond, dtype=_np.int64, out=counts[1:])
        total_cond = int(counts[m])
        # contrib[c] = the low min(c, width) history bits contributed by
        # the first c conditional outcomes (newest outcome in bit 0).
        contrib = _np.zeros(total_cond + 1, dtype=_np.uint64)
        if total_cond:
            outcomes = taken[cond]
            contrib[1:] = _np.convolve(outcomes, self._kernel)[:total_cond]
        shifts = _np.minimum(counts, self._width).astype(_np.uint64)
        f = ((_np.uint64(h0) << shifts) + contrib[counts]) & self._hist_mask
        pcs = _np.fromiter(block.pc[start:stop], dtype=_np.uint64, count=m)
        pc_bits = pcs >> _np.uint64(2)
        fm = f[:m]
        gidx = (pc_bits ^ (fm & self._g_hmask)) & self._g_mask
        bidx = pc_bits & self._b_mask
        cidx = (pc_bits ^ (fm & self._c_hmask)) & self._c_mask
        jidx = (pc_bits ^ (fm & self._j_hmask)) & self._j_mask
        col_f = pad + f.tolist()
        col_g = pad + gidx.tolist()
        col_b = pad + bidx.tolist()
        col_c = pad + cidx.tolist()
        col_j = pad + jidx.tolist()
        if has_pbm:
            pidx = (pc_bits ^ (fm & self._p_hmask)) & self._p_mask
            col_pbm = pad + pidx.tolist()
        else:
            col_pbm = None
        return col_f, col_g, col_b, col_c, col_j, col_pbm


def _compile_method(name: str, source: str, tag: str):
    """Compile one generated method; register the source for tracebacks."""
    filename = f"<repro.backends.vec:{name}:{tag}>"
    namespace: dict = {}
    exec(compile(source, filename, "exec"), globals(), namespace)
    linecache.cache[filename] = (len(source), None,
                                 source.splitlines(True), filename)
    return namespace[name]


# --------------------------------------------------------------------- #
# Fused-loop codegen.
#
# Like the trace backend's templates, the hot loops are assembled from
# module-level source fragments and compiled once per predictor-stack
# shape (which built-in path confidence predictors are attached, and
# whether any cycle-periodic work exists).  Every fragment is written at
# zero indentation and placed with the trace module's ``_indent``.
#
# Fragment vocabulary: ``record``/``entry`` (the BranchRecord being
# fetched / resolved), ``mdc`` (its JRS value), ``i`` (block position,
# good path only), ``pc_bits``/``h`` (wrong-path scalar index inputs),
# plus the deferred counters declared by the setup fragments.  Deferred
# counters are purely additive statistics nothing reads mid-run; every
# value an observer can read at a delivery point (path confidence
# registers, the low-confidence count, the MRT counters and encoded
# probabilities) is kept live.
# --------------------------------------------------------------------- #

_PROLOGUE = '''\
engine = self.fetch_engine
stats = self.stats
window = self._window
observers = self.observers
has_observers = bool(observers)
events = self._events
path_confidence = engine.path_confidence
resolve_window = self.resolve_window
kind_conditional = BranchKind.CONDITIONAL
frontend = engine.frontend
confidence = engine.confidence
state = engine.state_engine
history = state._history
hist_mask = history.mask
btb = state._btb
btb_sets = btb._sets
btb_set_mask = btb._set_mask
btb_ways = btb.ways
btb_set_cls = _BTBSet
gshare_table = state._gshare_table
gshare_threshold = state._gshare_threshold
gshare_max = state._gshare_max
bimodal_table = state._bimodal_table
bimodal_threshold = state._bimodal_threshold
bimodal_max = state._bimodal_max
chooser = state._chooser
jrs_table = state._jrs_table
jrs_mask_v = state._jrs_mask
jrs_max = state._jrs_max
jrs_shift = state._jrs_enhanced_shift
jrs_enh_bit = (1 << jrs_shift) if jrs_shift >= 0 else 0
record_cls = BranchRecord
record_new = BranchRecord.__new__
thread_id = engine.generator.thread_id
eng_branches = 0
eng_cond = 0
fe_total = 0
fe_cond = 0
fe_misp = 0
fe_cond_misp = 0
jrs_lookups = 0
jrs_updates = 0
btb_lookups = 0
btb_hits = 0
btb_evictions = 0
'''

#: Scalar index masks, needed only by the wrong-path episode (the good
#: path reads its indices from the precomputed columns).
_REPLAY_MASKS = '''\
gshare_hmask = state._gshare_hist_mask
gshare_mask_v = state._gshare_mask
bimodal_mask_v = state._bimodal_mask
chooser_hmask = state._chooser_hist_mask
chooser_mask_v = state._chooser_mask
jrs_hmask = state._jrs_hist_mask
'''

_PBM_MASKS = '''\
pbm_hmask = pbm._history_mask
pbm_mask_v = pbm._mask
'''

# ----- per-member setup / fetch / resolve / squash / sync fragments --- #

_PACO_SETUP = '''\
paco = self._paco
mrt = paco.mrt
mrt_counters = mrt.counters
mrt_encoded = mrt.encoded_probabilities
paco_fetched = 0
paco_resolved = 0
paco_squashed = 0
paco_outstanding = 0
mrt_samples = 0
'''

_PACO_SETUP_CYCLE = '''\
mrt_period = mrt.relog_period_cycles
mrt_last = mrt._last_relog_cycle
'''

_STATIC_SETUP = '''\
smrt = self._static
smrt_encoded = smrt.encoded_probabilities
smrt_outstanding = 0
'''

_PBM_SETUP = '''\
pbm = self._pbm
pbm_correct = pbm._correct
pbm_total = pbm._total
pbm_memo = self._pbm_memo
pbm_encode = pbm._encoded_for
pbm_outstanding = 0
'''

_TC_SETUP = '''\
tc = self._tc
tc_threshold = tc.threshold
tc_fetched = 0
tc_low = 0
tc_outstanding = 0
'''

_PROF_SETUP = '''\
prof = self._profiler
prof_correct = prof.correct
prof_mispredicted = prof.mispredicted
prof_num_max = prof.num_mdc_values - 1
'''

_PACO_FETCH = '''\
paco_fetched += 1
enc = mrt_encoded[mdc]
record.encoded_added = enc
paco.path_confidence_register += enc
paco_outstanding += 1
'''

_STATIC_FETCH = '''\
enc = smrt_encoded[mdc]
record.static_encoded = enc
smrt.path_confidence_register += enc
smrt_outstanding += 1
'''

# The per-branch MRT's encoded probability is a float log of the entry's
# (correct, total) counters; memoizing on that pair keeps the fused loop
# off the float/log path for the (dominant) repeated-counter lookups.
_PBM_FETCH_TAIL = '''\
pkey = (pbm_correct[pidx], pbm_total[pidx])
enc = pbm_memo.get(pkey)
if enc is None:
    enc = pbm_encode(pidx)
    pbm_memo[pkey] = enc
record.table_index = pidx
record.pbm_encoded = enc
pbm.path_confidence_register += enc
pbm_outstanding += 1
'''

_PBM_FETCH_GOOD = "pidx = col_pbm[i]\n" + _PBM_FETCH_TAIL
_PBM_FETCH_WP = ("pidx = (pc_bits ^ (h & pbm_hmask)) & pbm_mask_v\n"
                 + _PBM_FETCH_TAIL)

_TC_FETCH = '''\
tc_fetched += 1
tc_outstanding += 1
counted = mdc < tc_threshold
record.counted = counted
if counted:
    tc_low += 1
    tc._low_confidence_outstanding += 1
'''

_PROF_FETCH = '''\
record.profile_bucket = mdc if mdc < prof_num_max else prof_num_max
'''

# Resolve fragments run only for *good-path* records, which are never
# mispredicted in the fused drains (a mispredicted good-path branch
# triggers an episode instead of entering the window), so the MRT record
# is always was_correct=True and the profiler always counts correct.
_PACO_RESOLVE = '''\
paco_resolved += 1
counter = mrt_counters[entry.mdc_value]
cc = counter.correct
if cc >= counter._correct_max:
    counter.correct = (cc >> 1) + 1
    counter.mispredicted >>= 1
else:
    counter.correct = cc + 1
mrt_samples += 1
enc = entry.encoded_added
if enc is not None:
    entry.encoded_added = None
    reg = paco.path_confidence_register - enc
    paco.path_confidence_register = reg if reg > 0 else 0
    paco_outstanding -= 1
'''

_STATIC_REMOVE = '''\
enc = entry.static_encoded
if enc is not None:
    entry.static_encoded = None
    reg = smrt.path_confidence_register - enc
    smrt.path_confidence_register = reg if reg > 0 else 0
    smrt_outstanding -= 1
'''

_PBM_REMOVE = '''\
enc = entry.pbm_encoded
if enc is not None:
    entry.pbm_encoded = None
    reg = pbm.path_confidence_register - enc
    pbm.path_confidence_register = reg if reg > 0 else 0
    pbm_outstanding -= 1
'''

_PBM_RESOLVE = '''\
pidx = entry.table_index
pbm_total[pidx] += 1
pbm_correct[pidx] += 1
''' + _PBM_REMOVE

_TC_REMOVE = '''\
counted = entry.counted
if counted is not None:
    entry.counted = None
    tc_outstanding -= 1
    if counted:
        tc._low_confidence_outstanding -= 1
'''

_PROF_RESOLVE = '''\
bucket = entry.profile_bucket
if bucket is not None:
    entry.profile_bucket = None
    prof_correct[bucket] += 1
'''

_PACO_SQUASH = '''\
paco_squashed += 1
enc = entry.encoded_added
if enc is not None:
    entry.encoded_added = None
    reg = paco.path_confidence_register - enc
    paco.path_confidence_register = reg if reg > 0 else 0
    paco_outstanding -= 1
'''

_PROF_SQUASH = '''\
entry.profile_bucket = None
'''

_SYNC_BASE = '''\
engine.branches_fetched += eng_branches
engine.conditional_branches_fetched += eng_cond
frontend.total_predictions += fe_total
frontend.conditional_predictions += fe_cond
frontend.total_mispredictions += fe_misp
frontend.conditional_mispredictions += fe_cond_misp
confidence.lookups += jrs_lookups
confidence.updates += jrs_updates
btb.lookups += btb_lookups
btb.hits += btb_hits
btb.evictions += btb_evictions
eng_branches = 0
eng_cond = 0
fe_total = 0
fe_cond = 0
fe_misp = 0
fe_cond_misp = 0
jrs_lookups = 0
jrs_updates = 0
btb_lookups = 0
btb_hits = 0
btb_evictions = 0
'''

_PACO_SYNC = '''\
paco.fetched_branches += paco_fetched
paco.resolved_branches += paco_resolved
paco.squashed_branches += paco_squashed
paco._outstanding += paco_outstanding
mrt.samples_recorded += mrt_samples
paco_fetched = 0
paco_resolved = 0
paco_squashed = 0
paco_outstanding = 0
mrt_samples = 0
'''

_STATIC_SYNC = '''\
smrt._outstanding += smrt_outstanding
smrt_outstanding = 0
'''

_PBM_SYNC = '''\
pbm._outstanding += pbm_outstanding
pbm_outstanding = 0
'''

_TC_SYNC = '''\
tc.fetched_branches += tc_fetched
tc.low_confidence_branches += tc_low
tc._outstanding += tc_outstanding
tc_fetched = 0
tc_low = 0
tc_outstanding = 0
'''


# ----- shared drain / training blocks --------------------------------- #

#: Conditional-branch training on a good-path record (never mispredicted
#: in the fused drains): the inlined body of
#: ``PredictorStateEngine.resolve_record`` minus the repair/reset paths
#: that a misprediction would take.  Uses ``entry`` and ``actual``.
_TRAIN_COND = '''\
gshare_correct = entry.gshare_taken == actual
if gshare_correct != (entry.bimodal_taken == actual):
    index = entry.chooser_index
    value = chooser[index]
    if gshare_correct:
        if value < 3:
            chooser[index] = value + 1
    elif value > 0:
        chooser[index] = value - 1
index = entry.gshare_index
value = gshare_table[index]
if actual:
    if value < gshare_max:
        gshare_table[index] = value + 1
elif value > 0:
    gshare_table[index] = value - 1
index = entry.bimodal_index
value = bimodal_table[index]
if actual:
    if value < bimodal_max:
        bimodal_table[index] = value + 1
elif value > 0:
    bimodal_table[index] = value - 1
if actual:
    # btb.update inlined (one call per retired taken conditional).
    tag = entry.pc >> 2
    bset = btb_sets[tag & btb_set_mask]
    if bset is None:
        bset = btb_set_cls(btb_ways)
        btb_sets[tag & btb_set_mask] = bset
    bentries = bset.entries
    for position, way in enumerate(bentries):
        if way[0] == tag:
            way[1] = entry.out_target
            if position:
                bentries.insert(0, bentries.pop(position))
            break
    else:
        if len(bentries) >= btb_ways:
            bentries.pop()
            btb_evictions += 1
        bentries.insert(0, [tag, entry.out_target])
jrs_updates += 1
index = entry.mdc_index
value = jrs_table[index]
if value < jrs_max:
    jrs_table[index] = value + 1
'''


def _good_drain(resolve_members: str, has_paco: bool = False) -> str:
    """The good-path drain body (zero indent).

    Simplified relative to the trace backend's general drain by two
    window invariants that hold throughout the fused good-path loop: the
    window contains only positive gap runs (wrong-path tails are fully
    popped by ``_finish_wrongpath``) and only never-mispredicted
    good-path records (a mispredicted good-path branch takes the episode
    path instead of entering the window), so the negative-gap arm, the
    mispredict-retire counters and the ``run_goodpath`` recomputation
    all drop out.
    """
    return '''\
entry = window[0]
if type(entry) is int:
    take = entry if entry <= excess else excess
    good_executed += take
    retired += take
    run_execute += take
    if take < entry:
        window[0] = entry - take
    else:
        window.popleft()
    excess -= take
    inflight -= take
else:
    window.popleft()
    inflight -= 1
    excess -= 1
    if has_observers:
''' + _indent(_runs_delivery("entry.path_token is not None", has_paco), 2) \
    + '''\
    run_fetch = 0
    run_execute = 0
    if entry.is_conditional:
        entry.resolved = True
        actual = entry.out_taken
''' + _indent(_TRAIN_COND, 2) + _indent(resolve_members, 2) + '''\
        cond_retired += 1
    else:
        engine.resolve_record(entry)
    good_executed += 1
    retired += 1
    branches_retired += 1
    run_execute += 1
'''


def _episode_drain(resolve_members: str, squash_members: str,
                   has_paco: bool = False) -> str:
    """The wrong-path-episode drain body (zero indent).

    The general form: gap runs can be positive (pre-trigger good-path
    slots) or negative, and record entries can be good-path (resolve and
    train) or wrong-path (squash; a wrong-path mispredict repairs the
    *deferred* history local ``h``, exactly the live-register repair the
    scalar engine performs).  ``run_goodpath`` stays False for the whole
    episode, and good-path records are never mispredicted (window
    invariant), so those recomputations drop out here too.
    """
    return '''\
entry = window[0]
if type(entry) is int:
    if entry > 0:
        take = entry if entry <= excess else excess
        good_executed += take
        retired += take
    else:
        take = -entry if -entry <= excess else excess
        bad_executed += take
    run_execute += take
    if take < (entry if entry > 0 else -entry):
        window[0] = entry - take if entry > 0 else entry + take
    else:
        window.popleft()
    excess -= take
    inflight -= take
else:
    window.popleft()
    inflight -= 1
    excess -= 1
    if has_observers:
''' + _indent(_runs_delivery("entry.path_token is not None", has_paco), 2) \
    + '''\
    run_fetch = 0
    run_execute = 0
    if entry.is_conditional:
        entry.resolved = True
        actual = entry.out_taken
        if entry.on_goodpath:
''' + _indent(_TRAIN_COND, 3) + _indent(resolve_members, 3) + '''\
        else:
            if entry.mispredicted:
                h = (((entry.history & hist_mask) << 1)
                     | (1 if actual else 0)) & hist_mask
''' + _indent(squash_members, 3) + '''\
    else:
        engine.resolve_record(entry)
    if entry.on_goodpath:
        good_executed += 1
        retired += 1
        branches_retired += 1
        if entry.is_conditional:
            cond_retired += 1
    else:
        bad_executed += 1
    run_execute += 1
'''


#: The per-branch cycle tick, specialized to the one cycle-periodic
#: machine the fused plan admits (PaCo's re-log pass): buffered events
#: always flush pre-tick exactly as the scalar tick does, but the
#: ``on_cycle`` *call* — a composite fan-out plus ``maybe_relog``'s own
#: period check, every branch — is guarded by the same period
#: comparison on hoisted locals, which is what makes the fused loop's
#: tick nearly free.  When the pass runs, it returns True by
#: construction, so the open run closes unconditionally.
_TICK = '''\
if has_observers and events:
    for observer in observers:
        observer.record_runs(events)
    del events[:]
if cycle - mrt_last >= mrt_period:
    path_confidence.on_cycle(cycle)
    if has_observers:
        if run_fetch:
            events.extend(("fetch", run_goodpath, cycle, run_fetch))
        if run_execute:
            events.extend(("execute", run_goodpath, cycle, run_execute))
        if events:
            for observer in observers:
                observer.record_runs(events)
            del events[:]
    run_fetch = 0
    run_execute = 0
    mrt_last = mrt._last_relog_cycle
'''


# ----- inline observer delivery ---------------------------------------- #

#: Hoists for the inlined single-(PaCo, diagram) observer delivery.
#: ``self._fp_diag`` is resolved per block by ``_step_block``: the
#: reliability diagram when the attached observers are exactly one
#: :class:`MultiPredictorObserver` over the session's own PaCo instance
#: (the fig8/fig9 sweep shape), ``None`` otherwise.
_FP_HOISTS = '''\
fp_diag = self._fp_diag
fp_probs = self._fp_probs
if fp_diag is not None:
    fp_bins = fp_diag.bins
    fp_nb = fp_diag.num_bins
'''

#: The inlined delivery body, spliced over every
#: ``for observer in observers: observer.record_runs(events)`` site by
#: :func:`_inline_deliveries`.  The fast arm replays the exact arithmetic
#: of ``MultiPredictorObserver.record_runs`` over one ``(PaCo, diagram)``
#: pair — ``ReliabilityDiagram.record`` for single-run batches,
#: the shared fold plus ``record_folded`` for longer ones — term by term
#: and in the same order, so the diagram floats stay bit-identical to
#: the generic path the scalar backend takes.  The probability memo is
#: keyed on the raw register (PaCo's probability is a pure function of
#: it, via the memoized decode), replacing two attribute calls per
#: delivery with one dict probe.
_FAST_DELIVER = '''\
if fp_diag is None:
    for observer in observers:
        observer.record_runs(events)
else:
    fp_reg = paco.path_confidence_register
    fp_prob = fp_probs.get(fp_reg)
    if fp_prob is None:
        if len(fp_probs) > (1 << 20):  # unbounded-growth guard
            fp_probs.clear()
        fp_prob = paco.goodpath_probability()
        fp_probs[fp_reg] = fp_prob
    fp_bi = int(fp_prob * fp_nb)
    if fp_bi >= fp_nb:
        fp_bi = fp_nb - 1
    fp_bucket = fp_bins[fp_bi]
    if len(events) == 4:
        fp_w = events[3]
        fp_bucket.predicted_sum += fp_prob * fp_w
        fp_bucket.instances += fp_w
        fp_diag.total_instances += fp_w
        if events[1]:
            fp_bucket.goodpath_instances += fp_w
            fp_diag.total_goodpath += fp_w
    else:
        fp_inst = 0
        fp_good = 0
        fp_ps = fp_bucket.predicted_sum
        for fp_i in range(3, len(events), 4):
            fp_w = events[fp_i]
            fp_inst += fp_w
            fp_ps += fp_prob * fp_w
            if events[fp_i - 2]:
                fp_good += fp_w
        fp_bucket.predicted_sum = fp_ps
        fp_bucket.instances += fp_inst
        fp_bucket.goodpath_instances += fp_good
        fp_diag.total_goodpath += fp_good
        fp_diag.total_instances += fp_inst
'''


#: The pure-local fast arm of :func:`_runs_delivery`: fold the 1-2 open
#: runs straight into the diagram without materializing event tuples.
#: Term order matches the tuple path exactly — the fetch run's
#: ``predicted_sum`` contribution before the execute run's, the integer
#: totals added once per delivery — so the floats stay bit-identical.
_LOCAL_DELIVER = '''\
fp_reg = paco.path_confidence_register
fp_prob = fp_probs.get(fp_reg)
if fp_prob is None:
    if len(fp_probs) > (1 << 20):  # unbounded-growth guard
        fp_probs.clear()
    fp_prob = paco.goodpath_probability()
    fp_probs[fp_reg] = fp_prob
fp_bi = int(fp_prob * fp_nb)
if fp_bi >= fp_nb:
    fp_bi = fp_nb - 1
fp_bucket = fp_bins[fp_bi]
fp_w = run_fetch + run_execute
if run_fetch:
    fp_bucket.predicted_sum += fp_prob * run_fetch
if run_execute:
    fp_bucket.predicted_sum += fp_prob * run_execute
fp_bucket.instances += fp_w
fp_diag.total_instances += fp_w
if run_goodpath:
    fp_bucket.goodpath_instances += fp_w
    fp_diag.total_goodpath += fp_w
'''


def _runs_delivery(cond: str, has_paco: bool) -> str:
    """One site's close-the-open-runs + deliver block (zero indent).

    ``cond`` is the site's delivery condition ("" = deliver whenever
    events are pending).  The generic shape buffers the open runs as
    event tuples and delivers the batch; in paco builds, when delivery
    is due and nothing is already buffered, the open runs fold straight
    into the diagram without touching the events list at all (the
    post-pass :func:`_inline_deliveries` still rewrites the generic
    arm's delivery for the buffered case).
    """
    extend = '''\
if run_fetch:
    events.extend(("fetch", run_goodpath, cycle, run_fetch))
if run_execute:
    events.extend(("execute", run_goodpath, cycle, run_execute))
'''
    deliver_head = f"if events and {cond}:" if cond else "if events:"
    generic = (extend + deliver_head + '''
    for observer in observers:
        observer.record_runs(events)
    del events[:]
''')
    if not has_paco:
        return generic
    fast_head = ("if fp_diag is not None and not events"
                 + (f" and {cond}" if cond else "") + ":\n")
    return (fast_head
            + _indent("if run_fetch or run_execute:\n", 1)
            + _indent(_LOCAL_DELIVER, 2)
            + "else:\n"
            + _indent(generic, 1))


def _inline_deliveries(source: str) -> str:
    """Splice :data:`_FAST_DELIVER` over every generic delivery site.

    Every observer delivery in the generated sources is the literal
    three-line ``for observer in observers: observer.record_runs(events)``
    / ``del events[:]`` sequence; this rewrites each occurrence (at its
    own indentation) into the fast-path branch, keeping the trailing
    ``del`` shared by both arms.
    """
    lines = source.split("\n")
    out: list = []
    i = 0
    replaced = 0
    while i < len(lines):
        line = lines[i]
        stripped = line.lstrip()
        if (stripped == "for observer in observers:"
                and i + 2 < len(lines)
                and lines[i + 1].lstrip() == "observer.record_runs(events)"
                and lines[i + 2].lstrip() == "del events[:]"):
            indent = line[:len(line) - len(stripped)]
            for fast_line in _FAST_DELIVER.rstrip("\n").split("\n"):
                out.append(indent + fast_line if fast_line else fast_line)
            out.append(lines[i + 2])
            replaced += 1
            i += 3
            continue
        out.append(line)
        i += 1
    if not replaced:  # a fragment edit broke the pattern — fail loudly
        raise AssertionError("no observer delivery sites found to inline")
    return "\n".join(out)


# ----- inline predict fragments ---------------------------------------- #

#: Good-path conditional predict, reading every table index from the
#: precomputed columns (the inlined body of ``predict_columns`` +
#: ``predict_from_block`` for the conditional/good-path case).  The
#: speculative history push is deferred — ``col_f`` already encodes it
#: for every later position — and materialized into the live register
#: only when a misprediction hands control to the scalar episode
#: machinery.  ``%(fetch_members)s`` receives the path confidence
#: fan-out; ``%(episode)s`` the sync/replay/re-stage block.
_PREDICT_GOOD = '''\
hist = col_f[i]
pc = block_pc[i]
gshare_taken = gshare_table[col_g[i]] >= gshare_threshold
bimodal_taken = bimodal_table[col_b[i]] >= bimodal_threshold
chose_gshare = chooser[col_c[i]] >= 2
taken = gshare_taken if chose_gshare else bimodal_taken
btb_lookups += 1
tag = pc >> 2
bset = btb_sets[tag & btb_set_mask]
btb_target = None
if bset is not None:
    bentries = bset.entries
    for position, way in enumerate(bentries):
        if way[0] == tag:
            if position:
                bentries.insert(0, bentries.pop(position))
            btb_hits += 1
            btb_target = way[1]
            break
%(record_init)srecord.target = btb_target if taken else None
record.btb_hit = btb_target is not None
record.gshare_taken = gshare_taken
record.gshare_index = col_g[i]
record.bimodal_taken = bimodal_taken
record.bimodal_index = col_b[i]
record.chooser_index = col_c[i]
record.chose_gshare = chose_gshare
ji = col_j[i]
if taken and jrs_enh_bit:
    ji = (ji ^ jrs_enh_bit) & jrs_mask_v
jrs_lookups += 1
record.mdc_index = ji
mdc = jrs_table[ji]
record.mdc_value = mdc
eng_branches += 1
eng_cond += 1
fe_total += 1
fe_cond += 1
actual = block_taken[i]
mispredicted = taken != actual
record.mispredicted = mispredicted
if mispredicted:
    fe_misp += 1
    fe_cond_misp += 1
record.path_token = record
%(fetch_members)srecord.kind = kind_conditional
record.out_taken = actual
record.out_target = block_target[i]
record.on_goodpath = True
record.seq = seq
i += 1
good_fetched += 1
cycle += 1
run_fetch += 1
if mispredicted:
    # The wrong-path switch (predict_from_block, inlined), plus the
    # speculative push the scalar predict made unconditionally: the
    # episode machinery reads the live register.
    engine.on_wrong_path = True
    engine._pending_mispredict_seq = seq
    history.value = ((hist << 1) | (1 if taken else 0)) & hist_mask
%(episode)srun_goodpath = True
window.append(record)
inflight += 1
'''

#: Wrong-path conditional predict inside the fused episode: scalar index
#: arithmetic from the deferred history local ``h`` (bit-identical to the
#: live-register reads the scalar episode performs).
_PREDICT_WP = '''\
pc = wp_pc[g]
pc_bits = pc >> 2
gidx = (pc_bits ^ (h & gshare_hmask)) & gshare_mask_v
gshare_taken = gshare_table[gidx] >= gshare_threshold
bidx = pc_bits & bimodal_mask_v
bimodal_taken = bimodal_table[bidx] >= bimodal_threshold
cidx = (pc_bits ^ (h & chooser_hmask)) & chooser_mask_v
chose_gshare = chooser[cidx] >= 2
taken = gshare_taken if chose_gshare else bimodal_taken
btb_lookups += 1
bset = btb_sets[pc_bits & btb_set_mask]
btb_target = None
if bset is not None:
    bentries = bset.entries
    for position, way in enumerate(bentries):
        if way[0] == pc_bits:
            if position:
                bentries.insert(0, bentries.pop(position))
            btb_hits += 1
            btb_target = way[1]
            break
%(record_init)srecord.target = btb_target if taken else None
record.btb_hit = btb_target is not None
record.gshare_taken = gshare_taken
record.gshare_index = gidx
record.bimodal_taken = bimodal_taken
record.bimodal_index = bidx
record.chooser_index = cidx
record.chose_gshare = chose_gshare
ji = (pc_bits ^ (h & jrs_hmask)) & jrs_mask_v
if taken and jrs_enh_bit:
    ji = (ji ^ jrs_enh_bit) & jrs_mask_v
jrs_lookups += 1
record.mdc_index = ji
mdc = jrs_table[ji]
record.mdc_value = mdc
eng_branches += 1
eng_cond += 1
fe_total += 1
fe_cond += 1
actual = wp_taken[g]
mispredicted = taken != actual
record.mispredicted = mispredicted
if mispredicted:
    fe_misp += 1
    fe_cond_misp += 1
record.path_token = record
%(fetch_members)srecord.kind = kind_conditional
record.out_taken = actual
record.out_target = wp_target[g]
record.on_goodpath = False
record.seq = seq
h = ((h << 1) | (1 if taken else 0)) & hist_mask
bad_fetched += 1
cycle += 1
run_fetch += 1
window.append(record)
inflight += 1
'''


def _record_init(history_expr: str, sid_expr: str, has_paco: bool,
                 has_static: bool, has_pbm: bool, has_tc: bool,
                 has_prof: bool) -> str:
    """Inline ``BranchRecord`` construction: ``__new__`` plus exactly the
    slot writes the surrounding predict fragment does not perform itself.

    ``BranchRecord.__init__`` stores 24 defaults only for the predict
    fragment to overwrite half of them; allocating with ``__new__`` and
    writing each live slot once drops a call plus the redundant stores
    from every fetched conditional.  Slots owned by attached path
    confidence predictors are written by their fetch members, so the
    defaults emitted here cover only the detached ones — every slot
    ``__init__`` would have initialized is still written exactly once (a
    missed slot would raise ``AttributeError`` loudly downstream).
    """
    lines = [
        "record = record_new(record_cls)",
        "record.pc = pc",
        "record.predicted_taken = taken",
        "record.taken = taken",
        f"record.history = {history_expr}",
        f"record.static_branch_id = {sid_expr}",
        "record.thread_id = thread_id",
        "record.resolved = False",
        "record.is_conditional = True",
    ]
    if not has_paco:
        lines.append("record.encoded_added = None")
    if not has_static:
        lines.append("record.static_encoded = None")
    if not has_pbm:
        lines.append("record.table_index = 0")
        lines.append("record.pbm_encoded = None")
    if not has_tc:
        lines.append("record.counted = None")
    if not has_prof:
        lines.append("record.profile_bucket = None")
    return "\n".join(lines) + "\n"


def _build_step_source(has_paco: bool, has_static: bool, has_pbm: bool,
                       has_tc: bool, has_prof: bool, cycle_work: bool) -> str:
    """Assemble the fused ``_vstep_block`` source for one stack shape."""
    setup = ""
    fetch_members = ""
    resolve_members = ""
    sync = _SYNC_BASE
    if has_paco:
        setup += _PACO_SETUP
        if cycle_work:
            setup += _PACO_SETUP_CYCLE
        fetch_members += _PACO_FETCH
        resolve_members += _PACO_RESOLVE
        sync += _PACO_SYNC
    if has_static:
        setup += _STATIC_SETUP
        fetch_members += _STATIC_FETCH
        resolve_members += _STATIC_REMOVE
        sync += _STATIC_SYNC
    if has_pbm:
        setup += _PBM_SETUP + _PBM_MASKS
        fetch_members += _PBM_FETCH_GOOD
        resolve_members += _PBM_RESOLVE
        sync += _PBM_SYNC
    if has_tc:
        setup += _TC_SETUP
        fetch_members += _TC_FETCH
        resolve_members += _TC_REMOVE
        sync += _TC_SYNC
    if has_prof:
        setup += _PROF_SETUP
        fetch_members += _PROF_FETCH
        resolve_members += _PROF_RESOLVE

    stat_sync = '''\
stats.goodpath_fetched += good_fetched
engine.goodpath_fetched += good_fetched
stats.goodpath_executed += good_executed
stats.badpath_executed += bad_executed
stats.retired_instructions += retired
stats.branches_retired += branches_retired
stats.conditional_branches_retired += cond_retired
'''
    # Take the (rare) misprediction episode through the fused episode
    # method: materialize every deferred delta, replay, then — only when
    # the repaired history diverged from the staged F column — splice the
    # short divergent span back in.  A mispredicted conditional trigger
    # repairs history to ``(record.history << 1) | actual``, which is
    # exactly what staging (actual outcomes) computed, so the staged tail
    # stays valid; only non-conditional triggers (whose resolve never
    # repairs history, leaving the wrong-path speculative bits live)
    # actually diverge, and their divergence shifts out of the history
    # window after ``history_bits`` conditional outcomes.  The splice
    # mutates the hoisted column lists in place, so no reloads.
    restage = '''\
if history.value != col_f[i]:
    self._vstage_span(i)
'''
    if has_paco and cycle_work:
        restage += "mrt_last = mrt._last_relog_cycle\n"
    episode = ('''\
run_goodpath = False
self._next_seq = next_seq
self._cycle = cycle
self._inflight = inflight
self._run_fetch = run_fetch
self._run_execute = run_execute
self._run_goodpath = run_goodpath
''' + stat_sync + '''\
good_fetched = good_executed = bad_executed = retired = 0
branches_retired = cond_retired = 0
''' + sync + '''\
self._vreplay_wrongpath(record)
next_seq = self._next_seq
cycle = self._cycle
inflight = self._inflight
run_fetch = self._run_fetch
run_execute = self._run_execute
run_goodpath = self._run_goodpath
retired_base = stats.retired_instructions
''' + restage + '''\
took_episode = True
break
''')

    predict_good = _PREDICT_GOOD % {
        "fetch_members": fetch_members,
        "episode": _indent(episode, 1),
        "record_init": _record_init("hist", "block_sid[i]", has_paco,
                                    has_static, has_pbm, has_tc, has_prof),
    }
    hoists = '''\
block = self._block
block_pc = block.pc
block_kinds = block.kind
block_taken = block.taken
block_target = block.target
block_sid = block.static_branch_id
col_f = self._col_f
col_g = self._col_g
col_b = self._col_b
col_c = self._col_c
col_j = self._col_j
'''
    if has_pbm:
        hoists += "col_pbm = self._col_pbm\n"
    if has_paco:
        hoists += _FP_HOISTS
    hoists += '''\
gaps = self._gap_buf
gap_pos = self._gap_pos
i = self._branch_pos
stop = self._branch_len
next_seq = self._next_seq
cycle = self._cycle
inflight = self._inflight
run_fetch = self._run_fetch
run_execute = self._run_execute
run_goodpath = self._run_goodpath
retired_base = stats.retired_instructions
good_fetched = 0
good_executed = 0
bad_executed = 0
retired = 0
branches_retired = 0
cond_retired = 0
'''

    source = ('''\
def _vstep_block(self, max_instructions, max_cycles):
    """Fused-predictor twin of ``TraceSession._step_block``.

    Same control skeleton (gap accounting, the double-drain loop, the
    per-branch tick), with conditional predict/resolve inlined against
    the precomputed columns and the simplified good-path drain (see
    ``_good_drain``).  Mispredicted good-path branches never retire
    here — they hand off to the episode immediately — so the
    mispredict-retired stat deltas are identically zero and drop out
    of the sync lists.
    """
'''
              + _indent(_PROLOGUE + setup + hoists, 1) + '''
    while i < stop:
        if retired_base + retired >= max_instructions or cycle >= max_cycles:
            break
        gap = gaps[gap_pos]
        gap_pos += 1
        if gap:
            good_fetched += gap
            cycle += gap
            run_fetch += gap
            if window and type(window[-1]) is int and window[-1] > 0:
                window[-1] += gap
            else:
                window.append(gap)
            inflight += gap
        took_episode = False
        predicted = False
        while True:
            if inflight > resolve_window:
                excess = inflight - resolve_window
                while excess > 0:
'''
              + _indent(_good_drain(resolve_members, has_paco), 5) + '''\
            if predicted:
                break
            predicted = True
            kind = block_kinds[i]
            if has_observers:
''' + _indent(_runs_delivery("kind is kind_conditional", has_paco), 4) + '''\
            run_fetch = 0
            run_execute = 0
            seq = next_seq
            next_seq += 1
            if kind is kind_conditional:
'''
              + _indent(predict_good, 4) + '''\
            else:
                # Non-conditional branches predict through the live
                # scalar engine (RAS / indirect-target state): restore
                # the deferred history register first.
                history.value = col_f[i]
                record = engine.predict_from_block(block, i, seq)
                i += 1
                good_fetched += 1
                cycle += 1
                run_fetch += 1
                if engine.on_wrong_path:
'''
              + _indent(episode, 5) + '''\
                run_goodpath = True
                window.append(record)
                inflight += 1
        if took_episode:
            continue
'''
              + (_indent(_TICK, 2) if cycle_work else "") + '''
    self._branch_pos = i
    self._gap_pos = gap_pos
    self._next_seq = next_seq
    self._cycle = cycle
    self._inflight = inflight
    self._run_fetch = run_fetch
    self._run_execute = run_execute
    self._run_goodpath = run_goodpath
    history.value = col_f[i]
'''
              + _indent(stat_sync + sync, 1))
    if has_paco:
        source = _inline_deliveries(source)
    return source


def _build_replay_source(has_paco: bool, has_static: bool, has_pbm: bool,
                         has_tc: bool, has_prof: bool,
                         cycle_work: bool) -> str:
    """Assemble the fused ``_vreplay_wrongpath`` source for one shape."""
    setup = _REPLAY_MASKS
    fetch_members = ""
    resolve_members = ""
    squash_members = ""
    sync = _SYNC_BASE
    if has_paco:
        setup += _PACO_SETUP
        if cycle_work:
            setup += _PACO_SETUP_CYCLE
        fetch_members += _PACO_FETCH
        resolve_members += _PACO_RESOLVE
        squash_members += _PACO_SQUASH
        sync += _PACO_SYNC
    if has_static:
        setup += _STATIC_SETUP
        fetch_members += _STATIC_FETCH
        resolve_members += _STATIC_REMOVE
        squash_members += _STATIC_REMOVE
        sync += _STATIC_SYNC
    if has_pbm:
        setup += _PBM_SETUP + _PBM_MASKS
        fetch_members += _PBM_FETCH_WP
        resolve_members += _PBM_RESOLVE
        squash_members += _PBM_REMOVE
        sync += _PBM_SYNC
    if has_tc:
        setup += _TC_SETUP
        fetch_members += _TC_FETCH
        resolve_members += _TC_REMOVE
        squash_members += _TC_REMOVE
        sync += _TC_SYNC
    if has_prof:
        setup += _PROF_SETUP
        fetch_members += _PROF_FETCH
        resolve_members += _PROF_RESOLVE
        squash_members += _PROF_SQUASH
    if has_paco:
        setup += _FP_HOISTS

    predict_wp = _PREDICT_WP % {
        "fetch_members": fetch_members,
        "record_init": _record_init("h", "wp_sid[g]", has_paco, has_static,
                                    has_pbm, has_tc, has_prof),
    }

    source = ('''\
def _vreplay_wrongpath(self, trigger):
    """Fused-predictor twin of ``TraceSession._replay_wrongpath``.

    Same episode skeleton, with the wrong-path predicts inlined and the
    history register deferred to the local ``h`` for the episode's
    extent (wrong-path mispredict repairs write ``h``, exactly the
    live-register repairs the scalar engine performs; the register is
    restored before ``_finish_wrongpath`` takes the scalar path).
    """
'''
              + _indent(_PROLOGUE + setup, 1) + '''\
    wp_gaps = self._wp_gap_buf
    n_gaps, n_branches = self._wp_gap_rng.geometric_episode(
        self._log_one_minus_p, wp_gaps, self.mispredict_window)
    wp_block = self._wp_episode_block
    if n_branches:
        engine.wrongpath_generator.next_branch_block(wp_block, n_branches)
    wp_pc = wp_block.pc
    wp_taken = wp_block.taken
    wp_target = wp_block.target
    wp_sid = wp_block.static_branch_id
    h = history.value
    next_seq = self._next_seq
    cycle = self._cycle
    inflight = self._inflight
    run_fetch = self._run_fetch
    run_execute = self._run_execute
    run_goodpath = self._run_goodpath
    bad_fetched = 0
    good_executed = 0
    bad_executed = 0
    retired = 0
    branches_retired = 0
    cond_retired = 0

    for g in range(n_gaps):
        gap = wp_gaps[g]
        if gap:
            bad_fetched += gap
            cycle += gap
            run_fetch += gap
            if window and type(window[-1]) is int and window[-1] < 0:
                window[-1] -= gap
            else:
                window.append(-gap)
            inflight += gap
        fetched_branch = False
        while True:
            if inflight > resolve_window:
                excess = inflight - resolve_window
                while excess > 0:
'''
              + _indent(_episode_drain(resolve_members, squash_members,
                                       has_paco), 5)
              + '''\
            if fetched_branch or g >= n_branches:
                break
            fetched_branch = True
            if has_observers:
''' + _indent(_runs_delivery("", has_paco), 4) + '''\
            run_fetch = 0
            run_execute = 0
            seq = next_seq
            next_seq += 1
'''
              + _indent(predict_wp, 3) + '''\
        if g >= n_branches:
            break
'''
              + (_indent(_TICK, 2) if cycle_work else "") + '''
    self._next_seq = next_seq
    self._cycle = cycle
    self._inflight = inflight
    self._run_fetch = run_fetch
    self._run_execute = run_execute
    self._run_goodpath = run_goodpath
    history.value = h
    stats.badpath_fetched += bad_fetched
    engine.badpath_fetched += bad_fetched
    stats.goodpath_executed += good_executed
    stats.badpath_executed += bad_executed
    stats.retired_instructions += retired
    stats.branches_retired += branches_retired
    stats.conditional_branches_retired += cond_retired
'''
              + _indent(sync, 1) + '''\
    self._finish_wrongpath(
        trigger, self.mispredict_window - self.config.frontend_depth)
''')
    if has_paco:
        source = _inline_deliveries(source)
    return source


_FUSED_CACHE: dict = {}


def _fused_methods(flags):
    """Compile (or fetch cached) fused step/replay methods for one shape."""
    methods = _FUSED_CACHE.get(flags)
    if methods is None:
        tag = "".join("1" if flag else "0" for flag in flags)
        methods = (
            _compile_method("_vstep_block", _build_step_source(*flags), tag),
            _compile_method("_vreplay_wrongpath",
                            _build_replay_source(*flags), tag),
        )
        _FUSED_CACHE[flags] = methods
    return methods


# --------------------------------------------------------------------- #
# The fused plan: which stacks the generated loops model exactly.
# --------------------------------------------------------------------- #

_MEMBER_KEYS = {
    PaCoPredictor: "paco",
    StaticMRTPredictor: "static",
    PerBranchMRTPredictor: "pbm",
    ThresholdAndCountPredictor: "tc",
    MDCProfiler: "profiler",
}


def _fused_plan(fetch_engine: FetchEngine):
    """Decide whether the fused loops model this engine's stack exactly.

    Returns the ``{key: predictor}`` member map when they do, or None to
    fall back to the scalar :class:`TraceSession` (which is always
    correct).  The checks are exact-type and exhaustive on purpose:
    anything the generated fragments were not written against — custom
    path confidence predictors, subclassed members, oracle tokens,
    JRS-less engines, member-triggered index-range errors the scalar
    path would raise, histories wider than the uint64 staging math
    supports — takes the scalar session, keeping bit-identity trivially.
    """
    if _np is None:
        return None
    confidence = fetch_engine.confidence
    if confidence is None:
        return None
    columns = fetch_engine.state_engine.columns
    if columns.jrs_table is None:
        return None
    if columns.history_bits > 32:
        return None
    path_confidence = fetch_engine.path_confidence
    members = {}
    if type(path_confidence) is CompositePathConfidence:
        if not path_confidence._shared_record_tokens:
            return None
        for predictor in path_confidence.predictors:
            key = _MEMBER_KEYS.get(type(predictor))
            if key is None or key in members:
                return None
            members[key] = predictor
        cycle_predictors = list(path_confidence._cycle_predictors)
    elif type(path_confidence) is PaCoPredictor:
        members["paco"] = path_confidence
        cycle_predictors = [path_confidence]
    elif type(path_confidence) is ThresholdAndCountPredictor:
        members["tc"] = path_confidence
        cycle_predictors = []
    else:
        return None
    paco = members.get("paco")
    # The specialized tick models exactly one cycle-periodic machine:
    # PaCo's re-log pass.  Any other cycle work (or a disagreement with
    # _has_cycle_work's conservative answer) falls back.
    if cycle_predictors != ([paco] if paco is not None else []):
        return None
    if _has_cycle_work(path_confidence) != (paco is not None):
        return None
    num_mdc = confidence.num_mdc_values
    if paco is not None and paco.mrt.num_buckets < num_mdc:
        return None
    static = members.get("static")
    if static is not None and static.num_mdc_values < num_mdc:
        return None
    return members


class VecTraceSession(TraceSession):
    """A trace replay with vectorized staging and fused predictor loops.

    Construction requires a *member map* from :func:`_fused_plan`; the
    session compiles (or reuses) the fused step/episode methods for that
    stack shape and keeps the staged index columns (``_col_*``) aligned
    with the live block buffer.  Every fallback path — phase boundaries,
    non-conditional predicts, the episode tail — runs the inherited
    scalar machinery on the same shared state.
    """

    def __init__(self, fetch_engine: FetchEngine, config: MachineConfig,
                 observers, resolve_window: int, mispredict_window: int,
                 members: dict, block_size: Optional[int] = None) -> None:
        super().__init__(fetch_engine, config, observers, resolve_window,
                         mispredict_window, block_size=block_size)
        #: The inlined-delivery target: the reliability diagram when the
        #: attached observers are exactly one MultiPredictorObserver over
        #: this session's PaCo (resolved per block by ``_step_block``),
        #: None otherwise (generic delivery).
        self._fp_diag = None
        #: register -> decoded probability memo for the inlined delivery.
        self._fp_probs: dict = {}
        self._paco = members.get("paco")
        self._static = members.get("static")
        self._pbm = members.get("pbm")
        self._tc = members.get("tc")
        self._profiler = members.get("profiler")
        #: Encoded-probability memo for the per-branch MRT, keyed by the
        #: entry's (correct, total) counters — the exact inputs of
        #: ``_encoded_for`` — so repeated lookups skip the float/log math.
        self._pbm_memo: dict = {}
        flags = (self._paco is not None, self._static is not None,
                 self._pbm is not None, self._tc is not None,
                 self._profiler is not None, self._cycle_work_possible)
        self._vstep, self._vreplay = _fused_methods(flags)
        self.vector_engine = VectorEngine(fetch_engine.state_engine.columns,
                                          self._pbm)
        self._col_f: list = [0]
        self._col_g: list = []
        self._col_b: list = []
        self._col_c: list = []
        self._col_j: list = []
        self._col_pbm = [] if self._pbm is not None else None

    def _vstage(self, start: int) -> None:
        """(Re-)stage the index columns for positions ``[start, len)``."""
        (self._col_f, self._col_g, self._col_b, self._col_c, self._col_j,
         self._col_pbm) = self.vector_engine.stage(
            self._block, start, self._branch_len,
            self.fetch_engine.state_engine.columns.history.value)

    def _vstage_span(self, start: int) -> None:
        """Splice the history-divergent span after an episode, in place.

        Called only when the live history differs from ``col_f[start]``
        (a non-conditional trigger left wrong-path speculative bits in
        the register).  The divergence is transient: once
        ``history_bits`` conditional outcomes have pushed, the stale bits
        have shifted out of the window and the staged tail — a pure
        function of the last ``history_bits`` outcomes — is exact again.
        So only the span up to reconvergence (or the block end) is
        recomputed, scalar: the span is at most a few dozen positions,
        where numpy's fixed per-call overhead would dominate the work.
        The hoisted column lists are mutated in place, so the fused
        loop's locals stay valid without reloading.
        """
        columns = self.fetch_engine.state_engine.columns
        h = columns.history.value
        hist_mask = columns.history_mask
        g_hmask = columns.gshare_history_mask
        g_mask = columns.gshare_mask
        b_mask = columns.bimodal_mask
        c_hmask = columns.chooser_history_mask
        c_mask = columns.chooser_mask
        j_hmask = columns.jrs_history_mask
        j_mask = columns.jrs_mask
        col_f = self._col_f
        col_g = self._col_g
        col_b = self._col_b
        col_c = self._col_c
        col_j = self._col_j
        col_pbm = self._col_pbm
        if col_pbm is not None:
            p_hmask = self._pbm._history_mask
            p_mask = self._pbm._mask
        block = self._block
        pcs = block.pc
        kinds = block.kind
        takens = block.taken
        cond_kind = self.vector_engine._cond_kind
        remaining = columns.history_bits
        stop = self._branch_len
        p = start
        while p < stop:
            col_f[p] = h
            pc_bits = pcs[p] >> 2
            col_g[p] = (pc_bits ^ (h & g_hmask)) & g_mask
            col_b[p] = pc_bits & b_mask
            col_c[p] = (pc_bits ^ (h & c_hmask)) & c_mask
            col_j[p] = (pc_bits ^ (h & j_hmask)) & j_mask
            if col_pbm is not None:
                col_pbm[p] = (pc_bits ^ (h & p_hmask)) & p_mask
            if kinds[p] is cond_kind:
                h = ((h << 1) | (1 if takens[p] else 0)) & hist_mask
                remaining -= 1
                if not remaining:
                    # Reconverged: col_f[p + 1] onward already equals the
                    # value staged from the pre-divergence history.
                    return
            p += 1
        col_f[stop] = h

    def _step_block(self, max_instructions: int, max_cycles: int) -> None:
        observers = self.observers
        fp_diag = None
        if len(observers) > 1:
            # Several observers share one fold per delivery.
            if type(self._events) is list:
                self._events = RunEventBatch(self._events)
        else:
            if type(self._events) is not list:
                self._events = list(self._events)
            if observers:
                observer = observers[0]
                if type(observer) is MultiPredictorObserver:
                    pairs = observer._pairs
                    if len(pairs) == 1 and pairs[0][0] is self._paco:
                        fp_diag = pairs[0][1]
        self._fp_diag = fp_diag
        if self._branch_pos >= self._branch_len:
            if not self._refill_block():
                self._step_boundary_branch()
                return
            self._vstage(0)
        self._vstep(self, max_instructions, max_cycles)

    def _vreplay_wrongpath(self, trigger: BranchRecord) -> None:
        self._vreplay(self, trigger)


class VecTraceBackend(SimulationBackend):
    """The ``trace-vec`` backend: vectorized trace replay (needs numpy).

    Identical contract, parameters and defaults to :class:`TraceBackend`
    — only the execution strategy differs, and only for predictor stacks
    the fused plan models (see :func:`_fused_plan`); everything else
    builds the scalar sessions, so ``trace-vec`` is *always* available
    as a drop-in for ``trace`` once numpy is installed.
    """

    name = "trace-vec"
    supports_timing = True
    supports_gating = True

    def __init__(self, resolve_window: Optional[int] = None,
                 mispredict_window: Optional[int] = None,
                 block_size: Optional[int] = None) -> None:
        self.resolve_window = resolve_window
        self.mispredict_window = mispredict_window
        self.block_size = block_size

    def build(self, workload: Workload, config: MachineConfig,
              instrument: Instrumentation) -> TraceSession:
        if _np is None:
            raise BackendUnavailableError(
                "simulation backend 'trace-vec' requires numpy; install the"
                " optional extra with: pip install repro-paco[vec]")
        fetch_engine = build_fetch_engine(workload, config, instrument)
        resolve_window = (self.resolve_window
                         if self.resolve_window is not None
                         else config.width * config.frontend_depth)
        mispredict_window = (self.mispredict_window
                             if self.mispredict_window is not None
                             else 2 * config.min_mispredict_penalty)
        gating = instrument.gating_policy
        if gating is not None and not isinstance(gating, NoGating):
            return GatedTraceSession(fetch_engine, config,
                                     instrument.observers, resolve_window,
                                     mispredict_window, gating,
                                     block_size=self.block_size)
        members = _fused_plan(fetch_engine)
        if members is None:
            return TraceSession(fetch_engine, config, instrument.observers,
                                resolve_window, mispredict_window,
                                block_size=self.block_size)
        return VecTraceSession(fetch_engine, config, instrument.observers,
                               resolve_window, mispredict_window, members,
                               block_size=self.block_size)
