"""The pluggable simulation-backend contract.

A *backend* is a strategy for turning one workload into the instance- and
predictor-level statistics the experiments consume.  All backends share a
single contract:

* :meth:`SimulationBackend.build` wires a workload, a machine
  configuration and the instrumentation (path confidence predictor,
  gating policy, instance observers) into a stateful
  :class:`SimulationSession`;
* :meth:`SimulationSession.run` advances the session until a cumulative
  good-path instruction budget has retired and returns the
  :class:`~repro.pipeline.core.CoreStats` record;
* :meth:`SimulationBackend.run` is the one-shot convenience composing the
  two.

Two backends ship with the package (both registered here by name):

``cycle``
    The full cycle-approximate out-of-order core
    (:class:`~repro.backends.cycle.CycleBackend`).  Ground truth for every
    statistic, including IPC, gating and wrong-path execution.
``trace``
    The fast trace-replay engine
    (:class:`~repro.backends.trace.TraceBackend`).  Drives the branch
    predictors, BTB/RAS and confidence machinery directly over the
    generator's good-path stream, replaying the wrong-path stream for a
    calibrated resolution window after each misprediction.  Reproduces
    predictor- and confidence-level statistics at a fraction of the cost;
    issue/retire timing is replaced by an idealized replay clock, so IPC,
    gating and SMT quantities are calibrated *estimates* (parity-gated
    against the cycle model), not cycle-accurate measurements.

The registry maps backend names to zero-argument factories so callers can
select a backend by the string that also rides in
:class:`~repro.runner.jobs.Job` identities and
:class:`~repro.runner.cache.ResultCache` keys.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.pathconf.base import PathConfidencePredictor
from repro.pipeline.config import MachineConfig
from repro.pipeline.core import CoreStats, InstanceObserver
from repro.pipeline.fetch import FetchEngine
from repro.pipeline.gating import GatingPolicy
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.spec import BenchmarkSpec

#: The backend every job runs on unless it says otherwise.
DEFAULT_BACKEND = "cycle"


@dataclass(frozen=True)
class Workload:
    """One benchmark binding: the spec plus the seeds that make it concrete.

    ``wrongpath_seed`` defaults to ``seed + 1`` (the convention the
    original harness used), so the same workload produces bit-identical
    good-path *and* wrong-path streams on every backend.
    """

    spec: BenchmarkSpec
    seed: int = 1
    thread_id: int = 0
    wrongpath_seed: Optional[int] = None

    def resolved_wrongpath_seed(self) -> int:
        return (self.wrongpath_seed if self.wrongpath_seed is not None
                else self.seed + 1)


@dataclass
class Instrumentation:
    """Everything a backend attaches to the simulated machine.

    ``gating_policy`` is only honoured by backends with
    ``supports_gating`` (both shipped backends); passing one to a
    backend without that capability is an error, not a silent no-op.
    """

    path_confidence: PathConfidencePredictor
    gating_policy: Optional[GatingPolicy] = None
    observers: Tuple[InstanceObserver, ...] = field(default_factory=tuple)


class SimulationSession(abc.ABC):
    """One stateful simulation of one workload on one backend.

    Sessions are resumable: ``run`` advances until the *cumulative*
    retired-instruction count reaches the budget, so experiments can run a
    warm-up leg, snapshot the statistics, attach observers and continue —
    identically on every backend.
    """

    stats: CoreStats
    fetch_engine: FetchEngine

    @property
    def generator(self) -> WorkloadGenerator:
        """The good-path workload generator (phase-aware observers need it)."""
        return self.fetch_engine.generator

    @abc.abstractmethod
    def add_observer(self, observer: InstanceObserver) -> None:
        """Attach an instance observer to the running simulation."""

    @abc.abstractmethod
    def run(self, max_instructions: int,
            max_cycles: Optional[int] = None) -> CoreStats:
        """Advance until ``max_instructions`` good-path instructions retired.

        Raises :class:`~repro.pipeline.core.SimulationTruncated` when the
        ``max_cycles`` safety net trips first.
        """


class SimulationBackend(abc.ABC):
    """Strategy object producing :class:`SimulationSession` instances."""

    #: Registry name, also stored in job identities and cache keys.
    name: str = "abstract"
    #: Whether cycles/IPC produced by this backend are meaningful.
    supports_timing: bool = False
    #: Whether the backend honours a fetch gating policy.
    supports_gating: bool = False

    @abc.abstractmethod
    def build(self, workload: Workload, config: MachineConfig,
              instrument: Instrumentation) -> SimulationSession:
        """Wire one workload into a fresh simulation session."""

    def run(self, workload: Workload, config: MachineConfig,
            instrument: Instrumentation, max_instructions: int,
            max_cycles: Optional[int] = None) -> CoreStats:
        """One-shot convenience: build a session and run it to the budget."""
        session = self.build(workload, config, instrument)
        return session.run(max_instructions, max_cycles=max_cycles)


#: Backend name -> zero-argument factory.
_BACKENDS: Dict[str, Callable[[], SimulationBackend]] = {}


class UnknownBackendError(KeyError):
    """Raised when a backend name nobody registered is requested."""


def register_backend(name: str,
                     factory: Callable[[], SimulationBackend]) -> None:
    """Register (or replace) the factory for backend ``name``."""
    _BACKENDS[name] = factory


def get_backend(backend: "str | SimulationBackend") -> SimulationBackend:
    """Resolve a backend name (or pass an instance through)."""
    if isinstance(backend, SimulationBackend):
        return backend
    if backend not in _BACKENDS:
        raise UnknownBackendError(
            f"no simulation backend {backend!r} registered "
            f"(known: {sorted(_BACKENDS)})"
        )
    return _BACKENDS[backend]()


def backend_names() -> Tuple[str, ...]:
    """Names of every registered backend."""
    return tuple(sorted(_BACKENDS))
