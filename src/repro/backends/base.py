"""The pluggable simulation-backend contract.

A *backend* is a strategy for turning one workload into the instance- and
predictor-level statistics the experiments consume.  All backends share a
single contract:

* :meth:`SimulationBackend.build` wires a workload, a machine
  configuration and the instrumentation (path confidence predictor,
  gating policy, instance observers) into a stateful
  :class:`SimulationSession`;
* :meth:`SimulationSession.run` advances the session until a cumulative
  good-path instruction budget has retired and returns the
  :class:`~repro.pipeline.core.CoreStats` record;
* :meth:`SimulationBackend.run` is the one-shot convenience composing the
  two.

Two backends ship with the package (both registered here by name):

``cycle``
    The full cycle-approximate out-of-order core
    (:class:`~repro.backends.cycle.CycleBackend`).  Ground truth for every
    statistic, including IPC, gating and wrong-path execution.
``trace``
    The fast trace-replay engine
    (:class:`~repro.backends.trace.TraceBackend`).  Drives the branch
    predictors, BTB/RAS and confidence machinery directly over the
    generator's good-path stream, replaying the wrong-path stream for a
    calibrated resolution window after each misprediction.  Reproduces
    predictor- and confidence-level statistics at a fraction of the cost;
    issue/retire timing is replaced by an idealized replay clock, so IPC,
    gating and SMT quantities are calibrated *estimates* (parity-gated
    against the cycle model), not cycle-accurate measurements.

The registry maps backend names to zero-argument factories so callers can
select a backend by the string that also rides in
:class:`~repro.runner.jobs.Job` identities and
:class:`~repro.runner.cache.ResultCache` keys.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.pathconf.base import PathConfidencePredictor
from repro.pipeline.config import MachineConfig
from repro.pipeline.core import CoreStats, InstanceObserver
from repro.pipeline.fetch import FetchEngine
from repro.pipeline.gating import GatingPolicy
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.spec import BenchmarkSpec

#: The backend every job runs on unless it says otherwise.
DEFAULT_BACKEND = "cycle"


@dataclass(frozen=True)
class Workload:
    """One benchmark binding: the spec plus the seeds that make it concrete.

    ``wrongpath_seed`` defaults to ``seed + 1`` (the convention the
    original harness used), so the same workload produces bit-identical
    good-path *and* wrong-path streams on every backend.
    """

    spec: BenchmarkSpec
    seed: int = 1
    thread_id: int = 0
    wrongpath_seed: Optional[int] = None

    def resolved_wrongpath_seed(self) -> int:
        return (self.wrongpath_seed if self.wrongpath_seed is not None
                else self.seed + 1)


@dataclass
class Instrumentation:
    """Everything a backend attaches to the simulated machine.

    ``gating_policy`` is only honoured by backends with
    ``supports_gating`` (both shipped backends); passing one to a
    backend without that capability is an error, not a silent no-op.
    """

    path_confidence: PathConfidencePredictor
    gating_policy: Optional[GatingPolicy] = None
    observers: Tuple[InstanceObserver, ...] = field(default_factory=tuple)


class SimulationSession(abc.ABC):
    """One stateful simulation of one workload on one backend.

    Sessions are resumable: ``run`` advances until the *cumulative*
    retired-instruction count reaches the budget, so experiments can run a
    warm-up leg, snapshot the statistics, attach observers and continue —
    identically on every backend.
    """

    stats: CoreStats
    fetch_engine: FetchEngine

    @property
    def generator(self) -> WorkloadGenerator:
        """The good-path workload generator (phase-aware observers need it)."""
        return self.fetch_engine.generator

    @abc.abstractmethod
    def add_observer(self, observer: InstanceObserver) -> None:
        """Attach an instance observer to the running simulation."""

    @abc.abstractmethod
    def run(self, max_instructions: int,
            max_cycles: Optional[int] = None) -> CoreStats:
        """Advance until ``max_instructions`` good-path instructions retired.

        Raises :class:`~repro.pipeline.core.SimulationTruncated` when the
        ``max_cycles`` safety net trips first.
        """


class SimulationBackend(abc.ABC):
    """Strategy object producing :class:`SimulationSession` instances."""

    #: Registry name, also stored in job identities and cache keys.
    name: str = "abstract"
    #: Whether cycles/IPC produced by this backend are meaningful.
    supports_timing: bool = False
    #: Whether the backend honours a fetch gating policy.
    supports_gating: bool = False

    @abc.abstractmethod
    def build(self, workload: Workload, config: MachineConfig,
              instrument: Instrumentation) -> SimulationSession:
        """Wire one workload into a fresh simulation session."""

    def run(self, workload: Workload, config: MachineConfig,
            instrument: Instrumentation, max_instructions: int,
            max_cycles: Optional[int] = None) -> CoreStats:
        """One-shot convenience: build a session and run it to the budget."""
        session = self.build(workload, config, instrument)
        return session.run(max_instructions, max_cycles=max_cycles)


#: Backend name -> zero-argument factory.
_BACKENDS: Dict[str, Callable[[], SimulationBackend]] = {}

#: Backend name -> why it cannot run in this environment (e.g. a missing
#: optional dependency).  Disjoint from ``_BACKENDS``: a name is either
#: runnable or carries an unavailability reason, never both.
_UNAVAILABLE: Dict[str, str] = {}


class UnknownBackendError(KeyError):
    """Raised when a backend name nobody registered is requested."""

    def __str__(self) -> str:
        # KeyError.__str__ reprs the message; keep ours readable.
        return self.args[0] if self.args else ""


class BackendUnavailableError(UnknownBackendError):
    """Raised for a *known* backend that cannot run in this environment.

    Distinct from :class:`UnknownBackendError` (which it subclasses, so
    existing handlers keep working) because the fix is different: an
    unknown name is a typo, an unavailable backend needs its optional
    dependency installed — the message says which and how.
    """


def register_backend(name: str,
                     factory: Callable[[], SimulationBackend]) -> None:
    """Register the factory for backend ``name``.

    Duplicate registrations are rejected: two factories silently racing
    for one name (and one cache-key namespace) is always a bug.
    Registering a name previously marked unavailable is fine — that is
    exactly what happens when the missing dependency appears.
    """
    if name in _BACKENDS:
        raise ValueError(
            f"simulation backend {name!r} is already registered")
    _UNAVAILABLE.pop(name, None)
    _BACKENDS[name] = factory


def register_unavailable(name: str, reason: str) -> None:
    """Declare that backend ``name`` exists but cannot run here.

    ``reason`` should name the missing dependency and how to install it;
    it is surfaced verbatim by selection errors and
    :func:`describe_backends`.
    """
    if name in _BACKENDS:
        raise ValueError(
            f"simulation backend {name!r} is already registered"
            " (and available)")
    _UNAVAILABLE[name] = reason


def describe_backends() -> str:
    """One-line name + availability summary for error messages and help."""
    parts = [f"{name} (available)" for name in sorted(_BACKENDS)]
    parts.extend(f"{name} (unavailable: {reason})"
                 for name, reason in sorted(_UNAVAILABLE.items()))
    return ", ".join(parts) if parts else "none registered"


def validate_backend_name(name: str) -> str:
    """Check that ``name`` is a runnable backend; return it unchanged.

    Raises :class:`BackendUnavailableError` for a known-but-unavailable
    backend (naming the missing dependency) and
    :class:`UnknownBackendError` otherwise — both listing every
    registered name with its availability, so the caller's error message
    is actionable without a second lookup.
    """
    if name not in _BACKENDS:
        if name in _UNAVAILABLE:
            raise BackendUnavailableError(
                f"simulation backend {name!r} is not available:"
                f" {_UNAVAILABLE[name]}"
                f" (backends: {describe_backends()})")
        raise UnknownBackendError(
            f"unknown simulation backend {name!r}"
            f" (backends: {describe_backends()})")
    return name


def get_backend(backend: "str | SimulationBackend") -> SimulationBackend:
    """Resolve a backend name (or pass an instance through)."""
    if isinstance(backend, SimulationBackend):
        return backend
    validate_backend_name(backend)
    return _BACKENDS[backend]()


def backend_names() -> Tuple[str, ...]:
    """Names of every registered *runnable* backend."""
    return tuple(sorted(_BACKENDS))


def unavailable_backends() -> Dict[str, str]:
    """Known-but-unavailable backend names mapped to their reasons."""
    return dict(_UNAVAILABLE)
