"""SMT fetch prioritization policies.

Every cycle the SMT front end gives its full fetch bandwidth to one thread;
the policy decides which.  The paper compares:

* **ICOUNT** (Tullsen et al.) — fetch for the thread with the fewest
  instructions in flight.
* **Threshold-and-count confidence** (Luo et al.) — fetch for the thread
  with the fewest unresolved low-confidence branches, i.e. the thread a
  conventional path confidence predictor believes is more likely to be on
  the good path.  Ties fall back to ICOUNT.
* **PaCo confidence** — fetch for the thread whose PaCo good-path
  probability is higher (smaller encoded path-confidence register).  Ties
  fall back to ICOUNT.
"""

from __future__ import annotations

import abc
from typing import List, Sequence

from repro.pathconf.paco import PaCoPredictor
from repro.pathconf.threshold_count import ThresholdAndCountPredictor


class ThreadView(abc.ABC):
    """The per-thread state a fetch policy is allowed to look at."""

    @property
    @abc.abstractmethod
    def in_flight_instructions(self) -> int:
        """Number of not-yet-retired instructions of this thread."""

    @property
    @abc.abstractmethod
    def path_confidence(self) -> object:
        """The thread's path confidence predictor."""


class FetchPolicy(abc.ABC):
    """Chooses which thread fetches this cycle."""

    name: str = "abstract"

    @abc.abstractmethod
    def select(self, cycle: int, threads: Sequence[ThreadView]) -> int:
        """Return the index of the thread that gets the fetch bandwidth."""


class RoundRobinPolicy(FetchPolicy):
    """Alternate fetch between threads regardless of their state."""

    name = "round-robin"

    def select(self, cycle: int, threads: Sequence[ThreadView]) -> int:
        return cycle % len(threads)


class ICountPolicy(FetchPolicy):
    """ICOUNT: prefer the thread with the fewest in-flight instructions."""

    name = "icount"

    def select(self, cycle: int, threads: Sequence[ThreadView]) -> int:
        counts = [t.in_flight_instructions for t in threads]
        best = min(counts)
        candidates = [i for i, c in enumerate(counts) if c == best]
        if len(candidates) == 1:
            return candidates[0]
        return candidates[cycle % len(candidates)]


def _icount_tiebreak(cycle: int, threads: Sequence[ThreadView],
                     candidates: List[int]) -> int:
    counts = [threads[i].in_flight_instructions for i in candidates]
    best = min(counts)
    finalists = [candidates[i] for i, c in enumerate(counts) if c == best]
    if len(finalists) == 1:
        return finalists[0]
    return finalists[cycle % len(finalists)]


class CountConfidencePolicy(FetchPolicy):
    """Luo et al.: prefer the thread with fewer unresolved low-confidence branches.

    Each thread's predictor must be a
    :class:`~repro.pathconf.threshold_count.ThresholdAndCountPredictor`.
    """

    def __init__(self, threshold: int = 3) -> None:
        self.threshold = threshold
        self.name = f"conf-count(t={threshold})"

    def select(self, cycle: int, threads: Sequence[ThreadView]) -> int:
        counts = []
        for thread in threads:
            predictor = thread.path_confidence
            if not isinstance(predictor, ThresholdAndCountPredictor):
                raise TypeError(
                    "CountConfidencePolicy requires ThresholdAndCountPredictor "
                    f"per thread, got {type(predictor).__name__}"
                )
            counts.append(predictor.low_confidence_count)
        best = min(counts)
        candidates = [i for i, c in enumerate(counts) if c == best]
        if len(candidates) == 1:
            return candidates[0]
        return _icount_tiebreak(cycle, threads, candidates)


class PaCoConfidencePolicy(FetchPolicy):
    """Prefer the thread with the higher PaCo good-path probability.

    The comparison happens directly on the encoded path-confidence
    registers (smaller register = higher probability), which is exactly the
    integer comparison the hardware would perform.
    """

    name = "paco-confidence"

    def select(self, cycle: int, threads: Sequence[ThreadView]) -> int:
        registers = []
        for thread in threads:
            predictor = thread.path_confidence
            if not isinstance(predictor, PaCoPredictor):
                raise TypeError(
                    "PaCoConfidencePolicy requires a PaCoPredictor per thread, "
                    f"got {type(predictor).__name__}"
                )
            registers.append(predictor.path_confidence_register)
        best = min(registers)
        candidates = [i for i, r in enumerate(registers) if r == best]
        if len(candidates) == 1:
            return candidates[0]
        return _icount_tiebreak(cycle, threads, candidates)
