"""The 2-thread SMT core model (paper Table 11).

An 8-wide machine executing two hardware threads.  Each thread has its own
front-end state (branch predictor, JRS confidence table, path confidence
predictor, workload generator) — path confidence must be per-thread because
the fetch policy compares threads against each other — while the backend
resources (reorder buffer capacity, scheduler capacity, functional units,
cache hierarchy) are dynamically shared.

Each cycle the configured :class:`~repro.pipeline.fetch_policy.FetchPolicy`
selects one thread, which then receives the machine's full fetch bandwidth
for that cycle, following the fetch-prioritization formulation of Luo et
al. that the paper evaluates.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.isa.instruction import Instruction
from repro.isa.types import InstructionClass
from repro.pipeline.caches import CacheHierarchy
from repro.pipeline.config import SMTConfig
from repro.pipeline.fetch import FetchEngine
from repro.pipeline.fetch_policy import FetchPolicy, ICountPolicy, ThreadView


@dataclass
class ThreadStats:
    """Per-thread statistics of an SMT run."""

    retired_instructions: int = 0
    goodpath_fetched: int = 0
    badpath_fetched: int = 0
    badpath_executed: int = 0
    branches_retired: int = 0
    branch_mispredicts_retired: int = 0
    fetch_cycles_granted: int = 0

    def ipc(self, cycles: int) -> float:
        if cycles == 0:
            return 0.0
        return self.retired_instructions / cycles


@dataclass
class SMTStats:
    """Aggregate statistics of one SMT run."""

    cycles: int = 0
    threads: List[ThreadStats] = field(default_factory=list)

    @property
    def total_retired(self) -> int:
        return sum(t.retired_instructions for t in self.threads)

    @property
    def total_ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.total_retired / self.cycles

    def thread_ipc(self, index: int) -> float:
        return self.threads[index].ipc(self.cycles)


class SMTThread(ThreadView):
    """One hardware thread: its fetch engine plus its backend bookkeeping."""

    def __init__(self, thread_id: int, fetch_engine: FetchEngine) -> None:
        self.thread_id = thread_id
        self.fetch_engine = fetch_engine
        self.rob: Deque[Instruction] = deque()
        self.stats = ThreadStats()
        self.fetch_stall_until = 0
        self.next_seq = 0

    @property
    def in_flight_instructions(self) -> int:
        return len(self.rob)

    @property
    def path_confidence(self) -> object:
        return self.fetch_engine.path_confidence


class SMTCore:
    """The 8-wide, 2-thread SMT core."""

    def __init__(self, config: SMTConfig, threads: List[SMTThread],
                 fetch_policy: Optional[FetchPolicy] = None,
                 caches: Optional[CacheHierarchy] = None) -> None:
        if len(threads) != config.num_threads:
            raise ValueError(
                f"expected {config.num_threads} threads, got {len(threads)}"
            )
        self.config = config
        self.machine = config.machine
        self.threads = threads
        self.fetch_policy = fetch_policy if fetch_policy is not None else ICountPolicy()
        self.caches = caches if caches is not None else CacheHierarchy(self.machine)

        self._scheduler: List[Instruction] = []
        self._completion_queue: Dict[int, List[Instruction]] = {}
        self._cycle = 0
        self.stats = SMTStats(threads=[t.stats for t in threads])

    # ------------------------------------------------------------------ #

    def run(self, max_total_instructions: int,
            max_cycles: Optional[int] = None) -> SMTStats:
        """Run until the two threads together retire the instruction budget."""
        if max_total_instructions <= 0:
            raise ValueError("instruction budget must be positive")
        if max_cycles is None:
            max_cycles = max_total_instructions * 40
        while (self.stats.total_retired < max_total_instructions
               and self._cycle < max_cycles):
            self.step()
        self.stats.cycles = self._cycle
        return self.stats

    def step(self) -> None:
        """Advance the SMT core by one cycle (completion before retirement,
        matching :meth:`repro.pipeline.core.OutOfOrderCore.step`)."""
        cycle = self._cycle
        for thread in self.threads:
            thread.fetch_engine.path_confidence.on_cycle(cycle)
        self._complete(cycle)
        self._retire(cycle)
        self._issue(cycle)
        self._fetch_and_dispatch(cycle)
        self._cycle = cycle + 1

    @property
    def cycle(self) -> int:
        return self._cycle

    @property
    def rob_occupancy(self) -> int:
        return sum(len(t.rob) for t in self.threads)

    # ------------------------------------------------------------------ #
    # backend (shared)
    # ------------------------------------------------------------------ #

    def _retire(self, cycle: int) -> None:
        budget = self.machine.width
        # Round-robin the retire bandwidth across threads, oldest-first within
        # each thread (per-thread program order).
        progress = True
        while budget > 0 and progress:
            progress = False
            for thread in self.threads:
                if budget <= 0:
                    break
                rob = thread.rob
                if not rob:
                    continue
                head = rob[0]
                if head.complete_cycle < 0 or head.complete_cycle > cycle:
                    continue
                rob.popleft()
                head.retired = True
                budget -= 1
                progress = True
                thread.stats.retired_instructions += 1
                if head.is_branch:
                    thread.stats.branches_retired += 1
                    if head.mispredicted:
                        thread.stats.branch_mispredicts_retired += 1

    def _complete(self, cycle: int) -> None:
        completions = self._completion_queue.pop(cycle, None)
        if not completions:
            return
        for instr in completions:
            if instr.squashed:
                continue
            if instr.is_branch:
                thread = self.threads[instr.thread_id]
                thread.fetch_engine.resolve_branch(instr)
                if instr.mispredicted and instr.on_goodpath:
                    self._recover_thread(thread, instr, cycle)

    def _recover_thread(self, thread: SMTThread, branch: Instruction,
                        cycle: int) -> None:
        survivors: Deque[Instruction] = deque()
        for instr in thread.rob:
            if instr.seq <= branch.seq:
                survivors.append(instr)
                continue
            instr.squashed = True
            if instr.is_branch:
                thread.fetch_engine.squash_branch(instr)
        thread.rob = survivors
        self._scheduler = [i for i in self._scheduler if not i.squashed]
        thread.fetch_engine.recover(branch)
        thread.fetch_stall_until = max(
            thread.fetch_stall_until, cycle + 1 + self.machine.redirect_penalty
        )

    def _issue(self, cycle: int) -> None:
        if not self._scheduler:
            return
        issued = 0
        still_waiting: List[Instruction] = []
        for instr in self._scheduler:
            if instr.squashed:
                continue
            if issued >= self.machine.num_functional_units:
                still_waiting.append(instr)
                continue
            if not self._is_ready(instr, cycle):
                still_waiting.append(instr)
                continue
            self._execute(instr, cycle)
            issued += 1
        self._scheduler = still_waiting

    @staticmethod
    def _is_ready(instr: Instruction, cycle: int) -> bool:
        if cycle < instr.ready_cycle:
            return False
        producer = instr.producer
        if producer is None or producer.squashed:
            return True
        return 0 <= producer.complete_cycle <= cycle

    def _execute(self, instr: Instruction, cycle: int) -> None:
        latency = instr.latency_class
        if instr.iclass in (InstructionClass.LOAD, InstructionClass.STORE):
            if instr.address is not None:
                latency += self.caches.access_data(instr.address)
        instr.issue_cycle = cycle
        instr.complete_cycle = cycle + max(1, latency)
        self._completion_queue.setdefault(instr.complete_cycle, []).append(instr)
        if not instr.on_goodpath:
            self.threads[instr.thread_id].stats.badpath_executed += 1

    # ------------------------------------------------------------------ #
    # front end (policy-arbitrated)
    # ------------------------------------------------------------------ #

    def _fetch_and_dispatch(self, cycle: int) -> None:
        machine = self.machine
        if self.rob_occupancy >= machine.rob_size:
            return
        if len(self._scheduler) >= machine.scheduler_size:
            return
        eligible = [i for i, t in enumerate(self.threads)
                    if cycle >= t.fetch_stall_until]
        if not eligible:
            return
        if len(eligible) == len(self.threads):
            index = self.fetch_policy.select(cycle, self.threads)
        else:
            index = eligible[0]
        thread = self.threads[index]
        thread.stats.fetch_cycles_granted += 1
        for slot in range(machine.width):
            if self.rob_occupancy >= machine.rob_size:
                break
            if len(self._scheduler) >= machine.scheduler_size:
                break
            instr = thread.fetch_engine.fetch_one(thread.next_seq, cycle)
            thread.next_seq += 1
            if instr.on_goodpath:
                thread.stats.goodpath_fetched += 1
            else:
                thread.stats.badpath_fetched += 1

            # One instruction-cache access per fetch group, tagged by thread
            # so the two threads' code does not alias onto the same lines.
            icache_penalty = (self.caches.access_instruction(
                instr.pc ^ (instr.thread_id << 30)) if slot == 0 else 0)
            if icache_penalty > 0:
                thread.fetch_stall_until = cycle + 1 + icache_penalty

            instr.ready_cycle = cycle + machine.frontend_depth
            if instr.dep_distance > 0 and len(thread.rob) >= instr.dep_distance:
                instr.producer = thread.rob[-instr.dep_distance]
            thread.rob.append(instr)
            self._scheduler.append(instr)

            if icache_penalty > 0:
                break
