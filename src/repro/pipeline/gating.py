"""Pipeline gating policies.

Pipeline gating (Manne et al.) stops instruction fetch when the processor
is very likely to be fetching wrong-path instructions, saving the energy
those instructions would burn.  The policy is evaluated every cycle before
fetch; the two real policies differ only in what signal they threshold:

* :class:`CountGating` — the conventional mechanism: gate when the number
  of unresolved low-confidence branches reaches the *gate-count*.
* :class:`PaCoGating` — gate when PaCo's estimated good-path probability
  falls below a target probability (the comparison happens in encoded
  space, as in the hardware).
"""

from __future__ import annotations

import abc

from repro.pathconf.base import PathConfidencePredictor
from repro.pathconf.paco import PaCoPredictor
from repro.pathconf.threshold_count import ThresholdAndCountPredictor


class GatingPolicy(abc.ABC):
    """Decides, each cycle, whether instruction fetch should be gated."""

    name: str = "abstract"

    @abc.abstractmethod
    def should_gate(self) -> bool:
        """Return True when fetch must be stopped this cycle."""


class NoGating(GatingPolicy):
    """Baseline: never gate."""

    name = "no-gating"

    def should_gate(self) -> bool:
        return False


class CountGating(GatingPolicy):
    """Gate when the low-confidence branch count reaches ``gate_count``."""

    def __init__(self, predictor: ThresholdAndCountPredictor, gate_count: int) -> None:
        if gate_count <= 0:
            raise ValueError("gate_count must be positive")
        self.predictor = predictor
        self.gate_count = gate_count
        self.name = f"count-gating(t={predictor.threshold}, g={gate_count})"

    def should_gate(self) -> bool:
        return self.predictor.low_confidence_count >= self.gate_count


class PaCoGating(GatingPolicy):
    """Gate when PaCo's good-path probability falls below a target.

    The target probability is converted to encoded space once at
    construction; the per-cycle decision is a single integer comparison.
    """

    def __init__(self, predictor: PaCoPredictor,
                 target_goodpath_probability: float) -> None:
        if not 0.0 < target_goodpath_probability < 1.0:
            raise ValueError("gating probability must be in (0, 1)")
        self.predictor = predictor
        self.target_goodpath_probability = target_goodpath_probability
        self.encoded_threshold = predictor.encoded_threshold(
            target_goodpath_probability
        )
        self.name = f"paco-gating(p={target_goodpath_probability:.2f})"

    def should_gate(self) -> bool:
        return self.predictor.path_confidence_register > self.encoded_threshold


class ProbabilityGating(GatingPolicy):
    """Gate on any predictor's decoded good-path probability.

    Used by ablations that gate on the Static-MRT / Per-branch-MRT
    predictors, which expose probabilities but not PaCo's encoded register
    helper.
    """

    def __init__(self, predictor: PathConfidencePredictor,
                 target_goodpath_probability: float) -> None:
        if not 0.0 < target_goodpath_probability < 1.0:
            raise ValueError("gating probability must be in (0, 1)")
        self.predictor = predictor
        self.target_goodpath_probability = target_goodpath_probability
        self.name = f"prob-gating({predictor.name}, p={target_goodpath_probability:.2f})"

    def should_gate(self) -> bool:
        return (self.predictor.goodpath_probability()
                < self.target_goodpath_probability)
