"""The single-thread out-of-order core model.

A cycle-approximate model of the paper's 4-wide machine (Table 6).  Each
cycle, in backend-to-frontend order, the core:

1. runs the path confidence predictor's periodic work (PaCo's
   re-logarithmizing pass),
2. retires completed instructions in order from the reorder buffer,
3. processes completion events (branch resolution, misprediction recovery),
4. issues ready instructions to the functional units, and
5. fetches/dispatches new instructions unless fetch is stalled, gated by
   the gating policy, or a structural resource (ROB/scheduler) is full.

The model is deliberately lighter than an RTL-faithful simulator — it does
not rename registers or model a memory dependence predictor — but it keeps
everything that path confidence prediction interacts with: a window of
unresolved branches whose depth depends on backend latencies, wrong-path
fetch and execution, cache and BTB pollution by wrong-path instructions,
and a misprediction penalty of at least the paper's 10 cycles.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from repro.isa.instruction import Instruction
from repro.isa.types import InstructionClass
from repro.pipeline.caches import CacheHierarchy
from repro.pipeline.config import MachineConfig
from repro.pipeline.fetch import FetchEngine
from repro.pipeline.gating import GatingPolicy, NoGating


class SimulationTruncated(RuntimeError):
    """A run hit its ``max_cycles`` safety net before the instruction budget.

    Raised instead of returning truncated statistics that look like a
    normal run (a configuration error — e.g. a gating policy that never
    ungates — would otherwise silently produce garbage rates).  The
    partial statistics are attached for post-mortem inspection.
    """

    def __init__(self, stats: "CoreStats", max_instructions: int,
                 max_cycles: int) -> None:
        super().__init__(
            f"simulation truncated: only {stats.retired_instructions} of "
            f"{max_instructions} instructions retired when the max_cycles "
            f"safety net ({max_cycles}) tripped"
        )
        self.stats = stats
        self.max_instructions = max_instructions
        self.max_cycles = max_cycles


class InstanceObserver:
    """Callback hook for path-confidence "instances".

    The paper defines an instance as any event that can change the path
    confidence estimate: fetching an instruction or executing one.  The
    evaluation harness registers an observer and, at every instance, records
    the predictors' current estimates together with whether the front end is
    actually on the good path.
    """

    def record(self, kind: str, on_goodpath: bool, cycle: int) -> None:
        """Called once per instance.  ``kind`` is ``"fetch"`` or ``"execute"``."""
        raise NotImplementedError

    def record_run(self, kind: str, on_goodpath: bool, cycle: int,
                   count: int) -> None:
        """Record ``count`` instances that share one observable state.

        The trace backend batches runs of instances between which no
        predictor state changed; aggregate observers override this with a
        weighted update.  The default replays :meth:`record` ``count``
        times, so order-insensitive observers stay correct either way.
        """
        for _ in range(count):
            self.record(kind, on_goodpath, cycle)

    def record_runs(self, events: list) -> None:
        """Record a batch of runs accumulated across one constant-state span.

        ``events`` is a flat stride-4 list of ``(kind, on_goodpath,
        cycle, count)`` groups, in recording order.  The trace backend
        buffers run events across spans where no predictor state changes
        and delivers them here just before the next state change, so an
        observer may read predictor state once for the whole batch.
        The default replays :meth:`record_run` per event, preserving the
        exact call sequence unbatched observers always saw.  The buffer
        is reused by the caller — observers must not keep a reference.
        """
        record_run = self.record_run
        for i in range(0, len(events), 4):
            record_run(events[i], events[i + 1], events[i + 2],
                       events[i + 3])


class RunEventBatch(list):
    """A run-event buffer whose aggregate fold is computed once per batch.

    The flat stride-4 ``(kind, on_goodpath, cycle, count)`` layout of
    :meth:`InstanceObserver.record_runs` stays unchanged — this *is* a
    list, and every delivery/extend/clear site works on it untouched.
    What the subclass adds is a lazily computed fold of the columns every
    aggregate observer needs (the per-event weights, the total instance
    count and the good-path instance count), shared across all observers
    of one delivery instead of recomputed per observer.  The vectorized
    trace session allocates its event buffer as a :class:`RunEventBatch`;
    observers opt in with :meth:`ensure_folded` and fall back to their own
    fold on plain lists, so the scalar backends are untouched.
    """

    __slots__ = ("weights", "instances", "goodpath", "_folded_length")

    def __init__(self, *args) -> None:
        super().__init__(*args)
        self.weights: list = []
        self.instances = 0
        self.goodpath = 0
        self._folded_length = -1

    def ensure_folded(self) -> None:
        """Fold the batch once; later callers on the same content reuse it."""
        length = len(self)
        if self._folded_length == length:
            return
        self.weights = weights = self[3::4]
        instances = 0
        goodpath = 0
        position = 1
        for weight in weights:
            instances += weight
            if self[position]:
                goodpath += weight
            position += 4
        self.instances = instances
        self.goodpath = goodpath
        self._folded_length = length

    def __delitem__(self, index) -> None:
        # The sessions reuse one buffer across deliveries (``del
        # events[:]``); a refill to the same length must not reuse the
        # previous batch's fold.
        self._folded_length = -1
        super().__delitem__(index)

    def clear(self) -> None:
        self._folded_length = -1
        super().clear()


@dataclass
class CoreStats:
    """Aggregate statistics of one core run."""

    cycles: int = 0
    retired_instructions: int = 0
    goodpath_fetched: int = 0
    badpath_fetched: int = 0
    goodpath_executed: int = 0
    badpath_executed: int = 0
    branches_retired: int = 0
    conditional_branches_retired: int = 0
    conditional_mispredicts_retired: int = 0
    branch_mispredicts_retired: int = 0
    gated_cycles: int = 0
    fetch_stall_cycles: int = 0
    flushes: int = 0

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.retired_instructions / self.cycles

    @property
    def conditional_mispredict_rate(self) -> float:
        if self.conditional_branches_retired == 0:
            return 0.0
        return (self.conditional_mispredicts_retired
                / self.conditional_branches_retired)

    @property
    def overall_mispredict_rate(self) -> float:
        if self.branches_retired == 0:
            return 0.0
        return self.branch_mispredicts_retired / self.branches_retired

    @property
    def badpath_executed_fraction(self) -> float:
        total = self.goodpath_executed + self.badpath_executed
        if total == 0:
            return 0.0
        return self.badpath_executed / total


class OutOfOrderCore:
    """The 4-wide out-of-order core."""

    def __init__(self, config: MachineConfig, fetch_engine: FetchEngine,
                 caches: Optional[CacheHierarchy] = None,
                 gating_policy: Optional[GatingPolicy] = None) -> None:
        self.config = config
        self.fetch_engine = fetch_engine
        self.caches = caches if caches is not None else CacheHierarchy(config)
        self.gating_policy = gating_policy if gating_policy is not None else NoGating()

        self.stats = CoreStats()
        self.observers: List[InstanceObserver] = []

        self._rob: Deque[Instruction] = deque()
        self._scheduler: List[Instruction] = []
        self._completion_queue: Dict[int, List[Instruction]] = {}
        self._cycle = 0
        self._next_seq = 0
        self._fetch_stall_until = 0

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def add_observer(self, observer: InstanceObserver) -> None:
        self.observers.append(observer)

    def run(self, max_instructions: int,
            max_cycles: Optional[int] = None) -> CoreStats:
        """Run until ``max_instructions`` good-path instructions have retired.

        ``max_cycles`` is a safety net (default: 40x the instruction budget)
        so a configuration error cannot loop forever.  If the safety net
        trips before the budget is met the run raises
        :class:`SimulationTruncated` (with the partial statistics attached)
        rather than returning truncated stats that look like a normal run.
        """
        if max_instructions <= 0:
            raise ValueError("instruction budget must be positive")
        if max_cycles is None:
            max_cycles = max_instructions * 40
        while (self.stats.retired_instructions < max_instructions
               and self._cycle < max_cycles):
            self.step()
        self.stats.cycles = self._cycle
        if self.stats.retired_instructions < max_instructions:
            raise SimulationTruncated(self.stats, max_instructions, max_cycles)
        return self.stats

    def step(self) -> None:
        """Advance the core by one cycle.

        Completion (branch resolution and misprediction recovery) is
        processed before retirement so that a mispredicted branch's flush
        always squashes its wrong-path successors before the retire stage
        could reach them.
        """
        cycle = self._cycle
        self.fetch_engine.path_confidence.on_cycle(cycle)
        self._complete(cycle)
        self._retire(cycle)
        self._issue(cycle)
        self._fetch_and_dispatch(cycle)
        self._cycle = cycle + 1

    @property
    def cycle(self) -> int:
        return self._cycle

    @property
    def rob_occupancy(self) -> int:
        return len(self._rob)

    # ------------------------------------------------------------------ #
    # pipeline stages (back to front)
    # ------------------------------------------------------------------ #

    def _retire(self, cycle: int) -> None:
        retired = 0
        stats = self.stats
        rob = self._rob
        while rob and retired < self.config.width:
            head = rob[0]
            if head.complete_cycle < 0 or head.complete_cycle > cycle:
                break
            rob.popleft()
            head.retired = True
            retired += 1
            stats.retired_instructions += 1
            if head.is_branch:
                stats.branches_retired += 1
                if head.mispredicted:
                    stats.branch_mispredicts_retired += 1
                if head.is_conditional_branch:
                    stats.conditional_branches_retired += 1
                    if head.mispredicted:
                        stats.conditional_mispredicts_retired += 1

    def _complete(self, cycle: int) -> None:
        completions = self._completion_queue.pop(cycle, None)
        if not completions:
            return
        for instr in completions:
            if instr.squashed:
                continue
            if instr.is_branch:
                self.fetch_engine.resolve_branch(instr)
                if instr.mispredicted and instr.on_goodpath:
                    self._recover_from_mispredict(instr, cycle)
            self._record_instance("execute", cycle)

    def _recover_from_mispredict(self, branch: Instruction, cycle: int) -> None:
        """Flush everything younger than the mispredicted branch and redirect."""
        self.stats.flushes += 1
        rob = self._rob
        survivors: Deque[Instruction] = deque()
        for instr in rob:
            if instr.seq <= branch.seq:
                survivors.append(instr)
                continue
            instr.squashed = True
            if instr.is_branch:
                self.fetch_engine.squash_branch(instr)
        self._rob = survivors
        self._scheduler = [i for i in self._scheduler if not i.squashed]
        self.fetch_engine.recover(branch)
        self._fetch_stall_until = max(
            self._fetch_stall_until, cycle + 1 + self.config.redirect_penalty
        )

    def _issue(self, cycle: int) -> None:
        if not self._scheduler:
            return
        issued = 0
        still_waiting: List[Instruction] = []
        for instr in self._scheduler:
            if instr.squashed:
                continue
            if issued >= self.config.num_functional_units:
                still_waiting.append(instr)
                continue
            if not self._is_ready(instr, cycle):
                still_waiting.append(instr)
                continue
            self._execute(instr, cycle)
            issued += 1
        self._scheduler = still_waiting

    def _is_ready(self, instr: Instruction, cycle: int) -> bool:
        if cycle < instr.ready_cycle:
            return False
        producer = instr.producer
        if producer is None or producer.squashed:
            return True
        return 0 <= producer.complete_cycle <= cycle

    def _execute(self, instr: Instruction, cycle: int) -> None:
        latency = instr.latency_class
        if instr.iclass in (InstructionClass.LOAD, InstructionClass.STORE):
            if instr.address is not None:
                latency += self.caches.access_data(instr.address)
        instr.issue_cycle = cycle
        instr.complete_cycle = cycle + max(1, latency)
        self._completion_queue.setdefault(instr.complete_cycle, []).append(instr)
        if instr.on_goodpath:
            self.stats.goodpath_executed += 1
        else:
            self.stats.badpath_executed += 1

    # ------------------------------------------------------------------ #
    # fetch / dispatch
    # ------------------------------------------------------------------ #

    def _fetch_and_dispatch(self, cycle: int) -> None:
        if cycle < self._fetch_stall_until:
            self.stats.fetch_stall_cycles += 1
            return
        if self.gating_policy.should_gate():
            self.stats.gated_cycles += 1
            return
        config = self.config
        for slot in range(config.width):
            if len(self._rob) >= config.rob_size:
                break
            if len(self._scheduler) >= config.scheduler_size:
                break
            instr = self.fetch_engine.fetch_one(self._next_seq, cycle)
            self._next_seq += 1
            if instr.on_goodpath:
                self.stats.goodpath_fetched += 1
            else:
                self.stats.badpath_fetched += 1

            # One instruction-cache access per fetch group (the group shares
            # a cache line); a miss stalls fetch for the fill latency.
            icache_penalty = (self.caches.access_instruction(instr.pc)
                              if slot == 0 else 0)
            if icache_penalty > 0:
                self._fetch_stall_until = cycle + 1 + icache_penalty

            instr.ready_cycle = cycle + config.frontend_depth
            if instr.dep_distance > 0 and len(self._rob) >= instr.dep_distance:
                instr.producer = self._rob[-instr.dep_distance]
            self._rob.append(instr)
            self._scheduler.append(instr)
            self._record_instance("fetch", cycle)

            if icache_penalty > 0:
                break

    # ------------------------------------------------------------------ #

    def _record_instance(self, kind: str, cycle: int) -> None:
        if not self.observers:
            return
        on_goodpath = self.fetch_engine.fetching_goodpath
        for observer in self.observers:
            observer.record(kind, on_goodpath, cycle)
