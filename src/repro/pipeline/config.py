"""Machine configuration records (the paper's Table 6 and Table 11)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CacheConfig:
    """Geometry and miss latency of one cache level."""

    size_bytes: int
    ways: int
    line_bytes: int
    miss_latency: int
    label: str = ""

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.ways <= 0 or self.line_bytes <= 0:
            raise ValueError("cache geometry must be positive")
        if self.size_bytes % (self.ways * self.line_bytes) != 0:
            raise ValueError("cache size must be divisible by ways * line size")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)


@dataclass
class MachineConfig:
    """Parameters of the 4-wide out-of-order machine (paper Table 6).

    The structural parameters follow the paper exactly; the handful of
    timing parameters the paper leaves implicit (front-end depth, extra
    redirect bubbles after a misprediction) are chosen so that the minimum
    misprediction penalty is at least the paper's 10 cycles.
    """

    width: int = 4
    rob_size: int = 256
    scheduler_size: int = 64
    num_functional_units: int = 4
    frontend_depth: int = 6          #: cycles from fetch to earliest issue
    redirect_penalty: int = 4        #: extra bubbles after a mispredict redirect
    branch_history_bits: int = 8
    direction_index_bits: int = 15
    btb_sets: int = 1024
    btb_ways: int = 4
    ras_depth: int = 32
    jrs_index_bits: int = 14         #: 8 KB of 4-bit MDCs
    jrs_mdc_bits: int = 4
    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=32 * 1024, ways=4, line_bytes=128, miss_latency=10, label="L1I"))
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=32 * 1024, ways=4, line_bytes=64, miss_latency=10, label="L1D"))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=512 * 1024, ways=8, line_bytes=128, miss_latency=100, label="L2"))

    def __post_init__(self) -> None:
        if self.width <= 0 or self.rob_size <= 0 or self.scheduler_size <= 0:
            raise ValueError("pipeline structure sizes must be positive")
        if self.num_functional_units <= 0:
            raise ValueError("need at least one functional unit")
        if self.frontend_depth < 1:
            raise ValueError("front-end depth must be at least one cycle")

    @property
    def min_mispredict_penalty(self) -> int:
        """Lower bound on the fetch-to-redirect penalty of a mispredict."""
        return self.frontend_depth + self.redirect_penalty

    @classmethod
    def paper_4wide(cls) -> "MachineConfig":
        """The paper's 4-wide configuration (Table 6)."""
        return cls()

    @classmethod
    def smt_8wide(cls) -> "MachineConfig":
        """Per-core parameters of the paper's 8-wide SMT machine (Table 11)."""
        return cls(
            width=8,
            rob_size=512,
            num_functional_units=8,
            frontend_depth=12,
            redirect_penalty=8,
        )


@dataclass
class SMTConfig:
    """The SMT machine (paper Table 11): 8-wide, 2 threads, 512-entry ROB."""

    machine: MachineConfig = field(default_factory=MachineConfig.smt_8wide)
    num_threads: int = 2

    def __post_init__(self) -> None:
        if self.num_threads < 2:
            raise ValueError("an SMT configuration needs at least two threads")
