"""Speculative fetch engine.

The fetch engine is where the good path and the wrong path meet:

* While on the good path it pulls instructions from the benchmark's
  :class:`~repro.workloads.generator.WorkloadGenerator`, predicts every
  control-flow instruction with the front-end predictor and, because the
  generator also supplies the architectural outcome, knows immediately
  whether the prediction was wrong (this is the oracle knowledge an
  execution-driven simulator has).
* The moment a good-path branch is mispredicted, fetch switches to the
  :class:`~repro.workloads.generator.WrongPathGenerator`; everything
  fetched from then on is wrong-path and will eventually be squashed.
* When the mispredicted branch resolves in the backend, the core calls
  :meth:`FetchEngine.recover` and fetch resumes on the good path.

The engine is also the single place where the confidence machinery is
driven: every fetched conditional branch performs a JRS lookup and
registers with the path confidence predictor; every resolved branch updates
the JRS entry it read at fetch and notifies the path confidence predictor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.branch_predictor.frontend import FrontEndPredictor, FrontEndPrediction
from repro.confidence.jrs import ConfidenceLookup, JRSConfidencePredictor
from repro.isa.instruction import Instruction
from repro.isa.types import BranchKind
from repro.pathconf.base import BranchFetchInfo, PathConfidencePredictor
from repro.workloads.generator import WorkloadGenerator, WrongPathGenerator


@dataclass(slots=True)
class _BranchBookkeeping:
    """Everything attached to an in-flight branch at fetch time."""

    prediction: FrontEndPrediction
    confidence_lookup: Optional[ConfidenceLookup]
    path_token: Optional[object]
    resolved: bool = False


class FetchEngine:
    """Per-thread speculative fetch, path tracking and confidence hookup."""

    def __init__(self, generator: WorkloadGenerator,
                 frontend: FrontEndPredictor,
                 confidence: JRSConfidencePredictor,
                 path_confidence: PathConfidencePredictor,
                 wrongpath_seed: int = 2) -> None:
        self.generator = generator
        self.wrongpath_generator = WrongPathGenerator(generator, seed=wrongpath_seed)
        self.frontend = frontend
        self.confidence = confidence
        self.path_confidence = path_confidence

        self.on_wrong_path = False
        self._pending_mispredict_seq: Optional[int] = None

        self.goodpath_fetched = 0
        self.badpath_fetched = 0
        self.branches_fetched = 0
        self.conditional_branches_fetched = 0

    # ------------------------------------------------------------------ #
    # fetch
    # ------------------------------------------------------------------ #

    def fetch_one(self, seq: int, cycle: int) -> Instruction:
        """Fetch the next instruction (good-path or wrong-path) and predict it."""
        if self.on_wrong_path:
            instr = self.wrongpath_generator.next_instruction(seq)
            self.badpath_fetched += 1
        else:
            instr = self.generator.next_instruction(seq)
            self.goodpath_fetched += 1
        instr.fetch_cycle = cycle
        if instr.is_branch:
            self._predict_branch(instr)
        return instr

    def fetch_generated(self, instr: Optional[Instruction], cycle: int) -> None:
        """Account one externally generated instruction (trace backend).

        The trace-replay engine pulls instructions straight from the
        generators' elided-event stream (``None`` stands for a non-branch
        it never materialised); this hook keeps the engine's fetch
        accounting, branch prediction and wrong-path switching identical
        to :meth:`fetch_one`.
        """
        if self.on_wrong_path:
            self.badpath_fetched += 1
        else:
            self.goodpath_fetched += 1
        if instr is not None:
            instr.fetch_cycle = cycle
            if instr.is_branch:
                self._predict_branch(instr)

    def _predict_branch(self, instr: Instruction) -> None:
        self.branches_fetched += 1
        frontend = self.frontend
        prediction = frontend.predict(instr)
        mispredicted = self._is_mispredicted(instr, prediction)
        prediction.mispredicted = mispredicted
        instr.predicted_taken = prediction.taken
        instr.predicted_target = prediction.target
        instr.mispredicted = mispredicted
        frontend.note_prediction_outcome(instr, prediction, mispredicted)

        confidence_lookup: Optional[ConfidenceLookup] = None
        path_token: Optional[object] = None
        if instr.branch_kind is BranchKind.CONDITIONAL:
            self.conditional_branches_fetched += 1
            confidence_lookup = self.confidence.lookup(
                instr.pc, prediction.history_at_predict, prediction.taken
            )
            info = BranchFetchInfo(
                pc=instr.pc,
                mdc_value=confidence_lookup.mdc_value,
                mdc_index=confidence_lookup.index,
                predicted_taken=prediction.taken,
                history=prediction.history_at_predict,
                static_branch_id=instr.static_branch_id,
                thread_id=instr.thread_id,
            )
            path_token = self.path_confidence.on_branch_fetch(info)
        instr.conf_token = _BranchBookkeeping(
            prediction=prediction,
            confidence_lookup=confidence_lookup,
            path_token=path_token,
        )

        # A mispredicted branch on the good path sends fetch onto the wrong
        # path until it resolves.  Wrong-path "mispredicts" change nothing:
        # we are already fetching instructions that will be squashed.
        if mispredicted and instr.on_goodpath and not self.on_wrong_path:
            self.on_wrong_path = True
            self._pending_mispredict_seq = instr.seq

    @staticmethod
    def _is_mispredicted(instr: Instruction,
                         prediction: FrontEndPrediction) -> bool:
        outcome = instr.outcome
        if outcome is None:
            return False
        if instr.branch_kind is BranchKind.CONDITIONAL:
            return prediction.taken != outcome.taken
        # Control flow with a predicted target: mispredict when the target
        # is unknown (BTB/RAS/indirect miss) or wrong.
        return prediction.target != outcome.target

    # ------------------------------------------------------------------ #
    # resolution / recovery
    # ------------------------------------------------------------------ #

    def resolve_branch(self, instr: Instruction) -> None:
        """Called by the core when a branch executes (good or wrong path)."""
        bookkeeping: Optional[_BranchBookkeeping] = instr.conf_token
        if bookkeeping is None or bookkeeping.resolved:
            return
        bookkeeping.resolved = True
        train = instr.on_goodpath
        self.frontend.resolve(instr, bookkeeping.prediction, train=train)
        if bookkeeping.confidence_lookup is not None and train:
            self.confidence.update(
                bookkeeping.confidence_lookup, was_correct=not instr.mispredicted
            )
        if bookkeeping.path_token is not None:
            if train:
                self.path_confidence.on_branch_resolve(
                    bookkeeping.path_token, mispredicted=instr.mispredicted
                )
            else:
                # Wrong-path branches leave the window without training the
                # mispredict-rate machinery (they never retire).
                self.path_confidence.on_branch_squash(bookkeeping.path_token)

    def squash_branch(self, instr: Instruction) -> None:
        """Called by the core when an unresolved branch is flushed."""
        bookkeeping: Optional[_BranchBookkeeping] = instr.conf_token
        if bookkeeping is None or bookkeeping.resolved:
            return
        bookkeeping.resolved = True
        if bookkeeping.path_token is not None:
            self.path_confidence.on_branch_squash(bookkeeping.path_token)

    def recover(self, mispredicted_instr: Instruction) -> None:
        """Resume good-path fetch after the mispredicted branch resolved."""
        if (self._pending_mispredict_seq is not None
                and mispredicted_instr.seq == self._pending_mispredict_seq):
            self.on_wrong_path = False
            self._pending_mispredict_seq = None

    # ------------------------------------------------------------------ #

    @property
    def fetching_goodpath(self) -> bool:
        """True when the next fetched instruction will be a good-path one."""
        return not self.on_wrong_path
