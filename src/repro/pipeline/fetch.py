"""Speculative fetch engine.

The fetch engine is where the good path and the wrong path meet:

* While on the good path it pulls instructions from the benchmark's
  :class:`~repro.workloads.generator.WorkloadGenerator`, predicts every
  control-flow instruction with the front-end predictor and, because the
  generator also supplies the architectural outcome, knows immediately
  whether the prediction was wrong (this is the oracle knowledge an
  execution-driven simulator has).
* The moment a good-path branch is mispredicted, fetch switches to the
  :class:`~repro.workloads.generator.WrongPathGenerator`; everything
  fetched from then on is wrong-path and will eventually be squashed.
* When the mispredicted branch resolves in the backend, the core calls
  :meth:`FetchEngine.recover` and fetch resumes on the good path.

The engine is also the single place where the confidence machinery is
driven.  Per fetched branch it runs the fused
:class:`~repro.branch_predictor.engine.PredictorStateEngine` hot path —
direction prediction, target prediction, the JRS confidence lookup and
the resolution-time training all operate on one shared
:class:`~repro.branch_predictor.engine.BranchRecord` carried in
``instr.conf_token`` instead of a handful of per-branch token objects.
Path confidence predictors receive the same record as their fetch-time
information and stash their per-branch state in its dedicated slots.
"""

from __future__ import annotations

from typing import Optional

from repro.branch_predictor.engine import BranchRecord, PredictorStateEngine
from repro.branch_predictor.frontend import FrontEndPredictor
from repro.confidence.jrs import JRSConfidencePredictor
from repro.isa.instruction import Instruction
from repro.isa.types import BranchKind
from repro.pathconf.base import PathConfidencePredictor
from repro.workloads.generator import WorkloadGenerator, WrongPathGenerator


class FetchEngine:
    """Per-thread speculative fetch, path tracking and confidence hookup."""

    def __init__(self, generator: WorkloadGenerator,
                 frontend: FrontEndPredictor,
                 confidence: JRSConfidencePredictor,
                 path_confidence: PathConfidencePredictor,
                 wrongpath_seed: int = 2) -> None:
        self.generator = generator
        self.wrongpath_generator = WrongPathGenerator(generator, seed=wrongpath_seed)
        self.frontend = frontend
        self.confidence = confidence
        self.path_confidence = path_confidence
        self.state_engine = PredictorStateEngine(frontend, confidence)

        self.on_wrong_path = False
        self._pending_mispredict_seq: Optional[int] = None

        self.goodpath_fetched = 0
        self.badpath_fetched = 0
        self.branches_fetched = 0
        self.conditional_branches_fetched = 0

    # ------------------------------------------------------------------ #
    # fetch
    # ------------------------------------------------------------------ #

    def fetch_one(self, seq: int, cycle: int) -> Instruction:
        """Fetch the next instruction (good-path or wrong-path) and predict it."""
        if self.on_wrong_path:
            instr = self.wrongpath_generator.next_instruction(seq)
            self.badpath_fetched += 1
        else:
            instr = self.generator.next_instruction(seq)
            self.goodpath_fetched += 1
        instr.fetch_cycle = cycle
        if instr.branch_kind is not BranchKind.NOT_A_BRANCH:
            self._predict_branch(instr)
        return instr

    def _predict_branch(self, instr: Instruction) -> None:
        self.branches_fetched += 1
        record = self.state_engine.predict_branch(instr)
        outcome = instr.outcome
        if record.is_conditional:
            mispredicted = (outcome is not None
                            and record.taken != outcome.taken)
        else:
            # Control flow with a predicted target: mispredict when the
            # target is unknown (BTB/RAS/indirect miss) or wrong.
            mispredicted = (outcome is not None
                            and record.target != outcome.target)
        record.mispredicted = mispredicted
        instr.predicted_taken = record.taken
        instr.predicted_target = record.target
        instr.mispredicted = mispredicted
        # Accuracy bookkeeping (note_prediction_outcome, inlined).
        frontend = self.frontend
        frontend.total_predictions += 1
        if record.is_conditional:
            frontend.conditional_predictions += 1
            if mispredicted:
                frontend.total_mispredictions += 1
                frontend.conditional_mispredictions += 1
            self.conditional_branches_fetched += 1
            record.path_token = self.path_confidence.on_branch_fetch(record)
        elif mispredicted:
            frontend.total_mispredictions += 1
        instr.conf_token = record

        # A mispredicted branch on the good path sends fetch onto the wrong
        # path until it resolves.  Wrong-path "mispredicts" change nothing:
        # we are already fetching instructions that will be squashed.
        if mispredicted and instr.on_goodpath and not self.on_wrong_path:
            self.on_wrong_path = True
            self._pending_mispredict_seq = instr.seq

    # ------------------------------------------------------------------ #
    # block entry points (the trace backend's Instruction-free hot path)
    # ------------------------------------------------------------------ #

    def predict_from_block(self, block, i: int, seq: int,
                           on_goodpath: bool = True) -> BranchRecord:
        """Predict branch ``i`` of a generated branch block.

        The record-based twin of :meth:`_predict_branch`: same predictor
        work (through
        :meth:`~repro.branch_predictor.engine.PredictorStateEngine.predict_columns`),
        same accuracy bookkeeping, same wrong-path switching — but the
        branch arrives as :class:`~repro.workloads.generator.BranchBlock`
        columns and its architectural outcome is stashed in the record's
        outcome slots for resolution, so no Instruction ever exists.
        Fetch counters (``goodpath_fetched`` / ``badpath_fetched``) stay
        with the caller, mirroring how the trace session splits them from
        prediction bookkeeping on the scalar path.
        """
        self.branches_fetched += 1
        kind = block.kind[i]
        record = self.state_engine.predict_columns(
            block.pc[i], kind, block.static_branch_id[i],
            self.generator.thread_id)
        if record.is_conditional:
            mispredicted = record.taken != block.taken[i]
        else:
            mispredicted = record.target != block.target[i]
        record.mispredicted = mispredicted
        # Accuracy bookkeeping (note_prediction_outcome, inlined).
        frontend = self.frontend
        frontend.total_predictions += 1
        if record.is_conditional:
            frontend.conditional_predictions += 1
            if mispredicted:
                frontend.total_mispredictions += 1
                frontend.conditional_mispredictions += 1
            self.conditional_branches_fetched += 1
            record.path_token = self.path_confidence.on_branch_fetch(record)
        elif mispredicted:
            frontend.total_mispredictions += 1
        record.kind = kind
        record.out_taken = block.taken[i]
        record.out_target = block.target[i]
        record.on_goodpath = on_goodpath
        record.seq = seq

        if mispredicted and on_goodpath and not self.on_wrong_path:
            self.on_wrong_path = True
            self._pending_mispredict_seq = seq
        return record

    def resolve_record(self, record: BranchRecord) -> None:
        """Record-based twin of :meth:`resolve_branch` (trace block path)."""
        if record.resolved:
            return
        record.resolved = True
        train = record.on_goodpath
        self.state_engine.resolve_record(record, train)
        token = record.path_token
        if token is not None:
            if train:
                self.path_confidence.on_branch_resolve(
                    token, mispredicted=record.mispredicted
                )
            else:
                self.path_confidence.on_branch_squash(token)

    def squash_record(self, record: BranchRecord) -> None:
        """Record-based twin of :meth:`squash_branch` (trace block path)."""
        if record.resolved:
            return
        record.resolved = True
        if record.path_token is not None:
            self.path_confidence.on_branch_squash(record.path_token)

    # ------------------------------------------------------------------ #
    # resolution / recovery
    # ------------------------------------------------------------------ #

    def resolve_branch(self, instr: Instruction) -> None:
        """Called by the core when a branch executes (good or wrong path)."""
        record: Optional[BranchRecord] = instr.conf_token
        if record is None or record.resolved:
            return
        record.resolved = True
        train = instr.on_goodpath
        self.state_engine.resolve_branch(instr, record, train)
        token = record.path_token
        if token is not None:
            if train:
                self.path_confidence.on_branch_resolve(
                    token, mispredicted=instr.mispredicted
                )
            else:
                # Wrong-path branches leave the window without training the
                # mispredict-rate machinery (they never retire).
                self.path_confidence.on_branch_squash(token)

    def squash_branch(self, instr: Instruction) -> None:
        """Called by the core when an unresolved branch is flushed."""
        record: Optional[BranchRecord] = instr.conf_token
        if record is None or record.resolved:
            return
        record.resolved = True
        if record.path_token is not None:
            self.path_confidence.on_branch_squash(record.path_token)

    def recover(self, mispredicted_instr: Instruction) -> None:
        """Resume good-path fetch after the mispredicted branch resolved."""
        if (self._pending_mispredict_seq is not None
                and mispredicted_instr.seq == self._pending_mispredict_seq):
            self.on_wrong_path = False
            self._pending_mispredict_seq = None

    # ------------------------------------------------------------------ #

    @property
    def fetching_goodpath(self) -> bool:
        """True when the next fetched instruction will be a good-path one."""
        return not self.on_wrong_path
