"""Selective fetch throttling (Aragon et al., HPCA-9).

The paper's related-work section notes that instead of the all-or-nothing
gating of Manne et al., fetch bandwidth can be *gradually* reduced as path
confidence decreases, and argues this should work even better with PaCo
because PaCo provides fine-grained probabilities rather than a small
counter.  This module implements both variants:

* :class:`CountThrottling` — fetch width shrinks as the number of
  unresolved low-confidence branches grows (the conventional design).
* :class:`PaCoThrottling` — fetch width shrinks as PaCo's good-path
  probability falls through a list of probability steps; the comparisons
  happen in encoded space, one integer compare per step.

A throttling policy returns the number of fetch slots allowed this cycle;
``0`` is equivalent to gating.  The out-of-order core accepts a throttling
policy in place of a gating policy via :class:`ThrottledGatingAdapter`,
which also exposes the per-cycle width so future front-end models can use
it directly.
"""

from __future__ import annotations

import abc
from typing import List, Sequence, Tuple

from repro.pathconf.paco import PaCoPredictor
from repro.pathconf.threshold_count import ThresholdAndCountPredictor
from repro.pipeline.gating import GatingPolicy


class ThrottlingPolicy(abc.ABC):
    """Decides how many instructions may be fetched this cycle."""

    name: str = "abstract"

    @abc.abstractmethod
    def allowed_width(self, full_width: int) -> int:
        """Return the number of fetch slots allowed this cycle (0..full_width)."""


class NoThrottling(ThrottlingPolicy):
    """Baseline: always allow the full fetch width."""

    name = "no-throttling"

    def allowed_width(self, full_width: int) -> int:
        return full_width


class CountThrottling(ThrottlingPolicy):
    """Reduce fetch width as the low-confidence branch count grows.

    ``steps`` maps a count threshold to a width fraction; the lowest
    matching entry wins.  The default follows Aragon et al.'s spirit:
    full width below 2 outstanding low-confidence branches, half width at
    2–3, quarter width at 4–5, gated at 6+.
    """

    def __init__(self, predictor: ThresholdAndCountPredictor,
                 steps: Sequence[Tuple[int, float]] = ((2, 0.5), (4, 0.25),
                                                       (6, 0.0))) -> None:
        self.predictor = predictor
        self.steps: List[Tuple[int, float]] = sorted(steps)
        for count, fraction in self.steps:
            if count < 0 or not 0.0 <= fraction <= 1.0:
                raise ValueError("invalid throttling step")
        self.name = f"count-throttling(t={predictor.threshold})"

    def allowed_width(self, full_width: int) -> int:
        count = self.predictor.low_confidence_count
        fraction = 1.0
        for threshold, step_fraction in self.steps:
            if count >= threshold:
                fraction = step_fraction
        return int(round(full_width * fraction))


class PaCoThrottling(ThrottlingPolicy):
    """Reduce fetch width as PaCo's good-path probability falls.

    ``steps`` maps a good-path probability threshold to a width fraction:
    when the probability falls below the threshold, the width fraction
    applies (the lowest matching threshold wins).  Thresholds are converted
    to encoded space once at construction.
    """

    def __init__(self, predictor: PaCoPredictor,
                 steps: Sequence[Tuple[float, float]] = ((0.6, 0.75), (0.4, 0.5),
                                                         (0.2, 0.25),
                                                         (0.08, 0.0))) -> None:
        self.predictor = predictor
        ordered = sorted(steps, reverse=True)
        self._encoded_steps: List[Tuple[int, float]] = []
        for probability, fraction in ordered:
            if not 0.0 < probability < 1.0 or not 0.0 <= fraction <= 1.0:
                raise ValueError("invalid throttling step")
            self._encoded_steps.append(
                (predictor.encoded_threshold(probability), fraction)
            )
        self.name = "paco-throttling"

    def allowed_width(self, full_width: int) -> int:
        register = self.predictor.path_confidence_register
        fraction = 1.0
        for encoded_threshold, step_fraction in self._encoded_steps:
            if register > encoded_threshold:
                fraction = step_fraction
        return int(round(full_width * fraction))


class ThrottledGatingAdapter(GatingPolicy):
    """Adapts a throttling policy to the core's gating interface.

    The current :class:`~repro.pipeline.core.OutOfOrderCore` asks a single
    yes/no gating question per cycle.  The adapter answers "gate" whenever
    the throttling policy allows zero slots, and additionally exposes
    :meth:`allowed_width` so width-aware front ends (and tests) can observe
    the graduated behaviour.
    """

    def __init__(self, throttling: ThrottlingPolicy, full_width: int) -> None:
        if full_width <= 0:
            raise ValueError("full_width must be positive")
        self.throttling = throttling
        self.full_width = full_width
        self.name = f"gated({throttling.name})"

    def allowed_width(self) -> int:
        return self.throttling.allowed_width(self.full_width)

    def should_gate(self) -> bool:
        return self.allowed_width() == 0
