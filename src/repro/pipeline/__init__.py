"""Cycle-approximate out-of-order / SMT pipeline model.

This package is the timing substrate of the reproduction: a 4-wide
out-of-order core with the paper's Table 6 parameters (and the 8-wide,
2-thread SMT configuration of Table 11), driven by the synthetic workloads
of :mod:`repro.workloads`.  The model captures everything the path
confidence mechanisms interact with:

* speculative fetch past unresolved branches (the window PaCo reasons about),
* wrong-path fetch and execution after a misprediction, with recovery when
  the mispredicted branch resolves,
* a cache hierarchy and BTB that wrong-path instructions can pollute,
* pipeline gating driven by a path confidence predictor, and
* SMT fetch arbitration driven by per-thread path confidence.
"""

from repro.pipeline.config import MachineConfig, SMTConfig, CacheConfig
from repro.pipeline.caches import Cache, CacheHierarchy
from repro.pipeline.fetch import FetchEngine
from repro.pipeline.gating import GatingPolicy, NoGating, PaCoGating, CountGating
from repro.pipeline.throttling import (
    ThrottlingPolicy,
    NoThrottling,
    CountThrottling,
    PaCoThrottling,
    ThrottledGatingAdapter,
)
from repro.pipeline.core import OutOfOrderCore, CoreStats, InstanceObserver
from repro.pipeline.fetch_policy import (
    FetchPolicy,
    RoundRobinPolicy,
    ICountPolicy,
    CountConfidencePolicy,
    PaCoConfidencePolicy,
)
from repro.pipeline.smt import SMTCore, SMTStats

__all__ = [
    "MachineConfig",
    "SMTConfig",
    "CacheConfig",
    "Cache",
    "CacheHierarchy",
    "FetchEngine",
    "GatingPolicy",
    "NoGating",
    "PaCoGating",
    "CountGating",
    "ThrottlingPolicy",
    "NoThrottling",
    "CountThrottling",
    "PaCoThrottling",
    "ThrottledGatingAdapter",
    "OutOfOrderCore",
    "CoreStats",
    "InstanceObserver",
    "FetchPolicy",
    "RoundRobinPolicy",
    "ICountPolicy",
    "CountConfidencePolicy",
    "PaCoConfidencePolicy",
    "SMTCore",
    "SMTStats",
]
