"""Set-associative cache models and the two-level hierarchy.

Wrong-path loads and stores access these caches just like good-path ones,
so wrong-path execution pollutes them — the effect behind the paper's
observation that very conservative pipeline gating can slightly *improve*
performance (Section 5.1).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.pipeline.config import CacheConfig, MachineConfig


class Cache:
    """A set-associative, LRU-replacement cache."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.num_sets = config.num_sets
        self._line_shift = config.line_bytes.bit_length() - 1
        if (1 << self._line_shift) != config.line_bytes:
            raise ValueError("cache line size must be a power of two")
        self._sets: Dict[int, List[int]] = {}
        self.accesses = 0
        self.misses = 0
        self.evictions = 0

    def _locate(self, address: int) -> (int, int):
        line = address >> self._line_shift
        index = line % self.num_sets
        tag = line // self.num_sets
        return index, tag

    def access(self, address: int) -> bool:
        """Access the cache; returns True on a hit.  Misses allocate the line."""
        self.accesses += 1
        index, tag = self._locate(address)
        entries = self._sets.get(index)
        if entries is None:
            entries = []
            self._sets[index] = entries
        try:
            position = entries.index(tag)
        except ValueError:
            self.misses += 1
            if len(entries) >= self.config.ways:
                entries.pop()
                self.evictions += 1
            entries.insert(0, tag)
            return False
        if position:
            entries.insert(0, entries.pop(position))
        return True

    def probe(self, address: int) -> bool:
        """Check for a hit without updating LRU state or allocating."""
        index, tag = self._locate(address)
        entries = self._sets.get(index)
        return bool(entries) and tag in entries

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def reset_stats(self) -> None:
        self.accesses = 0
        self.misses = 0
        self.evictions = 0


class CacheHierarchy:
    """L1 instruction cache + L1 data cache + unified L2.

    ``access_data`` and ``access_instruction`` return the extra latency (in
    cycles) the access adds on top of the instruction's base latency:
    0 on an L1 hit, the L1 miss latency on an L1 miss that hits in L2, and
    L1 + L2 miss latencies when both miss.
    """

    def __init__(self, config: MachineConfig) -> None:
        self.l1i = Cache(config.l1i)
        self.l1d = Cache(config.l1d)
        self.l2 = Cache(config.l2)
        self._l1i_miss_latency = config.l1i.miss_latency
        self._l1d_miss_latency = config.l1d.miss_latency
        self._l2_miss_latency = config.l2.miss_latency

    def access_instruction(self, pc: int) -> int:
        """Fetch-side access; returns added latency in cycles."""
        if self.l1i.access(pc):
            return 0
        if self.l2.access(pc):
            return self._l1i_miss_latency
        return self._l1i_miss_latency + self._l2_miss_latency

    def access_data(self, address: int) -> int:
        """Load/store access; returns added latency in cycles."""
        if self.l1d.access(address):
            return 0
        if self.l2.access(address):
            return self._l1d_miss_latency
        return self._l1d_miss_latency + self._l2_miss_latency

    def reset_stats(self) -> None:
        self.l1i.reset_stats()
        self.l1d.reset_stats()
        self.l2.reset_stats()
