"""Return address stack (RAS)."""

from __future__ import annotations

from typing import List, Optional


class ReturnAddressStack:
    """A fixed-depth return address stack with wrap-around overwrite.

    Calls push their fall-through address; returns pop.  Speculative
    wrong-path calls and returns corrupt the stack just as they would in
    hardware (there is no checkpointing here), which keeps return
    mispredictions realistic after deep wrong-path excursions.
    """

    def __init__(self, depth: int = 32) -> None:
        if depth <= 0:
            raise ValueError("RAS depth must be positive")
        self.depth = depth
        self._stack: List[int] = []
        self.pushes = 0
        self.pops = 0
        self.underflows = 0

    def push(self, return_address: int) -> None:
        self.pushes += 1
        if len(self._stack) >= self.depth:
            self._stack.pop(0)
        self._stack.append(return_address)

    def pop(self) -> Optional[int]:
        self.pops += 1
        if not self._stack:
            self.underflows += 1
            return None
        return self._stack.pop()

    def peek(self) -> Optional[int]:
        if not self._stack:
            return None
        return self._stack[-1]

    def __len__(self) -> int:
        return len(self._stack)

    def reset(self) -> None:
        self._stack.clear()
