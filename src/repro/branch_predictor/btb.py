"""Branch target buffer (BTB).

A set-associative target cache.  Besides supplying fetch targets for taken
branches, the BTB is one of the structures the paper's pipeline-gating
discussion cares about: wrong-path fetch can evict useful BTB entries
("BTB pollution", observed for perlbmk), which is why very conservative
gating can slightly *improve* performance.
"""

from __future__ import annotations

from typing import List, Optional


class _BTBSet:
    """One set of the BTB, maintained in LRU order (index 0 = MRU)."""

    __slots__ = ("ways", "entries")

    def __init__(self, ways: int) -> None:
        self.ways = ways
        self.entries: List[List[int]] = []  # each entry is [tag, target]

    def lookup(self, tag: int) -> Optional[int]:
        for position, entry in enumerate(self.entries):
            if entry[0] == tag:
                if position:
                    self.entries.insert(0, self.entries.pop(position))
                return entry[1]
        return None

    def insert(self, tag: int, target: int) -> bool:
        """Insert/refresh an entry; returns True if a victim was evicted."""
        for position, entry in enumerate(self.entries):
            if entry[0] == tag:
                entry[1] = target
                if position:
                    self.entries.insert(0, self.entries.pop(position))
                return False
        evicted = len(self.entries) >= self.ways
        if evicted:
            self.entries.pop()
        self.entries.insert(0, [tag, target])
        return evicted


class BranchTargetBuffer:
    """A set-associative BTB with LRU replacement."""

    def __init__(self, sets: int = 1024, ways: int = 4) -> None:
        if sets <= 0 or ways <= 0:
            raise ValueError("BTB geometry must be positive")
        self.sets = sets
        self.ways = ways
        self._set_mask = sets - 1
        if sets & self._set_mask:
            raise ValueError("number of BTB sets must be a power of two")
        # Flat set array (index = set number) instead of a dict keyed by
        # set number: one list index per lookup on the per-branch hot path.
        self._sets: List[Optional[_BTBSet]] = [None] * sets
        self.lookups = 0
        self.hits = 0
        self.evictions = 0

    def _set_for(self, pc: int) -> _BTBSet:
        index = (pc >> 2) & self._set_mask
        entry = self._sets[index]
        if entry is None:
            entry = _BTBSet(self.ways)
            self._sets[index] = entry
        return entry

    def predict_target(self, pc: int) -> Optional[int]:
        """Return the predicted target for ``pc`` or ``None`` on a BTB miss."""
        self.lookups += 1
        tag = pc >> 2
        entry = self._sets[tag & self._set_mask]
        if entry is None:
            return None
        # _BTBSet.lookup inlined (one call per fetched branch).
        entries = entry.entries
        for position, way in enumerate(entries):
            if way[0] == tag:
                if position:
                    entries.insert(0, entries.pop(position))
                self.hits += 1
                return way[1]
        return None

    def update(self, pc: int, target: int) -> None:
        """Install/refresh the target of a resolved taken branch."""
        tag = pc >> 2
        if self._set_for(pc).insert(tag, target):
            self.evictions += 1

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def reset_stats(self) -> None:
        self.lookups = 0
        self.hits = 0
        self.evictions = 0
