"""Tournament (hybrid) direction predictor: gshare + bimodal + selector.

The paper's machine (Table 6) uses a 96 KB hybrid predictor built from a
32 KB gshare, a 32 KB bimodal and a 32 KB selector with 8 bits of global
history; this module implements the same organisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.branch_predictor.base import BranchPredictionResult, DirectionPredictor
from repro.branch_predictor.bimodal import BimodalPredictor
from repro.branch_predictor.gshare import GSharePredictor


@dataclass(slots=True)
class _TournamentMeta:
    """Per-prediction bookkeeping needed at update time.

    Component predictions are stored as (taken, table index) scalars
    rather than result objects: one meta is built per predicted
    conditional branch, so the allocations matter.
    """

    chooser_index: int
    gshare_taken: bool
    gshare_index: int
    bimodal_taken: bool
    bimodal_index: int
    chose_gshare: bool


class TournamentPredictor(DirectionPredictor):
    """gshare/bimodal hybrid with a global-history-indexed chooser.

    The chooser is a table of 2-bit counters: values at or above the
    midpoint select gshare, below select bimodal.  The chooser trains only
    when the two components disagree.
    """

    def __init__(self, index_bits: int = 15, history_bits: int = 8) -> None:
        self.gshare = GSharePredictor(index_bits=index_bits,
                                      history_bits=history_bits)
        self.bimodal = BimodalPredictor(index_bits=index_bits)
        self.history_bits = history_bits
        self.chooser_bits = index_bits
        self.chooser_size = 1 << index_bits
        self._chooser_mask = self.chooser_size - 1
        self._history_mask = (1 << history_bits) - 1
        # 2 = weakly prefer gshare.
        self.chooser: List[int] = [2] * self.chooser_size

    def _chooser_index(self, pc: int, history: int) -> int:
        return ((pc >> 2) ^ (history & self._history_mask)) & self._chooser_mask

    def predict(self, pc: int, history: int) -> BranchPredictionResult:
        gshare_taken, gshare_index = self.gshare.peek(pc, history)
        bimodal_taken, bimodal_index = self.bimodal.peek(pc)
        chooser_index = self._chooser_index(pc, history)
        chose_gshare = self.chooser[chooser_index] >= 2
        taken = gshare_taken if chose_gshare else bimodal_taken
        meta = _TournamentMeta(
            chooser_index=chooser_index,
            gshare_taken=gshare_taken,
            gshare_index=gshare_index,
            bimodal_taken=bimodal_taken,
            bimodal_index=bimodal_index,
            chose_gshare=chose_gshare,
        )
        return BranchPredictionResult(taken=taken, meta=meta)

    def update(self, pc: int, history: int, taken: bool,
               result: Optional[BranchPredictionResult] = None) -> None:
        if result is None or not isinstance(result.meta, _TournamentMeta):
            # Ahead-of-time training path: recompute indices from history.
            gshare_taken, gshare_index = self.gshare.peek(pc, history)
            bimodal_taken, bimodal_index = self.bimodal.peek(pc)
            chooser_index = self._chooser_index(pc, history)
            meta = _TournamentMeta(
                chooser_index=chooser_index,
                gshare_taken=gshare_taken,
                gshare_index=gshare_index,
                bimodal_taken=bimodal_taken,
                bimodal_index=bimodal_index,
                chose_gshare=self.chooser[chooser_index] >= 2,
            )
        else:
            meta = result.meta
        gshare_correct = meta.gshare_taken == taken
        bimodal_correct = meta.bimodal_taken == taken
        # Train the chooser only on disagreement.
        if gshare_correct != bimodal_correct:
            value = self.chooser[meta.chooser_index]
            if gshare_correct and value < 3:
                self.chooser[meta.chooser_index] = value + 1
            elif bimodal_correct and value > 0:
                self.chooser[meta.chooser_index] = value - 1
        self.gshare.train(meta.gshare_index, taken)
        self.bimodal.train(meta.bimodal_index, taken)

    def reset(self) -> None:
        self.gshare.reset()
        self.bimodal.reset()
        # In place: the predictor state engine borrows this list.
        self.chooser[:] = [2] * self.chooser_size
