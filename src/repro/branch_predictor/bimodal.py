"""Bimodal (per-PC two-bit counter) direction predictor."""

from __future__ import annotations

from typing import List, Optional

from repro.branch_predictor.base import BranchPredictionResult, DirectionPredictor


class BimodalPredictor(DirectionPredictor):
    """A classic bimodal predictor: a table of 2-bit saturating counters.

    The paper's machine uses a 32 KB bimodal component inside the
    tournament predictor; with 2-bit counters that is 2^17 entries.  The
    default here is smaller (2^15) purely to keep Python memory use modest —
    the table is still far larger than the synthetic static branch
    population, so aliasing behaviour is unaffected.
    """

    def __init__(self, index_bits: int = 15, counter_bits: int = 2) -> None:
        if index_bits <= 0 or counter_bits <= 0:
            raise ValueError("table and counter widths must be positive")
        self.index_bits = index_bits
        self.counter_bits = counter_bits
        self.size = 1 << index_bits
        self._mask = self.size - 1
        self._max = (1 << counter_bits) - 1
        self._threshold = 1 << (counter_bits - 1)
        # Initialise to weakly taken.
        self.table: List[int] = [self._threshold] * self.size

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def predict(self, pc: int, history: int = 0) -> BranchPredictionResult:
        index = self._index(pc)
        taken = self.table[index] >= self._threshold
        return BranchPredictionResult(taken=taken, meta=index)

    def peek(self, pc: int) -> "tuple[bool, int]":
        """(taken, index) without allocating a result object (hot path)."""
        index = (pc >> 2) & self._mask
        return self.table[index] >= self._threshold, index

    def train(self, index: int, taken: bool) -> None:
        """Saturating-counter update of one entry (hot path)."""
        value = self.table[index]
        if taken:
            if value < self._max:
                self.table[index] = value + 1
        elif value > 0:
            self.table[index] = value - 1

    def update(self, pc: int, history: int, taken: bool,
               result: Optional[BranchPredictionResult] = None) -> None:
        index = result.meta if result is not None else self._index(pc)
        value = self.table[index]
        if taken:
            if value < self._max:
                self.table[index] = value + 1
        else:
            if value > 0:
                self.table[index] = value - 1

    def reset(self) -> None:
        # In place: the predictor state engine borrows this list.
        self.table[:] = [self._threshold] * self.size
