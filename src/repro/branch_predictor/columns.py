"""The columnar predictor-state container.

Every per-branch structure the fused
:class:`~repro.branch_predictor.engine.PredictorStateEngine` touches —
the tournament predictor's gshare/bimodal counter tables and chooser, the
BTB/RAS/indirect target structures, the global history register and the
JRS confidence table — already stores its hot state as flat contiguous
lists of small ints with precomputed masks.  :class:`PredictorColumns`
captures all of those references (and the masks/thresholds that go with
them) in one explicit state object, so that every consumer of the flat
state shares a single capture instead of each re-plucking private
attributes off the component objects:

* the scalar :class:`~repro.branch_predictor.engine.PredictorStateEngine`
  copies the captured references into its own ``__slots__`` locals-style
  attributes (bit-identical to the previous direct capture — the engine
  remains the parity reference for both backends);
* the vectorized :class:`~repro.backends.vec.VectorEngine` runs numpy
  index precomputation over the same columns *in place* — there is one
  copy of every table, shared by both engines, so scalar and vectorized
  spans of one simulation interleave freely.

The component objects remain the owners of their storage: statistics
counters and in-place ``reset`` implementations keep working, and the
scalar accessors below read/write through the shared references.  If a
component ever replaces a table object wholesale, re-:meth:`capture` (the
engine's ``rebind`` does exactly that).
"""

from __future__ import annotations

from typing import Optional

from repro.branch_predictor.frontend import FrontEndPredictor
from repro.confidence.jrs import JRSConfidencePredictor


class PredictorColumns:
    """Flat predictor/confidence state captured as explicit columns."""

    __slots__ = (
        # structural components (stateful objects, shared by reference)
        "history", "btb", "ras", "indirect",
        # tournament columns
        "gshare_table", "gshare_mask", "gshare_history_mask",
        "gshare_max", "gshare_threshold",
        "bimodal_table", "bimodal_mask", "bimodal_max", "bimodal_threshold",
        "chooser", "chooser_mask", "chooser_history_mask",
        # JRS confidence columns (absent -> jrs_table is None)
        "jrs_table", "jrs_mask", "jrs_history_mask", "jrs_enhanced_shift",
        "jrs_max",
    )

    @classmethod
    def capture(cls, frontend: FrontEndPredictor,
                confidence: Optional[JRSConfidencePredictor] = None,
                ) -> "PredictorColumns":
        """Capture the flat state of a front end (+ optional JRS table)."""
        self = cls()
        self.history = frontend.history
        self.btb = frontend.btb
        self.ras = frontend.ras
        self.indirect = frontend.indirect

        tournament = frontend.direction
        gshare = tournament.gshare
        self.gshare_table = gshare.table
        self.gshare_mask = gshare._mask
        self.gshare_history_mask = gshare._history_mask
        self.gshare_max = gshare._max
        self.gshare_threshold = gshare._threshold
        bimodal = tournament.bimodal
        self.bimodal_table = bimodal.table
        self.bimodal_mask = bimodal._mask
        self.bimodal_max = bimodal._max
        self.bimodal_threshold = bimodal._threshold
        self.chooser = tournament.chooser
        self.chooser_mask = tournament._chooser_mask
        self.chooser_history_mask = tournament._history_mask

        if confidence is not None:
            self.jrs_table = confidence.table
            self.jrs_mask = confidence._mask
            self.jrs_history_mask = confidence._history_mask
            self.jrs_enhanced_shift = (confidence.index_bits - 1
                                       if confidence.enhanced else -1)
            self.jrs_max = confidence.mdc_max
        else:
            self.jrs_table = None
            self.jrs_mask = 0
            self.jrs_history_mask = 0
            self.jrs_enhanced_shift = -1
            self.jrs_max = 0
        return self

    # ------------------------------------------------------------------ #
    # scalar accessors
    #
    # The engines inline the index arithmetic on their hot paths; these
    # accessors are the readable single-entry surface for everything else
    # (tests, diagnostics, future engines) and define the indexing scheme
    # in one place.
    # ------------------------------------------------------------------ #

    def gshare_index(self, pc: int, history: int) -> int:
        return (((pc >> 2) ^ (history & self.gshare_history_mask))
                & self.gshare_mask)

    def bimodal_index(self, pc: int) -> int:
        return (pc >> 2) & self.bimodal_mask

    def chooser_index(self, pc: int, history: int) -> int:
        return (((pc >> 2) ^ (history & self.chooser_history_mask))
                & self.chooser_mask)

    def jrs_index(self, pc: int, history: int, taken: bool) -> int:
        index = (((pc >> 2) ^ (history & self.jrs_history_mask))
                 & self.jrs_mask)
        shift = self.jrs_enhanced_shift
        if shift >= 0 and taken:
            index = (index ^ (1 << shift)) & self.jrs_mask
        return index

    def gshare_counter(self, index: int) -> int:
        return self.gshare_table[index]

    def bimodal_counter(self, index: int) -> int:
        return self.bimodal_table[index]

    def chooser_counter(self, index: int) -> int:
        return self.chooser[index]

    def jrs_counter(self, index: int) -> int:
        return self.jrs_table[index]

    @property
    def history_bits(self) -> int:
        return self.history.bits

    @property
    def history_mask(self) -> int:
        return self.history.mask
