"""gshare (global-history XOR PC) direction predictor."""

from __future__ import annotations

from typing import List, Optional

from repro.branch_predictor.base import BranchPredictionResult, DirectionPredictor


class GSharePredictor(DirectionPredictor):
    """The gshare component of the tournament predictor.

    Indexing XORs the branch PC with the global history register; the
    history length defaults to the paper's 8 bits.  Entries are 2-bit
    saturating counters initialised to weakly taken.
    """

    def __init__(self, index_bits: int = 15, history_bits: int = 8,
                 counter_bits: int = 2) -> None:
        if index_bits <= 0 or history_bits <= 0:
            raise ValueError("table and history widths must be positive")
        if history_bits > index_bits:
            raise ValueError("history must not be wider than the table index")
        self.index_bits = index_bits
        self.history_bits = history_bits
        self.size = 1 << index_bits
        self._mask = self.size - 1
        self._history_mask = (1 << history_bits) - 1
        self._max = (1 << counter_bits) - 1
        self._threshold = 1 << (counter_bits - 1)
        self.table: List[int] = [self._threshold] * self.size

    def _index(self, pc: int, history: int) -> int:
        return ((pc >> 2) ^ (history & self._history_mask)) & self._mask

    def predict(self, pc: int, history: int) -> BranchPredictionResult:
        index = self._index(pc, history)
        taken = self.table[index] >= self._threshold
        return BranchPredictionResult(taken=taken, meta=index)

    def peek(self, pc: int, history: int) -> "tuple[bool, int]":
        """(taken, index) without allocating a result object (hot path)."""
        index = ((pc >> 2) ^ (history & self._history_mask)) & self._mask
        return self.table[index] >= self._threshold, index

    def train(self, index: int, taken: bool) -> None:
        """Saturating-counter update of one entry (hot path)."""
        value = self.table[index]
        if taken:
            if value < self._max:
                self.table[index] = value + 1
        elif value > 0:
            self.table[index] = value - 1

    def update(self, pc: int, history: int, taken: bool,
               result: Optional[BranchPredictionResult] = None) -> None:
        index = result.meta if result is not None else self._index(pc, history)
        value = self.table[index]
        if taken:
            if value < self._max:
                self.table[index] = value + 1
        else:
            if value > 0:
                self.table[index] = value - 1

    def reset(self) -> None:
        # In place: the predictor state engine borrows this list.
        self.table[:] = [self._threshold] * self.size
