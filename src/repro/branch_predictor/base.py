"""Direction-predictor interface shared by all predictors."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional


@dataclass(slots=True)
class BranchPredictionResult:
    """The outcome of one direction prediction.

    ``meta`` carries whatever the predictor needs at update time (table
    indices computed from the speculative history, chooser indices, ...),
    so the update can be applied to exactly the entries consulted at
    prediction time even though the history has moved on since.
    """

    taken: bool
    meta: object = None


class DirectionPredictor(abc.ABC):
    """A conditional-branch direction predictor."""

    @abc.abstractmethod
    def predict(self, pc: int, history: int) -> BranchPredictionResult:
        """Predict the direction of the branch at ``pc`` given the global history."""

    @abc.abstractmethod
    def update(self, pc: int, history: int, taken: bool,
               result: Optional[BranchPredictionResult] = None) -> None:
        """Train the predictor with the resolved outcome.

        ``history`` must be the history value that was used at prediction
        time; ``result`` is the object returned by :meth:`predict` for this
        dynamic branch (may be ``None`` for ahead-of-time training).
        """

    def reset(self) -> None:
        """Clear all predictor state (optional for subclasses)."""
        raise NotImplementedError
