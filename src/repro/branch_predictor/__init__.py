"""Branch prediction substrate.

Implements the front-end prediction structures of the paper's machine
(Table 6): a large tournament predictor (32 KB gshare + 32 KB bimodal +
32 KB selector, 8 bits of global history), a branch target buffer, a return
address stack and a last-target indirect predictor.  The confidence
machinery in :mod:`repro.confidence` and :mod:`repro.pathconf` sits on top
of the predictions these structures produce.
"""

from repro.branch_predictor.history import GlobalHistory
from repro.branch_predictor.base import DirectionPredictor, BranchPredictionResult
from repro.branch_predictor.bimodal import BimodalPredictor
from repro.branch_predictor.gshare import GSharePredictor
from repro.branch_predictor.tournament import TournamentPredictor
from repro.branch_predictor.btb import BranchTargetBuffer
from repro.branch_predictor.ras import ReturnAddressStack
from repro.branch_predictor.indirect import IndirectTargetPredictor
from repro.branch_predictor.frontend import FrontEndPredictor, FrontEndPrediction
from repro.branch_predictor.engine import BranchRecord, PredictorStateEngine

__all__ = [
    "GlobalHistory",
    "DirectionPredictor",
    "BranchPredictionResult",
    "BimodalPredictor",
    "GSharePredictor",
    "TournamentPredictor",
    "BranchTargetBuffer",
    "ReturnAddressStack",
    "IndirectTargetPredictor",
    "FrontEndPredictor",
    "FrontEndPrediction",
    "BranchRecord",
    "PredictorStateEngine",
]
