"""Global branch history register."""

from __future__ import annotations


class GlobalHistory:
    """A speculatively updated global history of conditional-branch outcomes.

    The fetch engine updates the history with the *predicted* direction as
    soon as a branch is predicted (speculative update); when a branch turns
    out to be mispredicted the history is repaired from the snapshot taken
    at prediction time, exactly as a checkpointing front end would do.
    """

    __slots__ = ("bits", "mask", "value")

    def __init__(self, bits: int = 8, initial: int = 0) -> None:
        if bits <= 0:
            raise ValueError("history length must be positive")
        self.bits = bits
        self.mask = (1 << bits) - 1
        self.value = initial & self.mask

    def snapshot(self) -> int:
        """Return the current history value (for checkpoint/repair)."""
        return self.value

    def restore(self, snapshot: int) -> None:
        """Restore a previously snapshotted history value."""
        self.value = snapshot & self.mask

    def push(self, taken: bool) -> None:
        """Shift in one (predicted or resolved) conditional-branch outcome."""
        self.value = ((self.value << 1) | (1 if taken else 0)) & self.mask

    def repair_and_push(self, snapshot: int, taken: bool) -> None:
        """Repair to ``snapshot`` then push the *actual* outcome of the branch."""
        self.restore(snapshot)
        self.push(taken)

    def __int__(self) -> int:
        return self.value
