"""Front-end predictor: direction + target prediction bundled together.

:class:`FrontEndPredictor` is what the fetch engine talks to.  For every
fetched control-flow instruction it produces a :class:`FrontEndPrediction`
carrying the predicted direction and target, the global-history value the
tables were indexed with (needed by the JRS confidence predictor and for
update-time index recomputation), and whether the BTB hit.  Direction
history is updated speculatively at prediction time and repaired when a
conditional branch resolves as mispredicted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.branch_predictor.base import BranchPredictionResult
from repro.branch_predictor.btb import BranchTargetBuffer
from repro.branch_predictor.history import GlobalHistory
from repro.branch_predictor.indirect import IndirectTargetPredictor
from repro.branch_predictor.ras import ReturnAddressStack
from repro.branch_predictor.tournament import TournamentPredictor
from repro.isa.instruction import Instruction
from repro.isa.types import BranchKind


@dataclass(slots=True)
class FrontEndPrediction:
    """Everything the fetch engine and the confidence machinery need to know
    about one branch prediction."""

    taken: bool
    target: Optional[int]
    history_at_predict: int
    direction_result: Optional[BranchPredictionResult]
    btb_hit: bool
    mispredicted: bool  #: filled in by the fetch engine (it knows the outcome)


class FrontEndPredictor:
    """Tournament direction predictor + BTB + RAS + indirect predictor."""

    def __init__(self, history_bits: int = 8, direction_index_bits: int = 15,
                 btb_sets: int = 1024, btb_ways: int = 4,
                 ras_depth: int = 32) -> None:
        self.history = GlobalHistory(bits=history_bits)
        self.direction = TournamentPredictor(index_bits=direction_index_bits,
                                             history_bits=history_bits)
        self.btb = BranchTargetBuffer(sets=btb_sets, ways=btb_ways)
        self.ras = ReturnAddressStack(depth=ras_depth)
        self.indirect = IndirectTargetPredictor()

        self.conditional_predictions = 0
        self.conditional_mispredictions = 0
        self.total_predictions = 0
        self.total_mispredictions = 0

    # ------------------------------------------------------------------ #
    # prediction
    # ------------------------------------------------------------------ #

    def predict(self, instr: Instruction) -> FrontEndPrediction:
        """Predict direction and target for a fetched control-flow instruction.

        The returned prediction's ``mispredicted`` flag is resolved by the
        caller (the fetch engine knows the architectural outcome); this
        method only computes the machine-visible prediction and performs the
        speculative history / RAS updates a real front end would perform.
        """
        if not instr.is_branch:
            raise ValueError("predict() called on a non-branch instruction")
        history_now = self.history.value  # snapshot(), inlined (hot path)
        kind = instr.branch_kind

        if kind is BranchKind.CONDITIONAL:
            result = self.direction.predict(instr.pc, history_now)
            btb_target = self.btb.predict_target(instr.pc)
            target = btb_target if result.taken else None
            prediction = FrontEndPrediction(
                taken=result.taken,
                target=target,
                history_at_predict=history_now,
                direction_result=result,
                btb_hit=btb_target is not None,
                mispredicted=False,
            )
            # Speculative global-history update with the predicted direction.
            self.history.push(result.taken)
            return prediction

        if kind in (BranchKind.UNCONDITIONAL, BranchKind.CALL):
            btb_target = self.btb.predict_target(instr.pc)
            if kind is BranchKind.CALL:
                self.ras.push(instr.pc + 4)
            return FrontEndPrediction(
                taken=True,
                target=btb_target,
                history_at_predict=history_now,
                direction_result=None,
                btb_hit=btb_target is not None,
                mispredicted=False,
            )

        if kind is BranchKind.RETURN:
            target = self.ras.pop()
            return FrontEndPrediction(
                taken=True,
                target=target,
                history_at_predict=history_now,
                direction_result=None,
                btb_hit=target is not None,
                mispredicted=False,
            )

        # Indirect jump / indirect call.
        target = self.indirect.predict_target(instr.pc, history_now)
        if target is None:
            target = self.btb.predict_target(instr.pc)
        if kind is BranchKind.INDIRECT_CALL:
            self.ras.push(instr.pc + 4)
        return FrontEndPrediction(
            taken=True,
            target=target,
            history_at_predict=history_now,
            direction_result=None,
            btb_hit=target is not None,
            mispredicted=False,
        )

    # ------------------------------------------------------------------ #
    # resolution / training
    # ------------------------------------------------------------------ #

    def resolve(self, instr: Instruction, prediction: FrontEndPrediction,
                train: bool = True) -> None:
        """Resolve a branch: repair history on a mispredict and train the tables.

        ``train`` should be True only for good-path branches (training on
        squashed wrong-path branches would be architecturally wrong); the
        history repair, however, always happens for mispredicted conditional
        branches because the front end redirects on them regardless of path.
        """
        if instr.outcome is None:
            raise ValueError("cannot resolve a branch without an outcome")
        kind = instr.branch_kind
        actual_taken = instr.outcome.taken
        actual_target = instr.outcome.target

        if kind is BranchKind.CONDITIONAL:
            if prediction.mispredicted:
                self.history.repair_and_push(
                    prediction.history_at_predict, actual_taken
                )
            if train:
                self.direction.update(
                    instr.pc, prediction.history_at_predict, actual_taken,
                    prediction.direction_result,
                )
                if actual_taken:
                    self.btb.update(instr.pc, actual_target)
            return

        if train:
            if kind in (BranchKind.UNCONDITIONAL, BranchKind.CALL):
                self.btb.update(instr.pc, actual_target)
            elif kind in (BranchKind.INDIRECT, BranchKind.INDIRECT_CALL):
                self.indirect.update(instr.pc, actual_target,
                                     prediction.history_at_predict)
                self.btb.update(instr.pc, actual_target)

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #

    def note_prediction_outcome(self, instr: Instruction,
                                prediction: FrontEndPrediction,
                                mispredicted: bool) -> None:
        """Record accuracy statistics (called by the fetch engine)."""
        self.total_predictions += 1
        if mispredicted:
            self.total_mispredictions += 1
        if instr.branch_kind is BranchKind.CONDITIONAL:
            self.conditional_predictions += 1
            if mispredicted:
                self.conditional_mispredictions += 1

    @property
    def conditional_mispredict_rate(self) -> float:
        if self.conditional_predictions == 0:
            return 0.0
        return self.conditional_mispredictions / self.conditional_predictions

    @property
    def overall_mispredict_rate(self) -> float:
        if self.total_predictions == 0:
            return 0.0
        return self.total_mispredictions / self.total_predictions
