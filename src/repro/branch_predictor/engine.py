"""The fused predictor state engine — the per-branch hot path.

Every fetched branch used to drag five or six heap objects through the
machine: a :class:`~repro.branch_predictor.base.BranchPredictionResult`
wrapping a ``_TournamentMeta``, a ``FrontEndPrediction``, a JRS
``ConfidenceLookup``, a ``BranchFetchInfo`` for the path confidence
predictors, one token object *per* attached path confidence predictor and
a ``_BranchBookkeeping`` envelope tying them together.  Both simulation
backends execute this machinery once per branch, so the allocations and
the method-call indirection dominated the trace backend's wall clock and
a good share of the cycle backend's.

This module fuses all of that into one structure:

* :class:`BranchRecord` — a single ``__slots__`` record carrying the
  direction prediction, the precomputed table indices of every structure
  consulted at fetch (gshare, bimodal, chooser, JRS), the fetch-time
  confidence information the path confidence predictors consume, and a
  dedicated state slot per built-in path confidence predictor.  One
  record is allocated per fetched branch; everything else writes into it.
* :class:`PredictorStateEngine` — straight-line predict/resolve code
  operating on the *flat table storage* (plain contiguous lists of small
  ints) borrowed from the tournament predictor and the JRS table, with
  all masks and thresholds hoisted into locals.

:class:`~repro.branch_predictor.frontend.FrontEndPredictor` keeps its
object-per-step ``predict``/``resolve`` as the readable reference
implementation; the engine is required to be *behaviour-identical* to it
(``tests/test_predictor_engine.py`` pins the two together over random
branch streams), which is what keeps the cycle backend's golden results
byte-identical across this refactor.
"""

from __future__ import annotations

from typing import Optional

from repro.branch_predictor.columns import PredictorColumns
from repro.branch_predictor.frontend import FrontEndPredictor
from repro.confidence.jrs import JRSConfidencePredictor
from repro.isa.instruction import Instruction
from repro.isa.types import BranchKind


class BranchRecord:
    """The fused per-branch record shared by the whole predictor stack.

    One :class:`BranchRecord` is allocated per fetched branch and carries
    four groups of state:

    * the *fetch-time confidence information* path confidence predictors
      receive (``pc``, ``mdc_value``, ``mdc_index``, ``predicted_taken``,
      ``history``, ``static_branch_id``, ``thread_id``) — this class **is**
      the ``BranchFetchInfo`` of :mod:`repro.pathconf.base`;
    * the front-end prediction (``taken``, ``target``, ``btb_hit``,
      ``mispredicted``);
    * the precomputed table indices and component outcomes needed to train
      exactly the entries consulted at prediction time (``gshare_index``,
      ``bimodal_index``, ``chooser_index``, ...);
    * one state slot per built-in path confidence predictor
      (``encoded_added`` for PaCo, ``static_encoded`` for Static-MRT,
      ``table_index``/``pbm_encoded`` for the per-branch MRT,
      ``counted`` for threshold-and-count, ``profile_bucket`` for the MDC
      profiler) plus the opaque ``path_token`` returned by whatever path
      confidence predictor is attached.

    Because the per-predictor slots live on the shared record, at most one
    instance of each built-in predictor class can observe a given fetch
    stream (the composite enforces this); that mirrors the hardware, where
    each confidence structure exists once.
    """

    __slots__ = (
        # fetch-time confidence information (the BranchFetchInfo surface)
        "pc",
        "mdc_value",
        "mdc_index",
        "predicted_taken",
        "history",
        "static_branch_id",
        "thread_id",
        # front-end prediction
        "taken",
        "target",
        "btb_hit",
        "mispredicted",
        # precomputed table indices / component outcomes for update time
        "gshare_taken",
        "gshare_index",
        "bimodal_taken",
        "bimodal_index",
        "chooser_index",
        "chose_gshare",
        # per-predictor path confidence state (None = not attached/removed)
        "encoded_added",
        "static_encoded",
        "table_index",
        "pbm_encoded",
        "counted",
        "profile_bucket",
        "path_token",
        # in-flight bookkeeping
        "resolved",
        "is_conditional",
        # trace block path only: the architectural outcome rides in the
        # record because no Instruction is materialized.  Set by
        # FetchEngine.predict_from_block, never by __init__ (the cycle
        # path pays nothing for them).
        "kind",
        "out_taken",
        "out_target",
        "on_goodpath",
        "seq",
    )

    def __init__(self, pc: int = 0, mdc_value: int = 0, mdc_index: int = 0,
                 predicted_taken: bool = False, history: int = 0,
                 static_branch_id: Optional[int] = None,
                 thread_id: int = 0) -> None:
        self.pc = pc
        self.mdc_value = mdc_value
        self.mdc_index = mdc_index
        self.predicted_taken = predicted_taken
        self.history = history
        self.static_branch_id = static_branch_id
        self.thread_id = thread_id

        self.taken = predicted_taken
        self.target: Optional[int] = None
        self.btb_hit = False
        self.mispredicted = False

        self.gshare_taken = False
        self.gshare_index = 0
        self.bimodal_taken = False
        self.bimodal_index = 0
        self.chooser_index = 0
        self.chose_gshare = False

        self.encoded_added: Optional[int] = None
        self.static_encoded: Optional[int] = None
        self.table_index = 0
        self.pbm_encoded: Optional[int] = None
        self.counted: Optional[bool] = None
        self.profile_bucket: Optional[int] = None
        self.path_token: object = None

        self.resolved = False
        self.is_conditional = True

    @property
    def history_at_predict(self) -> int:
        """Alias matching ``FrontEndPrediction`` (the reference object)."""
        return self.history

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (f"<BranchRecord pc={self.pc:#x} taken={self.taken} "
                f"mdc={self.mdc_value} resolved={self.resolved}>")


class PredictorStateEngine:
    """Fused predict/resolve over the flat predictor and confidence tables.

    The engine borrows the *storage* of an existing
    :class:`~repro.branch_predictor.frontend.FrontEndPredictor` and
    :class:`~repro.confidence.jrs.JRSConfidencePredictor` — the component
    objects remain the owners (their statistics counters and ``reset``
    methods keep working, and direct unit tests keep exercising them) while
    the engine performs the per-branch work with precomputed indices on the
    shared flat lists.  Component ``reset`` implementations clear their
    tables *in place* so the borrowed references stay valid; call
    :meth:`rebind` if a table object is ever replaced wholesale.
    """

    __slots__ = (
        "frontend", "confidence", "columns",
        "_history",
        "_btb", "_ras", "_indirect",
        # tournament flat state
        "_gshare_table", "_gshare_mask", "_gshare_hist_mask",
        "_gshare_max", "_gshare_threshold",
        "_bimodal_table", "_bimodal_mask", "_bimodal_max",
        "_bimodal_threshold",
        "_chooser", "_chooser_mask", "_chooser_hist_mask",
        # JRS flat state
        "_jrs_table", "_jrs_mask", "_jrs_hist_mask", "_jrs_enhanced_shift",
        "_jrs_max",
    )

    def __init__(self, frontend: FrontEndPredictor,
                 confidence: Optional[JRSConfidencePredictor] = None) -> None:
        self.frontend = frontend
        self.confidence = confidence
        self.rebind()

    def rebind(self) -> None:
        """(Re)capture table references, masks and thresholds.

        The capture itself lives in
        :class:`~repro.branch_predictor.columns.PredictorColumns` — one
        explicit columnar state object shared with the vectorized engine —
        and is copied into this engine's flat ``__slots__`` attributes so
        the per-branch hot path keeps its single-attribute loads.
        """
        columns = PredictorColumns.capture(self.frontend, self.confidence)
        self.columns = columns
        self._history = columns.history
        self._btb = columns.btb
        self._ras = columns.ras
        self._indirect = columns.indirect

        self._gshare_table = columns.gshare_table
        self._gshare_mask = columns.gshare_mask
        self._gshare_hist_mask = columns.gshare_history_mask
        self._gshare_max = columns.gshare_max
        self._gshare_threshold = columns.gshare_threshold
        self._bimodal_table = columns.bimodal_table
        self._bimodal_mask = columns.bimodal_mask
        self._bimodal_max = columns.bimodal_max
        self._bimodal_threshold = columns.bimodal_threshold
        self._chooser = columns.chooser
        self._chooser_mask = columns.chooser_mask
        self._chooser_hist_mask = columns.chooser_history_mask

        self._jrs_table = columns.jrs_table
        self._jrs_mask = columns.jrs_mask
        self._jrs_hist_mask = columns.jrs_history_mask
        self._jrs_enhanced_shift = columns.jrs_enhanced_shift
        self._jrs_max = columns.jrs_max

    # ------------------------------------------------------------------ #
    # fetch-time: predict + confidence lookup
    # ------------------------------------------------------------------ #

    def predict_branch(self, instr: Instruction) -> BranchRecord:
        """Predict a fetched control-flow instruction.

        Behaviour-identical to
        :meth:`FrontEndPredictor.predict <repro.branch_predictor.frontend.FrontEndPredictor.predict>`
        — same table reads, same speculative history/RAS updates, same BTB
        LRU touches — plus, for conditional branches, the JRS confidence
        lookup that used to be a separate step in the fetch engine.
        """
        kind = instr.branch_kind
        if kind is BranchKind.NOT_A_BRANCH:
            raise ValueError("predict_branch() called on a non-branch instruction")
        pc = instr.pc
        history = self._history
        history_now = history.value

        if kind is BranchKind.CONDITIONAL:
            pc_bits = pc >> 2
            gshare_index = ((pc_bits ^ (history_now & self._gshare_hist_mask))
                            & self._gshare_mask)
            gshare_taken = (self._gshare_table[gshare_index]
                            >= self._gshare_threshold)
            bimodal_index = pc_bits & self._bimodal_mask
            bimodal_taken = (self._bimodal_table[bimodal_index]
                             >= self._bimodal_threshold)
            chooser_index = ((pc_bits ^ (history_now & self._chooser_hist_mask))
                             & self._chooser_mask)
            chose_gshare = self._chooser[chooser_index] >= 2
            taken = gshare_taken if chose_gshare else bimodal_taken

            btb_target = self._btb.predict_target(pc)

            record = BranchRecord(pc, 0, 0, taken, history_now,
                                  instr.static_branch_id, instr.thread_id)
            record.target = btb_target if taken else None
            record.btb_hit = btb_target is not None
            record.gshare_taken = gshare_taken
            record.gshare_index = gshare_index
            record.bimodal_taken = bimodal_taken
            record.bimodal_index = bimodal_index
            record.chooser_index = chooser_index
            record.chose_gshare = chose_gshare

            jrs_table = self._jrs_table
            if jrs_table is not None:
                index = ((pc_bits ^ (history_now & self._jrs_hist_mask))
                         & self._jrs_mask)
                shift = self._jrs_enhanced_shift
                if shift >= 0 and taken:
                    index = (index ^ (1 << shift)) & self._jrs_mask
                confidence = self.confidence
                confidence.lookups += 1
                record.mdc_index = index
                record.mdc_value = jrs_table[index]

            # Speculative global-history update with the predicted direction.
            history.value = (((history_now << 1) | (1 if taken else 0))
                             & history.mask)
            return record

        record = BranchRecord(pc, 0, 0, True, history_now,
                              instr.static_branch_id, instr.thread_id)
        record.is_conditional = False
        if kind in (BranchKind.UNCONDITIONAL, BranchKind.CALL):
            target = self._btb.predict_target(pc)
            if kind is BranchKind.CALL:
                self._ras.push(pc + 4)
        elif kind is BranchKind.RETURN:
            target = self._ras.pop()
        else:  # indirect jump / indirect call
            target = self._indirect.predict_target(pc, history_now)
            if target is None:
                target = self._btb.predict_target(pc)
            if kind is BranchKind.INDIRECT_CALL:
                self._ras.push(pc + 4)
        record.target = target
        record.btb_hit = target is not None
        return record

    # ------------------------------------------------------------------ #
    # resolution-time: history repair + table training
    # ------------------------------------------------------------------ #

    def resolve_branch(self, instr: Instruction, record: BranchRecord,
                       train: bool) -> None:
        """Resolve a branch: repair history, train the tables consulted at
        fetch, and (for trained conditional branches) update the JRS entry.

        Behaviour-identical to
        :meth:`FrontEndPredictor.resolve <repro.branch_predictor.frontend.FrontEndPredictor.resolve>`
        followed by ``JRSConfidencePredictor.update``.
        """
        outcome = instr.outcome
        if outcome is None:
            raise ValueError("cannot resolve a branch without an outcome")

        if record.is_conditional:
            actual_taken = outcome.taken
            if record.mispredicted:
                history = self._history
                history.value = ((((record.history & history.mask) << 1)
                                  | (1 if actual_taken else 0)) & history.mask)
            if not train:
                return
            # Tournament training with the indices consulted at fetch:
            # chooser first (only on component disagreement), then both
            # component tables — exactly the reference update order.
            gshare_correct = record.gshare_taken == actual_taken
            bimodal_correct = record.bimodal_taken == actual_taken
            if gshare_correct != bimodal_correct:
                chooser = self._chooser
                index = record.chooser_index
                value = chooser[index]
                if gshare_correct:
                    if value < 3:
                        chooser[index] = value + 1
                elif value > 0:
                    chooser[index] = value - 1
            table = self._gshare_table
            index = record.gshare_index
            value = table[index]
            if actual_taken:
                if value < self._gshare_max:
                    table[index] = value + 1
            elif value > 0:
                table[index] = value - 1
            table = self._bimodal_table
            index = record.bimodal_index
            value = table[index]
            if actual_taken:
                if value < self._bimodal_max:
                    table[index] = value + 1
            elif value > 0:
                table[index] = value - 1
            if actual_taken:
                self._btb.update(instr.pc, outcome.target)
            # JRS miss-distance-counter update on the entry read at fetch.
            jrs_table = self._jrs_table
            if jrs_table is not None:
                confidence = self.confidence
                confidence.updates += 1
                index = record.mdc_index
                if record.mispredicted:
                    confidence.resets += 1
                    jrs_table[index] = 0
                else:
                    value = jrs_table[index]
                    if value < self._jrs_max:
                        jrs_table[index] = value + 1
            return

        if not train:
            return
        kind = instr.branch_kind
        if kind in (BranchKind.UNCONDITIONAL, BranchKind.CALL):
            self._btb.update(instr.pc, outcome.target)
        elif kind in (BranchKind.INDIRECT, BranchKind.INDIRECT_CALL):
            self._indirect.update(instr.pc, outcome.target, record.history)
            self._btb.update(instr.pc, outcome.target)

    # ------------------------------------------------------------------ #
    # block entry points (the trace backend's Instruction-free hot path)
    #
    # ``predict_columns`` / ``resolve_record`` are behaviour-identical
    # twins of :meth:`predict_branch` / :meth:`resolve_branch` that read
    # the branch from :class:`~repro.workloads.generator.BranchBlock`
    # columns (respectively from the outcome slots the fetch engine
    # stashed in the record) instead of an Instruction.  The bodies are
    # deliberately duplicated rather than layered — this is the
    # per-branch hot path of both backends, and an extra call frame per
    # branch is exactly what this module exists to remove;
    # ``tests/test_predictor_engine.py`` pins the twins together.
    # ------------------------------------------------------------------ #

    def predict_columns(self, pc: int, kind: BranchKind,
                        static_branch_id: Optional[int],
                        thread_id: int) -> BranchRecord:
        """Predict one branch given as plain columns (no Instruction).

        Bit-identical table reads, speculative history/RAS updates, BTB
        LRU touches and JRS lookup to :meth:`predict_branch`.
        """
        history = self._history
        history_now = history.value

        if kind is BranchKind.CONDITIONAL:
            pc_bits = pc >> 2
            gshare_index = ((pc_bits ^ (history_now & self._gshare_hist_mask))
                            & self._gshare_mask)
            gshare_taken = (self._gshare_table[gshare_index]
                            >= self._gshare_threshold)
            bimodal_index = pc_bits & self._bimodal_mask
            bimodal_taken = (self._bimodal_table[bimodal_index]
                             >= self._bimodal_threshold)
            chooser_index = ((pc_bits ^ (history_now & self._chooser_hist_mask))
                             & self._chooser_mask)
            chose_gshare = self._chooser[chooser_index] >= 2
            taken = gshare_taken if chose_gshare else bimodal_taken

            btb_target = self._btb.predict_target(pc)

            record = BranchRecord(pc, 0, 0, taken, history_now,
                                  static_branch_id, thread_id)
            record.target = btb_target if taken else None
            record.btb_hit = btb_target is not None
            record.gshare_taken = gshare_taken
            record.gshare_index = gshare_index
            record.bimodal_taken = bimodal_taken
            record.bimodal_index = bimodal_index
            record.chooser_index = chooser_index
            record.chose_gshare = chose_gshare

            jrs_table = self._jrs_table
            if jrs_table is not None:
                index = ((pc_bits ^ (history_now & self._jrs_hist_mask))
                         & self._jrs_mask)
                shift = self._jrs_enhanced_shift
                if shift >= 0 and taken:
                    index = (index ^ (1 << shift)) & self._jrs_mask
                confidence = self.confidence
                confidence.lookups += 1
                record.mdc_index = index
                record.mdc_value = jrs_table[index]

            # Speculative global-history update with the predicted direction.
            history.value = (((history_now << 1) | (1 if taken else 0))
                             & history.mask)
            return record

        record = BranchRecord(pc, 0, 0, True, history_now,
                              static_branch_id, thread_id)
        record.is_conditional = False
        if kind in (BranchKind.UNCONDITIONAL, BranchKind.CALL):
            target = self._btb.predict_target(pc)
            if kind is BranchKind.CALL:
                self._ras.push(pc + 4)
        elif kind is BranchKind.RETURN:
            target = self._ras.pop()
        else:  # indirect jump / indirect call
            target = self._indirect.predict_target(pc, history_now)
            if target is None:
                target = self._btb.predict_target(pc)
            if kind is BranchKind.INDIRECT_CALL:
                self._ras.push(pc + 4)
        record.target = target
        record.btb_hit = target is not None
        return record

    def resolve_record(self, record: BranchRecord, train: bool) -> None:
        """Resolve a branch whose outcome rides in the record itself.

        Behaviour-identical to :meth:`resolve_branch` with an Instruction
        carrying the same ``(pc, branch_kind, outcome)``; the trace block
        path stores them in ``record.kind`` / ``record.out_taken`` /
        ``record.out_target`` at predict time.
        """
        if record.is_conditional:
            actual_taken = record.out_taken
            if record.mispredicted:
                history = self._history
                history.value = ((((record.history & history.mask) << 1)
                                  | (1 if actual_taken else 0)) & history.mask)
            if not train:
                return
            # Tournament training with the indices consulted at fetch:
            # chooser first (only on component disagreement), then both
            # component tables — exactly the reference update order.
            gshare_correct = record.gshare_taken == actual_taken
            bimodal_correct = record.bimodal_taken == actual_taken
            if gshare_correct != bimodal_correct:
                chooser = self._chooser
                index = record.chooser_index
                value = chooser[index]
                if gshare_correct:
                    if value < 3:
                        chooser[index] = value + 1
                elif value > 0:
                    chooser[index] = value - 1
            table = self._gshare_table
            index = record.gshare_index
            value = table[index]
            if actual_taken:
                if value < self._gshare_max:
                    table[index] = value + 1
            elif value > 0:
                table[index] = value - 1
            table = self._bimodal_table
            index = record.bimodal_index
            value = table[index]
            if actual_taken:
                if value < self._bimodal_max:
                    table[index] = value + 1
            elif value > 0:
                table[index] = value - 1
            if actual_taken:
                self._btb.update(record.pc, record.out_target)
            # JRS miss-distance-counter update on the entry read at fetch.
            jrs_table = self._jrs_table
            if jrs_table is not None:
                confidence = self.confidence
                confidence.updates += 1
                index = record.mdc_index
                if record.mispredicted:
                    confidence.resets += 1
                    jrs_table[index] = 0
                else:
                    value = jrs_table[index]
                    if value < self._jrs_max:
                        jrs_table[index] = value + 1
            return

        if not train:
            return
        kind = record.kind
        if kind in (BranchKind.UNCONDITIONAL, BranchKind.CALL):
            self._btb.update(record.pc, record.out_target)
        elif kind in (BranchKind.INDIRECT, BranchKind.INDIRECT_CALL):
            self._indirect.update(record.pc, record.out_target, record.history)
            self._btb.update(record.pc, record.out_target)
