"""Indirect-branch target predictor (last-target table)."""

from __future__ import annotations

from typing import Dict, Optional


class IndirectTargetPredictor:
    """A simple tagged last-target predictor for indirect jumps and calls.

    Real machines of the paper's era predicted indirect branches with the
    BTB's last-seen target; this predictor models that with a small
    direct-mapped table indexed by PC (optionally hashed with history).
    Polymorphic indirect calls — the perlbmk pathology — defeat it, which
    is exactly the behaviour the paper relies on: those mispredictions are
    invisible to the JRS table and therefore to both PaCo and the
    threshold-and-count predictors.
    """

    def __init__(self, index_bits: int = 9, use_history: bool = False,
                 history_bits: int = 8) -> None:
        if index_bits <= 0:
            raise ValueError("index width must be positive")
        self.index_bits = index_bits
        self.size = 1 << index_bits
        self._mask = self.size - 1
        self.use_history = use_history
        self._history_mask = (1 << history_bits) - 1
        self._table: Dict[int, int] = {}
        self.lookups = 0
        self.hits = 0

    def _index(self, pc: int, history: int) -> int:
        if self.use_history:
            return ((pc >> 2) ^ (history & self._history_mask)) & self._mask
        return (pc >> 2) & self._mask

    def predict_target(self, pc: int, history: int = 0) -> Optional[int]:
        self.lookups += 1
        target = self._table.get(self._index(pc, history))
        if target is not None:
            self.hits += 1
        return target

    def update(self, pc: int, target: int, history: int = 0) -> None:
        self._table[self._index(pc, history)] = target

    def reset(self) -> None:
        self._table.clear()
        self.lookups = 0
        self.hits = 0
