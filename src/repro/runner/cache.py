"""On-disk memoization of experiment-job results.

Cache key recipe
----------------
The key of a job is ``sha256(canonical_job_json + "\\n" + code_version)``
where

* ``canonical_job_json`` is the job's sorted-key JSON identity —
  experiment kind, seed, simulation backend and every parameter (see
  :meth:`Job.canonical <repro.runner.jobs.Job.canonical>`), and
* ``code_version`` is a content hash over every ``*.py`` file of the
  installed :mod:`repro` package.

Any change to an experiment parameter, the seed, the backend, or the
simulator source therefore produces a different key — a cache *miss* —
while re-running the same sweep on unchanged code hits.  Entries are stored as pickles under
``<cache-dir>/<key[:2]>/<key>.pkl`` together with the job payload, and are
written atomically (temp file + :func:`os.replace`) so concurrent writers
can never expose a torn entry.

The default cache directory is ``$REPRO_CACHE_DIR`` or ``.repro-cache``
under the current working directory.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Optional, Tuple

from repro.common.fsutil import atomic_write
from repro.runner.jobs import Job

_SENTINEL = object()
_code_version_cache: Optional[str] = None


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``.repro-cache`` in the cwd."""
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro-cache"))


def code_version() -> str:
    """Content hash of the :mod:`repro` package sources (memoized)."""
    global _code_version_cache
    if _code_version_cache is None:
        import repro

        digest = hashlib.sha256()
        package_root = Path(repro.__file__).resolve().parent
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
        _code_version_cache = digest.hexdigest()
    return _code_version_cache


@dataclass
class CacheStats:
    """Hit/miss/store counters of one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0


@dataclass
class PruneStats:
    """Outcome of one :meth:`ResultCache.prune` pass."""

    removed: int = 0
    bytes_freed: int = 0
    remaining: int = 0
    remaining_bytes: int = 0


class ResultCache:
    """Content-addressed on-disk store of job results.

    Parameters
    ----------
    directory:
        Where entries live; created lazily on the first store.
    version:
        Code-version string mixed into every key.  Defaults to
        :func:`code_version`; tests override it to model code changes.
    """

    def __init__(self, directory: Optional[Path] = None,
                 version: Optional[str] = None) -> None:
        self.directory = Path(directory) if directory is not None \
            else default_cache_dir()
        self._version = version
        self.stats = CacheStats()

    @property
    def version(self) -> str:
        if self._version is None:
            self._version = code_version()
        return self._version

    def key(self, job: Job) -> str:
        """The job's cache key (content hash of identity + code version)."""
        material = job.canonical() + "\n" + self.version
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.pkl"

    def get(self, job: Job) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; bumps the hit/miss counters."""
        path = self._path(self.key(job))
        try:
            with path.open("rb") as handle:
                entry = pickle.load(handle)
        except (OSError, pickle.PickleError, EOFError, AttributeError):
            # Missing, torn, or written by an incompatible code state —
            # all count as a miss and will be overwritten by the next put.
            self.stats.misses += 1
            return False, None
        self.stats.hits += 1
        return True, entry["value"]

    def contains(self, job: Job) -> bool:
        """Whether an entry exists for ``job``, without loading it.

        Unlike :meth:`get` this neither deserializes the entry nor bumps
        the hit/miss counters — it is the cheap probe behind ``--dry-run``
        job listings and campaign planning.
        """
        return self._path(self.key(job)).is_file()

    def put(self, job: Job, value: Any) -> None:
        """Store one result atomically (temp file in the entry's cache
        subdirectory, then :func:`os.replace` — see
        :func:`repro.common.fsutil.atomic_write`).

        Concurrent writers — e.g. campaign shards sharing one cache
        directory — each publish via their own temp file, so a reader can
        only ever observe a complete entry (the old one or a new one),
        never a torn write.
        """
        entry = {"payload": job.payload(), "value": value,
                 "code_version": self.version}
        atomic_write(
            self._path(self.key(job)),
            lambda handle: pickle.dump(entry, handle,
                                       protocol=pickle.HIGHEST_PROTOCOL),
        )
        self.stats.stores += 1

    def entries(self) -> Iterator[Path]:
        """Paths of every stored entry (empty if the dir does not exist)."""
        if not self.directory.is_dir():
            return iter(())
        return self.directory.glob("*/*.pkl")

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    def size_bytes(self) -> int:
        """Total size of all entries (entries vanishing mid-scan are skipped)."""
        total = 0
        for path in self.entries():
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in list(self.entries()):
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def prune(self, max_age_seconds: Optional[float] = None,
              max_total_bytes: Optional[int] = None,
              now: Optional[float] = None) -> PruneStats:
        """Evict old entries and/or shrink the cache to a size budget.

        Long sweep campaigns accumulate one entry per (job, code version)
        forever; this keeps the directory bounded.  Two independent
        policies, both optional:

        * ``max_age_seconds`` — drop entries whose mtime is older;
        * ``max_total_bytes`` — afterwards, drop oldest-first until the
          total size fits the budget (mtime ties break deterministically
          by entry file name, so concurrent pruners evict the same order).

        The ``reference`` timestamp is taken once, before the scan, so a
        slow scan cannot shift the age cut-off mid-pass.  Entries that
        vanish concurrently — another pruner, a ``clear``, an external
        ``rm`` — are skipped wherever they disappear (``stat``, ``unlink``
        or the final accounting), mirroring the tolerant reads in
        :meth:`get`.
        """
        stats = PruneStats()
        reference = time.time() if now is None else now
        survivors = []  # (mtime, size, path)
        for path in self.entries():
            try:
                stat = path.stat()
            except OSError:
                # Deleted (or became unreadable) between the directory scan
                # and the stat: nothing to prune.
                continue
            if (max_age_seconds is not None
                    and reference - stat.st_mtime > max_age_seconds):
                try:
                    path.unlink(missing_ok=True)
                except OSError:
                    continue
                stats.removed += 1
                stats.bytes_freed += stat.st_size
                continue
            survivors.append((stat.st_mtime, stat.st_size, path))
        total = sum(size for _, size, _ in survivors)
        if max_total_bytes is not None and total > max_total_bytes:
            # Oldest first; tie-break on the entry name (the content hash),
            # never on size, so the eviction order is reproducible.
            survivors.sort(key=lambda entry: (entry[0], entry[2].name))
            for _mtime, size, path in survivors:
                if total <= max_total_bytes:
                    break
                try:
                    path.unlink(missing_ok=True)
                except OSError:
                    continue
                stats.removed += 1
                stats.bytes_freed += size
                total -= size
        for path in self.entries():
            try:
                stats.remaining_bytes += path.stat().st_size
            except OSError:
                continue
            stats.remaining += 1
        return stats
