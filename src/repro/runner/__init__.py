"""Sweep-execution subsystem: declarative jobs, parallel sharding, caching.

Every figure/table of the paper is a sweep (benchmark × predictor ×
configuration).  This package owns *how* such sweeps execute — scheduling,
determinism, memoization and aggregation — so the experiment drivers in
:mod:`repro.experiments` only *enumerate* points:

>>> from repro.runner import SweepRunner, accuracy_job
>>> runner = SweepRunner(workers=4)
>>> jobs = [accuracy_job(name, instructions=40_000,
...                      warmup_instructions=20_000) for name in names]
>>> results = runner.map(jobs)          # AccuracyResult per job, in order

Layers
------
:mod:`repro.runner.jobs`
    The :class:`Job` content-addressed job model and the experiment-kind
    registry.
:mod:`repro.runner.library`
    Standard kinds (``accuracy`` / ``gating`` / ``single-ipc`` / ``smt``)
    wrapping :mod:`repro.eval.harness`, plus job builder helpers.
:mod:`repro.runner.cache`
    :class:`ResultCache`, the on-disk memo keyed by content hash of
    (experiment, parameters, seed, code version).
:mod:`repro.runner.sweep`
    :class:`SweepSpec` enumeration and the :class:`SweepRunner` pool.
"""

from repro.runner.cache import (
    PruneStats,
    ResultCache,
    code_version,
    default_cache_dir,
)
from repro.runner.jobs import (
    Job,
    UnknownExperimentError,
    execute_job,
    register_experiment,
    registered_experiments,
)
from repro.runner.library import (
    accuracy_job,
    gating_job,
    single_ipc_job,
    smt_job,
)
from repro.runner.sweep import (
    SweepRunner,
    SweepSpec,
    available_workers,
    resolve_runner,
    resolve_worker_count,
)

__all__ = [
    "Job",
    "PruneStats",
    "ResultCache",
    "SweepRunner",
    "SweepSpec",
    "UnknownExperimentError",
    "accuracy_job",
    "available_workers",
    "code_version",
    "default_cache_dir",
    "execute_job",
    "gating_job",
    "register_experiment",
    "registered_experiments",
    "resolve_runner",
    "resolve_worker_count",
    "single_ipc_job",
    "smt_job",
]
