"""The standard experiment kinds and their job builders.

Each kind is a thin, picklable wrapper around one
:mod:`repro.eval.harness` entry point, taking only JSON-serializable
parameters (benchmark *names*, not spec objects; predictor *kwargs*, not
predictor objects) so jobs hash and ship across process boundaries.

=============  ========================================================
Kind           Harness call
=============  ========================================================
``accuracy``   :func:`repro.eval.harness.run_accuracy_experiment`
``gating``     :func:`repro.eval.harness.run_gating_experiment`
``single-ipc`` :func:`repro.eval.harness.run_single_thread_ipc`
``smt``        :func:`repro.eval.harness.run_smt_experiment`
=============  ========================================================

To add a new experiment kind: write a module-level wrapper taking
``seed`` plus JSON-serializable keyword arguments, decorate it with
:func:`~repro.runner.jobs.register_experiment`, and (conventionally) add
a ``<kind>_job`` builder so drivers never spell parameter dicts by hand.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

from repro.eval.harness import (
    DEFAULT_INSTRUCTIONS,
    DEFAULT_RELOG_PERIOD,
    run_accuracy_experiment,
    run_gating_experiment,
    run_single_thread_ipc,
    run_smt_experiment,
)
from repro.pathconf.paco import PaCoPredictor
from repro.runner.jobs import Job, register_experiment


@register_experiment("accuracy")
def _accuracy(benchmark: str,
              instructions: int = DEFAULT_INSTRUCTIONS,
              warmup_instructions: int = 20_000,
              relog_period_cycles: int = DEFAULT_RELOG_PERIOD,
              count_threshold: int = 3,
              paco_variant: Optional[Dict[str, Any]] = None,
              backend: str = "cycle",
              instrument: str = "full",
              seed: int = 1):
    predictors = None
    if paco_variant is not None:
        predictors = [PaCoPredictor(**paco_variant)]
    return run_accuracy_experiment(
        benchmark,
        instructions=instructions,
        warmup_instructions=warmup_instructions,
        relog_period_cycles=relog_period_cycles,
        count_threshold=count_threshold,
        predictors=predictors,
        backend=backend,
        instrument=instrument,
        seed=seed,
    )


@register_experiment("gating")
def _gating(benchmark: str,
            mode: str = "none",
            gate_count: int = 0,
            gating_probability: float = 0.0,
            jrs_threshold: int = 3,
            instructions: int = DEFAULT_INSTRUCTIONS,
            warmup_instructions: int = 15_000,
            relog_period_cycles: int = DEFAULT_RELOG_PERIOD,
            backend: str = "cycle",
            seed: int = 1):
    return run_gating_experiment(
        benchmark,
        mode=mode,
        gate_count=gate_count,
        gating_probability=gating_probability,
        jrs_threshold=jrs_threshold,
        instructions=instructions,
        warmup_instructions=warmup_instructions,
        relog_period_cycles=relog_period_cycles,
        backend=backend,
        seed=seed,
    )


@register_experiment("single-ipc")
def _single_ipc(benchmark: str,
                instructions: int = DEFAULT_INSTRUCTIONS,
                warmup_instructions: int = 15_000,
                backend: str = "cycle",
                seed: int = 1):
    return run_single_thread_ipc(
        benchmark,
        instructions=instructions,
        warmup_instructions=warmup_instructions,
        backend=backend,
        seed=seed,
    )


@register_experiment("smt")
def _smt(benchmark_a: str,
         benchmark_b: str,
         policy: str = "paco",
         jrs_threshold: int = 3,
         instructions: int = 2 * DEFAULT_INSTRUCTIONS,
         warmup_instructions: int = 30_000,
         relog_period_cycles: int = DEFAULT_RELOG_PERIOD,
         single_ipcs: Optional[Sequence[float]] = None,
         measure_single_ipcs: bool = True,
         backend: str = "cycle",
         seed: int = 1):
    singles: Optional[Tuple[float, float]] = None
    if single_ipcs is not None:
        singles = (float(single_ipcs[0]), float(single_ipcs[1]))
    return run_smt_experiment(
        benchmark_a,
        benchmark_b,
        policy=policy,
        jrs_threshold=jrs_threshold,
        instructions=instructions,
        warmup_instructions=warmup_instructions,
        relog_period_cycles=relog_period_cycles,
        single_ipcs=singles,
        measure_single_ipcs=measure_single_ipcs,
        backend=backend,
        seed=seed,
    )


# ---------------------------------------------------------------------- #
# job builders — the vocabulary experiment drivers enumerate sweeps with
# ---------------------------------------------------------------------- #


def accuracy_job(benchmark: str, *, instructions: int,
                 warmup_instructions: int, seed: int = 1,
                 paco_variant: Optional[Dict[str, Any]] = None,
                 backend: str = "cycle",
                 instrument: str = "full",
                 **extra: Any) -> Job:
    params: Dict[str, Any] = dict(
        benchmark=benchmark,
        instructions=instructions,
        warmup_instructions=warmup_instructions,
        **extra,
    )
    if paco_variant is not None:
        params["paco_variant"] = paco_variant
    if instrument != "full":
        # Only non-default profiles enter the job identity, so existing
        # full-profile jobs keep deduplicating across drivers.
        params["instrument"] = instrument
    return Job.make("accuracy", seed=seed,
                    label=f"accuracy[{benchmark},{backend}]",
                    backend=backend, **params)


def gating_job(benchmark: str, *, mode: str, instructions: int,
               warmup_instructions: int, seed: int = 1,
               backend: str = "cycle", **extra: Any) -> Job:
    return Job.make("gating", seed=seed,
                    label=f"gating[{benchmark},{mode}]",
                    backend=backend,
                    benchmark=benchmark, mode=mode,
                    instructions=instructions,
                    warmup_instructions=warmup_instructions, **extra)


def single_ipc_job(benchmark: str, *, instructions: int,
                   warmup_instructions: int = 15_000, seed: int = 1,
                   backend: str = "cycle") -> Job:
    return Job.make("single-ipc", seed=seed,
                    label=f"single-ipc[{benchmark}]",
                    backend=backend,
                    benchmark=benchmark, instructions=instructions,
                    warmup_instructions=warmup_instructions)


def smt_job(benchmark_a: str, benchmark_b: str, *, policy: str,
            instructions: int, warmup_instructions: int,
            single_ipcs: Optional[Sequence[float]] = None,
            jrs_threshold: int = 3, seed: int = 1,
            backend: str = "cycle") -> Job:
    params: Dict[str, Any] = dict(
        benchmark_a=benchmark_a, benchmark_b=benchmark_b,
        policy=policy, jrs_threshold=jrs_threshold,
        instructions=instructions,
        warmup_instructions=warmup_instructions,
    )
    if single_ipcs is not None:
        params["single_ipcs"] = [float(v) for v in single_ipcs]
    else:
        # Statically plannable form: the driver weighs the raw SMT IPCs
        # against its own single-ipc jobs at aggregation time, so the job
        # identity no longer depends on an earlier stage's results.
        params["measure_single_ipcs"] = False
    return Job.make("smt", seed=seed,
                    label=f"smt[{benchmark_a}-{benchmark_b},{policy}]",
                    backend=backend, **params)
