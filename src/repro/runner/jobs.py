"""Declarative job model for experiment sweeps.

A :class:`Job` names a registered *experiment kind* (``"accuracy"``,
``"gating"``, ``"single-ipc"``, ``"smt"``, …) plus the keyword parameters
and the seed of one concrete experiment point.  Jobs are deliberately
plain data — every parameter must be JSON-serializable — so that they can
be

* hashed into a stable content key (the memoization cache key),
* pickled across :mod:`multiprocessing` worker boundaries, and
* re-created identically from their canonical form (determinism).

Experiment kinds are registered with :func:`register_experiment`; the
standard kinds wrapping :mod:`repro.eval.harness` live in
:mod:`repro.runner.library` and are imported lazily by
:func:`execute_job`.  Worker pools do not rely on registrations being
re-run in the child: :class:`~repro.runner.sweep.SweepRunner` resolves
each job's executor in the parent and ships it to workers by reference
(so custom kinds only need their defining module to be importable).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Tuple


class UnknownExperimentError(KeyError):
    """Raised when a job names an experiment kind nobody registered."""


#: Registered experiment kind -> callable(seed=..., **params).
_REGISTRY: Dict[str, Callable[..., Any]] = {}


def register_experiment(name: str) -> Callable[[Callable[..., Any]],
                                               Callable[..., Any]]:
    """Class the decorated callable as the executor of experiment ``name``.

    The callable receives the job's ``params`` as keyword arguments plus
    ``seed``; whatever it returns becomes the job's result (and, when a
    cache is attached, the cached value).
    """
    def decorator(function: Callable[..., Any]) -> Callable[..., Any]:
        _REGISTRY[name] = function
        return function
    return decorator


def experiment_function(name: str) -> Callable[..., Any]:
    """Look up the executor of experiment kind ``name``."""
    if name not in _REGISTRY:
        # The standard library of kinds registers itself on import; give it
        # a chance before failing (covers freshly spawned workers).
        from repro.runner import library  # noqa: F401  (import side effect)
    if name not in _REGISTRY:
        raise UnknownExperimentError(
            f"no experiment kind {name!r} registered "
            f"(known: {sorted(_REGISTRY)})"
        )
    return _REGISTRY[name]


def registered_experiments() -> Tuple[str, ...]:
    """Names of every registered experiment kind (standard kinds included)."""
    from repro.runner import library  # noqa: F401  (import side effect)
    return tuple(sorted(_REGISTRY))


def _jsonable(value: Any) -> Any:
    """Return ``value`` converted to plain JSON-serializable structures."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(
        f"job parameter of type {type(value).__name__} is not "
        f"JSON-serializable: {value!r}"
    )


#: The backend jobs run on unless they say otherwise (mirrors
#: :data:`repro.backends.base.DEFAULT_BACKEND` without importing the
#: simulator stack into the job model).
DEFAULT_JOB_BACKEND = "cycle"


@dataclass(frozen=True)
class Job:
    """One experiment point: kind + JSON-serializable parameters + seed.

    Construct through :meth:`make` (which canonicalizes the parameters) or
    through the builder helpers in :mod:`repro.runner.library`.

    ``backend`` names the simulation backend the experiment point runs on
    (see :mod:`repro.backends`).  It is part of the job identity — and
    therefore of the result-cache key — so the same sweep on two backends
    can never alias in the cache.
    """

    experiment: str
    params_json: str = "{}"          #: canonical JSON of the parameters
    seed: int = 1
    backend: str = DEFAULT_JOB_BACKEND
    label: str = field(default="", compare=False)   #: display only

    @classmethod
    def make(cls, experiment: str, seed: int = 1, label: str = "",
             backend: str = DEFAULT_JOB_BACKEND, **params: Any) -> "Job":
        canonical = json.dumps(_jsonable(params), sort_keys=True,
                               separators=(",", ":"))
        return cls(experiment=experiment, params_json=canonical, seed=seed,
                   backend=backend, label=label or experiment)

    @property
    def params(self) -> Mapping[str, Any]:
        """The job's parameters (tuples come back as lists)."""
        return json.loads(self.params_json)

    def payload(self) -> Dict[str, Any]:
        """The identity of this job, as fed into the cache key."""
        return {
            "experiment": self.experiment,
            "seed": self.seed,
            "backend": self.backend,
            "params": json.loads(self.params_json),
        }

    def canonical(self) -> str:
        """Canonical JSON identity string (stable across processes/runs)."""
        return json.dumps(self.payload(), sort_keys=True,
                          separators=(",", ":"))

    def digest(self) -> str:
        """Content hash of the job identity (no code version mixed in)."""
        return hashlib.sha256(self.canonical().encode("utf-8")).hexdigest()


def call_experiment(function: Callable[..., Any], job: Job) -> Any:
    """Invoke one experiment executor with a job's seed, backend and params.

    The ``backend`` keyword is only forwarded when the job deviates from
    the default, so experiment kinds that are inherently single-backend
    (including custom kinds registered by downstream code) do not need a
    ``backend`` parameter until someone actually schedules them on a
    non-default backend.
    """
    if job.backend != DEFAULT_JOB_BACKEND:
        return function(seed=job.seed, backend=job.backend, **job.params)
    return function(seed=job.seed, **job.params)


def execute_job(job: Job) -> Any:
    """Run one job to completion in the current process.

    This is the unit of work shipped to pool workers; it must stay a
    module-level function so it pickles under every start method.
    """
    return call_experiment(experiment_function(job.experiment), job)
