"""Sweep execution: declarative specs, worker-pool sharding, memoization.

:class:`SweepSpec` enumerates the cartesian product of parameter axes into
:class:`~repro.runner.jobs.Job` objects; :class:`SweepRunner` executes any
job list — serially or sharded across a :mod:`multiprocessing` pool — with
optional on-disk memoization through a
:class:`~repro.runner.cache.ResultCache`.

Determinism contract
--------------------
Every job carries its own seed and reconstructs all simulator state from
scratch, so results are independent of scheduling: ``map()`` returns
byte-identical values whether it ran serially, with N workers, or from a
warm cache (the determinism tests assert exactly this).  Duplicate jobs
inside one ``map()`` call are detected by content hash and executed once —
this is how, e.g., single-thread IPC baselines are shared across SMT fetch
policies instead of being re-measured per policy.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.runner.cache import ResultCache
from repro.runner.jobs import (
    DEFAULT_JOB_BACKEND,
    Job,
    call_experiment,
    execute_job,
    experiment_function,
)


def _invoke(payload: Tuple[Any, Job]) -> Any:
    """Pool worker body: run one pre-resolved (function, job) payload."""
    function, job = payload
    return call_experiment(function, job)


def available_workers() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def resolve_worker_count(value: object, source: str = "workers") -> int:
    """Validate a worker count coming from a CLI flag or environment knob.

    Accepts an ``int`` or an integer-shaped string and requires it to be
    at least 1 (a pool of zero workers can execute nothing; negative
    counts used to be clamped silently, hiding the configuration error).
    ``source`` names the knob in the error message.
    """
    try:
        workers = int(str(value).strip())
    except (TypeError, ValueError):
        raise ValueError(
            f"invalid {source} value {value!r}: expected an integer >= 1"
        ) from None
    if workers < 1:
        raise ValueError(
            f"invalid {source} value {value!r}: worker counts must be >= 1 "
            f"(use 1 for in-process execution)"
        )
    return workers


@dataclass
class SweepSpec:
    """Declarative enumeration of one experiment sweep.

    ``axes`` maps parameter names to the values to sweep; ``base`` holds
    parameters shared by every point.  ``jobs()`` yields the cartesian
    product in a deterministic order (axes sorted by name, values in the
    order given).  ``backend`` selects the simulation backend every point
    of the sweep runs on (it is part of each job's identity).
    """

    experiment: str
    axes: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    base: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 1
    backend: str = DEFAULT_JOB_BACKEND

    def jobs(self) -> List[Job]:
        names = sorted(self.axes)
        jobs: List[Job] = []
        for values in itertools.product(*(self.axes[name] for name in names)):
            params = dict(self.base)
            params.update(zip(names, values))
            point = ",".join(f"{n}={v}" for n, v in zip(names, values))
            jobs.append(Job.make(self.experiment, seed=self.seed,
                                 label=f"{self.experiment}[{point}]",
                                 backend=self.backend,
                                 **params))
        return jobs

    def __len__(self) -> int:
        product = 1
        for values in self.axes.values():
            product *= len(values)
        return product


class SweepRunner:
    """Executes job lists with optional parallelism and memoization.

    Parameters
    ----------
    workers:
        Worker processes for ``map()``.  ``1`` runs in-process (no pool
        is spawned); higher values shard cache misses across a pool.
        Zero, negative or non-integer counts raise :class:`ValueError`
        (they used to be clamped silently, which hid typos in ``--workers``
        and ``REPRO_BENCH_WORKERS``).
    cache:
        Optional :class:`ResultCache`.  Hits skip execution entirely;
        misses are stored after execution (by the parent process, so no
        two writers race on one entry within a run).
    start_method:
        Forced :mod:`multiprocessing` start method; ``None`` (the
        default) uses the platform's default method — ``fork`` on Linux,
        ``spawn`` on macOS/Windows, where forking is unsafe or absent.
    """

    def __init__(self, workers: int = 1, cache: Optional[ResultCache] = None,
                 start_method: Optional[str] = None) -> None:
        self.workers = resolve_worker_count(workers)
        self.cache = cache
        self.start_method = start_method

    def map(self, jobs: Sequence[Job]) -> List[Any]:
        """Execute ``jobs`` and return their results in input order.

        Identical jobs (same experiment, parameters and seed) are executed
        once and their result fanned out to every position.
        """
        jobs = list(jobs)
        results: List[Any] = [None] * len(jobs)

        # Deduplicate by content hash; remember every position of each job.
        positions: Dict[str, List[int]] = {}
        unique: Dict[str, Job] = {}
        for index, job in enumerate(jobs):
            digest = job.digest()
            positions.setdefault(digest, []).append(index)
            unique.setdefault(digest, job)

        pending: List[Tuple[str, Job]] = []
        for digest, job in unique.items():
            if self.cache is not None:
                hit, value = self.cache.get(job)
                if hit:
                    for index in positions[digest]:
                        results[index] = value
                    continue
            pending.append((digest, job))

        for digest, value in self._execute(pending):
            if self.cache is not None:
                self.cache.put(unique[digest], value)
            for index in positions[digest]:
                results[index] = value
        return results

    def run(self, spec: SweepSpec) -> List[Any]:
        """Enumerate and execute a :class:`SweepSpec`."""
        return self.map(spec.jobs())

    def _execute(self, pending: Sequence[Tuple[str, Job]]
                 ) -> List[Tuple[str, Any]]:
        if not pending:
            return []
        if self.workers <= 1 or len(pending) == 1:
            return [(digest, execute_job(job)) for digest, job in pending]
        # Resolve each executor in the parent (where custom kinds were
        # registered) and ship it by reference alongside the job, so
        # spawn-started workers don't depend on re-running registrations —
        # they only need the defining module to be importable.
        payloads = [(experiment_function(job.experiment), job)
                    for _, job in pending]
        context = multiprocessing.get_context(self.start_method)
        processes = min(self.workers, len(pending))
        with context.Pool(processes=processes) as pool:
            values = pool.map(_invoke, payloads, chunksize=1)
        return [(digest, value)
                for (digest, _), value in zip(pending, values)]


def resolve_runner(runner: Optional[SweepRunner]) -> SweepRunner:
    """The runner to use: the caller's, or a serial uncached default."""
    return runner if runner is not None else SweepRunner()
