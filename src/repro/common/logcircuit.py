"""Encoded-probability arithmetic and Mitchell's binary-log circuit.

PaCo avoids floating-point multiplication by working with *encoded*
correct-prediction probabilities (Equation 3 of the paper):

.. math::

    \\text{enc}(p) = \\lceil -1024 \\cdot \\log_2(p) \\rceil

so that the product of probabilities along the unresolved-branch window
becomes a sum of encoded values, and the encoded value of the good-path
probability is simply the running sum.  Encoded values are clamped to
:data:`ENCODED_PROBABILITY_MAX` (:math:`2^{12}`), which corresponds to a
mispredict rate of about 93.75 %; the paper reports no branch bucket ever
exceeds this.

The hardware computes the logarithm with Mitchell's shift-register
approximation (Mitchell, 1962): for an integer ``N`` whose leading one is at
bit position ``k`` and whose remaining fraction bits are ``m``,

.. math::

    \\log_2 N \\approx k + m / 2^k .

:class:`MitchellLogCircuit` models exactly that circuit (a priority encoder,
a shift register and an adder).  :func:`encode_probability_exact` provides
the floating-point reference used by the accuracy ablations and the tests.
"""

from __future__ import annotations

import math

#: Scale factor applied to -log2(p) before rounding (the paper uses 1024).
ENCODED_PROBABILITY_SCALE = 1024

#: Saturation value for encoded probabilities (the paper clamps at 2**12).
ENCODED_PROBABILITY_MAX = 1 << 12


class MitchellLogCircuit:
    """Mitchell's binary-logarithm approximation circuit.

    The circuit operates on unsigned integers of a fixed width (10 bits in
    the paper, matching the width of the MRT correct-prediction counter) and
    produces a fixed-point approximation of ``log2(value)`` with
    ``fraction_bits`` bits of fraction.

    The approximation is exact at powers of two and has a maximum relative
    error of about 5.7 % in between, which is more than sufficient for the
    path-confidence use case (the paper's sensitivity discussion).
    """

    def __init__(self, input_bits: int = 10, fraction_bits: int = 10) -> None:
        if input_bits <= 0 or fraction_bits <= 0:
            raise ValueError("circuit widths must be positive")
        self.input_bits = input_bits
        self.fraction_bits = fraction_bits
        self._max_input = (1 << input_bits) - 1

    def log2_fixed(self, value: int) -> int:
        """Return ``round(log2(value) * 2**fraction_bits)`` via Mitchell's method.

        ``value`` must be a positive integer representable in ``input_bits``
        bits.  ``log2(1)`` is 0 by construction.
        """
        if value <= 0:
            raise ValueError("logarithm input must be positive")
        if value > self._max_input:
            raise ValueError(
                f"value {value} does not fit in {self.input_bits} input bits"
            )
        # Priority encoder: position of the leading one.
        characteristic = value.bit_length() - 1
        # Mantissa: remaining bits, interpreted as a fraction of 2**characteristic.
        mantissa = value - (1 << characteristic)
        if characteristic == 0:
            fraction = 0
        else:
            # The shift register aligns the mantissa under the fraction point.
            fraction = (mantissa << self.fraction_bits) >> characteristic
        return (characteristic << self.fraction_bits) + fraction

    def log2(self, value: int) -> float:
        """Convenience wrapper returning the approximation as a float."""
        return self.log2_fixed(value) / (1 << self.fraction_bits)

    def encode_rate(self, correct: int, total: int,
                    scale: int = ENCODED_PROBABILITY_SCALE,
                    clamp: int = ENCODED_PROBABILITY_MAX) -> int:
        """Encode the probability ``correct / total`` using the circuit.

        This is the operation the re-logarithmizing pass performs on each MRT
        bucket:  ``enc = scale * (log2(total) - log2(correct))``, clamped.
        A bucket with no samples (``total == 0``) or with no correct
        predictions at all encodes to the clamp value.
        """
        if total <= 0:
            return clamp
        if correct <= 0:
            return clamp
        if correct >= total:
            return 0
        # Down-scale counts that exceed the circuit's input width while
        # preserving their ratio (hardware would simply halve both).
        while total > self._max_input:
            total >>= 1
            correct >>= 1
            if correct == 0:
                return clamp
        log_total = self.log2_fixed(total)
        log_correct = self.log2_fixed(correct)
        delta = log_total - log_correct
        encoded = (delta * scale) >> self.fraction_bits
        return min(encoded, clamp)


def encode_probability_exact(probability: float,
                             scale: int = ENCODED_PROBABILITY_SCALE,
                             clamp: int = ENCODED_PROBABILITY_MAX) -> int:
    """Encode a correct-prediction probability with exact (float) arithmetic.

    ``enc = ceil(-scale * log2(p))`` clamped to ``clamp``.  Used by the
    Static-MRT ablation and as the reference the Mitchell circuit is tested
    against.
    """
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"probability {probability} outside [0, 1]")
    if probability <= 0.0:
        return clamp
    if probability >= 1.0:
        return 0
    encoded = int(math.ceil(-scale * math.log2(probability)))
    return min(max(encoded, 0), clamp)


# Backwards-compatible aliases used throughout the code base.
def encode_probability(probability: float,
                       scale: int = ENCODED_PROBABILITY_SCALE,
                       clamp: int = ENCODED_PROBABILITY_MAX) -> int:
    """Alias of :func:`encode_probability_exact` (the architectural encoding)."""
    return encode_probability_exact(probability, scale=scale, clamp=clamp)


#: Memo for :func:`decode_probability`: the evaluation machinery decodes
#: the same (small-integer) register values millions of times per run.
_DECODE_CACHE: dict = {}


def decode_probability(encoded: int,
                       scale: int = ENCODED_PROBABILITY_SCALE) -> float:
    """Convert an encoded (summed) value back into a real probability.

    The hardware never performs this conversion — application thresholds are
    converted *into* encoded space once instead — but the evaluation
    machinery (reliability diagrams, RMS error) needs real probabilities.
    """
    if encoded < 0:
        raise ValueError("encoded probability must be non-negative")
    key = (encoded, scale)
    value = _DECODE_CACHE.get(key)
    if value is None:
        if len(_DECODE_CACHE) > (1 << 20):  # unbounded-growth guard
            _DECODE_CACHE.clear()
        value = 2.0 ** (-encoded / scale)
        _DECODE_CACHE[key] = value
    return value


def encode_threshold(probability: float,
                     scale: int = ENCODED_PROBABILITY_SCALE) -> int:
    """Convert an application-level probability threshold to encoded space.

    Example from the paper: a 10 % gating threshold encodes to 3401 (the
    paper quotes 3321 for a slightly different rounding); fetch is gated
    whenever the path-confidence register exceeds this value.
    """
    if not 0.0 < probability <= 1.0:
        raise ValueError("threshold probability must be in (0, 1]")
    return int(round(-scale * math.log2(probability)))
