"""Shared hardware primitives and statistics used across the PaCo reproduction.

This package collects the small, widely reused building blocks:

* :mod:`repro.common.counters` — saturating counters, shift registers and
  the paired correct/mispredict counters used by the Mispredict Rate Table.
* :mod:`repro.common.logcircuit` — Mitchell's binary-logarithm approximation
  and the encoded-probability arithmetic PaCo is built on.
* :mod:`repro.common.stats` — reliability diagrams, RMS error and the other
  probabilistic-forecast statistics used by the evaluation.
* :mod:`repro.common.rng` — deterministic, named random streams so that every
  experiment is reproducible bit-for-bit.
"""

from repro.common.counters import (
    SaturatingCounter,
    UpDownCounter,
    ShiftRegister,
    HistoryRegister,
    HalvingRateCounter,
)
from repro.common.logcircuit import (
    MitchellLogCircuit,
    encode_probability,
    decode_probability,
    encode_probability_exact,
    ENCODED_PROBABILITY_SCALE,
    ENCODED_PROBABILITY_MAX,
)
from repro.common.stats import (
    ReliabilityDiagram,
    RunningMean,
    rms_error,
    weighted_rms_error,
)
from repro.common.rng import DeterministicRng, RngPool

__all__ = [
    "SaturatingCounter",
    "UpDownCounter",
    "ShiftRegister",
    "HistoryRegister",
    "HalvingRateCounter",
    "MitchellLogCircuit",
    "encode_probability",
    "decode_probability",
    "encode_probability_exact",
    "ENCODED_PROBABILITY_SCALE",
    "ENCODED_PROBABILITY_MAX",
    "ReliabilityDiagram",
    "RunningMean",
    "rms_error",
    "weighted_rms_error",
    "DeterministicRng",
    "RngPool",
]
