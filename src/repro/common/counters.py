"""Small hardware-style counters and registers.

Everything in this module models a piece of state that a hardware
implementation of PaCo (or of the predictors it is compared against) would
keep in flip-flops: saturating counters, shift registers, branch-history
registers and the paired correct/mispredict counters of the Mispredict Rate
Table.  The classes are intentionally tiny and allocation-free on the hot
path so the timing simulator can update millions of them per run.
"""

from __future__ import annotations

from dataclasses import dataclass


class SaturatingCounter:
    """An n-bit saturating up/down counter.

    The canonical use in this reproduction is the 4-bit miss distance counter
    (MDC) of the JRS confidence predictor: ``increment`` on a correct branch
    prediction, ``reset`` on a misprediction.

    Parameters
    ----------
    bits:
        Width of the counter in bits.  The counter saturates at
        ``2**bits - 1`` and at ``0``.
    initial:
        Initial counter value (defaults to 0).
    """

    __slots__ = ("bits", "max_value", "value")

    def __init__(self, bits: int, initial: int = 0) -> None:
        if bits <= 0:
            raise ValueError(f"counter width must be positive, got {bits}")
        self.bits = bits
        self.max_value = (1 << bits) - 1
        if not 0 <= initial <= self.max_value:
            raise ValueError(
                f"initial value {initial} out of range for {bits}-bit counter"
            )
        self.value = initial

    def increment(self, amount: int = 1) -> int:
        """Increment, saturating at the maximum value.  Returns the new value."""
        self.value = min(self.value + amount, self.max_value)
        return self.value

    def decrement(self, amount: int = 1) -> int:
        """Decrement, saturating at zero.  Returns the new value."""
        self.value = max(self.value - amount, 0)
        return self.value

    def reset(self, value: int = 0) -> None:
        """Reset the counter (to zero unless another in-range value is given)."""
        if not 0 <= value <= self.max_value:
            raise ValueError(f"reset value {value} out of range")
        self.value = value

    @property
    def is_saturated(self) -> bool:
        return self.value == self.max_value

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"SaturatingCounter(bits={self.bits}, value={self.value})"


class UpDownCounter:
    """An unsigned counter with a fixed maximum, used for occupancy tracking.

    The conventional threshold-and-count path confidence predictor is exactly
    one of these: it is incremented when a low-confidence branch is fetched
    and decremented when one resolves.
    """

    __slots__ = ("max_value", "value")

    def __init__(self, max_value: int, initial: int = 0) -> None:
        if max_value <= 0:
            raise ValueError("max_value must be positive")
        if not 0 <= initial <= max_value:
            raise ValueError("initial value out of range")
        self.max_value = max_value
        self.value = initial

    def increment(self, amount: int = 1) -> int:
        self.value = min(self.value + amount, self.max_value)
        return self.value

    def decrement(self, amount: int = 1) -> int:
        self.value = max(self.value - amount, 0)
        return self.value

    def reset(self) -> None:
        self.value = 0

    def __int__(self) -> int:
        return self.value


class ShiftRegister:
    """A fixed-width shift register of single bits.

    PaCo's log circuit uses a 10-bit shift register to scan the MRT counter
    values; branch predictors use the same structure for local histories.
    Bit 0 is the most recently shifted-in bit.
    """

    __slots__ = ("bits", "mask", "value")

    def __init__(self, bits: int, initial: int = 0) -> None:
        if bits <= 0:
            raise ValueError("shift register width must be positive")
        self.bits = bits
        self.mask = (1 << bits) - 1
        self.value = initial & self.mask

    def shift_in(self, bit: int) -> int:
        """Shift a single bit in at the least-significant end."""
        self.value = ((self.value << 1) | (1 if bit else 0)) & self.mask
        return self.value

    def load(self, value: int) -> None:
        """Parallel-load the register."""
        self.value = value & self.mask

    def bit(self, index: int) -> int:
        """Return bit ``index`` (0 = least significant / most recent)."""
        if not 0 <= index < self.bits:
            raise IndexError(f"bit index {index} out of range for {self.bits} bits")
        return (self.value >> index) & 1

    def __int__(self) -> int:
        return self.value


class HistoryRegister(ShiftRegister):
    """A global branch history register.

    Identical to :class:`ShiftRegister` but exposes the XOR-fold used when
    hashing the history together with a branch PC into predictor tables
    (gshare indexing and the JRS confidence table index).
    """

    def fold_with(self, pc: int, table_bits: int) -> int:
        """Return ``(pc >> 2) ^ history`` folded down to ``table_bits`` bits."""
        mask = (1 << table_bits) - 1
        return ((pc >> 2) ^ self.value) & mask


@dataclass
class RateSnapshot:
    """A snapshot of a :class:`HalvingRateCounter`'s state."""

    correct: int
    mispredicted: int

    @property
    def total(self) -> int:
        return self.correct + self.mispredicted

    @property
    def correct_rate(self) -> float:
        """Fraction of observations that were correct (0.5 with no samples)."""
        if self.total == 0:
            return 0.5
        return self.correct / self.total

    @property
    def mispredict_rate(self) -> float:
        return 1.0 - self.correct_rate


class HalvingRateCounter:
    """The paired correct/mispredict counters of one MRT bucket.

    The paper's Mispredict Rate Table keeps, for each MDC value, a 10-bit
    counter of correct predictions and a 6-bit counter of mispredictions.
    Whenever either counter overflows, *both* counters are halved so the
    measured mispredict rate is preserved while recent behaviour dominates.
    """

    __slots__ = ("correct_bits", "mispredict_bits", "_correct_max",
                 "_mispredict_max", "correct", "mispredicted")

    def __init__(self, correct_bits: int = 10, mispredict_bits: int = 6) -> None:
        if correct_bits <= 0 or mispredict_bits <= 0:
            raise ValueError("counter widths must be positive")
        self.correct_bits = correct_bits
        self.mispredict_bits = mispredict_bits
        self._correct_max = (1 << correct_bits) - 1
        self._mispredict_max = (1 << mispredict_bits) - 1
        self.correct = 0
        self.mispredicted = 0

    def record(self, was_correct: bool) -> None:
        """Record one resolved branch outcome, halving on overflow."""
        if was_correct:
            if self.correct >= self._correct_max:
                self._halve()
            self.correct += 1
        else:
            if self.mispredicted >= self._mispredict_max:
                self._halve()
            self.mispredicted += 1

    def _halve(self) -> None:
        self.correct >>= 1
        self.mispredicted >>= 1

    def reset(self) -> None:
        """Reset both counters to zero (done after each re-logarithmizing pass)."""
        self.correct = 0
        self.mispredicted = 0

    def snapshot(self) -> RateSnapshot:
        return RateSnapshot(correct=self.correct, mispredicted=self.mispredicted)

    @property
    def total(self) -> int:
        return self.correct + self.mispredicted

    @property
    def correct_rate(self) -> float:
        if self.total == 0:
            return 0.5
        return self.correct / self.total

    @property
    def mispredict_rate(self) -> float:
        return 1.0 - self.correct_rate

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"HalvingRateCounter(correct={self.correct}, "
            f"mispredicted={self.mispredicted})"
        )
