"""Small filesystem utilities shared across the package.

Currently one primitive: :func:`atomic_write`, the publish-by-rename
pattern used everywhere a file must never be observable half-written —
result-cache entries, campaign plan files, shard journals' value store
and shard result files.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Any, Callable, Optional


def atomic_write(path: Path, write: Callable[[Any], None],
                 mode: str = "wb",
                 encoding: Optional[str] = None) -> None:
    """Write ``path`` atomically: temp file in the same directory, then
    :func:`os.replace`.

    ``write`` receives the open temp-file handle and does the actual
    serialization.  Concurrent writers each publish via their own temp
    file, so a reader can only ever observe a complete file (the old one
    or a new one), never a torn write.  On failure the temp file is
    removed without masking the original error.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    handle = tempfile.NamedTemporaryFile(
        mode=mode, encoding=encoding, dir=path.parent, prefix=path.name,
        suffix=".tmp", delete=False,
    )
    try:
        with handle:
            write(handle)
        os.replace(handle.name, path)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise
