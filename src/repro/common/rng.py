"""Deterministic named random streams.

Every stochastic component of the reproduction (workload generation,
wrong-path instruction synthesis, cache address streams, ...) draws from a
named stream derived from a single experiment seed, so that:

* two components never perturb each other's randomness, and
* every experiment is reproducible bit-for-bit from its seed.

The generator is a small xorshift64* kept in pure Python — fast enough for
the simulator's needs and independent of the version-to-version behaviour of
:mod:`random`.
"""

from __future__ import annotations

import hashlib
import math
from typing import Dict, Sequence, TypeVar

_T = TypeVar("_T")

_MASK64 = (1 << 64) - 1


def _seed_from_name(master_seed: int, name: str) -> int:
    """Derive a 64-bit stream seed from the master seed and a stream name."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    seed = int.from_bytes(digest[:8], "little")
    return seed or 0x9E3779B97F4A7C15


class DeterministicRng:
    """A small, fast xorshift64* pseudo-random generator."""

    __slots__ = ("_state",)

    def __init__(self, seed: int) -> None:
        self._state = (seed & _MASK64) or 0x9E3779B97F4A7C15

    def next_u64(self) -> int:
        """Return the next 64-bit unsigned integer."""
        x = self._state
        x ^= (x >> 12)
        x ^= (x << 25) & _MASK64
        x ^= (x >> 27)
        self._state = x
        return (x * 0x2545F4914F6CDD1D) & _MASK64

    def random(self) -> float:
        """Return a float uniformly distributed in [0, 1)."""
        # next_u64 inlined: this is the hottest call in the simulator.
        x = self._state
        x ^= (x >> 12)
        x ^= (x << 25) & _MASK64
        x ^= (x >> 27)
        self._state = x
        return (((x * 0x2545F4914F6CDD1D) & _MASK64) >> 11) / 9007199254740992.0

    def randint(self, low: int, high: int) -> int:
        """Return an integer uniformly distributed in [low, high] inclusive."""
        if high < low:
            raise ValueError("empty range for randint")
        span = high - low + 1
        return low + self.next_u64() % span

    def choice(self, items: Sequence[_T]) -> _T:
        """Return a uniformly chosen element of a non-empty sequence."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return items[self.next_u64() % len(items)]

    def bernoulli(self, probability: float) -> bool:
        """Return True with the given probability."""
        # random() inlined (hot path).
        x = self._state
        x ^= (x >> 12)
        x ^= (x << 25) & _MASK64
        x ^= (x >> 27)
        self._state = x
        return ((((x * 0x2545F4914F6CDD1D) & _MASK64) >> 11)
                / 9007199254740992.0) < probability

    def geometric(self, probability: float, cap: int = 1 << 20) -> int:
        """Return a geometric variate (number of trials until first success)."""
        if not 0.0 < probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")
        count = 1
        while not self.bernoulli(probability) and count < cap:
            count += 1
        return count

    def weighted_choice(self, items: Sequence[_T], weights: Sequence[float]) -> _T:
        """Return an element chosen with probability proportional to its weight."""
        if len(items) != len(weights):
            raise ValueError("items and weights must have equal length")
        total = float(sum(weights))
        if total <= 0.0:
            raise ValueError("weights must sum to a positive value")
        target = self.random() * total
        acc = 0.0
        for item, weight in zip(items, weights):
            acc += weight
            if target < acc:
                return item
        return items[-1]

    def cumulative_choice(self, items: Sequence[_T],
                          cumulative: Sequence[float], total: float) -> _T:
        """Weighted choice over a precomputed cumulative-weight table.

        Draws the *bit-identical* element :meth:`weighted_choice` would
        draw, provided ``cumulative`` holds the same running partial sums
        (``0.0 + w0``, ``0.0 + w0 + w1``, …) and ``total`` equals
        ``float(sum(weights))`` — precomputing them merely hoists the
        per-call summation out of hot loops.
        """
        # random() inlined (hot path).
        x = self._state
        x ^= (x >> 12)
        x ^= (x << 25) & _MASK64
        x ^= (x >> 27)
        self._state = x
        target = ((((x * 0x2545F4914F6CDD1D) & _MASK64) >> 11)
                  / 9007199254740992.0) * total
        for item, acc in zip(items, cumulative):
            if target < acc:
                return item
        return items[-1]

    # ------------------------------------------------------------------ #
    # block APIs
    #
    # Each block method replays the *exact* scalar draw sequence of its
    # per-call counterpart into a preallocated list: ``fill_uniforms(out,
    # n)`` consumes the stream precisely as ``n`` calls to :meth:`random`
    # would, and likewise for :meth:`geometric_block` /
    # :meth:`cumulative_choice_block`.  The bit-identity is pinned by
    # ``tests/test_common_rng.py``.  :meth:`geometric_block` is the gap
    # draw shared by the trace backend's scalar and blocked paths; the
    # other two are the general block entry points of the same contract
    # for streams whose per-item draw count is fixed.
    # ------------------------------------------------------------------ #

    def fill_uniforms(self, out: list, n: int, start: int = 0) -> list:
        """Fill ``out[start:start + n]`` with the next ``n`` uniforms.

        Bit-identical to ``n`` successive :meth:`random` calls; the
        xorshift step is inlined once for the whole block instead of once
        per draw.
        """
        state = self._state
        for i in range(start, start + n):
            state ^= (state >> 12)
            state ^= (state << 25) & _MASK64
            state ^= (state >> 27)
            out[i] = (((state * 0x2545F4914F6CDD1D) & _MASK64) >> 11) \
                / 9007199254740992.0
        self._state = state
        return out

    def geometric_block(self, log_one_minus_p: "float | None", out: list,
                        n: int, start: int = 0) -> list:
        """Draw ``n`` closed-form geometric gap lengths into ``out``.

        ``log_one_minus_p`` is the precomputed ``log(1 - p)`` of the
        per-trial success probability; ``None`` means ``p == 1`` (every
        gap is 0 and **no** draws are consumed, matching the scalar gap
        path of the trace backend).  Each gap consumes exactly one
        uniform and equals ``int(log(u) / log(1 - p))`` (0 when ``u``
        underflows to 0.0) — bit-identical to ``n`` scalar draws.
        """
        if log_one_minus_p is None:
            for i in range(start, start + n):
                out[i] = 0
            return out
        log = math.log
        state = self._state
        for i in range(start, start + n):
            state ^= (state >> 12)
            state ^= (state << 25) & _MASK64
            state ^= (state >> 27)
            u = (((state * 0x2545F4914F6CDD1D) & _MASK64) >> 11) \
                / 9007199254740992.0
            out[i] = int(log(u) / log_one_minus_p) if u > 0.0 else 0
        self._state = state
        return out

    def geometric_episode(self, log_one_minus_p: "float | None", out: list,
                          budget: int) -> "tuple[int, int]":
        """Draw the gap lengths of one bounded gap/branch episode.

        Replays the trace backend's scalar wrong-path loop in one call:
        starting from ``budget`` remaining slots, repeatedly draw a
        geometric gap (one uniform, exactly as :meth:`geometric_block`
        with ``n == 1`` would); a gap that covers the remaining budget is
        clamped to it and ends the episode, otherwise the gap plus one
        branch slot are consumed and the next gap is drawn.  Gap lengths
        land in ``out[0:n_gaps]``; returns ``(n_gaps, n_branches)`` where
        ``n_branches`` is the number of branch slots consumed — equal to
        ``n_gaps`` when the last consumed slot was a branch, ``n_gaps -
        1`` when the clamped final gap ended the episode.  ``out`` must
        hold at least ``budget`` entries (every draw consumes at least
        one slot).  ``log_one_minus_p is None`` means every gap is 0 and
        **no** draws are consumed: the episode is ``budget`` branches.

        Bit-identical — in drawn values, stream state *and* draw count —
        to the scalar loop it replaces (pinned by
        ``tests/test_common_rng.py``).
        """
        if log_one_minus_p is None:
            for i in range(budget):
                out[i] = 0
            return budget, budget
        log = math.log
        state = self._state
        remaining = budget
        n = 0
        while remaining:
            state ^= (state >> 12)
            state ^= (state << 25) & _MASK64
            state ^= (state >> 27)
            u = (((state * 0x2545F4914F6CDD1D) & _MASK64) >> 11) \
                / 9007199254740992.0
            gap = int(log(u) / log_one_minus_p) if u > 0.0 else 0
            if gap >= remaining:
                out[n] = remaining
                n += 1
                self._state = state
                return n, n - 1
            out[n] = gap
            n += 1
            remaining -= gap + 1
        self._state = state
        return n, n

    def cumulative_choice_block(self, items: Sequence[_T],
                                cumulative: Sequence[float], total: float,
                                out: list, n: int, start: int = 0) -> list:
        """Draw ``n`` weighted choices over one precomputed cumulative table.

        Bit-identical to ``n`` successive :meth:`cumulative_choice` calls
        with the same ``(items, cumulative, total)`` arguments.
        """
        state = self._state
        last = items[-1]
        for i in range(start, start + n):
            state ^= (state >> 12)
            state ^= (state << 25) & _MASK64
            state ^= (state >> 27)
            target = ((((state * 0x2545F4914F6CDD1D) & _MASK64) >> 11)
                      / 9007199254740992.0) * total
            chosen = last
            for item, acc in zip(items, cumulative):
                if target < acc:
                    chosen = item
                    break
            out[i] = chosen
        self._state = state
        return out

    @staticmethod
    def cumulative_weights(weights: Sequence[float]) -> "tuple[list, float]":
        """Precompute (partial sums, total) for :meth:`cumulative_choice`.

        The final partial sum *is* ``float(sum(weights))`` — both are the
        same left-to-right float accumulation — so the pair is bit-exact
        against :meth:`weighted_choice`'s per-call arithmetic.
        """
        acc = 0.0
        partial = []
        for weight in weights:
            acc += weight
            partial.append(acc)
        return partial, acc


class RngPool:
    """A pool of independent named random streams sharing one master seed."""

    def __init__(self, master_seed: int = 1) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, DeterministicRng] = {}

    def stream(self, name: str) -> DeterministicRng:
        """Return (creating if needed) the stream with the given name."""
        rng = self._streams.get(name)
        if rng is None:
            rng = DeterministicRng(_seed_from_name(self.master_seed, name))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RngPool":
        """Return a new pool whose master seed is derived from this one."""
        return RngPool(_seed_from_name(self.master_seed, f"fork:{name}"))
