"""Probabilistic-forecast statistics: reliability diagrams and RMS error.

The paper evaluates PaCo as a *probabilistic forecast system* (Section 4.3):
every time the machine's path confidence can change (an "instance" — an
instruction fetch or an instruction execution), the predictor emits a
predicted good-path probability and an oracle records whether the fetch unit
was actually on the good path.  A reliability diagram bins instances by
predicted probability and plots the observed good-path fraction per bin; the
RMS error between predicted and observed probabilities (weighted by bin
occupancy) is the headline accuracy number (Table 7: 0.0377 mean).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple


class RunningMean:
    """Numerically stable running mean/variance accumulator."""

    __slots__ = ("count", "mean", "_m2")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        return self._m2 / self.count

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "RunningMean") -> None:
        """Fold another accumulator into this one."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self.mean = (self.count * self.mean + other.count * other.mean) / total
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.count = total


@dataclass
class ReliabilityBin:
    """One bin of a reliability diagram."""

    lower: float
    upper: float
    instances: int = 0
    goodpath_instances: int = 0
    predicted_sum: float = 0.0

    @property
    def midpoint(self) -> float:
        return 0.5 * (self.lower + self.upper)

    @property
    def mean_predicted(self) -> float:
        """Mean predicted probability of the instances in this bin."""
        if self.instances == 0:
            return self.midpoint
        return self.predicted_sum / self.instances

    @property
    def observed(self) -> float:
        """Observed good-path fraction for this bin."""
        if self.instances == 0:
            return 0.0
        return self.goodpath_instances / self.instances


@dataclass
class ReliabilityPoint:
    """A (predicted, observed, weight) point extracted from a diagram."""

    predicted: float
    observed: float
    instances: int


class ReliabilityDiagram:
    """Accumulates (predicted probability, actually-on-goodpath) instances.

    Parameters
    ----------
    num_bins:
        Number of equal-width probability bins across [0, 1].  The paper's
        diagrams use percentage-resolution bins; 100 is the default here.
    """

    def __init__(self, num_bins: int = 100) -> None:
        if num_bins <= 0:
            raise ValueError("num_bins must be positive")
        self.num_bins = num_bins
        self.bins: List[ReliabilityBin] = [
            ReliabilityBin(lower=i / num_bins, upper=(i + 1) / num_bins)
            for i in range(num_bins)
        ]
        self.total_instances = 0
        self.total_goodpath = 0

    def record(self, predicted: float, on_goodpath: bool, weight: int = 1) -> None:
        """Record one instance (or ``weight`` identical instances)."""
        if not 0.0 <= predicted <= 1.0:
            predicted = min(max(predicted, 0.0), 1.0)
        index = min(int(predicted * self.num_bins), self.num_bins - 1)
        bucket = self.bins[index]
        bucket.instances += weight
        bucket.predicted_sum += predicted * weight
        if on_goodpath:
            bucket.goodpath_instances += weight
            self.total_goodpath += weight
        self.total_instances += weight

    def record_many(self, predicted: float, events: Sequence) -> None:
        """Record a batch of run events that share one predicted probability.

        ``events`` is the trace backend's flat run-event buffer — stride-4
        ``(kind, on_goodpath, cycle, count)`` groups.  The bin is resolved
        once for the whole batch; the integer totals fold exactly, while
        ``predicted_sum`` accumulates one ``predicted * count`` term per
        event in order, which keeps the float bit-identical to the
        equivalent sequence of :meth:`record` calls.
        """
        if not 0.0 <= predicted <= 1.0:
            predicted = min(max(predicted, 0.0), 1.0)
        bucket = self.bins[min(int(predicted * self.num_bins),
                               self.num_bins - 1)]
        instances = 0
        goodpath = 0
        predicted_sum = bucket.predicted_sum
        for i in range(3, len(events), 4):
            weight = events[i]
            instances += weight
            predicted_sum += predicted * weight
            if events[i - 2]:
                goodpath += weight
        bucket.instances += instances
        bucket.predicted_sum = predicted_sum
        bucket.goodpath_instances += goodpath
        self.total_goodpath += goodpath
        self.total_instances += instances

    def record_folded(self, predicted: float, weights: Sequence,
                      instances: int, goodpath: int) -> None:
        """Record a pre-folded batch that shares one predicted probability.

        ``weights`` is the batch's run-length column (one count per run
        event, in order) and ``instances``/``goodpath`` its integer totals
        — callers that feed several diagrams from the same batch fold the
        integers once and share them.  ``predicted_sum`` still accumulates
        one ``predicted * weight`` term per event in order, keeping the
        float bit-identical to the equivalent :meth:`record` sequence.
        """
        if not 0.0 <= predicted <= 1.0:
            predicted = min(max(predicted, 0.0), 1.0)
        bucket = self.bins[min(int(predicted * self.num_bins),
                               self.num_bins - 1)]
        predicted_sum = bucket.predicted_sum
        for weight in weights:
            predicted_sum += predicted * weight
        bucket.predicted_sum = predicted_sum
        bucket.instances += instances
        bucket.goodpath_instances += goodpath
        self.total_goodpath += goodpath
        self.total_instances += instances

    def merge(self, other: "ReliabilityDiagram") -> None:
        """Fold another diagram (with the same binning) into this one."""
        if other.num_bins != self.num_bins:
            raise ValueError("cannot merge diagrams with different binning")
        for mine, theirs in zip(self.bins, other.bins):
            mine.instances += theirs.instances
            mine.goodpath_instances += theirs.goodpath_instances
            mine.predicted_sum += theirs.predicted_sum
        self.total_instances += other.total_instances
        self.total_goodpath += other.total_goodpath

    def points(self, min_instances: int = 1) -> List[ReliabilityPoint]:
        """Return the populated (predicted, observed) points of the diagram."""
        result = []
        for bucket in self.bins:
            if bucket.instances >= min_instances:
                result.append(
                    ReliabilityPoint(
                        predicted=bucket.mean_predicted,
                        observed=bucket.observed,
                        instances=bucket.instances,
                    )
                )
        return result

    def rms_error(self, min_instances: int = 1) -> float:
        """Occupancy-weighted RMS error between predicted and observed probability."""
        total = 0
        acc = 0.0
        for bucket in self.bins:
            if bucket.instances < min_instances:
                continue
            err = bucket.mean_predicted - bucket.observed
            acc += bucket.instances * err * err
            total += bucket.instances
        if total == 0:
            return 0.0
        return math.sqrt(acc / total)

    def histogram(self) -> List[Tuple[float, int]]:
        """Return (bin midpoint, instance count) pairs — the bar chart in Fig. 8."""
        return [(bucket.midpoint, bucket.instances) for bucket in self.bins]

    def observed_goodpath_fraction(self) -> float:
        """Overall fraction of instances that were on the good path."""
        if self.total_instances == 0:
            return 0.0
        return self.total_goodpath / self.total_instances

    def format_table(self, min_instances: int = 1) -> str:
        """Render the diagram as a text table (predicted %, observed %, count)."""
        lines = ["predicted%  observed%  instances"]
        for point in self.points(min_instances=min_instances):
            lines.append(
                f"{100 * point.predicted:9.1f}  {100 * point.observed:9.1f}"
                f"  {point.instances:9d}"
            )
        return "\n".join(lines)


def rms_error(predicted: Sequence[float], observed: Sequence[float]) -> float:
    """Unweighted RMS error between two equal-length sequences."""
    if len(predicted) != len(observed):
        raise ValueError("sequences must have equal length")
    if not predicted:
        return 0.0
    acc = 0.0
    for p, o in zip(predicted, observed):
        acc += (p - o) ** 2
    return math.sqrt(acc / len(predicted))


def weighted_rms_error(points: Iterable[Tuple[float, float, float]]) -> float:
    """RMS error over (predicted, observed, weight) triples."""
    acc = 0.0
    total = 0.0
    for predicted, observed, weight in points:
        acc += weight * (predicted - observed) ** 2
        total += weight
    if total == 0.0:
        return 0.0
    return math.sqrt(acc / total)


def harmonic_mean(values: Sequence[float]) -> float:
    """Harmonic mean, used for the HMWIPC SMT metric."""
    if not values:
        raise ValueError("harmonic mean of empty sequence")
    if any(v <= 0.0 for v in values):
        raise ValueError("harmonic mean requires positive values")
    return len(values) / sum(1.0 / v for v in values)
