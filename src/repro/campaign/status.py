"""Campaign status: how far along a campaign directory is.

Progress is reconstructed purely from on-disk artefacts — the plan file,
shard journals, shard result files and the merged output directory — so
``campaign status`` can be asked from any machine that sees the campaign
directory, at any point of the campaign's life.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional

from repro.runner.cache import code_version
from repro.campaign.merge import merged_dir
from repro.campaign.plan import CampaignPlan
from repro.campaign.shard import completed_digests, result_path, shards_dir

_JOURNAL_RE = re.compile(r"shard-(\d+)-of-(\d+)\.journal\.jsonl")


@dataclass
class ShardProgress:
    """One shard's journal/result state."""

    shard_index: int
    shard_count: int
    assigned: int
    completed: int
    has_result_file: bool
    #: Journaled-and-persisted digests the plan does *not* assign to this
    #: shard — state from a different plan sharing the directory.  They
    #: never count towards ``completed``.
    foreign: int = 0

    @property
    def finished(self) -> bool:
        return self.completed >= self.assigned


@dataclass
class CampaignStatus:
    """Aggregate progress of one campaign directory."""

    plan: CampaignPlan
    shard_count: Optional[int]   #: None until a shard starts, or if mixed
    shards: List[ShardProgress] = field(default_factory=list)
    merged_files: List[Path] = field(default_factory=list)

    @property
    def total_jobs(self) -> int:
        return len(self.plan.planned)

    @property
    def completed_jobs(self) -> int:
        return sum(shard.completed for shard in self.shards)

    @property
    def started_shards(self) -> int:
        return len(self.shards)

    @property
    def finished_shards(self) -> int:
        return sum(1 for shard in self.shards if shard.finished)

    @property
    def mixed_shard_counts(self) -> bool:
        """True when journals disagree on the shard count — the directory
        was run with more than one ``--shard i/N`` partitioning and the
        per-shard numbers cannot be summed meaningfully."""
        return len({shard.shard_count for shard in self.shards}) > 1


def campaign_status(plan: CampaignPlan, campaign_dir: Path,
                    echo: Optional[Callable[[str], None]] = None
                    ) -> CampaignStatus:
    """Reconstruct a campaign's progress from its directory.

    Only file *names* and journals are read — shard result pickles are
    never loaded, so status stays cheap at paper scale and cannot trip
    over an unreadable result file.  Journals are keyed by their full
    ``(index, count)`` coordinate: running the same directory with two
    different ``--shard i/N`` partitionings shows both, flagged through
    :attr:`CampaignStatus.mixed_shard_counts` instead of silently
    shadowing one another.  Journal entries the plan does not assign to a
    shard (a foreign plan sharing the directory) are excluded from the
    ``completed`` counts and reported through
    :attr:`ShardProgress.foreign`; ``echo`` receives journal-corruption
    warnings.
    """
    campaign_dir = Path(campaign_dir)
    directory = shards_dir(campaign_dir)
    coordinates: List[tuple] = []
    if directory.is_dir():
        for path in sorted(directory.glob("shard-*.journal.jsonl")):
            match = _JOURNAL_RE.fullmatch(path.name)
            if match:
                coordinates.append((int(match.group(1)),
                                    int(match.group(2))))
    counts = {count for _index, count in coordinates}
    shard_count = counts.pop() if len(counts) == 1 else None

    # Completion is counted against the *current* code version — exactly
    # the entries a resumed `campaign run` would skip.  After a source
    # edit, a previously finished shard truthfully drops back to 0/N
    # (its journaled results are stale and will re-execute).
    version = code_version()
    shards: List[ShardProgress] = []
    for index, count in sorted(coordinates, key=lambda c: (c[1], c[0])):
        # Intersect with the plan's assignment — exactly as `run_shard`
        # does — so foreign-plan journal entries whose value files happen
        # to exist can never inflate `completed` past `assigned`.
        journaled = completed_digests(campaign_dir, index, count,
                                      version=version, echo=echo)
        planned = {p.digest for p in plan.shard_jobs(index, count)}
        shards.append(ShardProgress(
            shard_index=index,
            shard_count=count,
            assigned=len(planned),
            completed=len(journaled & planned),
            has_result_file=result_path(campaign_dir, index,
                                        count).is_file(),
            foreign=len(journaled - planned),
        ))

    merged = merged_dir(campaign_dir)
    merged_files = (sorted(merged.glob("*.txt")) if merged.is_dir()
                    else [])
    return CampaignStatus(plan=plan, shard_count=shard_count,
                          shards=shards, merged_files=merged_files)
