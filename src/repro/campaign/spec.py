"""Campaign specifications: what a paper-scale measurement campaign runs.

A :class:`CampaignSpec` names a suite of experiment drivers, the seeds to
run them at, and optional overrides (benchmark subset, instruction
budgets, simulation backend).  It is deliberately plain data — everything
JSON-serializable — so that a spec round-trips through ``campaign.json``
byte-identically and hashes into a stable campaign identity.

Two presets ship with the subsystem:

``paper``
    Every figure/table driver at paper-scale instruction budgets (100 M
    instructions per benchmark) on the fast trace-replay backend.  This
    is the budget the source paper measures at; it is only reachable
    through sharded campaigns plus the result cache.
``ci``
    A tiny smoke campaign (two drivers, thousands of instructions) used
    by the CI campaign-smoke job and the test suite.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.workloads.suite import resolve_benchmarks


class CampaignSpecError(ValueError):
    """Raised when a campaign spec cannot possibly execute."""


#: Experiment drivers a campaign may name (fig9 is an alias of fig8).
KNOWN_EXPERIMENTS = ("fig2", "fig3", "table7", "fig8", "fig9", "fig10",
                     "fig12", "tableA1", "ablations")


@dataclass(frozen=True)
class CampaignSpec:
    """One campaign: experiments × seeds × budgets × backend.

    ``None`` overrides mean "the driver's own default" — a spec with only
    ``experiments`` set plans exactly the jobs ``python -m repro run``
    would execute driver by driver.
    """

    name: str
    experiments: Tuple[str, ...]
    seeds: Tuple[int, ...] = (1,)
    benchmarks: Optional[Tuple[str, ...]] = None
    instructions: Optional[int] = None
    warmup_instructions: Optional[int] = None
    backend: Optional[str] = None
    quick: bool = False

    def validated(self) -> "CampaignSpec":
        """Return self after checking every field can plan; raise otherwise."""
        if not self.name or not self.name.strip():
            raise CampaignSpecError("campaign name must not be empty")
        if not self.experiments:
            raise CampaignSpecError("campaign must name at least one "
                                    "experiment")
        for experiment in self.experiments:
            if experiment not in KNOWN_EXPERIMENTS:
                raise CampaignSpecError(
                    f"unknown experiment {experiment!r} "
                    f"(known: {', '.join(KNOWN_EXPERIMENTS)})")
        if not self.seeds:
            raise CampaignSpecError("campaign must run at least one seed")
        if len(set(self.seeds)) != len(self.seeds):
            raise CampaignSpecError(f"duplicate seeds in {self.seeds}")
        for seed in self.seeds:
            if not isinstance(seed, int):
                raise CampaignSpecError(f"seed {seed!r} is not an integer")
        if self.benchmarks is not None:
            try:
                resolve_benchmarks(self.benchmarks)
            except ValueError as error:
                raise CampaignSpecError(str(error)) from None
        for label, value in (("instructions", self.instructions),
                             ("warmup_instructions",
                              self.warmup_instructions)):
            if value is not None and (not isinstance(value, int)
                                      or value <= 0):
                raise CampaignSpecError(
                    f"{label} must be a positive integer, got {value!r}")
        if self.backend is not None:
            from repro.backends import (UnknownBackendError,
                                        validate_backend_name)
            try:
                validate_backend_name(self.backend)
            except UnknownBackendError as error:
                raise CampaignSpecError(str(error)) from None
        return self

    def to_mapping(self) -> Dict[str, Any]:
        """Plain JSON-serializable form (tuples become lists)."""
        return {
            "name": self.name,
            "experiments": list(self.experiments),
            "seeds": list(self.seeds),
            "benchmarks": (None if self.benchmarks is None
                           else list(self.benchmarks)),
            "instructions": self.instructions,
            "warmup_instructions": self.warmup_instructions,
            "backend": self.backend,
            "quick": self.quick,
        }

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "CampaignSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(mapping) - known
        if unknown:
            raise CampaignSpecError(
                f"unknown campaign spec field(s): {sorted(unknown)}")
        data = dict(mapping)
        for key in ("experiments", "seeds"):
            if key in data and data[key] is not None:
                data[key] = tuple(data[key])
        if data.get("benchmarks") is not None:
            data["benchmarks"] = tuple(data["benchmarks"])
        return cls(**data).validated()

    def canonical(self) -> str:
        """Canonical JSON identity (stable across processes and runs)."""
        return json.dumps(self.to_mapping(), sort_keys=True,
                          separators=(",", ":"))

    def digest(self) -> str:
        """Content hash of the spec."""
        return hashlib.sha256(self.canonical().encode("utf-8")).hexdigest()

    def driver_kwargs(self, seed: int) -> Dict[str, Any]:
        """The uniform keyword arguments handed to a driver's
        ``jobs``/``report`` for one seed of this campaign."""
        return {
            "benchmarks": (None if self.benchmarks is None
                           else list(self.benchmarks)),
            "instructions": self.instructions,
            "warmup_instructions": self.warmup_instructions,
            "seed": seed,
            "quick": self.quick,
            "backend": self.backend,
        }


#: The shipped campaign presets, by name.
PRESETS: Dict[str, CampaignSpec] = {
    # Paper-scale suite: every figure/table driver at 100M instructions
    # per benchmark on the trace backend.  fig10/fig12 run as trace
    # estimates parity-gated against the cycle model; an exact cycle-model
    # reproduction at these budgets is a separate (much longer) campaign.
    "paper": CampaignSpec(
        name="paper",
        experiments=("fig2", "fig3", "table7", "fig8", "fig10", "fig12",
                     "tableA1", "ablations"),
        seeds=(1,),
        instructions=100_000_000,
        warmup_instructions=1_000_000,
        backend="trace",
    ),
    # Tiny smoke campaign for CI and the test suite.
    "ci": CampaignSpec(
        name="ci",
        experiments=("table7", "fig3", "fig12"),
        seeds=(1,),
        instructions=6_000,
        warmup_instructions=2_000,
        backend="trace",
    ),
}


def preset(name: str) -> CampaignSpec:
    """Look up a shipped preset by name."""
    try:
        return PRESETS[name]
    except KeyError:
        raise CampaignSpecError(
            f"unknown preset {name!r} (known: {', '.join(sorted(PRESETS))})"
        ) from None
