"""Campaign subsystem: sharded, resumable, paper-scale experiment suites.

A *campaign* turns a suite of experiment drivers into a deterministic,
shardable, resumable unit of work, so paper-scale instruction budgets
(``--preset paper`` ≈ 100 M instructions per benchmark) can be split
across machines and merged back into exactly the tables an unsharded run
would print:

1. **plan** — :func:`~repro.campaign.plan.build_plan` expands a
   :class:`~repro.campaign.spec.CampaignSpec` (experiments × seeds ×
   budgets × backend) through every driver's ``jobs()`` into the
   canonical, content-addressed job list, written to ``campaign.json``.
2. **run** — :func:`~repro.campaign.shard.run_shard` executes the jobs
   whose digests hash to one ``--shard i/N`` slice through the ordinary
   :class:`~repro.runner.sweep.SweepRunner` (workers + result cache),
   journaling every completion so interrupted shards resume without
   recomputation, and finally writes a self-describing shard result file.
3. **merge** — :func:`~repro.campaign.merge.merge_campaign` refuses
   anything but an exact cover of the plan, then replays the merged
   per-job results through each driver's ``report()`` — byte-identical
   output to a single-machine run.

The CLI surface lives in ``python -m repro campaign {plan,run,merge,status}``.
"""

from repro.campaign.merge import (
    CampaignCoverageError,
    CampaignMergeError,
    MergedCampaign,
    ReplayRunner,
    discover_shard_files,
    merge_campaign,
    merged_dir,
    validate_shards,
)
from repro.campaign.plan import (
    CampaignPlan,
    CampaignPlanError,
    PlannedJob,
    build_plan,
    canonical_experiments,
    driver_module,
    load_plan,
    save_plan,
    shard_of,
)
from repro.campaign.shard import (
    CampaignShardError,
    ShardStatus,
    parse_shard,
    run_shard,
    write_shard_result,
)
from repro.campaign.spec import (
    PRESETS,
    CampaignSpec,
    CampaignSpecError,
    preset,
)
from repro.campaign.status import (
    CampaignStatus,
    ShardProgress,
    campaign_status,
)

__all__ = [
    "CampaignCoverageError",
    "CampaignMergeError",
    "CampaignPlan",
    "CampaignPlanError",
    "CampaignShardError",
    "CampaignSpec",
    "CampaignSpecError",
    "CampaignStatus",
    "MergedCampaign",
    "PRESETS",
    "PlannedJob",
    "ReplayRunner",
    "ShardProgress",
    "ShardStatus",
    "build_plan",
    "campaign_status",
    "canonical_experiments",
    "discover_shard_files",
    "driver_module",
    "load_plan",
    "merge_campaign",
    "merged_dir",
    "parse_shard",
    "preset",
    "run_shard",
    "save_plan",
    "shard_of",
    "validate_shards",
    "write_shard_result",
]
