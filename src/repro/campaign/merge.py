"""Campaign merge: validate shard coverage, replay, aggregate.

The merge step never simulates.  It loads every shard result file,
verifies the shard set is *exactly* the plan — same plan digest, same
code version, indices 1..N each present once, no job covered twice, no
job missing — and then re-runs each experiment driver's ``report`` with a
:class:`ReplayRunner` that serves every job from the merged result store.
Because the drivers aggregate the very same deterministic per-job results
an unsharded run would have produced, the merged tables are byte-identical
to running ``python -m repro run <experiment>`` at the campaign's budgets
on one machine.
"""

from __future__ import annotations

import pickle
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.runner.jobs import Job
from repro.campaign.plan import (
    CampaignPlan,
    canonical_experiments,
    driver_module,
)
from repro.campaign.shard import shards_dir

MERGED_DIR_NAME = "merged"

_SHARD_FILE_RE = re.compile(r"shard-(\d+)-of-(\d+)\.pkl")


class CampaignMergeError(RuntimeError):
    """Raised when the shard set cannot be merged safely."""


class CampaignCoverageError(CampaignMergeError):
    """Raised when the shard set does not cover the plan exactly."""


@dataclass
class ShardResultFile:
    """One shard result file, parsed."""

    path: Path
    shard_index: int
    shard_count: int
    plan_digest: str
    code_version: str
    results: Dict[str, Any]


def discover_shard_files(campaign_dir: Path) -> List[ShardResultFile]:
    """Load every ``shards/shard-*-of-*.pkl`` under a campaign directory."""
    directory = shards_dir(campaign_dir)
    files: List[ShardResultFile] = []
    if not directory.is_dir():
        return files
    for path in sorted(directory.glob("shard-*-of-*.pkl")):
        if not _SHARD_FILE_RE.fullmatch(path.name):
            continue
        try:
            with path.open("rb") as handle:
                payload = pickle.load(handle)
        except (OSError, pickle.PickleError, EOFError) as error:
            raise CampaignMergeError(
                f"unreadable shard result file {path}: {error}") from None
        if payload.get("format") != 1:
            raise CampaignMergeError(
                f"unsupported shard result format in {path}")
        files.append(ShardResultFile(
            path=path,
            shard_index=payload["shard_index"],
            shard_count=payload["shard_count"],
            plan_digest=payload["plan_digest"],
            code_version=payload["code_version"],
            results=payload["results"],
        ))
    return files


def validate_shards(plan: CampaignPlan,
                    shard_files: Sequence[ShardResultFile]
                    ) -> Dict[str, Any]:
    """Check coverage/overlap and return the merged digest→value store."""
    if not shard_files:
        raise CampaignCoverageError(
            "no shard result files found — run every shard with "
            "`python -m repro campaign run --shard i/N` first")
    plan_digest = plan.digest()
    counts = {file.shard_count for file in shard_files}
    if len(counts) != 1:
        raise CampaignMergeError(
            f"shard files disagree on the shard count: "
            f"{sorted(counts)} — they belong to different campaign runs")
    count = counts.pop()
    indices = sorted(file.shard_index for file in shard_files)
    if indices != list(range(1, count + 1)):
        missing = sorted(set(range(1, count + 1)) - set(indices))
        raise CampaignCoverageError(
            f"incomplete shard set: have {indices} of 1..{count}"
            + (f", missing {missing}" if missing else ""))
    for file in shard_files:
        if file.plan_digest != plan_digest:
            raise CampaignMergeError(
                f"{file.path.name} was produced against a different "
                f"campaign plan ({file.plan_digest[:12]}… != "
                f"{plan_digest[:12]}…); re-plan and re-run it")
    versions = {file.code_version for file in shard_files}
    if len(versions) != 1:
        raise CampaignMergeError(
            f"shard files were produced by {len(versions)} different code "
            f"versions — results are not comparable; re-run the stale "
            f"shards")

    store: Dict[str, Any] = {}
    owners: Dict[str, int] = {}
    for file in shard_files:
        for digest, value in file.results.items():
            if digest in owners:
                raise CampaignCoverageError(
                    f"job {digest[:12]}… is covered by both shard "
                    f"{owners[digest]} and shard {file.shard_index}")
            owners[digest] = file.shard_index
            store[digest] = value

    planned = set(plan.job_digests())
    missing = planned - set(store)
    extra = set(store) - planned
    if missing:
        sample = ", ".join(sorted(missing)[:3])
        raise CampaignCoverageError(
            f"{len(missing)} planned job(s) missing from the shard set "
            f"(e.g. {sample}…)")
    if extra:
        sample = ", ".join(sorted(extra)[:3])
        raise CampaignCoverageError(
            f"shard set contains {len(extra)} job(s) the plan does not "
            f"know (e.g. {sample}…)")
    return store


class ReplayRunner:
    """A drop-in for :class:`~repro.runner.sweep.SweepRunner` that serves
    every job from a pre-merged result store and never executes.

    A lookup miss is a hard error: the merge must aggregate exactly what
    the shards measured, never silently re-simulate.
    """

    workers = 1
    cache = None

    def __init__(self, store: Dict[str, Any]) -> None:
        self._store = store
        self.served = 0

    def map(self, jobs: Sequence[Job]) -> List[Any]:
        results = []
        for job in jobs:
            digest = job.digest()
            if digest not in self._store:
                raise CampaignCoverageError(
                    f"the merged shard set has no result for "
                    f"{job.label!r} ({digest[:12]}…) — the plan does not "
                    f"cover everything this driver executes")
            results.append(self._store[digest])
            self.served += 1
        return results

    def run(self, spec) -> List[Any]:
        return self.map(spec.jobs())


@dataclass
class MergedCampaign:
    """Outcome of one merge: rendered tables plus where they were written."""

    plan: CampaignPlan
    texts: Dict[Tuple[str, int], str]      #: (experiment, seed) -> table
    output_dir: Path
    files: List[Path]


def merged_dir(campaign_dir: Path) -> Path:
    return Path(campaign_dir) / MERGED_DIR_NAME


def merge_campaign(plan: CampaignPlan, campaign_dir: Path,
                   output_dir: Optional[Path] = None) -> MergedCampaign:
    """Validate the shard set and aggregate every experiment's report.

    Writes ``<experiment>-seed<k>.txt`` per (experiment, seed) under
    ``output_dir`` (default ``<campaign-dir>/merged``), byte-identical to
    the text an unsharded ``report`` at the same settings returns.
    """
    campaign_dir = Path(campaign_dir)
    store = validate_shards(plan, discover_shard_files(campaign_dir))
    destination = (merged_dir(campaign_dir) if output_dir is None
                   else Path(output_dir))
    destination.mkdir(parents=True, exist_ok=True)

    texts: Dict[Tuple[str, int], str] = {}
    files: List[Path] = []
    for experiment in canonical_experiments(plan.spec):
        module = driver_module(experiment)
        for seed in plan.spec.seeds:
            runner = ReplayRunner(store)
            text = module.report(runner=runner,
                                 **plan.spec.driver_kwargs(seed))
            texts[(experiment, seed)] = text
            path = destination / f"{experiment}-seed{seed}.txt"
            path.write_text(text + "\n", encoding="utf-8")
            files.append(path)
    return MergedCampaign(plan=plan, texts=texts, output_dir=destination,
                          files=files)
