"""Campaign planning: spec → canonical job list → shard assignment.

:func:`build_plan` expands a :class:`~repro.campaign.spec.CampaignSpec`
into a :class:`CampaignPlan`: the deduplicated, deterministically ordered
list of every job the campaign's drivers would execute, each annotated
with the experiments that consume it.  The plan is the contract between
the three campaign phases — ``run`` executes exactly the planned jobs of
one shard, ``merge`` refuses to aggregate anything that does not cover
the plan exactly.

Shard assignment
----------------
A job belongs to shard ``i`` of ``N`` iff
``int(job.digest()[:16], 16) % N == i - 1``.  Keying the assignment on
the job's *content digest* (not its list position) makes the partition

* deterministic across machines and Python versions,
* stable under job-list growth: adding an experiment to the spec adds new
  digests but never moves an existing job to a different shard, so shards
  that already ran stay valid and only the new work needs executing.
"""

from __future__ import annotations

import hashlib
import importlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Tuple

from repro.common.fsutil import atomic_write
from repro.runner.cache import code_version
from repro.runner.jobs import Job
from repro.campaign.spec import CampaignSpec

PLAN_FILE_NAME = "campaign.json"

#: Campaign experiment name -> driver module (fig9 is served by fig8's
#: driver; the planner collapses the alias so the shared jobs plan once).
DRIVER_MODULES: Dict[str, str] = {
    "fig2": "repro.experiments.fig2_mdc_rates",
    "fig3": "repro.experiments.fig3_counter_goodpath",
    "table7": "repro.experiments.table7_rms",
    "fig8": "repro.experiments.fig8_9_reliability",
    "fig9": "repro.experiments.fig8_9_reliability",
    "fig10": "repro.experiments.fig10_gating",
    "fig12": "repro.experiments.fig12_smt",
    "tableA1": "repro.experiments.tableA1_mrt_variants",
    "ablations": "repro.experiments.ablations",
}

#: Alias -> canonical experiment name.
EXPERIMENT_ALIASES: Dict[str, str] = {"fig9": "fig8"}


class CampaignPlanError(ValueError):
    """Raised when a spec cannot be expanded into a job plan."""


def driver_module(experiment: str):
    """Import and return the driver module behind one experiment name."""
    try:
        module_name = DRIVER_MODULES[experiment]
    except KeyError:
        raise CampaignPlanError(
            f"unknown experiment {experiment!r} "
            f"(known: {', '.join(DRIVER_MODULES)})") from None
    return importlib.import_module(module_name)


def canonical_experiments(spec: CampaignSpec) -> List[str]:
    """The spec's experiments with aliases collapsed, order preserved."""
    names: List[str] = []
    for experiment in spec.experiments:
        canonical = EXPERIMENT_ALIASES.get(experiment, experiment)
        if canonical not in names:
            names.append(canonical)
    return names


def shard_of(digest: str, shard_count: int) -> int:
    """The 1-based shard a job digest belongs to, out of ``shard_count``."""
    if shard_count < 1:
        raise CampaignPlanError(f"shard count must be >= 1, "
                                f"got {shard_count}")
    return int(digest[:16], 16) % shard_count + 1


@dataclass(frozen=True)
class PlannedJob:
    """One unique job of the campaign plus the experiments that need it."""

    job: Job
    sources: Tuple[str, ...]    #: e.g. ("table7@seed1", "fig8@seed1")

    @property
    def digest(self) -> str:
        return self.job.digest()


@dataclass
class CampaignPlan:
    """The expanded, deduplicated job list of one campaign."""

    spec: CampaignSpec
    planned: List[PlannedJob]
    code_version: str

    def digest(self) -> str:
        """Identity of the plan: spec plus every job digest, in order.

        Shard result files carry this hash so a merge can refuse shards
        that were produced against a different plan.
        """
        material = hashlib.sha256(self.spec.canonical().encode("utf-8"))
        for planned in self.planned:
            material.update(planned.digest.encode("utf-8"))
        return material.hexdigest()

    def job_digests(self) -> List[str]:
        return [planned.digest for planned in self.planned]

    def shard_jobs(self, shard_index: int, shard_count: int
                   ) -> List[PlannedJob]:
        """The plan's jobs assigned to shard ``shard_index``/``shard_count``
        (1-based), in canonical plan order."""
        if not 1 <= shard_index <= shard_count:
            raise CampaignPlanError(
                f"shard index must be in 1..{shard_count}, "
                f"got {shard_index}")
        return [planned for planned in self.planned
                if shard_of(planned.digest, shard_count) == shard_index]

    def to_mapping(self) -> Dict[str, Any]:
        return {
            "format": 1,
            "spec": self.spec.to_mapping(),
            "code_version": self.code_version,
            "plan_digest": self.digest(),
            "jobs": [
                {
                    "experiment": planned.job.experiment,
                    "params_json": planned.job.params_json,
                    "seed": planned.job.seed,
                    "backend": planned.job.backend,
                    "label": planned.job.label,
                    "digest": planned.digest,
                    "sources": list(planned.sources),
                }
                for planned in self.planned
            ],
        }

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "CampaignPlan":
        if mapping.get("format") != 1:
            raise CampaignPlanError(
                f"unsupported campaign plan format "
                f"{mapping.get('format')!r}")
        spec = CampaignSpec.from_mapping(mapping["spec"])
        planned: List[PlannedJob] = []
        for entry in mapping["jobs"]:
            job = Job(experiment=entry["experiment"],
                      params_json=entry["params_json"],
                      seed=entry["seed"],
                      backend=entry["backend"],
                      label=entry.get("label", entry["experiment"]))
            if job.digest() != entry["digest"]:
                raise CampaignPlanError(
                    f"job digest mismatch for {job.label!r}: the plan file "
                    f"records {entry['digest'][:12]}… but the job hashes to "
                    f"{job.digest()[:12]}… — the plan was hand-edited or "
                    f"written by an incompatible version")
            planned.append(PlannedJob(job=job,
                                      sources=tuple(entry["sources"])))
        plan = cls(spec=spec, planned=planned,
                   code_version=mapping["code_version"])
        recorded = mapping.get("plan_digest")
        if recorded is not None and recorded != plan.digest():
            raise CampaignPlanError(
                "campaign plan digest mismatch — the plan file was modified "
                "after it was written")
        return plan

    def summary(self) -> Dict[str, int]:
        """Job counts per source experiment (shared jobs count for each)."""
        counts: Dict[str, int] = {}
        for planned in self.planned:
            for source in planned.sources:
                counts[source] = counts.get(source, 0) + 1
        return counts


def build_plan(spec: CampaignSpec) -> CampaignPlan:
    """Expand a validated spec into the canonical, deduplicated job list.

    Order: experiments in spec order (aliases collapsed), seeds in spec
    order, then each driver's own job order.  Jobs shared between
    experiments (identical content digest) are planned once, with every
    consumer recorded in ``sources``.
    """
    spec = spec.validated()
    by_digest: Dict[str, Job] = {}
    sources: Dict[str, List[str]] = {}
    order: List[str] = []
    for experiment in canonical_experiments(spec):
        module = driver_module(experiment)
        if not getattr(module, "CAMPAIGN_PLANNABLE", False):
            reason = getattr(module, "CAMPAIGN_UNPLANNABLE_REASON",
                             "its job list is not statically enumerable")
            raise CampaignPlanError(
                f"{experiment} cannot join a sharded campaign: {reason}; "
                f"run `python -m repro run {experiment}` directly instead")
        for seed in spec.seeds:
            source = f"{experiment}@seed{seed}"
            try:
                job_list = module.jobs(**spec.driver_kwargs(seed))
            except ValueError as error:
                raise CampaignPlanError(
                    f"cannot plan {experiment}: {error}") from None
            for job in job_list:
                digest = job.digest()
                if digest not in by_digest:
                    by_digest[digest] = job
                    sources[digest] = []
                    order.append(digest)
                if source not in sources[digest]:
                    sources[digest].append(source)
    planned = [PlannedJob(job=by_digest[digest],
                          sources=tuple(sources[digest]))
               for digest in order]
    if not planned:
        raise CampaignPlanError("the campaign plans zero jobs")
    return CampaignPlan(spec=spec, planned=planned,
                        code_version=code_version())


def plan_path(campaign_dir: Path) -> Path:
    return Path(campaign_dir) / PLAN_FILE_NAME


def save_plan(plan: CampaignPlan, campaign_dir: Path) -> Path:
    """Write ``campaign.json`` atomically; returns its path."""
    path = plan_path(Path(campaign_dir))
    payload = json.dumps(plan.to_mapping(), indent=2, sort_keys=True)
    atomic_write(path, lambda handle: handle.write(payload + "\n"),
                 mode="w", encoding="utf-8")
    return path


def load_plan(campaign_dir: Path) -> CampaignPlan:
    """Read and verify ``campaign.json`` from a campaign directory."""
    path = plan_path(campaign_dir)
    if not path.is_file():
        raise CampaignPlanError(
            f"no campaign plan at {path} — run "
            f"`python -m repro campaign plan` first")
    with path.open("r", encoding="utf-8") as handle:
        try:
            mapping = json.load(handle)
        except json.JSONDecodeError as error:
            raise CampaignPlanError(
                f"campaign plan {path} is not valid JSON: {error}"
            ) from None
    return CampaignPlan.from_mapping(mapping)
