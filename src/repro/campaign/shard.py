"""Shard execution: run one slice of a campaign, journaled and resumable.

A shard owns the planned jobs whose digests hash to its index (see
:func:`repro.campaign.plan.shard_of`).  Execution goes through the
caller's :class:`~repro.runner.sweep.SweepRunner` — worker pools and the
shared result cache keep working exactly as in ``python -m repro run`` —
in small batches, and after every batch each finished job is persisted
*twice*:

* its value is pickled to ``shards/values/<digest>.pkl`` (atomic
  temp-file + rename), and
* one JSON line ``{"digest": …, "label": …, "code_version": …}`` is
  appended to the shard's journal
  ``shards/shard-<i>-of-<N>.journal.jsonl`` and flushed.

The value is written before the journal line, so a crash between the two
at worst re-executes one job; a journal entry whose value file is missing
is ignored on resume.  Re-invoking an interrupted shard therefore skips
every journaled job and continues with the remainder — no recomputation.
Journal entries carry the code version that produced them, and resume
only honours entries matching the *current* code version — editing the
simulator between invocations re-executes the stale jobs instead of
silently mixing results from two code states (the same semantics as a
:class:`~repro.runner.cache.ResultCache` miss after a source change).

When the last assigned job is journaled the shard writes its
self-describing result file ``shards/shard-<i>-of-<N>.pkl`` (plan
digest, the executing code version, shard coordinates, every result),
which is what :mod:`repro.campaign.merge` consumes — and where shards
run against different code states are caught.
"""

from __future__ import annotations

import json
import pickle
import re
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.common.fsutil import atomic_write
from repro.runner.cache import code_version
from repro.runner.sweep import SweepRunner
from repro.campaign.plan import CampaignPlan

SHARDS_DIR_NAME = "shards"
VALUES_DIR_NAME = "values"


class CampaignShardError(RuntimeError):
    """Raised when a shard invocation cannot execute safely."""


def parse_shard(text: str) -> Tuple[int, int]:
    """Parse an ``i/N`` shard coordinate (1-based), e.g. ``"2/4"``."""
    match = re.fullmatch(r"\s*(\d+)\s*/\s*(\d+)\s*", text)
    if not match:
        raise CampaignShardError(
            f"invalid shard {text!r}: expected i/N, e.g. --shard 2/4")
    index, count = int(match.group(1)), int(match.group(2))
    if count < 1 or not 1 <= index <= count:
        raise CampaignShardError(
            f"invalid shard {text!r}: index must be in 1..count")
    return index, count


def shards_dir(campaign_dir: Path) -> Path:
    return Path(campaign_dir) / SHARDS_DIR_NAME


def values_dir(campaign_dir: Path) -> Path:
    return shards_dir(campaign_dir) / VALUES_DIR_NAME


def journal_path(campaign_dir: Path, index: int, count: int) -> Path:
    return shards_dir(campaign_dir) / f"shard-{index:03d}-of-{count:03d}.journal.jsonl"


def result_path(campaign_dir: Path, index: int, count: int) -> Path:
    return shards_dir(campaign_dir) / f"shard-{index:03d}-of-{count:03d}.pkl"


def _value_path(campaign_dir: Path, digest: str) -> Path:
    return values_dir(campaign_dir) / f"{digest}.pkl"


def _write_pickle_atomic(path: Path, payload: Any) -> None:
    atomic_write(path, lambda handle: pickle.dump(
        payload, handle, protocol=pickle.HIGHEST_PROTOCOL))


def read_journal(path: Path,
                 echo: Optional[Callable[[str], None]] = None
                 ) -> List[Dict[str, Any]]:
    """Parse a journal tolerantly — but only as tolerantly as appends fail.

    The one malformed line a healthy journal can contain is a truncated
    *final* line (the shard was killed mid-append); that one is ignored
    silently.  A malformed line anywhere *before* the end means the file
    was corrupted after the fact — those entries are dropped too (their
    jobs will re-execute), but with a warning through ``echo`` naming the
    line numbers, instead of silently shrinking the completed set.
    """
    if not path.is_file():
        return []
    say = echo if echo is not None else (lambda message: None)
    entries: List[Dict[str, Any]] = []
    malformed: List[int] = []
    number = 0
    with path.open("r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                malformed.append(number)
                continue
            if isinstance(entry, dict) and "digest" in entry:
                entries.append(entry)
            else:
                malformed.append(number)
    # Only the file's last line can be a torn append; anything earlier is
    # interior corruption worth telling the operator about.
    interior = [n for n in malformed if n != number]
    if interior:
        lines = ", ".join(str(n) for n in interior)
        say(f"warning: journal {path} has {len(interior)} malformed "
            f"interior line(s) (line {lines}) — the file was corrupted "
            f"after writing; the affected job(s) will re-execute")
    return entries


def load_value(campaign_dir: Path, digest: str) -> Tuple[bool, Any]:
    """Load one persisted job value; ``(False, None)`` if absent/torn."""
    path = _value_path(campaign_dir, digest)
    try:
        with path.open("rb") as handle:
            return True, pickle.load(handle)
    except (OSError, pickle.PickleError, EOFError, AttributeError):
        return False, None


@dataclass
class ShardStatus:
    """Outcome of one ``campaign run`` invocation."""

    shard_index: int
    shard_count: int
    assigned: int                 #: jobs the plan assigns to this shard
    resumed: int                  #: journaled before this invocation
    executed: int                 #: executed by this invocation
    completed: int                #: journaled after this invocation
    elapsed_seconds: float
    finished: bool                #: every assigned job is journaled
    result_file: Optional[Path] = None
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def remaining(self) -> int:
        return self.assigned - self.completed


def completed_digests(campaign_dir: Path, index: int, count: int,
                      version: Optional[str] = None,
                      echo: Optional[Callable[[str], None]] = None
                      ) -> Set[str]:
    """Digests this shard has durably finished (journal ∩ value files).

    When ``version`` is given, only journal entries produced by that code
    version count — entries from an older code state are stale and their
    jobs re-execute on resume, exactly like a result-cache miss after a
    source edit.  ``echo`` receives the journal-corruption warnings of
    :func:`read_journal`.
    """
    campaign_dir = Path(campaign_dir)
    done: Set[str] = set()
    for entry in read_journal(journal_path(campaign_dir, index, count),
                              echo=echo):
        if version is not None and entry.get("code_version") != version:
            continue
        digest = entry["digest"]
        if _value_path(campaign_dir, digest).is_file():
            done.add(digest)
    return done


def run_shard(plan: CampaignPlan, shard_index: int, shard_count: int,
              campaign_dir: Path, runner: Optional[SweepRunner] = None,
              max_jobs: Optional[int] = None,
              echo: Optional[Callable[[str], None]] = None) -> ShardStatus:
    """Execute (or resume) one shard of a campaign.

    ``max_jobs`` bounds how many *pending* jobs this invocation executes —
    useful for smoke runs and for draining a shard in time-boxed slices;
    the journal makes every prefix durable either way.
    """
    if max_jobs is not None and (not isinstance(max_jobs, int)
                                 or max_jobs < 1):
        raise CampaignShardError(
            f"invalid --max-jobs value {max_jobs!r}: must be an integer "
            f">= 1 (a zero or negative slice would silently drop pending "
            f"jobs)")
    campaign_dir = Path(campaign_dir)
    runner = runner if runner is not None else SweepRunner()
    say = echo if echo is not None else (lambda message: None)
    started = time.perf_counter()
    version = code_version()

    assigned = plan.shard_jobs(shard_index, shard_count)
    all_journaled = completed_digests(campaign_dir, shard_index,
                                      shard_count, echo=say)
    done = completed_digests(campaign_dir, shard_index, shard_count,
                             version=version)
    planned_digests = {planned.digest for planned in assigned}
    stale = all_journaled - planned_digests
    if stale:
        raise CampaignShardError(
            f"journal {journal_path(campaign_dir, shard_index, shard_count)} "
            f"records {len(stale)} job(s) the plan does not assign to shard "
            f"{shard_index}/{shard_count} — the campaign directory holds "
            f"state from a different plan; use a fresh directory")
    pending = [planned for planned in assigned if planned.digest not in done]
    truncated = max_jobs is not None and len(pending) > max_jobs
    if truncated:
        pending = pending[:max_jobs]

    resumed = len(done)
    outdated = len(all_journaled & planned_digests) - resumed
    if outdated:
        say(f"shard {shard_index}/{shard_count}: {outdated} journaled "
            f"job(s) were produced by a different code version and will "
            f"re-execute")
    if resumed:
        say(f"resuming shard {shard_index}/{shard_count}: {resumed} of "
            f"{len(assigned)} job(s) already journaled")

    executed = 0
    cache_hits_before = runner.cache.stats.hits if runner.cache else 0
    cache_misses_before = runner.cache.stats.misses if runner.cache else 0
    journal = journal_path(campaign_dir, shard_index, shard_count)
    journal.parent.mkdir(parents=True, exist_ok=True)
    batch_size = max(1, runner.workers)
    with journal.open("a", encoding="utf-8") as handle:
        for start in range(0, len(pending), batch_size):
            batch = pending[start:start + batch_size]
            values = runner.map([planned.job for planned in batch])
            for planned, value in zip(batch, values):
                _write_pickle_atomic(
                    _value_path(campaign_dir, planned.digest), value)
                handle.write(json.dumps(
                    {"digest": planned.digest,
                     "label": planned.job.label,
                     "code_version": version}) + "\n")
                handle.flush()
                executed += 1
            say(f"shard {shard_index}/{shard_count}: "
                f"{resumed + executed}/{len(assigned)} job(s) done")

    completed = resumed + executed
    finished = completed == len(assigned)
    status = ShardStatus(
        shard_index=shard_index,
        shard_count=shard_count,
        assigned=len(assigned),
        resumed=resumed,
        executed=executed,
        completed=completed,
        elapsed_seconds=time.perf_counter() - started,
        finished=finished,
        cache_hits=(runner.cache.stats.hits - cache_hits_before
                    if runner.cache else 0),
        cache_misses=(runner.cache.stats.misses - cache_misses_before
                      if runner.cache else 0),
    )
    if finished:
        status.result_file = write_shard_result(
            plan, shard_index, shard_count, campaign_dir)
        say(f"shard {shard_index}/{shard_count} complete: "
            f"{status.result_file}")
    return status


def write_shard_result(plan: CampaignPlan, shard_index: int,
                       shard_count: int, campaign_dir: Path) -> Path:
    """Collect a finished shard's values into its self-describing result
    file (every value must already be persisted).

    The file records the *executing* code version — not the version
    ``campaign.json`` was planned under — so a merge can detect shards
    that ran against different code states.
    """
    campaign_dir = Path(campaign_dir)
    results: Dict[str, Any] = {}
    for planned in plan.shard_jobs(shard_index, shard_count):
        present, value = load_value(campaign_dir, planned.digest)
        if not present:
            raise CampaignShardError(
                f"shard {shard_index}/{shard_count} is missing the value "
                f"of {planned.job.label!r} ({planned.digest[:12]}…); "
                f"re-run the shard")
        results[planned.digest] = value
    path = result_path(campaign_dir, shard_index, shard_count)
    _write_pickle_atomic(path, {
        "format": 1,
        "campaign": plan.spec.name,
        "plan_digest": plan.digest(),
        "code_version": code_version(),
        "shard_index": shard_index,
        "shard_count": shard_count,
        "results": results,
    })
    return path
