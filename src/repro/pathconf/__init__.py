"""Path confidence prediction — the paper's core contribution.

A *path confidence* predictor estimates, at any instant, the probability
that the processor front end is fetching instructions that will eventually
retire (the "good path").  This package contains:

* :class:`~repro.pathconf.threshold_count.ThresholdAndCountPredictor` — the
  conventional predictor (count of unresolved low-confidence branches).
* :class:`~repro.pathconf.paco.PaCoPredictor` — the paper's proposal: the
  JRS MDC value stratifies branches into buckets, a Mispredict Rate Table
  measures each bucket's correct-prediction probability, a log circuit
  encodes it, and a running sum of encoded probabilities over the
  unresolved branches is the (encoded) good-path probability.
* :class:`~repro.pathconf.static_mrt.StaticMRTPredictor` and
  :class:`~repro.pathconf.per_branch_mrt.PerBranchMRTPredictor` — the two
  alternative designs evaluated in the paper's Appendix A.
* :class:`~repro.pathconf.oracle.OraclePathConfidence` — a perfect
  reference predictor used by tests and sanity checks.
"""

from repro.pathconf.base import (
    BranchFetchInfo,
    BranchResolution,
    PathConfidencePredictor,
)
from repro.pathconf.threshold_count import ThresholdAndCountPredictor
from repro.pathconf.mrt import MispredictRateTable, DEFAULT_STATIC_MISPREDICT_RATES
from repro.pathconf.paco import PaCoPredictor
from repro.pathconf.static_mrt import StaticMRTPredictor
from repro.pathconf.per_branch_mrt import PerBranchMRTPredictor
from repro.pathconf.oracle import OraclePathConfidence
from repro.pathconf.composite import CompositePathConfidence

__all__ = [
    "CompositePathConfidence",
    "BranchFetchInfo",
    "BranchResolution",
    "PathConfidencePredictor",
    "ThresholdAndCountPredictor",
    "MispredictRateTable",
    "DEFAULT_STATIC_MISPREDICT_RATES",
    "PaCoPredictor",
    "StaticMRTPredictor",
    "PerBranchMRTPredictor",
    "OraclePathConfidence",
]
