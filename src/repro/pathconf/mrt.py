"""The Mispredict Rate Table (MRT).

One :class:`~repro.common.counters.HalvingRateCounter` per MDC value (16
buckets for the paper's 4-bit MDCs): a 10-bit correct-prediction counter
and a 6-bit misprediction counter that are both halved whenever either
overflows.  Periodically (every 200 000 cycles in the paper) a
re-logarithmizing pass converts each bucket's measured correct-prediction
probability into a 12-bit encoded probability via the Mitchell log circuit
and resets the counters.

The module also provides the static per-MDC mispredict-rate profile used to
(a) seed the encoded-probability registers before the first
re-logarithmizing pass and (b) drive the Static-MRT ablation of Appendix A.
The profile's shape follows Fig. 2 of the paper: mispredict rates fall
steeply from MDC 0 (~35 %) towards the saturated bucket (~1 %).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.common.counters import HalvingRateCounter
from repro.common.logcircuit import (
    ENCODED_PROBABILITY_MAX,
    ENCODED_PROBABILITY_SCALE,
    MitchellLogCircuit,
    encode_probability_exact,
)

#: A static per-MDC-value mispredict-rate profile with the shape of Fig. 2.
#: Index = MDC value (0..15).
DEFAULT_STATIC_MISPREDICT_RATES: List[float] = [
    0.35, 0.27, 0.21, 0.17, 0.14, 0.11, 0.09, 0.075,
    0.062, 0.052, 0.044, 0.037, 0.031, 0.026, 0.022, 0.012,
]


class MispredictRateTable:
    """Dynamic measurement of per-MDC-bucket correct-prediction probability.

    Parameters
    ----------
    num_buckets:
        Number of MDC values (16 for 4-bit MDCs).
    correct_bits / mispredict_bits:
        Counter widths (10 and 6 in the paper — 32 bytes of storage total).
    relog_period_cycles:
        How often the re-logarithmizing pass runs (200 000 cycles in the
        paper; the paper notes PaCo is not very sensitive to this).
    scale / clamp:
        Encoded-probability scale factor and saturation value.
    initial_mispredict_rates:
        Profile used to seed the encoded-probability registers before the
        first pass (defaults to :data:`DEFAULT_STATIC_MISPREDICT_RATES`).
    use_mitchell_log:
        When True (default) the encoded probabilities are produced by the
        hardware-faithful Mitchell circuit; when False, by exact floating
        point (used by ablations that quantify the circuit's error).
    """

    def __init__(self, num_buckets: int = 16, correct_bits: int = 10,
                 mispredict_bits: int = 6, relog_period_cycles: int = 200_000,
                 scale: int = ENCODED_PROBABILITY_SCALE,
                 clamp: int = ENCODED_PROBABILITY_MAX,
                 initial_mispredict_rates: Optional[Sequence[float]] = None,
                 use_mitchell_log: bool = True) -> None:
        if num_buckets <= 0:
            raise ValueError("need at least one MRT bucket")
        if relog_period_cycles <= 0:
            raise ValueError("re-logarithmizing period must be positive")
        self.num_buckets = num_buckets
        self.relog_period_cycles = relog_period_cycles
        self.scale = scale
        self.clamp = clamp
        self.use_mitchell_log = use_mitchell_log
        self.counters: List[HalvingRateCounter] = [
            HalvingRateCounter(correct_bits=correct_bits,
                               mispredict_bits=mispredict_bits)
            for _ in range(num_buckets)
        ]
        self._log_circuit = MitchellLogCircuit(input_bits=correct_bits,
                                               fraction_bits=10)
        rates = list(initial_mispredict_rates
                     if initial_mispredict_rates is not None
                     else DEFAULT_STATIC_MISPREDICT_RATES)
        if len(rates) < num_buckets:
            rates = rates + [rates[-1]] * (num_buckets - len(rates))
        self.encoded_probabilities: List[int] = [
            encode_probability_exact(1.0 - rates[i], scale=scale, clamp=clamp)
            for i in range(num_buckets)
        ]
        self._last_relog_cycle = 0
        self.relog_passes = 0
        self.samples_recorded = 0

    # ------------------------------------------------------------------ #

    def record(self, mdc_value: int, was_correct: bool) -> None:
        """Record one resolved branch outcome into its MDC bucket."""
        if not 0 <= mdc_value < self.num_buckets:
            raise ValueError(f"MDC value {mdc_value} out of range")
        self.counters[mdc_value].record(was_correct)
        self.samples_recorded += 1

    def encoded_probability(self, mdc_value: int) -> int:
        """Current encoded correct-prediction probability for an MDC bucket."""
        if not 0 <= mdc_value < self.num_buckets:
            raise ValueError(f"MDC value {mdc_value} out of range")
        return self.encoded_probabilities[mdc_value]

    def measured_mispredict_rate(self, mdc_value: int) -> float:
        """The mispredict rate currently accumulated in a bucket's counters."""
        return self.counters[mdc_value].mispredict_rate

    # ------------------------------------------------------------------ #

    def maybe_relog(self, cycle: int) -> bool:
        """Run the re-logarithmizing pass if the period has elapsed.

        Returns True when a pass was performed.
        """
        if cycle - self._last_relog_cycle < self.relog_period_cycles:
            return False
        self.relogarithmize()
        self._last_relog_cycle = cycle
        return True

    def relogarithmize(self) -> None:
        """Convert every bucket's counters into encoded probabilities and reset.

        Buckets that saw no samples since the last pass keep their previous
        encoded probability (there is nothing new to learn from them).
        """
        self.relog_passes += 1
        for mdc_value, counter in enumerate(self.counters):
            total = counter.total
            if total == 0:
                continue
            if self.use_mitchell_log:
                encoded = self._log_circuit.encode_rate(
                    counter.correct, total, scale=self.scale, clamp=self.clamp
                )
            else:
                encoded = encode_probability_exact(
                    counter.correct / total, scale=self.scale, clamp=self.clamp
                )
            self.encoded_probabilities[mdc_value] = encoded
            counter.reset()

    # ------------------------------------------------------------------ #

    def snapshot_rates(self) -> Dict[int, float]:
        """Return the current per-bucket mispredict rates (for reporting)."""
        return {
            mdc: counter.mispredict_rate
            for mdc, counter in enumerate(self.counters)
            if counter.total > 0
        }

    def storage_bits(self) -> int:
        """Storage used by the MRT counters plus the encoded-probability registers."""
        counter_bits = sum(c.correct_bits + c.mispredict_bits for c in self.counters)
        encoded_bits = self.num_buckets * 12
        return counter_bits + encoded_bits
