"""PaCo: the probability-based path confidence predictor.

PaCo computes the probability that the processor is on the good path as the
product of the correct-prediction probabilities of all unresolved branches
(Equation 1 of the paper), using the JRS MDC value of each branch to look
up its bucket's measured correct-prediction probability.  To avoid floating
point, everything happens in *encoded* (negative, scaled log2) space: the
path confidence register is a running sum of 12-bit encoded probabilities —
added when a branch is fetched, subtracted when it resolves (Equations 2–3).

Hardware inventory (Section 3.2): a Mispredict Rate Table of 32 counters
(32 bytes), sixteen 12-bit encoded-probability registers (24 bytes), a
Mitchell log circuit (a counter and a 10-bit shift register) that runs once
every 200 000 cycles, and the path confidence adder.  Total: under 60 bytes
of counters plus the shift register.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.common.logcircuit import (
    ENCODED_PROBABILITY_MAX,
    ENCODED_PROBABILITY_SCALE,
    decode_probability,
    encode_threshold,
)
from repro.pathconf.base import BranchFetchInfo, PathConfidencePredictor
from repro.pathconf.mrt import MispredictRateTable


class PaCoPredictor(PathConfidencePredictor):
    """The PaCo path confidence predictor.

    Parameters
    ----------
    num_mdc_values:
        Number of MDC buckets (16 for the paper's 4-bit MDCs).
    relog_period_cycles:
        Period of the re-logarithmizing pass (paper: 200 000 cycles).
    scale / clamp:
        Encoded-probability scale (1024) and saturation (2^12).
    initial_mispredict_rates:
        Optional per-bucket mispredict-rate prior used before the first
        re-logarithmizing pass.
    use_mitchell_log:
        Use the hardware Mitchell log circuit (True, default) or exact
        floating-point logs (False) when encoding bucket probabilities.
    """

    name = "paco"
    record_slots = ("encoded_added",)

    def __init__(self, num_mdc_values: int = 16,
                 relog_period_cycles: int = 200_000,
                 scale: int = ENCODED_PROBABILITY_SCALE,
                 clamp: int = ENCODED_PROBABILITY_MAX,
                 initial_mispredict_rates: Optional[Sequence[float]] = None,
                 use_mitchell_log: bool = True) -> None:
        self.scale = scale
        self.clamp = clamp
        self.mrt = MispredictRateTable(
            num_buckets=num_mdc_values,
            relog_period_cycles=relog_period_cycles,
            scale=scale,
            clamp=clamp,
            initial_mispredict_rates=initial_mispredict_rates,
            use_mitchell_log=use_mitchell_log,
        )
        #: The path confidence register: encoded good-path probability.
        self.path_confidence_register = 0
        self._outstanding = 0
        # One-entry decode memo: the observers read the probability once
        # per instance run, and the register is unchanged between most
        # consecutive reads.
        self._decoded_register = -1
        self._decoded_probability = 1.0

        self.fetched_branches = 0
        self.resolved_branches = 0
        self.squashed_branches = 0

    # ------------------------------------------------------------------ #
    # pipeline hooks
    # ------------------------------------------------------------------ #

    def on_branch_fetch(self, info: BranchFetchInfo) -> BranchFetchInfo:
        """Add the branch's encoded correct-prediction probability to the register.

        The encoded probability *added at fetch time* is stored in the
        branch record (``encoded_added`` slot) so that the subtraction at
        resolve/squash time removes exactly the same amount even if a
        re-logarithmizing pass changed the bucket's register in between —
        functionally equivalent to the checkpoint-based recovery a hardware
        implementation would use to keep the register from drifting.
        """
        self.fetched_branches += 1
        encoded = self.mrt.encoded_probability(info.mdc_value)
        info.encoded_added = encoded
        self.path_confidence_register += encoded
        self._outstanding += 1
        return info

    def _remove(self, token: BranchFetchInfo) -> None:
        encoded = token.encoded_added
        if encoded is None:
            return
        token.encoded_added = None
        self.path_confidence_register -= encoded
        if self.path_confidence_register < 0:
            self.path_confidence_register = 0
        self._outstanding = max(0, self._outstanding - 1)

    def on_branch_resolve(self, token: BranchFetchInfo, mispredicted: bool) -> None:
        """Subtract the branch's contribution and train its MRT bucket."""
        self.resolved_branches += 1
        self.mrt.record(token.mdc_value, was_correct=not mispredicted)
        self._remove(token)

    def on_branch_squash(self, token: BranchFetchInfo) -> None:
        """Remove a squashed branch's contribution without training the MRT."""
        self.squashed_branches += 1
        self._remove(token)

    def on_cycle(self, cycle: int) -> bool:
        """Run the periodic re-logarithmizing pass when due.

        Returns True when a pass ran (the estimate-relevant state changed).
        """
        return self.mrt.maybe_relog(cycle)

    def reset_window(self) -> None:
        self.path_confidence_register = 0
        self._outstanding = 0

    # ------------------------------------------------------------------ #
    # outputs
    # ------------------------------------------------------------------ #

    @property
    def encoded_goodpath_probability(self) -> int:
        """The raw content of the path confidence register (higher = less confident)."""
        return self.path_confidence_register

    def goodpath_probability(self) -> float:
        """Decode the register into a real probability (evaluation use only)."""
        register = self.path_confidence_register
        if register == self._decoded_register:
            return self._decoded_probability
        probability = decode_probability(register, scale=self.scale)
        self._decoded_register = register
        self._decoded_probability = probability
        return probability

    def outstanding_branches(self) -> int:
        return self._outstanding

    def should_gate(self, target_goodpath_probability: float) -> bool:
        """Gate when the encoded register exceeds the encoded target.

        This mirrors the hardware: the target probability is converted to
        encoded space once (e.g. 10 % → 3401) and fetch is gated whenever
        the register exceeds that constant.
        """
        threshold = encode_threshold(target_goodpath_probability, scale=self.scale)
        return self.path_confidence_register > threshold

    def encoded_threshold(self, probability: float) -> int:
        """Expose the probability→encoded conversion (used by applications)."""
        return encode_threshold(probability, scale=self.scale)
