"""Conventional threshold-and-count path confidence prediction.

The predictor the paper compares against (Fig. 1): the JRS MDC value of a
fetched branch is thresholded into a 1-bit high/low confidence estimate and
a counter tracks how many unresolved low-confidence branches are in flight.
The counter value is the "path confidence": higher means less likely to be
on the good path.

Because the counter is not a probability, applications must pick magic
numbers: pipeline gating gates when the count exceeds a *gate-count*, and
SMT fetch prioritization gives bandwidth to the thread with the smaller
count.  Section 2.3 of the paper shows why this is inaccurate: the same
count corresponds to very different good-path probabilities across
benchmarks and phases.

For reliability-diagram comparisons this class can optionally map counts to
probabilities with a fixed per-low-confidence-branch correctness rate; that
mapping is *not* part of the conventional hardware and is clearly labelled
as an evaluation aid.
"""

from __future__ import annotations

from typing import Optional

from repro.pathconf.base import BranchFetchInfo, PathConfidencePredictor


class ThresholdAndCountPredictor(PathConfidencePredictor):
    """Count of unresolved low-confidence branches.

    Parameters
    ----------
    threshold:
        JRS confidence threshold; branches with ``MDC < threshold`` are
        low-confidence.  The paper explores thresholds 3, 7, 11 and 15 and
        finds 3 the best overall.
    assumed_low_confidence_correct_rate:
        Only used by :meth:`goodpath_probability` to translate the count
        into a probability for reliability-diagram comparisons (the
        hardware never does this).  The default 0.75 corresponds to the
        ~25 % mispredict rate conventionally assumed for low-confidence
        branches.
    """

    record_slots = ("counted",)

    def __init__(self, threshold: int = 3,
                 assumed_low_confidence_correct_rate: float = 0.75) -> None:
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        if not 0.0 < assumed_low_confidence_correct_rate <= 1.0:
            raise ValueError("assumed correct rate must be in (0, 1]")
        self.threshold = threshold
        self.assumed_low_confidence_correct_rate = assumed_low_confidence_correct_rate
        self.name = f"jrs-count(t={threshold})"
        self._low_confidence_outstanding = 0
        self._outstanding = 0
        self._probability_by_count: dict = {}

        self.fetched_branches = 0
        self.low_confidence_branches = 0

    # ------------------------------------------------------------------ #

    def on_branch_fetch(self, info: BranchFetchInfo) -> BranchFetchInfo:
        self.fetched_branches += 1
        self._outstanding += 1
        counted = info.mdc_value < self.threshold
        info.counted = counted
        if counted:
            self.low_confidence_branches += 1
            self._low_confidence_outstanding += 1
        return info

    def _remove(self, token: BranchFetchInfo) -> None:
        counted = token.counted
        if counted is None:
            return
        token.counted = None
        self._outstanding = max(0, self._outstanding - 1)
        if counted:
            self._low_confidence_outstanding = max(
                0, self._low_confidence_outstanding - 1
            )

    def on_branch_resolve(self, token: BranchFetchInfo, mispredicted: bool) -> None:
        self._remove(token)

    def on_branch_squash(self, token: BranchFetchInfo) -> None:
        self._remove(token)

    def reset_window(self) -> None:
        self._low_confidence_outstanding = 0
        self._outstanding = 0

    # ------------------------------------------------------------------ #

    @property
    def low_confidence_count(self) -> int:
        """The hardware output: number of unresolved low-confidence branches."""
        return self._low_confidence_outstanding

    def outstanding_branches(self) -> int:
        return self._outstanding

    def goodpath_probability(self) -> float:
        """Evaluation-aid probability mapping (see class docstring)."""
        count = self._low_confidence_outstanding
        value = self._probability_by_count.get(count)
        if value is None:
            value = self.assumed_low_confidence_correct_rate ** count
            self._probability_by_count[count] = value
        return value

    def should_gate(self, target_goodpath_probability: float,
                    gate_count: Optional[int] = None) -> bool:
        """Gate when the low-confidence count reaches ``gate_count``.

        The probability-style signature is kept for interface compatibility;
        pipeline-gating experiments pass an explicit ``gate_count`` because
        that is the knob the conventional mechanism exposes.
        """
        if gate_count is not None:
            return self._low_confidence_outstanding >= gate_count
        return super().should_gate(target_goodpath_probability)
