"""Oracle path confidence — a perfect reference predictor.

The oracle knows, for every unresolved branch, whether its prediction was
actually wrong (the simulator knows the architectural outcome at fetch
time).  Its good-path probability is therefore exactly 1.0 while no
unresolved branch is mispredicted and 0.0 otherwise.  It is used by unit
tests, by sanity checks in the evaluation harness, and as an upper bound in
ablation benches; it is *not* a realisable hardware design.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pathconf.base import BranchFetchInfo, PathConfidencePredictor


@dataclass
class _OracleToken:
    will_mispredict: bool
    resolved: bool = False


class OraclePathConfidence(PathConfidencePredictor):
    """Perfect path confidence based on oracle knowledge of mispredictions."""

    name = "oracle"

    def __init__(self) -> None:
        self._outstanding_mispredicted = 0
        self._outstanding = 0

    def on_branch_fetch(self, info: BranchFetchInfo,
                        will_mispredict: bool = False) -> _OracleToken:
        """Register a fetched branch; the caller supplies oracle knowledge."""
        self._outstanding += 1
        if will_mispredict:
            self._outstanding_mispredicted += 1
        return _OracleToken(will_mispredict=will_mispredict)

    def _remove(self, token: _OracleToken) -> None:
        if token.resolved:
            return
        token.resolved = True
        self._outstanding = max(0, self._outstanding - 1)
        if token.will_mispredict:
            self._outstanding_mispredicted = max(
                0, self._outstanding_mispredicted - 1
            )

    def on_branch_resolve(self, token: _OracleToken, mispredicted: bool) -> None:
        self._remove(token)

    def on_branch_squash(self, token: _OracleToken) -> None:
        self._remove(token)

    def reset_window(self) -> None:
        self._outstanding = 0
        self._outstanding_mispredicted = 0

    def goodpath_probability(self) -> float:
        return 0.0 if self._outstanding_mispredicted > 0 else 1.0

    def outstanding_branches(self) -> int:
        return self._outstanding
