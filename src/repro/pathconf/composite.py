"""Composite path confidence predictor.

Running the timing simulator is the expensive part of every experiment, so
the evaluation harness frequently wants to evaluate several path confidence
predictors *simultaneously* over the exact same dynamic execution (PaCo,
the threshold-and-count baselines, the Appendix-A ablations, plus a
profiler).  :class:`CompositePathConfidence` fans every pipeline event out
to all attached predictors while exposing one of them as the *primary* —
the one whose estimate drives gating or fetch-prioritization decisions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.pathconf.base import BranchFetchInfo, PathConfidencePredictor


class CompositePathConfidence(PathConfidencePredictor):
    """Fan-out wrapper over several path confidence predictors."""

    name = "composite"

    def __init__(self, predictors: Sequence[PathConfidencePredictor],
                 primary: Optional[PathConfidencePredictor] = None) -> None:
        if not predictors:
            raise ValueError("need at least one predictor")
        self.predictors: List[PathConfidencePredictor] = list(predictors)
        self.primary = primary if primary is not None else self.predictors[0]
        if self.primary not in self.predictors:
            raise ValueError("the primary predictor must be one of the composites")
        # Two attached predictors writing the same per-branch slot of the
        # shared record would silently clobber each other's state; reject
        # the configuration outright (it has no hardware analogue either —
        # each confidence structure exists once per fetch stream).
        claimed: dict = {}
        for predictor in self.predictors:
            for slot in predictor.record_slots:
                if slot in claimed:
                    raise ValueError(
                        f"predictors {claimed[slot].name!r} and "
                        f"{predictor.name!r} both store per-branch state in "
                        f"the record slot {slot!r}; attach at most one of "
                        f"each predictor kind per composite"
                    )
                claimed[slot] = predictor
        # When every member stores its per-branch state in the shared
        # record, the record itself is the composite's token and fetch
        # allocates nothing; a member with its own token type (the oracle,
        # custom predictors in tests) falls back to per-branch token lists.
        self._shared_record_tokens = all(
            predictor.record_slots for predictor in self.predictors
        )
        # Per-cycle work is rare (only PaCo's re-logarithmizing pass), but
        # on_cycle runs every cycle: skip members that inherit the base
        # no-op instead of fanning out to all of them.
        self._cycle_predictors: List[PathConfidencePredictor] = [
            predictor for predictor in self.predictors
            if type(predictor).on_cycle is not PathConfidencePredictor.on_cycle
        ]

    # ------------------------------------------------------------------ #

    def on_branch_fetch(self, info: BranchFetchInfo) -> object:
        if self._shared_record_tokens:
            for predictor in self.predictors:
                predictor.on_branch_fetch(info)
            return info
        return [predictor.on_branch_fetch(info) for predictor in self.predictors]

    def on_branch_resolve(self, token: object, mispredicted: bool) -> None:
        if type(token) is list:
            for predictor, sub_token in zip(self.predictors, token):
                predictor.on_branch_resolve(sub_token, mispredicted)
            return
        for predictor in self.predictors:
            predictor.on_branch_resolve(token, mispredicted)

    def on_branch_squash(self, token: object) -> None:
        if type(token) is list:
            for predictor, sub_token in zip(self.predictors, token):
                predictor.on_branch_squash(sub_token)
            return
        for predictor in self.predictors:
            predictor.on_branch_squash(token)

    def on_cycle(self, cycle: int) -> bool:
        """Fan out periodic work; True when any member changed state."""
        changed = False
        for predictor in self._cycle_predictors:
            if predictor.on_cycle(cycle):
                changed = True
        return changed

    def reset_window(self) -> None:
        for predictor in self.predictors:
            predictor.reset_window()

    # ------------------------------------------------------------------ #

    def goodpath_probability(self) -> float:
        return self.primary.goodpath_probability()

    def outstanding_branches(self) -> int:
        return self.primary.outstanding_branches()

    def should_gate(self, target_goodpath_probability: float) -> bool:
        return self.primary.should_gate(target_goodpath_probability)

    def by_name(self) -> Dict[str, PathConfidencePredictor]:
        """Return the attached predictors keyed by their names."""
        return {predictor.name: predictor for predictor in self.predictors}
