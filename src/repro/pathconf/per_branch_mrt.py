"""Per-branch MRT path confidence prediction (Appendix A ablation).

Instead of stratifying branches by their MDC value, this design keeps a
mispredict-rate entry *per branch context* (indexed by a hash of the branch
PC and the global history) and uses that entry's long-run rate as the
branch's correct-prediction probability.

The paper finds this both more expensive and significantly *less* accurate
than PaCo's MDC-bucket approach (Appendix Table 1): a long-run per-branch
rate weighs ancient and recent mispredictions equally, so a branch that
mispredicted just now looks no more dangerous than one that mispredicted a
thousand instances ago — exactly the recency information the MDC value
captures and this design throws away.
"""

from __future__ import annotations

from typing import List

from repro.common.logcircuit import (
    ENCODED_PROBABILITY_MAX,
    ENCODED_PROBABILITY_SCALE,
    decode_probability,
    encode_probability_exact,
    encode_threshold,
)
from repro.pathconf.base import BranchFetchInfo, PathConfidencePredictor


class PerBranchMRTPredictor(PathConfidencePredictor):
    """Path confidence from per-branch-context long-run mispredict rates.

    Parameters
    ----------
    index_bits:
        log2 of the number of per-branch entries (the paper calls this the
        more hardware-intensive option; 2^12 entries by default).
    history_bits:
        Global-history bits folded into the index.
    prior_correct / prior_total:
        Pseudo-counts seeding every entry, so a never-seen branch context
        starts from a mildly optimistic correct-prediction probability
        instead of 0/0.
    """

    name = "per-branch-mrt"
    record_slots = ("table_index", "pbm_encoded")

    def __init__(self, index_bits: int = 12, history_bits: int = 8,
                 prior_correct: int = 3, prior_total: int = 4,
                 scale: int = ENCODED_PROBABILITY_SCALE,
                 clamp: int = ENCODED_PROBABILITY_MAX) -> None:
        if index_bits <= 0:
            raise ValueError("index width must be positive")
        if prior_total < prior_correct or prior_total <= 0:
            raise ValueError("invalid prior pseudo-counts")
        self.index_bits = index_bits
        self.size = 1 << index_bits
        self._mask = self.size - 1
        self._history_mask = (1 << history_bits) - 1
        self.scale = scale
        self.clamp = clamp
        self.prior_correct = prior_correct
        self.prior_total = prior_total
        # Long-run counters per entry: [correct, total]; never halved, which
        # is precisely the design weakness the paper points out.
        self._correct: List[int] = [prior_correct] * self.size
        self._total: List[int] = [prior_total] * self.size

        self.path_confidence_register = 0
        self._outstanding = 0

    def _index(self, pc: int, history: int) -> int:
        return ((pc >> 2) ^ (history & self._history_mask)) & self._mask

    def _encoded_for(self, index: int) -> int:
        probability = self._correct[index] / self._total[index]
        return encode_probability_exact(probability, scale=self.scale,
                                        clamp=self.clamp)

    # ------------------------------------------------------------------ #

    def on_branch_fetch(self, info: BranchFetchInfo) -> BranchFetchInfo:
        index = self._index(info.pc, info.history)
        encoded = self._encoded_for(index)
        info.table_index = index
        info.pbm_encoded = encoded
        self.path_confidence_register += encoded
        self._outstanding += 1
        return info

    def _remove(self, token: BranchFetchInfo) -> None:
        encoded = token.pbm_encoded
        if encoded is None:
            return
        token.pbm_encoded = None
        self.path_confidence_register = max(
            0, self.path_confidence_register - encoded
        )
        self._outstanding = max(0, self._outstanding - 1)

    def on_branch_resolve(self, token: BranchFetchInfo, mispredicted: bool) -> None:
        index = token.table_index
        self._total[index] += 1
        if not mispredicted:
            self._correct[index] += 1
        self._remove(token)

    def on_branch_squash(self, token: BranchFetchInfo) -> None:
        self._remove(token)

    def reset_window(self) -> None:
        self.path_confidence_register = 0
        self._outstanding = 0

    # ------------------------------------------------------------------ #

    def goodpath_probability(self) -> float:
        return decode_probability(self.path_confidence_register, scale=self.scale)

    def outstanding_branches(self) -> int:
        return self._outstanding

    def should_gate(self, target_goodpath_probability: float) -> bool:
        threshold = encode_threshold(target_goodpath_probability, scale=self.scale)
        return self.path_confidence_register > threshold
