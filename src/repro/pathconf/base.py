"""Common interface of all path confidence predictors.

The pipeline interacts with a path confidence predictor at exactly three
points, mirroring the hardware:

* **branch fetch** — a conditional branch enters the window; the predictor
  receives the branch's fetch-time confidence information (its JRS MDC
  value) and returns an opaque *token*.
* **branch resolution** — the branch executes; the predictor receives the
  token back together with whether the prediction was correct.
* **branch squash** — the branch is flushed from the window before
  resolving (it was younger than a mispredicted branch); the predictor
  removes its contribution without learning anything from it.

Between those events the pipeline (or the evaluation machinery) may query
:meth:`PathConfidencePredictor.goodpath_probability` at any time.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.branch_predictor.engine import BranchRecord

#: Fetch-time information about one conditional branch entering the window.
#:
#: Since the predictor-state-engine refactor this *is* the fused
#: :class:`~repro.branch_predictor.engine.BranchRecord`: the fetch engine
#: hands every path confidence predictor the same per-branch record, and
#: the built-in predictors stash their per-branch state (encoded
#: probability added, low-confidence flag, ...) in the record's dedicated
#: slots instead of allocating a token object each.  The name is kept so
#: callers (and tests) can keep constructing fetch-info objects with the
#: original keyword arguments: ``pc``, ``mdc_value``, ``mdc_index``,
#: ``predicted_taken``, ``history``, ``static_branch_id``, ``thread_id``.
BranchFetchInfo = BranchRecord


@dataclass(frozen=True)
class BranchResolution:
    """Resolution-time information: was the fetch-time prediction correct?"""

    mispredicted: bool


class PathConfidencePredictor(abc.ABC):
    """Abstract base class of every path confidence predictor."""

    #: Human-readable name used in reports and experiment tables.
    name: str = "abstract"

    #: Slots of the shared :class:`BranchFetchInfo` record this predictor
    #: writes its per-branch state into (empty for predictors that allocate
    #: their own tokens).  Predictors that declare slots return the record
    #: itself from :meth:`on_branch_fetch`; the composite uses the
    #: declarations to reject configurations where two predictors would
    #: clobber each other's slot.
    record_slots: tuple = ()

    @abc.abstractmethod
    def on_branch_fetch(self, info: BranchFetchInfo) -> object:
        """A conditional branch enters the window; returns an opaque token."""

    @abc.abstractmethod
    def on_branch_resolve(self, token: object, mispredicted: bool) -> None:
        """The branch carrying ``token`` resolved (executed)."""

    @abc.abstractmethod
    def on_branch_squash(self, token: object) -> None:
        """The branch carrying ``token`` was flushed before resolving."""

    @abc.abstractmethod
    def goodpath_probability(self) -> float:
        """Current estimate of the probability the front end is on the good path."""

    def on_cycle(self, cycle: int) -> object:
        """Per-cycle hook for periodic work (PaCo's re-logarithmizing pass).

        Implementations should return a truthy value when the periodic
        work changed estimate-relevant state (the trace backend uses this
        to keep its batched instance recording exact across, e.g., a
        re-logarithmizing pass).  The default no-op returns ``None``.
        """

    def outstanding_branches(self) -> int:
        """Number of branches currently contributing to the estimate."""
        return 0

    def reset_window(self) -> None:
        """Drop all outstanding-branch state (used on a full pipeline flush)."""

    def should_gate(self, target_goodpath_probability: float) -> bool:
        """Pipeline-gating decision: gate fetch when the estimated good-path
        probability falls below the target.

        The default implementation compares real probabilities; PaCo
        overrides it to compare in encoded space, as the hardware would.
        """
        return self.goodpath_probability() < target_goodpath_probability
