"""Common interface of all path confidence predictors.

The pipeline interacts with a path confidence predictor at exactly three
points, mirroring the hardware:

* **branch fetch** — a conditional branch enters the window; the predictor
  receives the branch's fetch-time confidence information (its JRS MDC
  value) and returns an opaque *token*.
* **branch resolution** — the branch executes; the predictor receives the
  token back together with whether the prediction was correct.
* **branch squash** — the branch is flushed from the window before
  resolving (it was younger than a mispredicted branch); the predictor
  removes its contribution without learning anything from it.

Between those events the pipeline (or the evaluation machinery) may query
:meth:`PathConfidencePredictor.goodpath_probability` at any time.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional


@dataclass(slots=True)
class BranchFetchInfo:
    """Fetch-time information about one conditional branch entering the window.

    (A plain slots dataclass, not frozen: one is built per fetched
    conditional branch, and the frozen ``__init__`` protocol costs several
    times as much on this hot path.)

    Attributes
    ----------
    pc:
        Branch program counter.
    mdc_value:
        The miss-distance-counter value read from the JRS table at fetch.
    mdc_index:
        The JRS table index that was consulted (needed to update the same
        entry at resolution).
    predicted_taken:
        The direction predicted by the branch predictor.
    history:
        Global-history value at prediction time.
    static_branch_id:
        Identity of the static branch (used by the per-branch MRT ablation).
    thread_id:
        SMT hardware thread the branch belongs to.
    """

    pc: int
    mdc_value: int
    mdc_index: int
    predicted_taken: bool
    history: int
    static_branch_id: Optional[int] = None
    thread_id: int = 0


@dataclass(frozen=True)
class BranchResolution:
    """Resolution-time information: was the fetch-time prediction correct?"""

    mispredicted: bool


class PathConfidencePredictor(abc.ABC):
    """Abstract base class of every path confidence predictor."""

    #: Human-readable name used in reports and experiment tables.
    name: str = "abstract"

    @abc.abstractmethod
    def on_branch_fetch(self, info: BranchFetchInfo) -> object:
        """A conditional branch enters the window; returns an opaque token."""

    @abc.abstractmethod
    def on_branch_resolve(self, token: object, mispredicted: bool) -> None:
        """The branch carrying ``token`` resolved (executed)."""

    @abc.abstractmethod
    def on_branch_squash(self, token: object) -> None:
        """The branch carrying ``token`` was flushed before resolving."""

    @abc.abstractmethod
    def goodpath_probability(self) -> float:
        """Current estimate of the probability the front end is on the good path."""

    def on_cycle(self, cycle: int) -> object:
        """Per-cycle hook for periodic work (PaCo's re-logarithmizing pass).

        Implementations should return a truthy value when the periodic
        work changed estimate-relevant state (the trace backend uses this
        to keep its batched instance recording exact across, e.g., a
        re-logarithmizing pass).  The default no-op returns ``None``.
        """

    def outstanding_branches(self) -> int:
        """Number of branches currently contributing to the estimate."""
        return 0

    def reset_window(self) -> None:
        """Drop all outstanding-branch state (used on a full pipeline flush)."""

    def should_gate(self, target_goodpath_probability: float) -> bool:
        """Pipeline-gating decision: gate fetch when the estimated good-path
        probability falls below the target.

        The default implementation compares real probabilities; PaCo
        overrides it to compare in encoded space, as the hardware would.
        """
        return self.goodpath_probability() < target_goodpath_probability
