"""Static-MRT path confidence prediction (Appendix A ablation).

Identical to PaCo except that the per-MDC-bucket correct-prediction
probabilities are fixed at construction time from a profile instead of
being measured dynamically.  This removes the MRT counters and the log
circuit from the hardware budget, at the cost of the roughly 3x higher RMS
error the paper reports (Appendix Table 1): a single static profile cannot
track differences across benchmarks or across phases.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.common.logcircuit import (
    ENCODED_PROBABILITY_MAX,
    ENCODED_PROBABILITY_SCALE,
    decode_probability,
    encode_probability_exact,
    encode_threshold,
)
from repro.pathconf.base import BranchFetchInfo, PathConfidencePredictor
from repro.pathconf.mrt import DEFAULT_STATIC_MISPREDICT_RATES


class StaticMRTPredictor(PathConfidencePredictor):
    """PaCo with profile-derived, fixed encoded probabilities per MDC value."""

    name = "static-mrt"
    record_slots = ("static_encoded",)

    def __init__(self, mispredict_rates: Optional[Sequence[float]] = None,
                 num_mdc_values: int = 16,
                 scale: int = ENCODED_PROBABILITY_SCALE,
                 clamp: int = ENCODED_PROBABILITY_MAX) -> None:
        rates = list(mispredict_rates if mispredict_rates is not None
                     else DEFAULT_STATIC_MISPREDICT_RATES)
        if len(rates) < num_mdc_values:
            rates = rates + [rates[-1]] * (num_mdc_values - len(rates))
        for rate in rates:
            if not 0.0 <= rate <= 1.0:
                raise ValueError("mispredict rates must be in [0, 1]")
        self.scale = scale
        self.clamp = clamp
        self.num_mdc_values = num_mdc_values
        self.encoded_probabilities = [
            encode_probability_exact(1.0 - rates[i], scale=scale, clamp=clamp)
            for i in range(num_mdc_values)
        ]
        self.path_confidence_register = 0
        self._outstanding = 0

    def on_branch_fetch(self, info: BranchFetchInfo) -> BranchFetchInfo:
        if not 0 <= info.mdc_value < self.num_mdc_values:
            raise ValueError(f"MDC value {info.mdc_value} out of range")
        encoded = self.encoded_probabilities[info.mdc_value]
        info.static_encoded = encoded
        self.path_confidence_register += encoded
        self._outstanding += 1
        return info

    def _remove(self, token: BranchFetchInfo) -> None:
        encoded = token.static_encoded
        if encoded is None:
            return
        token.static_encoded = None
        self.path_confidence_register = max(
            0, self.path_confidence_register - encoded
        )
        self._outstanding = max(0, self._outstanding - 1)

    def on_branch_resolve(self, token: BranchFetchInfo, mispredicted: bool) -> None:
        self._remove(token)

    def on_branch_squash(self, token: BranchFetchInfo) -> None:
        self._remove(token)

    def reset_window(self) -> None:
        self.path_confidence_register = 0
        self._outstanding = 0

    def goodpath_probability(self) -> float:
        return decode_probability(self.path_confidence_register, scale=self.scale)

    def outstanding_branches(self) -> int:
        return self._outstanding

    def should_gate(self, target_goodpath_probability: float) -> bool:
        threshold = encode_threshold(target_goodpath_probability, scale=self.scale)
        return self.path_confidence_register > threshold
