"""Behaviour models for static branches in the synthetic workloads.

Each model answers one question: *given the program's dynamic history, is
this branch taken this time?*  The models are chosen so that a real
two-level branch predictor (gshare / bimodal / tournament) sees the same
kinds of easy and hard branches real integer code produces:

``LoopBranch``
    Taken ``trip_count - 1`` times then not taken once; almost perfectly
    predictable except at loop exits.

``PatternBranch``
    A short repeating taken/not-taken pattern; learnable by global history.

``BiasedRandomBranch``
    Independent Bernoulli outcomes with a fixed bias; the predictor can do
    no better than guessing the majority direction, so the mispredict rate
    is roughly ``min(bias, 1 - bias)``.  These are the "hard" data-dependent
    branches that dominate mispredictions in real programs.

``CorrelatedBranch``
    Bias modulated by a *global* hidden state shared by all correlated
    branches of a benchmark; mispredictions cluster in time, reproducing
    the behaviour the paper attributes to gap (and the systematic
    underestimation PaCo shows at very low good-path probability).

``PhaseSensitiveBranch``
    Behaves like a different biased branch in each program phase; used for
    gcc/mcf-style phase behaviour where the same MDC bucket has different
    mispredict rates in different phases.

``IndirectTargetModel``
    A target sequence for indirect calls/jumps with a configurable number
    of hot targets; used for the perlbmk pathology where a single indirect
    call causes almost all mispredictions and the JRS table (conditional
    branches only) cannot see it.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence

from repro.common.rng import _MASK64, DeterministicRng


class GlobalCorrelationState:
    """Shared hidden state that makes branch outcomes correlate in time.

    A two-state Markov chain (``calm`` / ``turbulent``).  In the turbulent
    state, correlated branches flip their bias towards 50/50, so
    mispredictions cluster; in the calm state they behave like easy biased
    branches.  One instance is shared by all :class:`CorrelatedBranch`
    models of a benchmark.
    """

    __slots__ = ("turbulent", "enter_probability", "exit_probability")

    def __init__(self, enter_probability: float = 0.02,
                 exit_probability: float = 0.10) -> None:
        self.turbulent = False
        self.enter_probability = enter_probability
        self.exit_probability = exit_probability

    def step(self, rng: DeterministicRng) -> None:
        """Advance the Markov chain by one branch event."""
        if self.turbulent:
            if rng.bernoulli(self.exit_probability):
                self.turbulent = False
        else:
            if rng.bernoulli(self.enter_probability):
                self.turbulent = True


class BranchBehavior(abc.ABC):
    """Base class for conditional-branch behaviour models."""

    @abc.abstractmethod
    def next_outcome(self, rng: DeterministicRng, phase: int = 0) -> bool:
        """Return True if the branch is taken on this dynamic instance."""

    def next_outcomes(self, rng: DeterministicRng, n: int, out: list,
                      start: int = 0, phase: int = 0) -> list:
        """Draw ``n`` outcomes into ``out[start:start + n]``.

        Bit-identical to ``n`` successive :meth:`next_outcome` calls with
        the same ``rng`` and ``phase`` (pinned by
        ``tests/test_workloads_branch_models.py``).  Subclasses override
        this with a loop that hoists their per-call state; the batched
        branch-stream generator uses it as the block entry point for
        behaviours whose draws it does not inline.
        """
        for i in range(start, start + n):
            out[i] = self.next_outcome(rng, phase=phase)
        return out

    def reset(self) -> None:
        """Reset any per-branch dynamic state (loop counters, etc.)."""


class BiasedRandomBranch(BranchBehavior):
    """Independent Bernoulli outcomes with a fixed taken-probability."""

    __slots__ = ("taken_probability",)

    def __init__(self, taken_probability: float) -> None:
        if not 0.0 <= taken_probability <= 1.0:
            raise ValueError("taken_probability must be in [0, 1]")
        self.taken_probability = taken_probability

    def next_outcome(self, rng: DeterministicRng, phase: int = 0) -> bool:
        return rng.bernoulli(self.taken_probability)

    def next_outcomes(self, rng: DeterministicRng, n: int, out: list,
                      start: int = 0, phase: int = 0) -> list:
        # n independent Bernoulli draws with the xorshift step inlined
        # once for the whole block (bit-identical to n bernoulli calls).
        p = self.taken_probability
        state = rng._state
        for i in range(start, start + n):
            state ^= (state >> 12)
            state ^= (state << 25) & _MASK64
            state ^= (state >> 27)
            out[i] = ((((state * 0x2545F4914F6CDD1D) & _MASK64) >> 11)
                      / 9007199254740992.0) < p
        rng._state = state
        return out


class LoopBranch(BranchBehavior):
    """A loop back-edge: taken ``trip_count - 1`` times, then not taken once.

    With ``jitter_probability`` the trip count of an individual loop
    execution is perturbed by one iteration, which keeps long-history
    predictors from becoming perfectly accurate on every exit.
    """

    __slots__ = ("trip_count", "jitter_probability", "_remaining")

    def __init__(self, trip_count: int, jitter_probability: float = 0.0) -> None:
        if trip_count < 2:
            raise ValueError("trip_count must be at least 2")
        self.trip_count = trip_count
        self.jitter_probability = jitter_probability
        self._remaining = self._new_trip(None)

    def _new_trip(self, rng: Optional[DeterministicRng]) -> int:
        trips = self.trip_count
        if rng is not None and self.jitter_probability > 0.0:
            if rng.bernoulli(self.jitter_probability):
                trips += 1 if rng.bernoulli(0.5) else -1
                trips = max(trips, 2)
        return trips

    def next_outcome(self, rng: DeterministicRng, phase: int = 0) -> bool:
        self._remaining -= 1
        if self._remaining <= 0:
            self._remaining = self._new_trip(rng)
            return False  # loop exit: fall through
        return True

    def next_outcomes(self, rng: DeterministicRng, n: int, out: list,
                      start: int = 0, phase: int = 0) -> list:
        # In-trip iterations draw nothing; only loop exits hit the rng
        # (the jitter draws), so the hoisted counter covers almost every
        # outcome of a long block.
        remaining = self._remaining
        for i in range(start, start + n):
            remaining -= 1
            if remaining <= 0:
                remaining = self._new_trip(rng)
                out[i] = False
            else:
                out[i] = True
        self._remaining = remaining
        return out

    def reset(self) -> None:
        self._remaining = self.trip_count


class PatternBranch(BranchBehavior):
    """A repeating taken/not-taken pattern, e.g. ``TTNT``.

    Global-history predictors learn these patterns quickly, so they end up
    in the high-MDC (high-confidence) buckets with near-zero mispredict
    rates — exactly the population Fig. 2's right-hand side is made of.
    """

    __slots__ = ("pattern", "_index", "noise_probability")

    def __init__(self, pattern: Sequence[bool], noise_probability: float = 0.0) -> None:
        if not pattern:
            raise ValueError("pattern must be non-empty")
        self.pattern: List[bool] = [bool(p) for p in pattern]
        self.noise_probability = noise_probability
        self._index = 0

    @classmethod
    def from_string(cls, text: str, noise_probability: float = 0.0) -> "PatternBranch":
        """Build a pattern from a string of ``T``/``N`` characters."""
        mapping = {"T": True, "N": False}
        try:
            pattern = [mapping[ch] for ch in text.upper()]
        except KeyError as exc:
            raise ValueError(f"invalid pattern character {exc}") from exc
        return cls(pattern, noise_probability=noise_probability)

    def next_outcome(self, rng: DeterministicRng, phase: int = 0) -> bool:
        outcome = self.pattern[self._index]
        self._index = (self._index + 1) % len(self.pattern)
        if self.noise_probability > 0.0 and rng.bernoulli(self.noise_probability):
            outcome = not outcome
        return outcome

    def next_outcomes(self, rng: DeterministicRng, n: int, out: list,
                      start: int = 0, phase: int = 0) -> list:
        pattern = self.pattern
        length = len(pattern)
        index = self._index
        noise = self.noise_probability
        if noise > 0.0:
            for i in range(start, start + n):
                outcome = pattern[index]
                index = (index + 1) % length
                out[i] = (not outcome) if rng.bernoulli(noise) else outcome
        else:
            for i in range(start, start + n):
                out[i] = pattern[index]
                index = (index + 1) % length
        self._index = index
        return out

    def reset(self) -> None:
        self._index = 0


class CorrelatedBranch(BranchBehavior):
    """A branch whose bias degrades when the shared correlation state is turbulent."""

    __slots__ = ("calm_probability", "turbulent_probability", "state")

    def __init__(self, state: GlobalCorrelationState,
                 calm_probability: float = 0.92,
                 turbulent_probability: float = 0.55) -> None:
        self.state = state
        self.calm_probability = calm_probability
        self.turbulent_probability = turbulent_probability

    def next_outcome(self, rng: DeterministicRng, phase: int = 0) -> bool:
        self.state.step(rng)
        probability = (
            self.turbulent_probability if self.state.turbulent
            else self.calm_probability
        )
        return rng.bernoulli(probability)

    def next_outcomes(self, rng: DeterministicRng, n: int, out: list,
                      start: int = 0, phase: int = 0) -> list:
        # Two Bernoulli draws per outcome (the Markov step and the
        # outcome itself), inlined with the hidden state hoisted.
        state_obj = self.state
        turbulent = state_obj.turbulent
        enter = state_obj.enter_probability
        exit_p = state_obj.exit_probability
        calm_p = self.calm_probability
        turb_p = self.turbulent_probability
        rng_state = rng._state
        for i in range(start, start + n):
            rng_state ^= (rng_state >> 12)
            rng_state ^= (rng_state << 25) & _MASK64
            rng_state ^= (rng_state >> 27)
            u = ((((rng_state * 0x2545F4914F6CDD1D) & _MASK64) >> 11)
                 / 9007199254740992.0)
            if turbulent:
                if u < exit_p:
                    turbulent = False
            elif u < enter:
                turbulent = True
            rng_state ^= (rng_state >> 12)
            rng_state ^= (rng_state << 25) & _MASK64
            rng_state ^= (rng_state >> 27)
            u = ((((rng_state * 0x2545F4914F6CDD1D) & _MASK64) >> 11)
                 / 9007199254740992.0)
            out[i] = u < (turb_p if turbulent else calm_p)
        rng._state = rng_state
        state_obj.turbulent = turbulent
        return out


class PhaseSensitiveBranch(BranchBehavior):
    """A branch whose taken-probability depends on the current program phase."""

    __slots__ = ("phase_probabilities",)

    def __init__(self, phase_probabilities: Sequence[float]) -> None:
        if not phase_probabilities:
            raise ValueError("need at least one phase probability")
        for p in phase_probabilities:
            if not 0.0 <= p <= 1.0:
                raise ValueError("phase probabilities must be in [0, 1]")
        self.phase_probabilities = list(phase_probabilities)

    def next_outcome(self, rng: DeterministicRng, phase: int = 0) -> bool:
        probability = self.phase_probabilities[phase % len(self.phase_probabilities)]
        return rng.bernoulli(probability)

    def next_outcomes(self, rng: DeterministicRng, n: int, out: list,
                      start: int = 0, phase: int = 0) -> list:
        # All n outcomes share one phase (the block generator splits
        # blocks at phase boundaries), so the probability is constant.
        p = self.phase_probabilities[phase % len(self.phase_probabilities)]
        state = rng._state
        for i in range(start, start + n):
            state ^= (state >> 12)
            state ^= (state << 25) & _MASK64
            state ^= (state >> 27)
            out[i] = ((((state * 0x2545F4914F6CDD1D) & _MASK64) >> 11)
                      / 9007199254740992.0) < p
        rng._state = state
        return out


class IndirectTargetModel:
    """Target-sequence model for indirect jumps and indirect calls.

    ``num_targets`` possible targets; each dynamic instance picks the same
    target as last time with probability ``repeat_probability`` and a
    uniformly random different target otherwise.  A low repeat probability
    with many targets defeats a last-target indirect predictor, reproducing
    the perlbmk pathology.
    """

    __slots__ = ("targets", "repeat_probability", "_last")

    def __init__(self, base_target: int, num_targets: int,
                 repeat_probability: float = 0.5,
                 stride: int = 0x40) -> None:
        if num_targets < 1:
            raise ValueError("need at least one target")
        self.targets = [base_target + i * stride for i in range(num_targets)]
        self.repeat_probability = repeat_probability
        self._last = self.targets[0]

    def next_target(self, rng: DeterministicRng) -> int:
        if len(self.targets) == 1 or rng.bernoulli(self.repeat_probability):
            return self._last
        candidate = rng.choice(self.targets)
        while candidate == self._last and len(self.targets) > 1:
            candidate = rng.choice(self.targets)
        self._last = candidate
        return candidate

    def reset(self) -> None:
        self._last = self.targets[0]
