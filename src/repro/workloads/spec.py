"""Benchmark specification records.

A :class:`BenchmarkSpec` is a declarative description of one synthetic
benchmark: how often branches occur, what kinds they are, how hard the
conditional branches are to predict, how the program moves between phases
and what its memory reference stream looks like.  The specs for the twelve
SPEC2000-INT stand-ins live in :mod:`repro.workloads.suite`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.isa.program import StaticInstructionMix


@dataclass
class PhaseSpec:
    """One program phase.

    ``hard_fraction`` and ``hard_taken_bias`` override the benchmark-level
    values for the duration of the phase, which is how gcc/mcf-style phase
    behaviour (different mispredict rates per MDC bucket in different
    phases) is produced.
    """

    length_instructions: int
    hard_fraction: Optional[float] = None
    hard_taken_bias: Optional[float] = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.length_instructions <= 0:
            raise ValueError("phase length must be positive")


@dataclass
class MemorySpec:
    """Memory reference stream parameters.

    ``working_set_lines`` is the number of distinct cache lines in the hot
    working set; ``reuse_probability`` is the chance a load revisits a
    recently touched line (temporal locality); ``stride_fraction`` of the
    remaining accesses walk sequentially (spatial locality) and the rest
    touch a random working-set line.
    """

    working_set_lines: int = 4096
    reuse_probability: float = 0.6
    stride_fraction: float = 0.3
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.working_set_lines <= 0:
            raise ValueError("working set must be positive")
        if not 0.0 <= self.reuse_probability <= 1.0:
            raise ValueError("reuse_probability must be in [0, 1]")
        if not 0.0 <= self.stride_fraction <= 1.0:
            raise ValueError("stride_fraction must be in [0, 1]")


@dataclass
class BranchKindMix:
    """Relative dynamic frequency of the control-flow kinds."""

    conditional: float = 0.80
    unconditional: float = 0.06
    call: float = 0.05
    ret: float = 0.05
    indirect: float = 0.02
    indirect_call: float = 0.02

    def normalised(self) -> Dict[str, float]:
        weights = {
            "conditional": self.conditional,
            "unconditional": self.unconditional,
            "call": self.call,
            "ret": self.ret,
            "indirect": self.indirect,
            "indirect_call": self.indirect_call,
        }
        total = sum(weights.values())
        if total <= 0:
            raise ValueError("branch kind mix must sum to a positive value")
        return {k: v / total for k, v in weights.items()}


@dataclass
class BenchmarkSpec:
    """Full description of one synthetic benchmark.

    Parameters
    ----------
    name:
        Benchmark name (matches the paper's benchmark names).
    branch_fraction:
        Fraction of dynamic instructions that are control-flow instructions
        (SPEC-INT programs sit around 0.15–0.20).
    kind_mix:
        Dynamic mix of control-flow kinds.
    num_static_conditionals:
        Size of the static conditional-branch population.
    hard_fraction:
        Fraction of dynamic conditional branches drawn from the *hard*
        (biased-random) population; together with ``hard_taken_bias`` this
        sets the benchmark's conditional mispredict rate, since a good
        predictor mispredicts a biased-random branch at roughly
        ``1 - max(bias, 1 - bias)``.
    hard_taken_bias:
        Taken-probability of the hard branches.
    correlated_fraction:
        Fraction of dynamic conditional branches drawn from the globally
        correlated population (gap-style clustered mispredicts).
    loop_fraction / pattern_fraction:
        Fractions of dynamic conditional branches that are loop back-edges
        or *easy* (strongly biased / patterned) branches.
    loop_trip_range / pattern_lengths / easy_bias_range:
        Shape parameters of the easy populations.  ``easy_bias_range`` is
        the taken-probability range of the easy population; very
        predictable benchmarks (vortex, perlbmk) use a range close to 1.
    indirect_targets / indirect_repeat_probability:
        Behaviour of indirect jumps/calls; many targets with a low repeat
        probability produce perlbmk's indirect-call pathology.
    phases:
        Optional list of :class:`PhaseSpec`; the schedule cycles through
        them.  An empty list means single-phase behaviour.
    memory:
        :class:`MemorySpec` for the data reference stream.
    instruction_mix:
        Non-branch instruction mix (latency texture).
    description:
        One-line description of the behaviour the spec is meant to mimic.
    """

    name: str
    branch_fraction: float = 0.17
    kind_mix: BranchKindMix = field(default_factory=BranchKindMix)
    num_static_conditionals: int = 64
    hard_fraction: float = 0.25
    hard_taken_bias: float = 0.70
    correlated_fraction: float = 0.0
    loop_fraction: float = 0.30
    pattern_fraction: float = 0.30
    loop_trip_range: Sequence[int] = (8, 64)
    pattern_lengths: Sequence[int] = (2, 4, 6, 8)
    easy_bias_range: Sequence[float] = (0.96, 0.995)
    indirect_targets: int = 4
    indirect_repeat_probability: float = 0.85
    phases: List[PhaseSpec] = field(default_factory=list)
    memory: MemorySpec = field(default_factory=MemorySpec)
    instruction_mix: StaticInstructionMix = field(default_factory=StaticInstructionMix)
    description: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.branch_fraction < 1.0:
            raise ValueError("branch_fraction must be in (0, 1)")
        for attr in ("hard_fraction", "correlated_fraction",
                     "loop_fraction", "pattern_fraction"):
            value = getattr(self, attr)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{attr} must be in [0, 1]")
        total_easy_hard = (self.hard_fraction + self.correlated_fraction
                           + self.loop_fraction + self.pattern_fraction)
        if total_easy_hard > 1.0 + 1e-9:
            raise ValueError(
                "hard + correlated + loop + pattern fractions must not exceed 1"
            )
        if not 0.0 <= self.hard_taken_bias <= 1.0:
            raise ValueError("hard_taken_bias must be in [0, 1]")
        if self.num_static_conditionals <= 0:
            raise ValueError("need a positive number of static conditionals")
        lo, hi = min(self.easy_bias_range), max(self.easy_bias_range)
        if not 0.5 <= lo <= hi <= 1.0:
            raise ValueError("easy_bias_range must lie within [0.5, 1.0]")
        if self.indirect_targets < 1:
            raise ValueError("need at least one indirect target")

    @property
    def biased_fraction(self) -> float:
        """Dynamic fraction of 'leftover' mildly biased branches."""
        return max(
            0.0,
            1.0 - (self.hard_fraction + self.correlated_fraction
                   + self.loop_fraction + self.pattern_fraction),
        )

    @property
    def expected_conditional_mispredict_rate(self) -> float:
        """First-order estimate of the conditional mispredict rate.

        Used only for documentation and sanity tests; the measured rate
        comes out of running the real branch predictor over the stream.
        """
        hard_miss = min(self.hard_taken_bias, 1.0 - self.hard_taken_bias)
        loop_lo, loop_hi = min(self.loop_trip_range), max(self.loop_trip_range)
        mean_trip = 0.5 * (loop_lo + loop_hi)
        loop_miss = 1.0 / max(mean_trip, 2.0) * 0.5
        correlated_miss = 0.5 * hard_miss
        return (self.hard_fraction * hard_miss
                + self.loop_fraction * loop_miss
                + self.correlated_fraction * correlated_miss)
