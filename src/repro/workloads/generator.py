"""Dynamic instruction stream generation.

:class:`WorkloadGenerator` turns a :class:`~repro.workloads.spec.BenchmarkSpec`
into an endless good-path instruction stream: the architectural path the
program would retire.  The pipeline's fetch engine consumes this stream,
runs the real branch predictor over it, and — when a prediction is wrong —
switches to a :class:`WrongPathGenerator` until the mispredicted branch
resolves, exactly mirroring how an execution-driven simulator wanders onto
the wrong path.

The generator owns all architectural state of the synthetic program: the
current phase, the call stack (so returns have real targets for the RAS to
predict), per-static-branch behaviour state and the data reference stream.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.common.rng import DeterministicRng, RngPool
from repro.isa.instruction import BranchOutcome, Instruction
from repro.isa.program import DEFAULT_LATENCY_BY_CLASS, StaticBranch
from repro.isa.types import BranchKind, InstructionClass
from repro.workloads.branch_models import (
    BiasedRandomBranch,
    BranchBehavior,
    CorrelatedBranch,
    GlobalCorrelationState,
    IndirectTargetModel,
    LoopBranch,
    PatternBranch,
)
from repro.workloads.spec import BenchmarkSpec, PhaseSpec

# Behaviour class tags used when sampling which population a dynamic
# conditional branch comes from.
_CLASS_HARD = "hard"
_CLASS_CORRELATED = "correlated"
_CLASS_LOOP = "loop"
_CLASS_PATTERN = "pattern"
_CLASS_BIASED = "biased"

_MASK64 = (1 << 64) - 1

#: Small integer codes for the branch-kind dispatch in the block
#: generation loop (string comparisons per branch add up).
_KIND_CODES = {
    "conditional": 0,
    "unconditional": 1,
    "call": 2,
    "ret": 3,
    "indirect": 4,
    "indirect_call": 5,
}

#: Taken-probability of the 'leftover' mildly biased population.
_LEFTOVER_BIAS = 0.985

#: Code region layout (purely cosmetic, but keeps PCs plausible and distinct).
_CODE_BASE = 0x0040_0000
_INDIRECT_TARGET_BASE = 0x0080_0000
_WRONGPATH_CODE_BASE = 0x00C0_0000


class BranchBlock:
    """A reusable struct-of-arrays batch of generated branches.

    Parallel columns, one entry per branch: program counter, branch kind,
    architectural direction, architectural target, static branch id
    (``None`` for non-conditional branches) and dependence distance.
    ``count`` is the number of valid entries; the columns are preallocated
    to ``capacity`` and overwritten in place so a hot loop reuses one
    block instead of allocating per-branch objects.
    """

    __slots__ = ("capacity", "count", "pc", "kind", "taken", "target",
                 "static_branch_id", "dep_distance")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("block capacity must be at least 1")
        self.capacity = capacity
        self.count = 0
        self.pc = [0] * capacity
        self.kind: List[BranchKind] = [BranchKind.CONDITIONAL] * capacity
        self.taken = [False] * capacity
        self.target = [0] * capacity
        self.static_branch_id: List[Optional[int]] = [None] * capacity
        self.dep_distance = [0] * capacity


class _ConditionalSite:
    """One static conditional branch together with its behaviour model."""

    __slots__ = ("static", "behavior", "klass", "bias")

    def __init__(self, static: StaticBranch, behavior: BranchBehavior,
                 klass: str, bias: float = 0.5) -> None:
        self.static = static
        self.behavior = behavior
        self.klass = klass
        self.bias = bias


class WorkloadGenerator:
    """Generates the good-path dynamic instruction stream for one benchmark.

    Parameters
    ----------
    spec:
        The benchmark description.
    seed:
        Master seed; every stochastic decision derives from it, so two
        generators with the same spec and seed produce identical streams.
    thread_id:
        SMT hardware-thread id stamped on every generated instruction.
    """

    def __init__(self, spec: BenchmarkSpec, seed: int = 1, thread_id: int = 0) -> None:
        self.spec = spec
        self.thread_id = thread_id
        self._pool = RngPool(seed).fork(spec.name)
        self._rng_branch = self._pool.stream("branch-outcomes")
        self._rng_select = self._pool.stream("site-selection")
        self._rng_mix = self._pool.stream("instruction-mix")
        self._rng_memory = self._pool.stream("memory")
        self._rng_dep = self._pool.stream("dependences")

        self._correlation_state = GlobalCorrelationState()
        self._conditional_sites: List[_ConditionalSite] = []
        self._sites_by_class: dict = {}
        self._build_conditional_population()
        self._build_other_branch_sites()

        # Architectural call stack (return targets) with a bounded depth.
        self._call_stack: Deque[int] = deque(maxlen=64)

        # Data reference stream state.
        self._recent_lines: Deque[int] = deque(maxlen=64)
        self._stride_pointer = 0

        # Phase schedule state.
        self.instructions_generated = 0
        self._phase_index = 0
        self._has_phases = bool(spec.phases)
        self._phase_remaining = (
            spec.phases[0].length_instructions if spec.phases else 0
        )

        # Mix weights, flattened once; cumulative tables precomputed so the
        # per-instruction weighted choices skip the per-call summation
        # (bit-identical draws, see DeterministicRng.cumulative_choice).
        mix = spec.instruction_mix.as_weights()
        self._mix_classes = list(mix.keys())
        self._mix_weights = list(mix.values())
        self._mix_cum, self._mix_total = DeterministicRng.cumulative_weights(
            self._mix_weights)
        kinds = spec.kind_mix.normalised()
        self._kind_names = list(kinds.keys())
        self._kind_weights = list(kinds.values())
        self._kind_cum, self._kind_total = DeterministicRng.cumulative_weights(
            self._kind_weights)
        self._kind_codes = [_KIND_CODES[name] for name in self._kind_names]
        #: Site-selection entries ``(classes, cumulative, total,
        #: site_lists)`` keyed by the phase's effective hard fraction (a
        #: small, finite set per benchmark).
        self._site_choice_cache: dict = {}

    # ------------------------------------------------------------------ #
    # population construction
    # ------------------------------------------------------------------ #

    def _build_conditional_population(self) -> None:
        spec = self.spec
        rng = self._pool.stream("population")
        n = spec.num_static_conditionals
        class_shares = [
            (_CLASS_HARD, spec.hard_fraction),
            (_CLASS_CORRELATED, spec.correlated_fraction),
            (_CLASS_LOOP, spec.loop_fraction),
            (_CLASS_PATTERN, spec.pattern_fraction),
            (_CLASS_BIASED, spec.biased_fraction),
        ]
        branch_id = 0
        for klass, share in class_shares:
            count = max(1, int(round(n * share))) if share > 0 else 0
            sites = []
            for _ in range(count):
                pc = _CODE_BASE + branch_id * 0x20
                static = StaticBranch(
                    branch_id=branch_id,
                    pc=pc,
                    kind=BranchKind.CONDITIONAL,
                    taken_target=pc + 0x100 + (branch_id % 7) * 0x40,
                    fallthrough=pc + 4,
                )
                behavior, bias = self._make_behavior(klass, rng)
                sites.append(_ConditionalSite(static, behavior, klass, bias))
                branch_id += 1
            self._sites_by_class[klass] = sites
            self._conditional_sites.extend(sites)
        if not self._conditional_sites:
            raise ValueError("benchmark spec produced an empty branch population")

    def _make_behavior(self, klass: str,
                       rng: DeterministicRng) -> Tuple[BranchBehavior, float]:
        spec = self.spec
        if klass == _CLASS_HARD:
            jitter = (rng.random() - 0.5) * 0.10
            bias = min(max(spec.hard_taken_bias + jitter, 0.5), 0.98)
            return BiasedRandomBranch(bias), bias
        if klass == _CLASS_CORRELATED:
            return CorrelatedBranch(self._correlation_state,
                                    calm_probability=0.97,
                                    turbulent_probability=0.65), 0.97
        if klass == _CLASS_LOOP:
            lo, hi = min(spec.loop_trip_range), max(spec.loop_trip_range)
            trip = rng.randint(lo, hi)
            return LoopBranch(trip, jitter_probability=0.05), 1.0 - 1.0 / trip
        if klass == _CLASS_PATTERN:
            # The "easy" population: strongly biased branches whose minority
            # direction is rare.  (A global-history predictor cannot exploit
            # short local patterns when unrelated branches are interleaved,
            # so predictable-by-bias is the faithful easy population here.)
            lo, hi = min(spec.easy_bias_range), max(spec.easy_bias_range)
            bias = lo + (hi - lo) * rng.random()
            return BiasedRandomBranch(bias), bias
        # leftover: very strongly biased branches
        return BiasedRandomBranch(_LEFTOVER_BIAS), _LEFTOVER_BIAS

    def _build_other_branch_sites(self) -> None:
        base = _CODE_BASE + 0x10_0000
        self._uncond_pcs = [base + i * 0x40 for i in range(32)]
        self._call_pcs = [base + 0x4000 + i * 0x40 for i in range(32)]
        self._return_pcs = [base + 0x8000 + i * 0x40 for i in range(32)]
        self._indirect_sites = []
        for i in range(4):
            pc = base + 0xC000 + i * 0x40
            model = IndirectTargetModel(
                base_target=_INDIRECT_TARGET_BASE + i * 0x1_0000,
                num_targets=self.spec.indirect_targets,
                repeat_probability=self.spec.indirect_repeat_probability,
            )
            self._indirect_sites.append((pc, model))
        # One dominant indirect-call site (the perlbmk pathology): site 0 is
        # used for 70% of indirect calls.
        self._indirect_site_weights = [0.70, 0.14, 0.10, 0.06]
        self._indirect_cum, self._indirect_total = (
            DeterministicRng.cumulative_weights(self._indirect_site_weights))

    # ------------------------------------------------------------------ #
    # phase handling
    # ------------------------------------------------------------------ #

    @property
    def current_phase(self) -> Optional[PhaseSpec]:
        if not self.spec.phases:
            return None
        return self.spec.phases[self._phase_index]

    @property
    def current_phase_index(self) -> int:
        return self._phase_index if self.spec.phases else 0

    @property
    def current_phase_label(self) -> str:
        phase = self.current_phase
        if phase is None:
            return ""
        return phase.label or f"phase{self._phase_index}"

    def _advance_phase(self) -> None:
        if not self.spec.phases:
            return
        self._phase_remaining -= 1
        if self._phase_remaining <= 0:
            self._phase_index = (self._phase_index + 1) % len(self.spec.phases)
            self._phase_remaining = (
                self.spec.phases[self._phase_index].length_instructions
            )

    def _phase_hard_fraction(self) -> float:
        phase = self.current_phase
        if phase is not None and phase.hard_fraction is not None:
            return phase.hard_fraction
        return self.spec.hard_fraction

    def _phase_bias_shift(self) -> float:
        phase = self.current_phase
        if phase is not None and phase.hard_taken_bias is not None:
            return phase.hard_taken_bias - self.spec.hard_taken_bias
        return 0.0

    # ------------------------------------------------------------------ #
    # instruction generation
    # ------------------------------------------------------------------ #

    def next_instruction(self, seq: int) -> Instruction:
        """Generate the next good-path dynamic instruction."""
        self.instructions_generated += 1
        self._advance_phase()
        if self._rng_mix.bernoulli(self.spec.branch_fraction):
            instr = self._generate_branch(seq)
        else:
            instr = self._generate_non_branch(seq)
        return instr

    def next_branch(self, seq: int) -> Instruction:
        """Generate the next good-path *branch*, skipping non-branch draws.

        The branch-content streams (``site-selection``, ``branch-outcomes``)
        are consumed only by branches, so the branch sequence produced here
        is bit-identical to the branch subsequence of
        :meth:`next_instruction` for unphased benchmarks (phased benchmarks
        track it statistically: positions — and therefore the phase each
        branch falls into — come from the caller's gap process).  The
        ``instruction-mix``, ``memory`` and (for non-branches)
        ``dependences`` streams are never touched.

        Used by the trace-replay backend, which models non-branch
        instructions as arithmetic gaps (:meth:`advance_instructions`).
        """
        self.instructions_generated += 1
        if self._has_phases:
            self._advance_phase()
        return self._generate_branch(seq)

    def advance_instructions(self, count: int) -> int:
        """Advance the phase schedule by up to ``count`` non-branch slots.

        The arithmetic equivalent of ``count`` :meth:`next_instruction`
        calls for instructions whose draws the caller does not need,
        preserving :meth:`_advance_phase`'s decrement-then-roll semantics:
        the instruction consuming a phase's last slot already reads as the
        *next* phase.  Stops at phase boundaries (so callers can observe
        them); returns how many instructions were consumed.
        """
        if count <= 0:
            return 0
        if not self._has_phases:
            self.instructions_generated += count
            return count
        if self._phase_remaining > 1:
            take = min(count, self._phase_remaining - 1)
            self.instructions_generated += take
            self._phase_remaining -= take
            return take
        # The boundary instruction: consumes the last slot and rolls, so
        # it is already attributed to the next phase.
        self.instructions_generated += 1
        self._phase_index = (self._phase_index + 1) % len(self.spec.phases)
        self._phase_remaining = (
            self.spec.phases[self._phase_index].length_instructions
        )
        return 1

    def next_branch_block(self, seq: int, n: int,
                          block: Optional[BranchBlock] = None) -> BranchBlock:
        """Generate the next ``n`` good-path branches as one column block.

        ``seq`` is the caller's sequence number for the first branch;
        generation itself never consumes it (the block carries no seq
        column — the trace session stamps records at predict time), it
        exists so call sites read like their scalar counterparts.

        Bit-identical to ``n`` successive :meth:`next_branch` calls with
        sequence numbers ``seq .. seq + n - 1``: the same draws leave the
        same streams in the same order (``site-selection`` and
        ``branch-outcomes`` interleave per branch *within* each stream,
        never across streams), the phase schedule advances one slot per
        branch, and the call stack sees the same pushes and pops — so the
        RNG stream states afterwards are identical too
        (``tests/test_workloads_generator.py`` pins all of this).  No
        :class:`~repro.isa.instruction.Instruction` objects are
        materialized; the trace-replay backend consumes the columns
        directly.

        Site selection is batched per behaviour class: the per-phase
        ``(classes, cumulative, total, site_lists)`` entry is hoisted out
        of the loop (refreshed only at phase rolls), the dominant
        biased-random outcome draw is inlined, and other behaviours are
        invoked through their ``next_outcomes`` block entry point.
        """
        if n < 1:
            raise ValueError("block size must be at least 1")
        if block is None:
            block = BranchBlock(n)
        elif block.capacity < n:
            raise ValueError(
                f"block capacity {block.capacity} cannot hold {n} branches")
        block.count = n
        out_pc = block.pc
        out_kind = block.kind
        out_taken = block.taken
        out_target = block.target
        out_sid = block.static_branch_id
        out_dep = block.dep_distance

        spec = self.spec
        rng_branch = self._rng_branch
        sel_state = self._rng_select._state
        dep_state = self._rng_dep._state
        br_state = rng_branch._state

        kind_cum = self._kind_cum
        kind_total = self._kind_total
        kind_codes = self._kind_codes
        num_kinds = len(kind_codes)
        uncond_pcs = self._uncond_pcs
        call_pcs = self._call_pcs
        return_pcs = self._return_pcs
        n_uncond = len(uncond_pcs)
        n_call = len(call_pcs)
        n_ret = len(return_pcs)
        indirect_sites = self._indirect_sites
        indirect_cum = self._indirect_cum
        indirect_total = self._indirect_total
        num_indirect = len(indirect_cum)
        call_stack = self._call_stack

        has_phases = self._has_phases
        phases = spec.phases
        phase_index = self._phase_index
        phase_remaining = self._phase_remaining
        num_phases = len(phases)
        base_bias = spec.hard_taken_bias
        if has_phases:
            phase = phases[phase_index]
            hard_fraction = (phase.hard_fraction
                             if phase.hard_fraction is not None
                             else spec.hard_fraction)
            shift = ((phase.hard_taken_bias - base_bias)
                     if phase.hard_taken_bias is not None else 0.0)
        else:
            hard_fraction = spec.hard_fraction
            shift = 0.0
        entry = self._site_entry(hard_fraction)
        entry_cum = entry[1]
        entry_total = entry[2]
        entry_sites = entry[3]

        kind_cond = BranchKind.CONDITIONAL
        kind_uncond = BranchKind.UNCONDITIONAL
        kind_call = BranchKind.CALL
        kind_ret = BranchKind.RETURN
        kind_ind = BranchKind.INDIRECT
        kind_ind_call = BranchKind.INDIRECT_CALL

        for i in range(n):
            if has_phases:
                # _advance_phase inlined: the branch consuming a phase's
                # last slot already reads as the next phase.
                phase_remaining -= 1
                if phase_remaining <= 0:
                    phase_index = (phase_index + 1) % num_phases
                    phase = phases[phase_index]
                    phase_remaining = phase.length_instructions
                    hard_fraction = (phase.hard_fraction
                                     if phase.hard_fraction is not None
                                     else spec.hard_fraction)
                    shift = ((phase.hard_taken_bias - base_bias)
                             if phase.hard_taken_bias is not None else 0.0)
                    entry = self._site_entry(hard_fraction)
                    entry_cum = entry[1]
                    entry_total = entry[2]
                    entry_sites = entry[3]
            # Branch-kind selection (cumulative_choice inlined).
            sel_state ^= (sel_state >> 12)
            sel_state ^= (sel_state << 25) & _MASK64
            sel_state ^= (sel_state >> 27)
            target_w = ((((sel_state * 0x2545F4914F6CDD1D) & _MASK64) >> 11)
                        / 9007199254740992.0) * kind_total
            code = kind_codes[num_kinds - 1]
            for j in range(num_kinds):
                if target_w < kind_cum[j]:
                    code = kind_codes[j]
                    break
            if code == 0:  # conditional
                # Behaviour-class selection over the hoisted per-phase
                # entry (cumulative_choice inlined).
                sel_state ^= (sel_state >> 12)
                sel_state ^= (sel_state << 25) & _MASK64
                sel_state ^= (sel_state >> 27)
                target_w = ((((sel_state * 0x2545F4914F6CDD1D) & _MASK64)
                             >> 11) / 9007199254740992.0) * entry_total
                sites = entry_sites[-1]
                for j in range(len(entry_cum)):
                    if target_w < entry_cum[j]:
                        sites = entry_sites[j]
                        break
                # Site selection (choice inlined).
                sel_state ^= (sel_state >> 12)
                sel_state ^= (sel_state << 25) & _MASK64
                sel_state ^= (sel_state >> 27)
                site = sites[((sel_state * 0x2545F4914F6CDD1D) & _MASK64)
                             % len(sites)]
                static = site.static
                behavior = site.behavior
                if shift and site.klass == _CLASS_HARD:
                    bias = site.bias + shift
                    if bias < 0.02:
                        bias = 0.02
                    elif bias > 0.98:
                        bias = 0.98
                    br_state ^= (br_state >> 12)
                    br_state ^= (br_state << 25) & _MASK64
                    br_state ^= (br_state >> 27)
                    taken = ((((br_state * 0x2545F4914F6CDD1D) & _MASK64)
                              >> 11) / 9007199254740992.0) < bias
                elif type(behavior) is BiasedRandomBranch:
                    # The dominant populations (hard, pattern, leftover)
                    # are all biased-random: one Bernoulli, inlined.
                    br_state ^= (br_state >> 12)
                    br_state ^= (br_state << 25) & _MASK64
                    br_state ^= (br_state >> 27)
                    taken = ((((br_state * 0x2545F4914F6CDD1D) & _MASK64)
                              >> 11) / 9007199254740992.0) \
                        < behavior.taken_probability
                else:
                    rng_branch._state = br_state
                    behavior.next_outcomes(rng_branch, 1, out_taken, i,
                                           phase=phase_index)
                    taken = out_taken[i]
                    br_state = rng_branch._state
                out_pc[i] = static.pc
                out_kind[i] = kind_cond
                out_taken[i] = taken
                out_target[i] = (static.taken_target if taken
                                 else static.fallthrough)
                out_sid[i] = static.branch_id
            elif code == 1:  # unconditional
                sel_state ^= (sel_state >> 12)
                sel_state ^= (sel_state << 25) & _MASK64
                sel_state ^= (sel_state >> 27)
                pc = uncond_pcs[((sel_state * 0x2545F4914F6CDD1D) & _MASK64)
                                % n_uncond]
                out_pc[i] = pc
                out_kind[i] = kind_uncond
                out_taken[i] = True
                out_target[i] = pc + 0x200
                out_sid[i] = None
            elif code == 2:  # call
                sel_state ^= (sel_state >> 12)
                sel_state ^= (sel_state << 25) & _MASK64
                sel_state ^= (sel_state >> 27)
                pc = call_pcs[((sel_state * 0x2545F4914F6CDD1D) & _MASK64)
                              % n_call]
                call_stack.append(pc + 4)
                out_pc[i] = pc
                out_kind[i] = kind_call
                out_taken[i] = True
                out_target[i] = pc + 0x1000
                out_sid[i] = None
            elif code == 3:  # ret
                sel_state ^= (sel_state >> 12)
                sel_state ^= (sel_state << 25) & _MASK64
                sel_state ^= (sel_state >> 27)
                pc = return_pcs[((sel_state * 0x2545F4914F6CDD1D) & _MASK64)
                                % n_ret]
                out_pc[i] = pc
                out_kind[i] = kind_ret
                out_taken[i] = True
                out_target[i] = (call_stack.pop() if call_stack
                                 else _CODE_BASE)
                out_sid[i] = None
            else:  # indirect / indirect call
                sel_state ^= (sel_state >> 12)
                sel_state ^= (sel_state << 25) & _MASK64
                sel_state ^= (sel_state >> 27)
                target_w = ((((sel_state * 0x2545F4914F6CDD1D) & _MASK64)
                             >> 11) / 9007199254740992.0) * indirect_total
                pair = indirect_sites[-1]
                for j in range(num_indirect):
                    if target_w < indirect_cum[j]:
                        pair = indirect_sites[j]
                        break
                pc, model = pair
                rng_branch._state = br_state
                indirect_target = model.next_target(rng_branch)
                br_state = rng_branch._state
                if code == 5:
                    call_stack.append(pc + 4)
                    out_kind[i] = kind_ind_call
                else:
                    out_kind[i] = kind_ind
                out_pc[i] = pc
                out_taken[i] = True
                out_target[i] = indirect_target
                out_sid[i] = None
            # Dependence distance (bernoulli(0.35) then randint(1, 12),
            # both inlined from the dependences stream).
            dep_state ^= (dep_state >> 12)
            dep_state ^= (dep_state << 25) & _MASK64
            dep_state ^= (dep_state >> 27)
            if ((((dep_state * 0x2545F4914F6CDD1D) & _MASK64) >> 11)
                    / 9007199254740992.0) < 0.35:
                out_dep[i] = 0
            else:
                dep_state ^= (dep_state >> 12)
                dep_state ^= (dep_state << 25) & _MASK64
                dep_state ^= (dep_state >> 27)
                out_dep[i] = 1 + ((dep_state * 0x2545F4914F6CDD1D)
                                  & _MASK64) % 12

        self._rng_select._state = sel_state
        self._rng_dep._state = dep_state
        rng_branch._state = br_state
        self.instructions_generated += n
        if has_phases:
            self._phase_index = phase_index
            self._phase_remaining = phase_remaining
        return block

    # -- branches ------------------------------------------------------- #

    def _generate_branch(self, seq: int) -> Instruction:
        kind_name = self._rng_select.cumulative_choice(
            self._kind_names, self._kind_cum, self._kind_total
        )
        if kind_name == "conditional":
            return self._generate_conditional(seq)
        if kind_name == "unconditional":
            pc = self._rng_select.choice(self._uncond_pcs)
            target = pc + 0x200
            return self._branch_instruction(
                seq, pc, BranchKind.UNCONDITIONAL, taken=True, target=target
            )
        if kind_name == "call":
            pc = self._rng_select.choice(self._call_pcs)
            target = pc + 0x1000
            self._call_stack.append(pc + 4)
            return self._branch_instruction(
                seq, pc, BranchKind.CALL, taken=True, target=target
            )
        if kind_name == "ret":
            pc = self._rng_select.choice(self._return_pcs)
            target = self._call_stack.pop() if self._call_stack else _CODE_BASE
            return self._branch_instruction(
                seq, pc, BranchKind.RETURN, taken=True, target=target
            )
        # indirect or indirect_call
        pc, model = self._rng_select.cumulative_choice(
            self._indirect_sites, self._indirect_cum, self._indirect_total
        )
        target = model.next_target(self._rng_branch)
        kind = (BranchKind.INDIRECT_CALL if kind_name == "indirect_call"
                else BranchKind.INDIRECT)
        if kind is BranchKind.INDIRECT_CALL:
            self._call_stack.append(pc + 4)
        return self._branch_instruction(seq, pc, kind, taken=True, target=target)

    def _generate_conditional(self, seq: int) -> Instruction:
        site = self._select_conditional_site()
        taken = self._conditional_outcome(site)
        static = site.static
        target = static.taken_target if taken else static.fallthrough
        instr = self._branch_instruction(
            seq, static.pc, BranchKind.CONDITIONAL, taken=taken, target=target
        )
        instr.static_branch_id = static.branch_id
        return instr

    def _site_entry(self, hard_fraction: float) -> tuple:
        """The cached site-selection tables for one effective hard fraction.

        ``(classes, cumulative, total, site_lists)`` — ``site_lists`` is
        parallel to ``classes`` so the block generation loop indexes a
        population without per-branch dict lookups.
        """
        entry = self._site_choice_cache.get(hard_fraction)
        if entry is None:
            spec = self.spec
            scale = 1.0
            base_other = (spec.correlated_fraction + spec.loop_fraction
                          + spec.pattern_fraction + spec.biased_fraction)
            if base_other > 0:
                scale = (1.0 - hard_fraction) / base_other
            weights = [
                hard_fraction,
                spec.correlated_fraction * scale,
                spec.loop_fraction * scale,
                spec.pattern_fraction * scale,
                spec.biased_fraction * scale,
            ]
            classes = [_CLASS_HARD, _CLASS_CORRELATED, _CLASS_LOOP,
                       _CLASS_PATTERN, _CLASS_BIASED]
            # Drop empty populations.
            available = [(klass, weight)
                         for klass, weight in zip(classes, weights)
                         if self._sites_by_class.get(klass)]
            cum, total = DeterministicRng.cumulative_weights(
                [max(a[1], 1e-9) for a in available])
            entry = ([a[0] for a in available], cum, total,
                     [self._sites_by_class[a[0]] for a in available])
            self._site_choice_cache[hard_fraction] = entry
        return entry

    def _select_conditional_site(self) -> _ConditionalSite:
        """Sample which population the next dynamic conditional comes from."""
        entry = self._site_entry(self._phase_hard_fraction())
        klass = self._rng_select.cumulative_choice(entry[0], entry[1], entry[2])
        return self._rng_select.choice(self._sites_by_class[klass])

    def _conditional_outcome(self, site: _ConditionalSite) -> bool:
        if site.klass == _CLASS_HARD:
            shift = self._phase_bias_shift()
            if shift:
                bias = min(max(site.bias + shift, 0.02), 0.98)
                return self._rng_branch.bernoulli(bias)
        return site.behavior.next_outcome(
            self._rng_branch, phase=self.current_phase_index
        )

    def _branch_instruction(self, seq: int, pc: int, kind: BranchKind,
                            taken: bool, target: int) -> Instruction:
        return Instruction(
            seq=seq,
            pc=pc,
            iclass=InstructionClass.BRANCH,
            branch_kind=kind,
            outcome=BranchOutcome(taken=taken, target=target),
            dep_distance=self._sample_dep_distance(),
            latency_class=DEFAULT_LATENCY_BY_CLASS[InstructionClass.BRANCH],
            thread_id=self.thread_id,
            on_goodpath=True,
        )

    # -- non-branches ---------------------------------------------------- #

    def _generate_non_branch(self, seq: int) -> Instruction:
        iclass = self._rng_mix.cumulative_choice(
            self._mix_classes, self._mix_cum, self._mix_total)
        address = None
        if iclass in (InstructionClass.LOAD, InstructionClass.STORE):
            address = self._next_data_address()
        return Instruction(
            seq=seq,
            pc=_CODE_BASE + 0x20_0000 + (seq % 4096) * 4,
            iclass=iclass,
            address=address,
            dep_distance=self._sample_dep_distance(),
            latency_class=DEFAULT_LATENCY_BY_CLASS[iclass],
            thread_id=self.thread_id,
            on_goodpath=True,
        )

    def _sample_dep_distance(self) -> int:
        """Distance to the producer of the critical source operand."""
        rng = self._rng_dep
        if rng.bernoulli(0.35):
            return 0  # operands already architecturally ready
        return rng.randint(1, 12)

    def _next_data_address(self) -> int:
        spec = self.spec.memory
        rng = self._rng_memory
        recent = self._recent_lines
        if recent and rng.bernoulli(spec.reuse_probability):
            # Same single next_u64 draw rng.choice(list(recent)) would
            # make, without materializing the deque on every reuse hit.
            line = recent[rng.next_u64() % len(recent)]
        elif rng.bernoulli(spec.stride_fraction):
            self._stride_pointer = (self._stride_pointer + 1) % spec.working_set_lines
            line = self._stride_pointer
        else:
            line = rng.randint(0, spec.working_set_lines - 1)
        self._recent_lines.append(line)
        return 0x1000_0000 + line * spec.line_bytes + self.thread_id * 0x4000_0000


class WrongPathGenerator:
    """Synthesises the instructions fetched while the machine is on the wrong path.

    Wrong-path code in a real machine is just other code from the same
    program, so the generator reuses the parent generator's static branch
    population (keeping predictor-table interference realistic) but draws
    outcomes and data addresses from its own random streams and never
    touches the parent's architectural state (call stack, phase schedule).
    Data addresses are biased towards lines *outside* the hot working set,
    which is what produces the cache/BTB pollution effects the paper
    observes for gap and perlbmk.
    """

    def __init__(self, parent: WorkloadGenerator, seed: int = 2) -> None:
        self._parent = parent
        pool = RngPool(seed).fork(f"wrongpath:{parent.spec.name}")
        self._rng = pool.stream("main")
        self._rng_memory = pool.stream("memory")
        spec = parent.spec
        mix = spec.instruction_mix.as_weights()
        self._mix_classes = list(mix.keys())
        self._mix_weights = list(mix.values())
        self._mix_cum, self._mix_total = DeterministicRng.cumulative_weights(
            self._mix_weights)

    def _generate_branch(self, seq: int) -> Instruction:
        parent = self._parent
        site = self._rng.choice(parent._conditional_sites)
        taken = self._rng.bernoulli(0.55)
        static = site.static
        pc = static.pc + 0x8  # a nearby, but distinct, wrong-path PC
        target = static.taken_target if taken else static.fallthrough
        return Instruction(
            seq=seq,
            pc=pc,
            iclass=InstructionClass.BRANCH,
            branch_kind=BranchKind.CONDITIONAL,
            outcome=BranchOutcome(taken=taken, target=target),
            dep_distance=self._rng.randint(0, 8),
            latency_class=DEFAULT_LATENCY_BY_CLASS[InstructionClass.BRANCH],
            thread_id=parent.thread_id,
            on_goodpath=False,
            static_branch_id=static.branch_id,
        )

    def next_instruction(self, seq: int) -> Instruction:
        """Generate the next wrong-path instruction."""
        parent = self._parent
        spec = parent.spec
        thread_id = parent.thread_id
        if self._rng.bernoulli(spec.branch_fraction):
            return self._generate_branch(seq)
        iclass = self._rng.cumulative_choice(
            self._mix_classes, self._mix_cum, self._mix_total)
        address = None
        if iclass in (InstructionClass.LOAD, InstructionClass.STORE):
            address = self._polluting_address()
        return Instruction(
            seq=seq,
            pc=_WRONGPATH_CODE_BASE + (seq % 4096) * 4,
            iclass=iclass,
            address=address,
            dep_distance=self._rng.randint(0, 8),
            latency_class=DEFAULT_LATENCY_BY_CLASS[iclass],
            thread_id=thread_id,
            on_goodpath=False,
        )

    def next_branch_into(self, block: BranchBlock, i: int) -> None:
        """Write the next wrong-path branch into column ``i`` of ``block``.

        Bit-identical draws to :meth:`next_branch` (same ``main``-stream
        order: site choice, direction, dependence distance) without
        materializing an :class:`~repro.isa.instruction.Instruction`;
        the trace backend's block path fetches wrong-path branches
        through this entry point.
        """
        rng = self._rng
        sites = self._parent._conditional_sites
        site = sites[rng.next_u64() % len(sites)]
        taken = rng.bernoulli(0.55)
        static = site.static
        block.pc[i] = static.pc + 0x8  # a nearby, but distinct, wrong-path PC
        block.kind[i] = BranchKind.CONDITIONAL
        block.taken[i] = taken
        block.target[i] = static.taken_target if taken else static.fallthrough
        block.static_branch_id[i] = static.branch_id
        block.dep_distance[i] = rng.randint(0, 8)

    def next_branch_block(self, block: BranchBlock, n: int) -> None:
        """Fill ``block[0:n]`` with the next ``n`` wrong-path branches.

        Bit-identical to ``n`` successive :meth:`next_branch_into` calls
        (same ``main``-stream draw order per branch: site choice,
        direction, dependence distance) with the xorshift step inlined
        once for the whole episode; the trace backend's fused wrong-path
        episode stages a whole episode's branches through this in one
        call.  Sets ``block.count``.
        """
        rng = self._rng
        sites = self._parent._conditional_sites
        n_sites = len(sites)
        pcs = block.pc
        kinds = block.kind
        takens = block.taken
        targets = block.target
        branch_ids = block.static_branch_id
        deps = block.dep_distance
        kind_conditional = BranchKind.CONDITIONAL
        state = rng._state
        for i in range(n):
            state ^= (state >> 12)
            state ^= (state << 25) & _MASK64
            state ^= (state >> 27)
            site = sites[((state * 0x2545F4914F6CDD1D) & _MASK64) % n_sites]
            state ^= (state >> 12)
            state ^= (state << 25) & _MASK64
            state ^= (state >> 27)
            taken = ((((state * 0x2545F4914F6CDD1D) & _MASK64) >> 11)
                     / 9007199254740992.0) < 0.55
            state ^= (state >> 12)
            state ^= (state << 25) & _MASK64
            state ^= (state >> 27)
            static = site.static
            pcs[i] = static.pc + 0x8  # a nearby, but distinct, wrong-path PC
            kinds[i] = kind_conditional
            takens[i] = taken
            targets[i] = static.taken_target if taken else static.fallthrough
            branch_ids[i] = static.branch_id
            deps[i] = ((state * 0x2545F4914F6CDD1D) & _MASK64) % 9
        rng._state = state
        block.count = n

    def next_branch(self, seq: int) -> Instruction:
        """Generate the next wrong-path *branch*, skipping non-branch draws.

        The wrong-path counterpart of
        :meth:`WorkloadGenerator.next_branch` (used by the trace-replay
        backend, which models wrong-path non-branches as arithmetic gaps).
        Wrong-path content only pollutes predictor state, so the
        ``main``-stream divergence from :meth:`next_instruction` — which
        also draws non-branch variates from it — is statistical noise by
        construction.
        """
        return self._generate_branch(seq)

    def _polluting_address(self) -> int:
        spec = self._parent.spec.memory
        rng = self._rng_memory
        if rng.bernoulli(0.4):
            # Sometimes touch the real working set (harmless prefetch effect).
            line = rng.randint(0, spec.working_set_lines - 1)
        else:
            # Mostly touch lines beyond the hot set (pollution).
            line = spec.working_set_lines + rng.randint(0, 4 * spec.working_set_lines)
        return (0x1000_0000 + line * spec.line_bytes
                + self._parent.thread_id * 0x4000_0000)
