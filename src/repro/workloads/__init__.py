"""Synthetic workload substrate.

The paper evaluates PaCo on 12 SPEC2000 integer benchmarks running on an
execution-driven MIPS simulator.  Neither the binaries nor the traces are
available here, so this package provides the closest synthetic equivalent:
each benchmark is modelled as a population of static branches with
behaviour models (biased, loop, pattern, correlated, phased, indirect)
whose parameters are calibrated so that the *predictability structure* the
paper reports — per-benchmark conditional mispredict rates (Table 7),
per-MDC-bucket mispredict spreads (Fig. 2), phase behaviour (gcc/mcf),
branch correlation (gap) and indirect-call pathology (perlbmk) — is
reproduced when the real branch predictor of :mod:`repro.branch_predictor`
runs over the generated instruction stream.

Public entry points:

* :class:`~repro.workloads.spec.BenchmarkSpec` — the description of one
  synthetic benchmark.
* :data:`~repro.workloads.suite.SPEC2000_INT` /
  :func:`~repro.workloads.suite.get_benchmark` — the calibrated suite.
* :class:`~repro.workloads.generator.WorkloadGenerator` — turns a spec into
  a good-path dynamic instruction stream.
* :class:`~repro.workloads.generator.WrongPathGenerator` — synthesises the
  wrong-path instructions fetched after a misprediction.
"""

from repro.workloads.branch_models import (
    BranchBehavior,
    BiasedRandomBranch,
    LoopBranch,
    PatternBranch,
    CorrelatedBranch,
    PhaseSensitiveBranch,
    IndirectTargetModel,
    GlobalCorrelationState,
)
from repro.workloads.spec import BenchmarkSpec, PhaseSpec, MemorySpec
from repro.workloads.suite import SPEC2000_INT, get_benchmark, benchmark_names
from repro.workloads.generator import WorkloadGenerator, WrongPathGenerator

__all__ = [
    "BranchBehavior",
    "BiasedRandomBranch",
    "LoopBranch",
    "PatternBranch",
    "CorrelatedBranch",
    "PhaseSensitiveBranch",
    "IndirectTargetModel",
    "GlobalCorrelationState",
    "BenchmarkSpec",
    "PhaseSpec",
    "MemorySpec",
    "SPEC2000_INT",
    "get_benchmark",
    "benchmark_names",
    "WorkloadGenerator",
    "WrongPathGenerator",
]
