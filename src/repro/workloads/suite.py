"""The calibrated SPEC2000-INT stand-in suite.

Twelve synthetic benchmarks named after the SPEC2000 integer benchmarks the
paper evaluates (eon is excluded, as in the paper).  Each spec's
``hard_fraction`` / ``hard_taken_bias`` pair is calibrated so that the
conditional-branch mispredict rate produced by the tournament predictor of
:mod:`repro.branch_predictor` lands near the rate the paper reports in
Table 7, and the qualitative pathologies the paper calls out are present:

* **gcc, mcf** — short program phases with different branch difficulty per
  phase (Fig. 3(b), Section 4.4).
* **gap** — globally correlated branches, so mispredictions cluster
  (Section 4.4: "gap has highly correlated branches").
* **perlbmk** — almost perfectly predictable conditional branches but a
  dominant, hard-to-predict indirect call that the JRS table cannot
  stratify (Section 4.4).
* **twolf, vprPlace, vprRoute** — large populations of data-dependent
  branches with high mispredict rates.
* **vortex** — almost every branch predictable (0.65 % mispredict rate).

The first-order calibration model is::

    miss ≈ hard_fraction * (1 - hard_taken_bias)
         + loop_fraction / mean_trip_count
         + pattern_fraction * (1 - mean_easy_bias)
         + leftover_fraction * 0.015

Measured rates (with the default tournament predictor) land within roughly
±2 percentage points of the paper's rates; EXPERIMENTS.md records the
paper-vs-measured values for every benchmark.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.spec import BenchmarkSpec, BranchKindMix, MemorySpec, PhaseSpec


def _spec(name: str, **kwargs) -> BenchmarkSpec:
    return BenchmarkSpec(name=name, **kwargs)


def _build_suite() -> Dict[str, BenchmarkSpec]:
    suite: Dict[str, BenchmarkSpec] = {}

    suite["bzip2"] = _spec(
        "bzip2",
        hard_fraction=0.32, hard_taken_bias=0.70,
        loop_fraction=0.28, pattern_fraction=0.28,
        loop_trip_range=(16, 64),
        memory=MemorySpec(working_set_lines=8192, reuse_probability=0.55),
        description="compression: many data-dependent branches (10.5% paper rate)",
    )
    suite["crafty"] = _spec(
        "crafty",
        hard_fraction=0.17, hard_taken_bias=0.75,
        loop_fraction=0.25, pattern_fraction=0.38,
        loop_trip_range=(16, 48),
        memory=MemorySpec(working_set_lines=2048, reuse_probability=0.7),
        description="chess: moderately hard branches (5.49% paper rate)",
    )
    suite["gcc"] = _spec(
        "gcc",
        hard_fraction=0.06, hard_taken_bias=0.78,
        loop_fraction=0.08, pattern_fraction=0.60,
        loop_trip_range=(16, 32),
        easy_bias_range=(0.975, 0.998),
        phases=[
            PhaseSpec(length_instructions=30_000, hard_fraction=0.03,
                      hard_taken_bias=0.85, label="easy"),
            PhaseSpec(length_instructions=25_000, hard_fraction=0.12,
                      hard_taken_bias=0.72, label="hard"),
            PhaseSpec(length_instructions=20_000, hard_fraction=0.06,
                      hard_taken_bias=0.78, label="medium"),
        ],
        memory=MemorySpec(working_set_lines=16384, reuse_probability=0.5),
        description="compiler: short phases with shifting branch difficulty (2.61%)",
    )
    suite["gap"] = _spec(
        "gap",
        hard_fraction=0.07, hard_taken_bias=0.70,
        correlated_fraction=0.25,
        loop_fraction=0.25, pattern_fraction=0.35,
        loop_trip_range=(16, 48),
        memory=MemorySpec(working_set_lines=8192, reuse_probability=0.6),
        description="group theory: globally correlated, clustered mispredicts (5.16%)",
    )
    suite["gzip"] = _spec(
        "gzip",
        hard_fraction=0.09, hard_taken_bias=0.75,
        loop_fraction=0.30, pattern_fraction=0.38,
        loop_trip_range=(16, 48),
        memory=MemorySpec(working_set_lines=4096, reuse_probability=0.65),
        description="compression: mostly predictable (3.17%)",
    )
    suite["mcf"] = _spec(
        "mcf",
        hard_fraction=0.12, hard_taken_bias=0.70,
        loop_fraction=0.30, pattern_fraction=0.30,
        loop_trip_range=(16, 64),
        phases=[
            PhaseSpec(length_instructions=150_000, hard_fraction=0.08,
                      hard_taken_bias=0.75, label="phase1"),
            PhaseSpec(length_instructions=150_000, hard_fraction=0.18,
                      hard_taken_bias=0.66, label="phase2"),
        ],
        memory=MemorySpec(working_set_lines=65536, reuse_probability=0.25),
        description="network simplex: memory-bound, two long phases (4.51%)",
    )
    suite["parser"] = _spec(
        "parser",
        hard_fraction=0.16, hard_taken_bias=0.74,
        loop_fraction=0.25, pattern_fraction=0.38,
        loop_trip_range=(16, 48),
        memory=MemorySpec(working_set_lines=8192, reuse_probability=0.55),
        description="natural-language parser (5.26%)",
    )
    suite["perlbmk"] = _spec(
        "perlbmk",
        hard_fraction=0.004, hard_taken_bias=0.75,
        loop_fraction=0.06, pattern_fraction=0.80,
        loop_trip_range=(32, 64),
        easy_bias_range=(0.993, 0.999),
        kind_mix=BranchKindMix(conditional=0.70, unconditional=0.05, call=0.06,
                               ret=0.06, indirect=0.03, indirect_call=0.10),
        indirect_targets=24,
        indirect_repeat_probability=0.25,
        memory=MemorySpec(working_set_lines=4096, reuse_probability=0.7),
        description="interpreter: one dominant, unpredictable indirect call (0.11% "
                    "conditional but 9.73% overall mispredict rate)",
    )
    suite["twolf"] = _spec(
        "twolf",
        hard_fraction=0.38, hard_taken_bias=0.65,
        loop_fraction=0.25, pattern_fraction=0.24,
        loop_trip_range=(16, 48),
        memory=MemorySpec(working_set_lines=4096, reuse_probability=0.6),
        description="place & route: very hard branches (14.8%)",
    )
    suite["vortex"] = _spec(
        "vortex",
        hard_fraction=0.02, hard_taken_bias=0.74,
        loop_fraction=0.10, pattern_fraction=0.78,
        loop_trip_range=(32, 64),
        easy_bias_range=(0.993, 0.999),
        memory=MemorySpec(working_set_lines=16384, reuse_probability=0.6),
        description="object database: almost perfectly predictable (0.65%)",
    )
    suite["vprPlace"] = _spec(
        "vprPlace",
        hard_fraction=0.33, hard_taken_bias=0.675,
        loop_fraction=0.25, pattern_fraction=0.26,
        loop_trip_range=(16, 48),
        memory=MemorySpec(working_set_lines=8192, reuse_probability=0.55),
        description="FPGA placement: simulated annealing accept/reject (11.7%)",
    )
    suite["vprRoute"] = _spec(
        "vprRoute",
        hard_fraction=0.34, hard_taken_bias=0.68,
        loop_fraction=0.25, pattern_fraction=0.26,
        loop_trip_range=(16, 48),
        memory=MemorySpec(working_set_lines=16384, reuse_probability=0.45),
        description="FPGA routing: hard branches, larger working set (11.9%)",
    )
    return suite


#: The calibrated suite, keyed by benchmark name.
SPEC2000_INT: Dict[str, BenchmarkSpec] = _build_suite()


def benchmark_names() -> List[str]:
    """Names of all benchmarks in the suite, in the paper's table order."""
    return ["bzip2", "crafty", "gcc", "gap", "gzip", "mcf", "parser",
            "perlbmk", "twolf", "vortex", "vprPlace", "vprRoute"]


def resolve_benchmarks(names=None) -> List[str]:
    """Validate a benchmark subset for a sweep or campaign.

    ``None`` means the whole suite (paper table order).  An explicit list
    is validated against the suite and returned in the order given, so a
    campaign spec naming an unknown benchmark fails at *plan* time rather
    than deep inside a shard.
    """
    if names is None:
        return benchmark_names()
    resolved: List[str] = []
    for name in names:
        if name not in SPEC2000_INT:
            known = ", ".join(benchmark_names())
            raise ValueError(
                f"unknown benchmark {name!r}; known benchmarks: {known}")
        if name in resolved:
            raise ValueError(f"duplicate benchmark {name!r}")
        resolved.append(name)
    if not resolved:
        raise ValueError("benchmark list must not be empty")
    return resolved


def get_benchmark(name: str) -> BenchmarkSpec:
    """Return the spec for ``name``; raises ``KeyError`` with a helpful message."""
    try:
        return SPEC2000_INT[name]
    except KeyError:
        known = ", ".join(sorted(SPEC2000_INT))
        raise KeyError(f"unknown benchmark {name!r}; known benchmarks: {known}")


#: Conditional-branch mispredict rates the paper reports (Table 7), in percent.
PAPER_CONDITIONAL_MISPREDICT_RATES: Dict[str, float] = {
    "bzip2": 10.5, "crafty": 5.49, "gcc": 2.61, "gap": 5.16, "gzip": 3.17,
    "mcf": 4.51, "parser": 5.26, "perlbmk": 0.11, "twolf": 14.8,
    "vortex": 0.65, "vprPlace": 11.7, "vprRoute": 11.9,
}

#: Overall control-flow mispredict rates the paper reports (Table 7), in percent.
PAPER_OVERALL_MISPREDICT_RATES: Dict[str, float] = {
    "bzip2": 9.03, "crafty": 5.43, "gcc": 3.07, "gap": 6.05, "gzip": 2.86,
    "mcf": 3.95, "parser": 3.98, "perlbmk": 9.73, "twolf": 11.8,
    "vortex": 0.50, "vprPlace": 9.47, "vprRoute": 8.85,
}

#: PaCo RMS errors the paper reports (Table 7).
PAPER_PACO_RMS_ERROR: Dict[str, float] = {
    "bzip2": 0.0545, "crafty": 0.0528, "gcc": 0.0874, "gap": 0.0830,
    "gzip": 0.0640, "mcf": 0.0447, "parser": 0.0415, "perlbmk": 0.0613,
    "twolf": 0.0175, "vortex": 0.0332, "vprPlace": 0.0244, "vprRoute": 0.0322,
}

#: RMS errors the paper reports for the Appendix-A ablations (Table 1).
PAPER_STATIC_MRT_RMS_ERROR: Dict[str, float] = {
    "bzip2": 0.0608, "crafty": 0.0498, "gap": 0.1103, "gcc": 0.1011,
    "gzip": 0.1180, "mcf": 0.0779, "parser": 0.0467, "perlbmk": 0.0389,
    "twolf": 0.3060, "vortex": 0.0981, "vprPlace": 0.0566, "vprRoute": 0.1059,
}

PAPER_PER_BRANCH_MRT_RMS_ERROR: Dict[str, float] = {
    "bzip2": 0.0850, "crafty": 0.1232, "gap": 0.0683, "gcc": 0.0770,
    "gzip": 0.2209, "mcf": 0.0850, "parser": 0.1023, "perlbmk": 0.0500,
    "twolf": 0.0739, "vortex": 0.8028, "vprPlace": 0.0453, "vprRoute": 0.0557,
}
