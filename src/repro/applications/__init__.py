"""Applications of path confidence prediction evaluated by the paper.

* :mod:`repro.applications.pipeline_gating` — the pipeline-gating design
  space sweep behind Fig. 10 (performance loss vs. bad-path-instruction
  reduction for PaCo and for threshold-and-count predictors).
* :mod:`repro.applications.smt_prioritization` — the SMT fetch
  prioritization study behind Fig. 12 (HMWIPC of 16 benchmark pairs under
  ICOUNT, threshold-and-count and PaCo fetch policies).
"""

from repro.applications.pipeline_gating import (
    GatingCurvePoint,
    GatingSweepConfig,
    run_gating_sweep,
    average_curves,
)
from repro.applications.smt_prioritization import (
    SMT_PAIRS,
    SMTPairResult,
    SMTStudyConfig,
    run_smt_study,
)

__all__ = [
    "GatingCurvePoint",
    "GatingSweepConfig",
    "run_gating_sweep",
    "average_curves",
    "SMT_PAIRS",
    "SMTPairResult",
    "SMTStudyConfig",
    "run_smt_study",
]
