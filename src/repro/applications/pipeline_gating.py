"""Pipeline gating design-space sweep (paper Section 5.1, Fig. 10).

The paper's Fig. 10 plots, averaged over all benchmarks, the reduction in
bad-path instructions executed (y-axis) against the loss in performance
(x-axis) as gating becomes more aggressive, for:

* PaCo gating at target good-path probabilities from 2 % to 90 %, and
* conventional count gating with JRS thresholds 3 / 7 / 11 / 15 and
  gate-counts from 10 (least aggressive) down to 1 (most aggressive).

:func:`run_gating_sweep` reproduces one such curve family; the benchmark
set, sweep points and instruction budgets are configurable so the quick
benchmark harness and a full reproduction can share the same code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.eval.harness import GatingResult
from repro.runner import Job, SweepRunner, gating_job, resolve_runner
from repro.workloads.suite import benchmark_names


@dataclass
class GatingCurvePoint:
    """One point on a Fig. 10 curve (already averaged over benchmarks)."""

    policy: str
    parameter: float                 #: gate-count or gating probability
    performance_loss: float          #: fractional IPC loss vs. no gating
    badpath_reduction: float         #: fractional reduction in badpath executed
    badpath_fetch_reduction: float   #: fractional reduction in badpath fetched


@dataclass
class GatingSweepConfig:
    """Configuration of one gating sweep."""

    benchmarks: Sequence[str] = field(default_factory=benchmark_names)
    paco_probabilities: Sequence[float] = (0.02, 0.06, 0.10, 0.20, 0.30,
                                           0.50, 0.70, 0.90)
    jrs_thresholds: Sequence[int] = (3, 7, 11, 15)
    gate_counts: Sequence[int] = (1, 2, 3, 4, 6, 8, 10)
    instructions: int = 40_000
    warmup_instructions: int = 15_000
    seed: int = 1
    #: Simulation backend every point runs on; ``"trace"`` estimates the
    #: IPC loss from gated replay and is parity-gated against ``"cycle"``.
    backend: str = "cycle"


def _average(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def sweep_points(config: GatingSweepConfig) -> List[tuple]:
    """(curve name, reported parameter, mode, harness kwargs) per point,
    ordered from least to most aggressive within each curve."""
    points: List[tuple] = [
        ("paco", probability, "paco", {"gating_probability": probability})
        for probability in config.paco_probabilities
    ]
    for threshold in config.jrs_thresholds:
        points.extend(
            (f"jrs-t{threshold}", float(gate_count), "count",
             {"gate_count": gate_count, "jrs_threshold": threshold})
            for gate_count in sorted(config.gate_counts, reverse=True)
        )
    return points


def sweep_jobs(config: GatingSweepConfig) -> List[Job]:
    """The sweep's whole job list: per-benchmark no-gating baselines first,
    then every (policy, parameter, benchmark) point.

    This is the single source of truth :func:`run_gating_sweep` executes
    and the campaign planner shards — both enumerate through here, so the
    plan cannot drift from the execution.
    """
    def job(benchmark: str, mode: str, **extra) -> Job:
        return gating_job(benchmark, mode=mode,
                          instructions=config.instructions,
                          warmup_instructions=config.warmup_instructions,
                          seed=config.seed, backend=config.backend, **extra)

    jobs = [job(benchmark, "none") for benchmark in config.benchmarks]
    for _curve, _parameter, mode, extra in sweep_points(config):
        jobs.extend(job(benchmark, mode, **extra)
                    for benchmark in config.benchmarks)
    return jobs


def run_gating_sweep(config: Optional[GatingSweepConfig] = None,
                     runner: Optional[SweepRunner] = None
                     ) -> Dict[str, List[GatingCurvePoint]]:
    """Run the full gating design-space sweep.

    Returns a mapping from curve name (``"paco"`` or ``"jrs-t{threshold}"``)
    to the list of averaged curve points, ordered from least to most
    aggressive gating.  Every configuration of every benchmark is compared
    against that benchmark's own no-gating baseline (same seed, same
    workload), exactly as the paper does.

    The whole design space — the per-benchmark baselines and every
    (policy, parameter, benchmark) point — is enumerated into one job list
    so a parallel runner shards all of it at once.
    """
    cfg = config if config is not None else GatingSweepConfig()
    results = resolve_runner(runner).map(sweep_jobs(cfg))

    baselines: Dict[str, GatingResult] = dict(
        zip(cfg.benchmarks, results[:len(cfg.benchmarks)])
    )
    curves: Dict[str, List[GatingCurvePoint]] = {"paco": []}
    for threshold in cfg.jrs_thresholds:
        curves[f"jrs-t{threshold}"] = []
    cursor = len(cfg.benchmarks)
    for curve, parameter, _mode, _extra in sweep_points(cfg):
        losses, reductions, fetch_reductions = [], [], []
        for benchmark in cfg.benchmarks:
            result = results[cursor]
            cursor += 1
            baseline = baselines[benchmark]
            losses.append(result.performance_loss_vs(baseline))
            reductions.append(result.badpath_reduction_vs(baseline))
            fetch_reductions.append(result.badpath_fetch_reduction_vs(baseline))
        curves[curve].append(GatingCurvePoint(
            policy=curve,
            parameter=parameter,
            performance_loss=_average(losses),
            badpath_reduction=_average(reductions),
            badpath_fetch_reduction=_average(fetch_reductions),
        ))
    return curves


def average_curves(curves: Dict[str, List[GatingCurvePoint]]
                   ) -> Dict[str, GatingCurvePoint]:
    """Pick, per curve, the point with the best badpath reduction at <=1% loss.

    This is the "headline" summary the paper quotes in the abstract: the
    best operating point of each predictor that does not sacrifice
    performance.
    """
    best: Dict[str, GatingCurvePoint] = {}
    for name, points in curves.items():
        eligible = [p for p in points if p.performance_loss <= 0.01]
        if eligible:
            best[name] = max(eligible, key=lambda p: p.badpath_reduction)
        else:
            # No operating point stays within the loss budget; report the
            # least harmful one rather than the most aggressive one.
            best[name] = min(points, key=lambda p: p.performance_loss)
    return best
