"""SMT fetch prioritization study (paper Section 5.2, Fig. 12).

The paper runs 16 two-benchmark pairs (every benchmark appears with three
partners, gzip with two; parser is excluded because the authors' SMT
simulator cannot run it) on an 8-wide, 2-thread SMT machine and compares
the harmonic mean of weighted IPCs (HMWIPC) under:

* four threshold-and-count confidence fetch policies (JRS thresholds 3, 7,
  11 and 15),
* a PaCo-based confidence fetch policy, and
* the ICOUNT policy as a reference.

:data:`SMT_PAIRS` is the concrete pairing used here (the paper does not
list its pairs; this list satisfies the paper's stated constraints and
includes the gap–mcf pair the text discusses).  :func:`run_smt_study`
reproduces the whole figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.eval.metrics import hmwipc
from repro.runner import (
    Job,
    SweepRunner,
    resolve_runner,
    single_ipc_job,
    smt_job,
)

#: The 16 benchmark pairs: every benchmark appears three times except gzip
#: (twice); parser is excluded, matching the paper's constraints.
SMT_PAIRS: List[Tuple[str, str]] = [
    ("gap", "mcf"),
    ("gzip", "vortex"),
    ("bzip2", "twolf"),
    ("crafty", "gcc"),
    ("vprPlace", "vprRoute"),
    ("perlbmk", "gap"),
    ("mcf", "twolf"),
    ("vortex", "crafty"),
    ("gcc", "bzip2"),
    ("vprRoute", "perlbmk"),
    ("gzip", "vprPlace"),
    ("twolf", "vortex"),
    ("bzip2", "vprRoute"),
    ("crafty", "mcf"),
    ("gap", "vprPlace"),
    ("perlbmk", "gcc"),
]


@dataclass
class SMTPairResult:
    """HMWIPC of one pair under every evaluated fetch policy."""

    pair: Tuple[str, str]
    hmwipc_by_policy: Dict[str, float]

    def best_counter_policy(self) -> Tuple[str, float]:
        """The best threshold-and-count policy for this pair."""
        counter_policies = {k: v for k, v in self.hmwipc_by_policy.items()
                            if k.startswith("jrs-t")}
        name = max(counter_policies, key=counter_policies.get)
        return name, counter_policies[name]

    def paco_improvement_over_best_counter(self) -> float:
        """Fractional HMWIPC improvement of PaCo over the best counter policy."""
        _, best = self.best_counter_policy()
        if best <= 0.0:
            return 0.0
        return (self.hmwipc_by_policy["paco"] - best) / best


@dataclass
class SMTStudyConfig:
    """Configuration of the SMT fetch prioritization study."""

    pairs: Sequence[Tuple[str, str]] = field(default_factory=lambda: list(SMT_PAIRS))
    jrs_thresholds: Sequence[int] = (3, 7, 11, 15)
    include_icount: bool = True
    instructions: int = 80_000
    warmup_instructions: int = 30_000
    single_thread_instructions: int = 40_000
    single_thread_warmup_instructions: int = 15_000
    seed: int = 1
    #: Simulation backend both stages run on; ``"trace"`` interleaves
    #: per-thread branch replays and is parity-gated against ``"cycle"``.
    backend: str = "cycle"


def study_benchmarks(config: SMTStudyConfig) -> List[str]:
    """Every benchmark appearing in the study's pairs, sorted."""
    return sorted({name for pair in config.pairs for name in pair})


def single_ipc_jobs(config: SMTStudyConfig) -> List[Job]:
    """Stage one of the study: each benchmark's single-thread IPC baseline.

    The SMT stage no longer embeds the IPCs these jobs measure — the
    HMWIPC weighting happens at aggregation time in
    :func:`run_smt_study` — so both stages are statically plannable and a
    campaign can enumerate the whole study up front.
    """
    return [
        single_ipc_job(benchmark,
                       instructions=config.single_thread_instructions,
                       warmup_instructions=(
                           config.single_thread_warmup_instructions),
                       seed=config.seed, backend=config.backend)
        for benchmark in study_benchmarks(config)
    ]


def study_policies(config: SMTStudyConfig) -> List[Tuple[str, str, int]]:
    """The evaluated policies as (label, harness policy, jrs threshold)."""
    policies: List[Tuple[str, str, int]] = []
    if config.include_icount:
        policies.append(("icount", "icount", 3))
    policies.extend((f"jrs-t{t}", "count", t) for t in config.jrs_thresholds)
    policies.append(("paco", "paco", 3))
    return policies


def smt_jobs(config: SMTStudyConfig) -> List[Job]:
    """Stage two of the study: every (pair, policy) SMT run.

    Job identities carry no measured values — the single-thread weights
    are applied when :func:`run_smt_study` aggregates — so this list is
    enumerable before stage one runs.
    """
    return [
        smt_job(pair[0], pair[1], policy=policy, jrs_threshold=threshold,
                instructions=config.instructions,
                warmup_instructions=config.warmup_instructions,
                seed=config.seed, backend=config.backend)
        for pair in config.pairs
        for _label, policy, threshold in study_policies(config)
    ]


def run_smt_study(config: Optional[SMTStudyConfig] = None,
                  runner: Optional[SweepRunner] = None) -> List[SMTPairResult]:
    """Run every pair under every policy and return per-pair HMWIPC tables.

    The study is a two-stage sweep.  Stage one measures each benchmark's
    single-thread IPC (the HMWIPC weight) exactly once, no matter how many
    pairs and policies it appears in; stage two runs every (pair, policy)
    combination without re-measuring any baseline, and the weighting is
    applied here at aggregation time — so both stages are statically
    enumerable and each is one job list a parallel runner shards across
    its worker pool.
    """
    cfg = config if config is not None else SMTStudyConfig()
    sweep = resolve_runner(runner)

    benchmarks = study_benchmarks(cfg)
    ipcs = sweep.map(single_ipc_jobs(cfg))
    single_ipcs: Dict[str, float] = dict(zip(benchmarks, ipcs))

    policies = study_policies(cfg)
    outcomes = iter(sweep.map(smt_jobs(cfg)))

    results: List[SMTPairResult] = []
    for pair in cfg.pairs:
        singles = (single_ipcs[pair[0]], single_ipcs[pair[1]])
        by_policy: Dict[str, float] = {}
        for label, _policy, _threshold in policies:
            by_policy[label] = hmwipc(singles, next(outcomes).smt_ipcs)
        results.append(SMTPairResult(pair=pair, hmwipc_by_policy=by_policy))
    return results
