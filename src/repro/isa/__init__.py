"""Instruction and program model for the PaCo reproduction.

The simulator is trace-driven in spirit: workload generators synthesise
dynamic :class:`~repro.isa.instruction.Instruction` records (including
wrong-path records after a branch misprediction) and the pipeline model
moves them through fetch, execute and retire.  The ISA model carries exactly
the information the paper's mechanisms care about: instruction class, branch
kind and outcome, memory address, data-dependence distance and execution
latency class.
"""

from repro.isa.types import InstructionClass, BranchKind
from repro.isa.instruction import Instruction, BranchOutcome
from repro.isa.program import StaticBranch, StaticInstructionMix

__all__ = [
    "InstructionClass",
    "BranchKind",
    "Instruction",
    "BranchOutcome",
    "StaticBranch",
    "StaticInstructionMix",
]
