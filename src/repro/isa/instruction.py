"""Dynamic instruction records.

:class:`Instruction` is the unit the pipeline model moves around.  It is a
plain mutable object (``__slots__``-based, not a dataclass) because the
simulator creates and touches millions of them per experiment and attribute
access speed dominates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.isa.types import BranchKind, InstructionClass


@dataclass(slots=True)
class BranchOutcome:
    """The architectural outcome of a control-flow instruction.

    ``taken`` is meaningful for conditional branches; ``target`` is the
    architectural next PC when the branch is taken (or for unconditional /
    indirect control flow).
    """

    taken: bool
    target: int


class Instruction:
    """One dynamic instruction flowing through the pipeline.

    Attributes
    ----------
    seq:
        Global fetch sequence number (unique per core run, monotonically
        increasing in fetch order; wrong-path instructions get numbers too).
    pc:
        Program counter of the instruction.
    iclass:
        Coarse :class:`~repro.isa.types.InstructionClass`.
    branch_kind:
        :class:`~repro.isa.types.BranchKind`; ``NOT_A_BRANCH`` for
        non-control instructions.
    outcome:
        Architectural :class:`BranchOutcome` for branches on the good path
        (wrong-path branches carry a synthetic outcome).
    address:
        Effective address for loads/stores, else ``None``.
    dep_distance:
        Distance (in dynamic instructions) to the producing instruction of
        this instruction's critical source operand, or 0 if it has no
        in-flight dependence.  The backend uses it to approximate wake-up.
    latency_class:
        Base execution latency in cycles (before cache effects).
    thread_id:
        SMT hardware thread the instruction belongs to.
    on_goodpath:
        True when the instruction is on the eventually-retiring path.
    static_branch_id:
        Identifier of the static branch this dynamic instance came from
        (used by the per-branch MRT ablation), or ``None``.
    """

    __slots__ = (
        "seq",
        "pc",
        "iclass",
        "branch_kind",
        "outcome",
        "address",
        "dep_distance",
        "latency_class",
        "thread_id",
        "on_goodpath",
        "static_branch_id",
        # --- fields filled in by the pipeline as the instruction flows ---
        "fetch_cycle",
        "ready_cycle",
        "issue_cycle",
        "complete_cycle",
        "retired",
        "squashed",
        "predicted_taken",
        "predicted_target",
        "mispredicted",
        "conf_token",
        "producer",
    )

    def __init__(
        self,
        seq: int,
        pc: int,
        iclass: InstructionClass,
        branch_kind: BranchKind = BranchKind.NOT_A_BRANCH,
        outcome: Optional[BranchOutcome] = None,
        address: Optional[int] = None,
        dep_distance: int = 0,
        latency_class: int = 1,
        thread_id: int = 0,
        on_goodpath: bool = True,
        static_branch_id: Optional[int] = None,
    ) -> None:
        self.seq = seq
        self.pc = pc
        self.iclass = iclass
        self.branch_kind = branch_kind
        self.outcome = outcome
        self.address = address
        self.dep_distance = dep_distance
        self.latency_class = latency_class
        self.thread_id = thread_id
        self.on_goodpath = on_goodpath
        self.static_branch_id = static_branch_id

        self.fetch_cycle: int = -1
        self.ready_cycle: int = -1
        self.issue_cycle: int = -1
        self.complete_cycle: int = -1
        self.retired: bool = False
        self.squashed: bool = False
        self.predicted_taken: Optional[bool] = None
        self.predicted_target: Optional[int] = None
        self.mispredicted: bool = False
        self.conf_token: object = None
        self.producer: Optional["Instruction"] = None

    @property
    def is_branch(self) -> bool:
        return self.branch_kind is not BranchKind.NOT_A_BRANCH

    @property
    def is_conditional_branch(self) -> bool:
        return self.branch_kind is BranchKind.CONDITIONAL

    @property
    def is_memory(self) -> bool:
        return self.iclass in (InstructionClass.LOAD, InstructionClass.STORE)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        kind = self.branch_kind.name if self.is_branch else self.iclass.name
        path = "good" if self.on_goodpath else "bad"
        return f"<Instruction seq={self.seq} pc={self.pc:#x} {kind} {path}path>"
