"""Static-program metadata used by the workload generators.

A synthetic benchmark is described by a population of *static branches*
(each with a behaviour model attached by :mod:`repro.workloads`) plus an
instruction mix describing the non-branch instructions between branches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.isa.types import BranchKind, InstructionClass


@dataclass
class StaticBranch:
    """Identity and shape of one static branch site.

    The behaviour (taken/not-taken sequence, indirect-target sequence) is
    supplied by a behaviour model in :mod:`repro.workloads.branch_models`;
    this record only carries the static properties the predictors see.
    """

    branch_id: int
    pc: int
    kind: BranchKind
    taken_target: int
    fallthrough: int

    def __post_init__(self) -> None:
        if self.kind is BranchKind.NOT_A_BRANCH:
            raise ValueError("a StaticBranch must be a branch")


@dataclass
class StaticInstructionMix:
    """Relative frequencies of the non-branch instruction classes.

    The mix controls the latency/dependence texture of the instructions the
    generator inserts between branches, which in turn controls how long
    branches stay unresolved — the quantity path-confidence prediction is
    all about.
    """

    alu: float = 0.55
    load: float = 0.25
    store: float = 0.12
    mul: float = 0.05
    div: float = 0.01
    nop: float = 0.02

    def as_weights(self) -> Dict[InstructionClass, float]:
        weights = {
            InstructionClass.ALU: self.alu,
            InstructionClass.LOAD: self.load,
            InstructionClass.STORE: self.store,
            InstructionClass.MUL: self.mul,
            InstructionClass.DIV: self.div,
            InstructionClass.NOP: self.nop,
        }
        total = sum(weights.values())
        if total <= 0:
            raise ValueError("instruction mix weights must sum to a positive value")
        return {klass: weight / total for klass, weight in weights.items()}


#: Default execution latency (cycles) per instruction class, before cache effects.
DEFAULT_LATENCY_BY_CLASS: Dict[InstructionClass, int] = {
    InstructionClass.ALU: 1,
    InstructionClass.LOAD: 2,      # plus cache hierarchy latency on a miss
    InstructionClass.STORE: 1,
    InstructionClass.BRANCH: 1,
    InstructionClass.MUL: 3,
    InstructionClass.DIV: 12,
    InstructionClass.NOP: 1,
}
