"""Instruction-class and branch-kind enumerations."""

from __future__ import annotations

import enum


class InstructionClass(enum.IntEnum):
    """Coarse instruction classes the timing model distinguishes."""

    ALU = 0          #: single-cycle integer operation
    LOAD = 1         #: memory read (latency depends on the cache hierarchy)
    STORE = 2        #: memory write
    BRANCH = 3       #: any control-flow instruction
    MUL = 4          #: multi-cycle integer multiply
    DIV = 5          #: long-latency integer divide
    NOP = 6          #: no-op / fence


class BranchKind(enum.IntEnum):
    """Control-flow instruction kinds.

    The distinction matters to the confidence machinery: the JRS predictor
    assigns miss-distance counters only to *conditional* branches, which is
    why PaCo loses accuracy on perlbmk (whose mispredictions are dominated
    by a single indirect call the JRS table cannot stratify).
    """

    NOT_A_BRANCH = 0
    CONDITIONAL = 1      #: conditional direct branch
    UNCONDITIONAL = 2    #: unconditional direct jump
    CALL = 3             #: direct call
    RETURN = 4           #: return (predicted by the return address stack)
    INDIRECT = 5         #: indirect jump
    INDIRECT_CALL = 6    #: indirect call

    @property
    def is_conditional(self) -> bool:
        return self is BranchKind.CONDITIONAL

    @property
    def is_indirect(self) -> bool:
        return self in (BranchKind.INDIRECT, BranchKind.INDIRECT_CALL)

    @property
    def is_call(self) -> bool:
        return self in (BranchKind.CALL, BranchKind.INDIRECT_CALL)

    @property
    def uses_btb_target(self) -> bool:
        """Whether the fetch-time target comes from the BTB / indirect predictor."""
        return self in (
            BranchKind.UNCONDITIONAL,
            BranchKind.CALL,
            BranchKind.INDIRECT,
            BranchKind.INDIRECT_CALL,
        )
