"""PaCo: probability-based path confidence prediction — reproduction library.

This package reproduces *PaCo: Probability-based Path Confidence Prediction*
(Malik, Agarwal, Dhar, Frank; UIUC CRHC-07-08): the PaCo predictor itself,
the conventional threshold-and-count predictors it is compared against, the
out-of-order / SMT pipeline substrate the evaluation runs on, synthetic
SPEC2000-INT stand-in workloads, and harnesses that regenerate every table
and figure of the paper's evaluation.

Quick start::

    from repro.eval import run_accuracy_experiment

    result = run_accuracy_experiment("parser", instructions=30_000)
    print(result.rms_error("paco"))

Package map
-----------
``repro.common``            shared hardware primitives and statistics
``repro.isa``               instruction / program model
``repro.workloads``         synthetic SPEC2000-INT stand-in benchmarks
``repro.branch_predictor``  tournament predictor, BTB, RAS, indirect predictor
``repro.confidence``        JRS / enhanced-JRS confidence prediction
``repro.pathconf``          PaCo and the baseline path confidence predictors
``repro.pipeline``          out-of-order and SMT timing models, gating
``repro.applications``      pipeline gating and SMT fetch prioritization drivers
``repro.eval``              observers, metrics, harnesses, reports
``repro.backends``          pluggable simulation backends (cycle, trace)
``repro.runner``            sweep execution: jobs, worker pool, result cache
``repro.experiments``       one driver per paper table / figure
``repro.campaign``          sharded, resumable paper-scale campaigns
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
