"""JRS miss-distance-counter branch confidence predictor.

The JRS predictor keeps a table of small saturating *miss distance
counters* (MDCs).  The entry for a dynamic branch is found by XOR-ing the
branch PC with the global branch history (and, in the *enhanced* variant of
Grunwald et al., also the predicted direction).  The entry is incremented
on a correct prediction and reset to zero on a misprediction, so an MDC
value of ``k`` means "this branch context has been predicted correctly
``k`` times in a row (saturating)".

Downstream users:

* Threshold-and-count path confidence predictors compare the MDC against a
  threshold to classify the branch as high or low confidence.
* PaCo uses the raw MDC value as the bucket index into its Mispredict Rate
  Table — the stratifier role described in Section 3.1 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

#: Width of a miss distance counter in the paper's configuration.
MDC_BITS_DEFAULT = 4


@dataclass(slots=True)
class ConfidenceLookup:
    """The result of a fetch-time confidence lookup for one branch.

    The token is carried with the in-flight branch so that the resolution
    update hits exactly the entry consulted at prediction time (the global
    history will have moved on by then).
    """

    index: int
    mdc_value: int

    def is_high_confidence(self, threshold: int) -> bool:
        """True when the MDC value is at or above the confidence threshold."""
        return self.mdc_value >= threshold


class JRSConfidencePredictor:
    """The (enhanced) JRS confidence table.

    Parameters
    ----------
    index_bits:
        log2 of the number of table entries.  The paper's 8 KB table of
        4-bit counters corresponds to 2^14 entries (``index_bits=14``).
    mdc_bits:
        Width of each miss distance counter (4 in the paper).
    history_bits:
        Number of global-history bits folded into the index.
    enhanced:
        When True (the default, matching the paper), the predicted
        direction of the branch is also folded into the index, as proposed
        by Grunwald et al.
    """

    def __init__(self, index_bits: int = 14, mdc_bits: int = MDC_BITS_DEFAULT,
                 history_bits: int = 8, enhanced: bool = True) -> None:
        if index_bits <= 0 or mdc_bits <= 0:
            raise ValueError("table geometry must be positive")
        self.index_bits = index_bits
        self.mdc_bits = mdc_bits
        self.history_bits = history_bits
        self.enhanced = enhanced
        self.size = 1 << index_bits
        self._mask = self.size - 1
        self._history_mask = (1 << history_bits) - 1
        self.mdc_max = (1 << mdc_bits) - 1
        self.table: List[int] = [0] * self.size

        self.lookups = 0
        self.updates = 0
        self.resets = 0

    # ------------------------------------------------------------------ #

    def _index(self, pc: int, history: int, predicted_taken: bool) -> int:
        index = ((pc >> 2) ^ (history & self._history_mask)) & self._mask
        if self.enhanced:
            index ^= (1 if predicted_taken else 0) << (self.index_bits - 1)
            index &= self._mask
        return index

    def lookup(self, pc: int, history: int, predicted_taken: bool) -> ConfidenceLookup:
        """Fetch-time lookup: return the MDC value (and the index used)."""
        self.lookups += 1
        index = self._index(pc, history, predicted_taken)
        return ConfidenceLookup(index=index, mdc_value=self.table[index])

    def update(self, lookup: ConfidenceLookup, was_correct: bool) -> None:
        """Resolution-time update of the entry consulted at prediction time."""
        self.updates += 1
        if was_correct:
            value = self.table[lookup.index]
            if value < self.mdc_max:
                self.table[lookup.index] = value + 1
        else:
            self.resets += 1
            self.table[lookup.index] = 0

    # ------------------------------------------------------------------ #

    @property
    def num_mdc_values(self) -> int:
        """Number of distinct MDC values (the number of PaCo MRT buckets)."""
        return self.mdc_max + 1

    def storage_bits(self) -> int:
        """Total storage of the table in bits (the paper's 8 KB budget check)."""
        return self.size * self.mdc_bits

    def reset(self) -> None:
        # In place: the predictor state engine borrows this list.
        self.table[:] = [0] * self.size
        self.lookups = 0
        self.updates = 0
        self.resets = 0
