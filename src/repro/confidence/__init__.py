"""Branch confidence prediction substrate.

Implements the JRS miss-distance-counter confidence predictor (Jacobsen,
Rotenberg and Smith) and the *enhanced* JRS variant of Grunwald et al.,
where the table index also folds in the predicted direction of the branch.
The paper's machine uses an 8 KB enhanced-JRS table of 4-bit MDCs; PaCo
uses the same table as a *stratifier* — the MDC value a branch reads at
prediction time selects which Mispredict Rate Table bucket it belongs to.
"""

from repro.confidence.jrs import (
    JRSConfidencePredictor,
    ConfidenceLookup,
    MDC_BITS_DEFAULT,
)
from repro.confidence.perceptron import (
    PerceptronConfidenceEstimator,
    PerceptronConfidenceLookup,
)

__all__ = [
    "JRSConfidencePredictor",
    "ConfidenceLookup",
    "MDC_BITS_DEFAULT",
    "PerceptronConfidenceEstimator",
    "PerceptronConfidenceLookup",
]
