"""Perceptron-based branch confidence estimation (Akkary et al., HPCA-10).

The paper's related-work section points out that better branch confidence
predictors exist — notably the perceptron-based estimator — and argues that
PaCo is orthogonal: a better confidence predictor simply gives PaCo a
better *stratifier*.  This module provides that alternative stratifier so
the claim can be exercised: the perceptron's scaled output magnitude is
quantised into the same 4-bit bucket space the JRS MDC table produces, and
can be plugged into any path confidence predictor in place of the JRS MDC
value.

The estimator keeps one small perceptron per (hashed) branch PC whose
inputs are the global history bits; the *magnitude* of the dot product is a
measure of how consistently the history predicts this branch, i.e. its
confidence.  Training follows the standard perceptron rule, driven by
whether the underlying direction prediction was correct.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

#: Default number of history bits (perceptron inputs).
DEFAULT_HISTORY_BITS = 8


@dataclass(frozen=True)
class PerceptronConfidenceLookup:
    """Result of a fetch-time perceptron confidence lookup."""

    index: int
    history: int
    output: int
    bucket: int

    def is_high_confidence(self, threshold_bucket: int) -> bool:
        """True when the quantised confidence bucket is at or above the threshold."""
        return self.bucket >= threshold_bucket


class PerceptronConfidenceEstimator:
    """A perceptron-based confidence estimator usable as a PaCo stratifier.

    Parameters
    ----------
    index_bits:
        log2 of the number of perceptrons.
    history_bits:
        Number of global-history bits used as inputs.
    weight_limit:
        Saturation magnitude of each weight (6-bit signed weights by default).
    training_threshold:
        Train whenever the output magnitude is below this value or the
        confidence decision was wrong — the usual perceptron margin rule.
    num_buckets:
        Number of quantised confidence buckets produced (16 to be a drop-in
        replacement for the 4-bit MDC value).
    """

    def __init__(self, index_bits: int = 10,
                 history_bits: int = DEFAULT_HISTORY_BITS,
                 weight_limit: int = 31,
                 training_threshold: int = 14,
                 num_buckets: int = 16) -> None:
        if index_bits <= 0 or history_bits <= 0:
            raise ValueError("table geometry must be positive")
        if weight_limit <= 0 or num_buckets <= 1:
            raise ValueError("weight limit and bucket count must be positive")
        self.index_bits = index_bits
        self.history_bits = history_bits
        self.weight_limit = weight_limit
        self.training_threshold = training_threshold
        self.num_buckets = num_buckets
        self.size = 1 << index_bits
        self._mask = self.size - 1
        # One flat weight array, stride = history_bits + 1 per perceptron:
        # weights[i * stride] is the bias, weights[i * stride + 1 + k] the
        # weight of history bit k.  Flat-and-contiguous matches the rest of
        # the predictor state engine's table storage.
        self._stride = history_bits + 1
        self._weights: List[int] = [0] * (self.size * self._stride)
        # Output magnitude that maps to the extreme buckets.  The perceptron
        # stops training once its margin exceeds ``training_threshold``, so
        # outputs saturate just beyond it; quantising over the full weight
        # range would squash every branch into the middle buckets.
        self._max_output = max(2 * training_threshold, history_bits + 1)
        self.lookups = 0
        self.updates = 0

    # ------------------------------------------------------------------ #

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    @staticmethod
    def _history_inputs(history: int, bits: int) -> List[int]:
        return [1 if (history >> i) & 1 else -1 for i in range(bits)]

    def _output(self, index: int, history: int) -> int:
        weights = self._weights
        base = index * self._stride
        total = weights[base]
        for i in range(self.history_bits):
            if (history >> i) & 1:
                total += weights[base + 1 + i]
            else:
                total -= weights[base + 1 + i]
        return total

    # ------------------------------------------------------------------ #

    def lookup(self, pc: int, history: int,
               predicted_taken: bool) -> PerceptronConfidenceLookup:
        """Fetch-time lookup: returns the output and its confidence bucket.

        The sign convention follows the underlying direction prediction: the
        output is folded so that a large *positive* value means "the history
        strongly agrees with the predicted direction" (high confidence).
        """
        self.lookups += 1
        index = self._index(pc)
        raw = self._output(index, history)
        agreement = raw if predicted_taken else -raw
        bucket = self._bucket_for(agreement)
        return PerceptronConfidenceLookup(index=index, history=history,
                                          output=agreement, bucket=bucket)

    def _bucket_for(self, agreement: int) -> int:
        """Quantise the (signed) agreement into ``num_buckets`` buckets."""
        clamped = max(-self._max_output, min(agreement, self._max_output))
        # Map [-max, +max] onto [0, num_buckets - 1].
        span = 2 * self._max_output
        position = (clamped + self._max_output) / span if span else 0.0
        return min(int(position * self.num_buckets), self.num_buckets - 1)

    def update(self, lookup: PerceptronConfidenceLookup, was_correct: bool,
               actual_taken: bool) -> None:
        """Resolution-time training with the standard perceptron rule."""
        self.updates += 1
        needs_training = (not was_correct
                          or abs(lookup.output) <= self.training_threshold)
        if not needs_training:
            return
        target = 1 if actual_taken else -1
        weights = self._weights
        base = lookup.index * self._stride
        weights[base] = self._saturate(weights[base] + target)
        history = lookup.history
        for i in range(self.history_bits):
            x = 1 if (history >> i) & 1 else -1
            weights[base + 1 + i] = self._saturate(
                weights[base + 1 + i] + target * x
            )

    def _saturate(self, value: int) -> int:
        return max(-self.weight_limit, min(value, self.weight_limit))

    # ------------------------------------------------------------------ #

    def weights_for(self, index: int) -> List[int]:
        """The weight row ``[bias, w_0 .. w_{h-1}]`` of one perceptron."""
        if not 0 <= index < self.size:
            raise IndexError(f"perceptron index {index} out of range")
        base = index * self._stride
        return self._weights[base:base + self._stride]

    def storage_bits(self) -> int:
        """Total weight storage (6-bit signed weights by default)."""
        bits_per_weight = (self.weight_limit * 2 + 1).bit_length()
        return self.size * (self.history_bits + 1) * bits_per_weight

    def reset(self) -> None:
        self._weights[:] = [0] * (self.size * self._stride)
        self.lookups = 0
        self.updates = 0
