"""``python -m repro`` — run the paper's experiment sweeps from the shell.

Subcommands
-----------
``run <experiment>``
    Run one experiment driver and print the paper-shaped table.  Workers
    and the on-disk result cache come from ``--workers`` /
    ``--cache-dir`` / ``--no-cache``; ``--backend {cycle,trace}``
    overrides the driver's default simulation backend (predictor-level
    experiments default to the fast trace engine, fig10/fig12 to the
    cycle model).
``sweep``
    Run several experiments (default: all of them) sharing one runner and
    one cache, and print a wall-clock summary.
``cache``
    Inspect (``info``), delete (``clear``) or bound (``prune``) the
    result cache.

Examples::

    python -m repro run table7 --workers 4
    python -m repro run table7 --backend cycle      # ground-truth numbers
    python -m repro run fig12 --quick --workers 2
    python -m repro sweep --experiments table7,fig2 --workers 4
    python -m repro cache info
    python -m repro cache prune --max-age-days 30 --max-size-mb 512
    python -m repro cache clear
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.backends import backend_names
from repro.pipeline.core import SimulationTruncated
from repro.experiments import (
    ablations,
    fig2_mdc_rates,
    fig3_counter_goodpath,
    fig8_9_reliability,
    fig10_gating,
    fig12_smt,
    table7_rms,
    tableA1_mrt_variants,
)
from repro.runner import (
    ResultCache,
    SweepRunner,
    default_cache_dir,
    resolve_worker_count,
)

#: CLI name -> driver ``main(runner=..., quick=...) -> str``.
EXPERIMENTS: Dict[str, Callable[..., str]] = {
    "fig2": fig2_mdc_rates.main,
    "fig3": fig3_counter_goodpath.main,
    "table7": table7_rms.main,
    "fig8": fig8_9_reliability.main,
    "fig9": fig8_9_reliability.main,
    "fig10": fig10_gating.main,
    "fig12": fig12_smt.main,
    "tableA1": tableA1_mrt_variants.main,
    "ablations": ablations.main,
}


def _worker_count(value: str) -> int:
    """argparse type for ``--workers``: an integer >= 1, rejected loudly."""
    try:
        return resolve_worker_count(value, source="--workers")
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _add_runner_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=_worker_count, default=1,
                        help="worker processes for the sweep (default: 1, "
                             "must be >= 1)")
    parser.add_argument("--quick", action="store_true",
                        help="reduced benchmark sets and instruction budgets")
    parser.add_argument("--backend", choices=sorted(backend_names()),
                        default=None,
                        help="simulation backend override (default: the "
                             "driver's own default — trace for "
                             "predictor-level experiments, cycle for "
                             "fig10/fig12)")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="result cache directory "
                             "(default: $REPRO_CACHE_DIR or .repro-cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable result memoization")


def _driver_kwargs(args: argparse.Namespace) -> Dict[str, object]:
    """Keyword arguments forwarded to a driver ``main`` (only when set)."""
    kwargs: Dict[str, object] = {}
    if args.backend is not None:
        kwargs["backend"] = args.backend
    return kwargs


def _build_runner(args: argparse.Namespace) -> SweepRunner:
    cache: Optional[ResultCache] = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir)
    return SweepRunner(workers=args.workers, cache=cache)


def _report_truncation(name: str, error: SimulationTruncated) -> None:
    """Readable report for a run that hit its ``max_cycles`` safety net."""
    stats = error.stats
    print(f"error: [{name}] {error}", file=sys.stderr)
    print(f"  instruction budget : {error.max_instructions}", file=sys.stderr)
    print(f"  cycle safety net   : {error.max_cycles} (tripped)",
          file=sys.stderr)
    print(f"  partial statistics : {stats.retired_instructions} retired, "
          f"{stats.cycles} cycles, ipc {stats.ipc:.3f}, "
          f"{stats.gated_cycles} gated, {stats.fetch_stall_cycles} "
          f"fetch-stalled, {stats.flushes} flushes", file=sys.stderr)
    print("  a run that cannot retire its budget usually means a gating or "
          "machine configuration that starves fetch; adjust the "
          "configuration or raise the cycle limit", file=sys.stderr)


def _cmd_run(args: argparse.Namespace) -> int:
    runner = _build_runner(args)
    start = time.perf_counter()
    try:
        EXPERIMENTS[args.experiment](runner=runner, quick=args.quick,
                                     **_driver_kwargs(args))
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except SimulationTruncated as error:
        _report_truncation(args.experiment, error)
        return 3
    elapsed = time.perf_counter() - start
    print(f"\n[{args.experiment}] {elapsed:.1f}s with {args.workers} "
          f"worker(s){_cache_suffix(runner)}", file=sys.stderr)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.experiments:
        names: List[str] = []
        for chunk in args.experiments.split(","):
            name = chunk.strip()
            if name not in EXPERIMENTS:
                print(f"unknown experiment {name!r} "
                      f"(known: {', '.join(sorted(EXPERIMENTS))})",
                      file=sys.stderr)
                return 2
            names.append(name)
    else:
        names = [n for n in EXPERIMENTS if n != "fig9"]  # fig8 covers fig9
    runner = _build_runner(args)
    timings: List[tuple] = []
    for name in names:
        start = time.perf_counter()
        try:
            EXPERIMENTS[name](runner=runner, quick=args.quick,
                              **_driver_kwargs(args))
        except ValueError as error:
            if args.backend is not None:
                # A sweep-wide backend override does not fit every driver
                # (fig10/fig12 are pinned to the cycle model): skip those
                # instead of discarding the completed experiments.
                print(f"skipping {name}: {error}", file=sys.stderr)
                continue
            print(f"error: [{name}] {error}", file=sys.stderr)
            return 2
        except SimulationTruncated as error:
            _report_truncation(name, error)
            return 3
        timings.append((name, time.perf_counter() - start))
        print()
    total = sum(elapsed for _, elapsed in timings)
    print("sweep summary", file=sys.stderr)
    for name, elapsed in timings:
        print(f"  {name:<10} {elapsed:8.1f}s", file=sys.stderr)
    print(f"  {'total':<10} {total:8.1f}s with {args.workers} "
          f"worker(s){_cache_suffix(runner)}", file=sys.stderr)
    return 0


def _cache_suffix(runner: SweepRunner) -> str:
    if runner.cache is None:
        return ", cache disabled"
    stats = runner.cache.stats
    return (f", cache {stats.hits} hit(s) / {stats.misses} miss(es) "
            f"at {runner.cache.directory}")


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached result(s) from {cache.directory}")
        return 0
    if args.action == "prune":
        if args.max_age_days is None and args.max_size_mb is None:
            print("cache prune needs --max-age-days and/or --max-size-mb",
                  file=sys.stderr)
            return 2
        stats = cache.prune(
            max_age_seconds=(args.max_age_days * 86_400.0
                             if args.max_age_days is not None else None),
            max_total_bytes=(int(args.max_size_mb * 1024 * 1024)
                             if args.max_size_mb is not None else None),
        )
        print(f"pruned {stats.removed} entr{'y' if stats.removed == 1 else 'ies'} "
              f"({stats.bytes_freed / 1024:.1f} KiB) from {cache.directory}; "
              f"{stats.remaining} left "
              f"({stats.remaining_bytes / 1024:.1f} KiB)")
        return 0
    entries = len(cache)
    size = cache.size_bytes()
    print(f"cache directory : {cache.directory}")
    print(f"entries         : {entries}")
    print(f"size            : {size / 1024:.1f} KiB")
    print(f"code version    : {cache.version[:16]}…")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the paper's tables and figures as parallel, "
                    "cached sweeps.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run", help="run one experiment and print its table")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS))
    _add_runner_arguments(run_parser)
    run_parser.set_defaults(handler=_cmd_run)

    sweep_parser = subparsers.add_parser(
        "sweep", help="run several experiments with one shared runner")
    sweep_parser.add_argument("--experiments", default="",
                              help="comma-separated experiment names "
                                   "(default: all)")
    _add_runner_arguments(sweep_parser)
    sweep_parser.set_defaults(handler=_cmd_sweep)

    cache_parser = subparsers.add_parser(
        "cache", help="inspect, prune or clear the result cache")
    cache_parser.add_argument("action", choices=("info", "clear", "prune"),
                              nargs="?", default="info")
    cache_parser.add_argument("--cache-dir", type=Path, default=None,
                              help=f"cache directory "
                                   f"(default: {default_cache_dir()})")
    cache_parser.add_argument("--max-age-days", type=float, default=None,
                              help="prune: drop entries older than this")
    cache_parser.add_argument("--max-size-mb", type=float, default=None,
                              help="prune: shrink the cache to this total "
                                   "size, dropping oldest entries first")
    cache_parser.set_defaults(handler=_cmd_cache)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
