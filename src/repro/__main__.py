"""``python -m repro`` — run the paper's experiment sweeps from the shell.

Subcommands
-----------
``run <experiment>``
    Run one experiment driver and print the paper-shaped table.  Workers
    and the on-disk result cache come from ``--workers`` /
    ``--cache-dir`` / ``--no-cache``; ``--backend {cycle,trace}``
    overrides the driver's default simulation backend (predictor-level
    experiments default to the fast trace engine; fig10/fig12 default to
    the cycle model and accept ``--backend trace`` for parity-gated
    estimates).  ``--block-size`` (or ``REPRO_TRACE_BLOCK``) sets the
    trace backend's branch-generation batch — pure mechanism, results
    are bit-identical for every value.
``sweep``
    Run several experiments (default: all of them) sharing one runner and
    one cache, and print a wall-clock summary.
``campaign``
    Plan, execute (shard by shard), inspect and merge a sharded,
    resumable experiment campaign (see :mod:`repro.campaign`).
``cache``
    Inspect (``info``), delete (``clear``) or bound (``prune``) the
    result cache.

``run`` and ``sweep`` accept ``--dry-run`` to print the planned jobs —
experiment kind, parameters digest, cached-or-not — without executing
anything.

Examples::

    python -m repro run table7 --workers 4
    python -m repro run table7 --backend cycle      # ground-truth numbers
    python -m repro run table7 --block-size 1024    # trace generation batch
    python -m repro run table7 --dry-run            # list jobs, run nothing
    python -m repro run fig12 --quick --workers 2
    python -m repro sweep --experiments table7,fig2 --workers 4
    python -m repro campaign plan --preset paper --campaign-dir paper-camp
    python -m repro campaign run --campaign-dir paper-camp --shard 1/8
    python -m repro campaign status --campaign-dir paper-camp
    python -m repro campaign merge --campaign-dir paper-camp
    python -m repro cache info
    python -m repro cache prune --max-age-days 30 --max-size-mb 512
    python -m repro cache clear
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.backends import UnknownBackendError, validate_backend_name
from repro.backends.trace import (
    DEFAULT_TRACE_BLOCK,
    TRACE_BLOCK_ENV,
    resolve_trace_block_size,
)
from repro.pipeline.core import SimulationTruncated
from repro.experiments import (
    ablations,
    fig2_mdc_rates,
    fig3_counter_goodpath,
    fig8_9_reliability,
    fig10_gating,
    fig12_smt,
    table7_rms,
    tableA1_mrt_variants,
)
from repro.runner import (
    ResultCache,
    SweepRunner,
    default_cache_dir,
    resolve_worker_count,
)

#: CLI name -> driver ``main(runner=..., quick=...) -> str``.
EXPERIMENTS: Dict[str, Callable[..., str]] = {
    "fig2": fig2_mdc_rates.main,
    "fig3": fig3_counter_goodpath.main,
    "table7": table7_rms.main,
    "fig8": fig8_9_reliability.main,
    "fig9": fig8_9_reliability.main,
    "fig10": fig10_gating.main,
    "fig12": fig12_smt.main,
    "tableA1": tableA1_mrt_variants.main,
    "ablations": ablations.main,
}


def _worker_count(value: str) -> int:
    """argparse type for ``--workers``: an integer >= 1, rejected loudly."""
    try:
        return resolve_worker_count(value, source="--workers")
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _block_size(value: str) -> int:
    """argparse type for ``--block-size``: an integer >= 1, rejected loudly."""
    try:
        return resolve_trace_block_size(value, source="--block-size")
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _max_jobs(value: str) -> int:
    """argparse type for ``--max-jobs``: an integer >= 1, rejected loudly.

    A zero or negative value would reach ``pending[:max_jobs]`` and
    silently drop jobs (a negative slice drops from the *end*), so the
    flag is validated before any shard state is touched.
    """
    try:
        jobs = int(str(value).strip())
    except (TypeError, ValueError):
        raise argparse.ArgumentTypeError(
            f"invalid --max-jobs value {value!r}: expected an integer >= 1"
        ) from None
    if jobs < 1:
        raise argparse.ArgumentTypeError(
            f"invalid --max-jobs value {value!r}: must be >= 1")
    return jobs


def _backend_arg(value: str) -> str:
    """argparse type for ``--backend``: a runnable backend name.

    Validated through the registry rather than ``choices`` so the
    rejection message can distinguish an unknown name from a registered
    backend whose optional dependency is missing (and say how to fix
    each).
    """
    try:
        return validate_backend_name(value)
    except UnknownBackendError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _add_runner_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=_worker_count, default=1,
                        help="worker processes for the sweep (default: 1, "
                             "must be >= 1)")
    parser.add_argument("--quick", action="store_true",
                        help="reduced benchmark sets and instruction budgets")
    parser.add_argument("--backend", type=_backend_arg, default=None,
                        metavar="BACKEND",
                        help="simulation backend override (default: the "
                             "driver's own default — trace for "
                             "predictor-level experiments, cycle for "
                             "fig10/fig12, which accept trace for "
                             "parity-gated timing estimates)")
    parser.add_argument("--block-size", type=_block_size, default=None,
                        help="trace-backend generation block size "
                             "(default: $REPRO_TRACE_BLOCK or "
                             f"{DEFAULT_TRACE_BLOCK}; results are "
                             "bit-identical for every value >= 1, so this "
                             "is pure mechanism and never part of a cache "
                             "key)")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="result cache directory "
                             "(default: $REPRO_CACHE_DIR or .repro-cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable result memoization")
    parser.add_argument("--dry-run", action="store_true",
                        help="print the planned jobs (experiment, params "
                             "digest, cached-or-not) without executing")


def _driver_kwargs(args: argparse.Namespace) -> Dict[str, object]:
    """Keyword arguments forwarded to a driver ``main`` (only when set)."""
    kwargs: Dict[str, object] = {}
    if args.backend is not None:
        kwargs["backend"] = args.backend
    return kwargs


def _build_runner(args: argparse.Namespace) -> SweepRunner:
    if getattr(args, "block_size", None) is not None:
        # Exported through the environment so forked worker processes
        # inherit it; block size is pure mechanism (results are
        # bit-identical for every value), so it deliberately rides in no
        # job identity or cache key.
        os.environ[TRACE_BLOCK_ENV] = str(args.block_size)
    cache: Optional[ResultCache] = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir)
    return SweepRunner(workers=args.workers, cache=cache)


def _report_truncation(name: str, error: SimulationTruncated) -> None:
    """Readable report for a run that hit its ``max_cycles`` safety net."""
    stats = error.stats
    print(f"error: [{name}] {error}", file=sys.stderr)
    print(f"  instruction budget : {error.max_instructions}", file=sys.stderr)
    print(f"  cycle safety net   : {error.max_cycles} (tripped)",
          file=sys.stderr)
    print(f"  partial statistics : {stats.retired_instructions} retired, "
          f"{stats.cycles} cycles, ipc {stats.ipc:.3f}, "
          f"{stats.gated_cycles} gated, {stats.fetch_stall_cycles} "
          f"fetch-stalled, {stats.flushes} flushes", file=sys.stderr)
    print("  a run that cannot retire its budget usually means a gating or "
          "machine configuration that starves fetch; adjust the "
          "configuration or raise the cycle limit", file=sys.stderr)


def _dry_run_experiments(names: List[str], args: argparse.Namespace,
                         skip_mismatched: bool = False) -> int:
    """List every job the named experiments would execute, run nothing."""
    from repro.campaign.plan import driver_module

    cache: Optional[ResultCache] = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir)
    total = cached = 0
    for name in names:
        module = driver_module(name)
        try:
            job_list = module.jobs(quick=args.quick, backend=args.backend)
        except ValueError as error:
            if skip_mismatched:
                # Mirrors the executing sweep: a sweep-wide backend
                # override does not fit every driver.
                print(f"skipping {name}: {error}", file=sys.stderr)
                continue
            print(f"error: [{name}] {error}", file=sys.stderr)
            return 2
        print(f"[{name}] {len(job_list)} planned job(s)"
              + ("" if getattr(module, "CAMPAIGN_PLANNABLE", False) else
                 " (static stage only — later stages depend on measured "
                 "results)"))
        for job in job_list:
            if cache is not None:
                state = "cached" if cache.contains(job) else "miss"
            else:
                state = "-"
            print(f"  {job.digest()[:12]}  {state:<6} "
                  f"{job.experiment}[seed={job.seed},backend={job.backend}] "
                  f"{job.params_json}")
            total += 1
            cached += state == "cached"
    suffix = f", {cached} cached" if cache is not None else ""
    print(f"\ndry run: {total} job(s) planned{suffix}; nothing executed",
          file=sys.stderr)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.dry_run:
        return _dry_run_experiments([args.experiment], args)
    runner = _build_runner(args)
    start = time.perf_counter()
    try:
        EXPERIMENTS[args.experiment](runner=runner, quick=args.quick,
                                     **_driver_kwargs(args))
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except SimulationTruncated as error:
        _report_truncation(args.experiment, error)
        return 3
    elapsed = time.perf_counter() - start
    print(f"\n[{args.experiment}] {elapsed:.1f}s with {args.workers} "
          f"worker(s){_cache_suffix(runner)}", file=sys.stderr)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.experiments:
        names: List[str] = []
        for chunk in args.experiments.split(","):
            name = chunk.strip()
            if name not in EXPERIMENTS:
                print(f"unknown experiment {name!r} "
                      f"(known: {', '.join(sorted(EXPERIMENTS))})",
                      file=sys.stderr)
                return 2
            names.append(name)
    else:
        names = [n for n in EXPERIMENTS if n != "fig9"]  # fig8 covers fig9
    if args.dry_run:
        return _dry_run_experiments(names, args,
                                    skip_mismatched=args.backend is not None)
    runner = _build_runner(args)
    timings: List[tuple] = []
    for name in names:
        start = time.perf_counter()
        try:
            EXPERIMENTS[name](runner=runner, quick=args.quick,
                              **_driver_kwargs(args))
        except ValueError as error:
            if args.backend is not None:
                # A sweep-wide backend override may not fit every driver
                # (downstream drivers can pin a backend): skip those
                # instead of discarding the completed experiments.
                print(f"skipping {name}: {error}", file=sys.stderr)
                continue
            print(f"error: [{name}] {error}", file=sys.stderr)
            return 2
        except SimulationTruncated as error:
            _report_truncation(name, error)
            return 3
        timings.append((name, time.perf_counter() - start))
        print()
    total = sum(elapsed for _, elapsed in timings)
    print("sweep summary", file=sys.stderr)
    for name, elapsed in timings:
        print(f"  {name:<10} {elapsed:8.1f}s", file=sys.stderr)
    print(f"  {'total':<10} {total:8.1f}s with {args.workers} "
          f"worker(s){_cache_suffix(runner)}", file=sys.stderr)
    return 0


def _cache_suffix(runner: SweepRunner) -> str:
    if runner.cache is None:
        return ", cache disabled"
    stats = runner.cache.stats
    return (f", cache {stats.hits} hit(s) / {stats.misses} miss(es) "
            f"at {runner.cache.directory}")


DEFAULT_CAMPAIGN_DIR = Path(".repro-campaign")


def _campaign_error(error: Exception) -> int:
    print(f"error: {error}", file=sys.stderr)
    return 2


def _cmd_campaign_plan(args: argparse.Namespace) -> int:
    from repro.campaign import (
        CampaignPlanError,
        CampaignSpec,
        CampaignSpecError,
        build_plan,
        preset,
        save_plan,
        shard_of,
    )
    from repro.campaign.plan import plan_path

    if args.preset and args.experiments:
        print("error: --preset and --experiments are mutually exclusive "
              "(a preset fixes the experiment suite; override budgets/"
              "seeds/benchmarks instead)", file=sys.stderr)
        return 2
    try:
        if args.preset:
            spec = preset(args.preset)
        elif args.experiments:
            spec = CampaignSpec(
                name=args.name or "custom",
                experiments=tuple(
                    chunk.strip() for chunk in args.experiments.split(",")
                    if chunk.strip()),
            )
        else:
            print("campaign plan needs --preset or --experiments",
                  file=sys.stderr)
            return 2
        overrides = {}
        if args.name:
            overrides["name"] = args.name
        if args.seeds:
            overrides["seeds"] = tuple(
                int(chunk) for chunk in args.seeds.split(","))
        if args.benchmarks:
            overrides["benchmarks"] = tuple(
                chunk.strip() for chunk in args.benchmarks.split(",")
                if chunk.strip())
        if args.instructions is not None:
            overrides["instructions"] = args.instructions
        if args.warmup_instructions is not None:
            overrides["warmup_instructions"] = args.warmup_instructions
        if args.backend is not None:
            overrides["backend"] = args.backend
        if args.quick:
            overrides["quick"] = True
        if overrides:
            spec = dataclasses.replace(spec, **overrides)
        plan = build_plan(spec)
    except (CampaignSpecError, CampaignPlanError, ValueError) as error:
        return _campaign_error(error)

    existing = plan_path(args.campaign_dir)
    if existing.is_file() and not args.force:
        from repro.campaign import load_plan
        try:
            previous = load_plan(args.campaign_dir)
        except CampaignPlanError:
            previous = None
        if previous is None or previous.digest() != plan.digest():
            print(f"error: {existing} already holds a different campaign "
                  f"plan; use --force to overwrite (shard journals from "
                  f"the old plan become invalid)", file=sys.stderr)
            return 2
    path = save_plan(plan, args.campaign_dir)

    print(f"campaign   : {plan.spec.name}")
    print(f"plan file  : {path}")
    print(f"plan digest: {plan.digest()[:16]}…")
    print(f"jobs       : {len(plan.planned)} unique")
    for source, count in plan.summary().items():
        print(f"  {source:<20} {count:>6} job(s)")
    if args.shards:
        print(f"shard preview ({args.shards} shards):")
        for index in range(1, args.shards + 1):
            assigned = sum(
                1 for planned in plan.planned
                if shard_of(planned.digest, args.shards) == index)
            print(f"  shard {index}/{args.shards}: {assigned} job(s)")
        print(f"run each with: python -m repro campaign run "
              f"--campaign-dir {args.campaign_dir} --shard i/{args.shards}")
    return 0


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    from repro.campaign import (
        CampaignPlanError,
        CampaignShardError,
        load_plan,
        parse_shard,
        run_shard,
    )

    try:
        plan = load_plan(args.campaign_dir)
        index, count = parse_shard(args.shard)
    except (CampaignPlanError, CampaignShardError) as error:
        return _campaign_error(error)
    runner = _build_runner(args)
    try:
        status = run_shard(plan, index, count, args.campaign_dir,
                           runner=runner, max_jobs=args.max_jobs,
                           echo=lambda message: print(message,
                                                      file=sys.stderr))
    except CampaignShardError as error:
        return _campaign_error(error)
    except SimulationTruncated as error:
        _report_truncation(f"campaign shard {index}/{count}", error)
        return 3
    state = "complete" if status.finished else (
        f"stopped with {status.remaining} job(s) pending")
    print(f"shard {index}/{count}: {status.assigned} assigned, "
          f"{status.resumed} resumed, {status.executed} executed in "
          f"{status.elapsed_seconds:.1f}s — {state}"
          f"{_cache_suffix(runner)}")
    if status.result_file is not None:
        print(f"shard result file: {status.result_file}")
    return 0


def _cmd_campaign_merge(args: argparse.Namespace) -> int:
    from repro.campaign import (
        CampaignMergeError,
        CampaignPlanError,
        merge_campaign,
        load_plan,
    )

    try:
        plan = load_plan(args.campaign_dir)
        merged = merge_campaign(plan, args.campaign_dir,
                                output_dir=args.output_dir)
    except CampaignPlanError as error:
        return _campaign_error(error)
    except CampaignMergeError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    for (experiment, seed), text in merged.texts.items():
        print(f"=== {experiment} (seed {seed}) ===")
        print(text)
        print()
    print(f"merged {len(merged.texts)} report(s) into {merged.output_dir}",
          file=sys.stderr)
    return 0


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    from repro.campaign import CampaignPlanError, campaign_status, load_plan

    try:
        plan = load_plan(args.campaign_dir)
    except CampaignPlanError as error:
        return _campaign_error(error)
    status = campaign_status(plan, args.campaign_dir,
                             echo=lambda message: print(message,
                                                        file=sys.stderr))
    print(f"campaign   : {plan.spec.name}")
    print(f"plan digest: {plan.digest()[:16]}…")
    print(f"jobs       : {status.completed_jobs}/{status.total_jobs} "
          f"complete across {status.started_shards} started shard(s)")
    if status.mixed_shard_counts:
        print("warning: this directory holds journals from more than one "
              "--shard i/N partitioning; per-shard numbers below cannot "
              "be summed", file=sys.stderr)
    if not status.shards:
        print("shards     : none started yet")
    for shard in status.shards:
        if shard.finished and shard.has_result_file:
            marker = "✓"
        elif shard.finished:
            marker = "journal complete, no result file — re-run to finalize"
        elif shard.has_result_file:
            marker = ("stale — the code changed since this shard ran; "
                      "re-run it")
        else:
            marker = "…"
        print(f"  shard {shard.shard_index}/{shard.shard_count}: "
              f"{shard.completed}/{shard.assigned} job(s) {marker}")
        if shard.foreign:
            print(f"warning: shard {shard.shard_index}/{shard.shard_count} "
                  f"journal holds {shard.foreign} entr"
                  f"{'y' if shard.foreign == 1 else 'ies'} this plan does "
                  f"not assign — state from a different plan shares this "
                  f"directory; those entries are excluded from the counts",
                  file=sys.stderr)
    if status.merged_files:
        print(f"merged     : {len(status.merged_files)} report(s)")
        for path in status.merged_files:
            print(f"  {path}")
    else:
        print("merged     : not yet")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    handlers = {
        "plan": _cmd_campaign_plan,
        "run": _cmd_campaign_run,
        "merge": _cmd_campaign_merge,
        "status": _cmd_campaign_status,
    }
    return handlers[args.campaign_command](args)


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached result(s) from {cache.directory}")
        return 0
    if args.action == "prune":
        if args.max_age_days is None and args.max_size_mb is None:
            print("cache prune needs --max-age-days and/or --max-size-mb",
                  file=sys.stderr)
            return 2
        stats = cache.prune(
            max_age_seconds=(args.max_age_days * 86_400.0
                             if args.max_age_days is not None else None),
            max_total_bytes=(int(args.max_size_mb * 1024 * 1024)
                             if args.max_size_mb is not None else None),
        )
        print(f"pruned {stats.removed} entr{'y' if stats.removed == 1 else 'ies'} "
              f"({stats.bytes_freed / 1024:.1f} KiB) from {cache.directory}; "
              f"{stats.remaining} left "
              f"({stats.remaining_bytes / 1024:.1f} KiB)")
        return 0
    entries = len(cache)
    size = cache.size_bytes()
    print(f"cache directory : {cache.directory}")
    print(f"entries         : {entries}")
    print(f"size            : {size / 1024:.1f} KiB")
    print(f"code version    : {cache.version[:16]}…")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the paper's tables and figures as parallel, "
                    "cached sweeps.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run", help="run one experiment and print its table")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS))
    _add_runner_arguments(run_parser)
    run_parser.set_defaults(handler=_cmd_run)

    sweep_parser = subparsers.add_parser(
        "sweep", help="run several experiments with one shared runner")
    sweep_parser.add_argument("--experiments", default="",
                              help="comma-separated experiment names "
                                   "(default: all)")
    _add_runner_arguments(sweep_parser)
    sweep_parser.set_defaults(handler=_cmd_sweep)

    campaign_parser = subparsers.add_parser(
        "campaign",
        help="plan / run / merge a sharded, resumable experiment campaign")
    campaign_sub = campaign_parser.add_subparsers(dest="campaign_command",
                                                  required=True)

    plan_parser = campaign_sub.add_parser(
        "plan", help="expand a campaign spec into campaign.json")
    plan_parser.add_argument("--preset", choices=("paper", "ci"),
                             default=None,
                             help="start from a shipped campaign preset")
    plan_parser.add_argument("--experiments", default="",
                             help="comma-separated experiment names "
                                  "(alternative to --preset)")
    plan_parser.add_argument("--name", default="",
                             help="campaign name (default: preset name or "
                                  "'custom')")
    plan_parser.add_argument("--seeds", default="",
                             help="comma-separated seeds (default: 1)")
    plan_parser.add_argument("--benchmarks", default="",
                             help="comma-separated benchmark subset "
                                  "(default: each driver's own set)")
    plan_parser.add_argument("--instructions", type=int, default=None,
                             help="instruction budget override per job")
    plan_parser.add_argument("--warmup-instructions", type=int,
                             default=None,
                             help="warmup budget override per job")
    plan_parser.add_argument("--backend", type=_backend_arg,
                             default=None, metavar="BACKEND",
                             help="simulation backend override")
    plan_parser.add_argument("--quick", action="store_true",
                             help="plan the drivers' quick configurations")
    plan_parser.add_argument("--shards", type=int, default=0,
                             help="preview the job split across N shards")
    plan_parser.add_argument("--campaign-dir", type=Path,
                             default=DEFAULT_CAMPAIGN_DIR,
                             help=f"campaign directory "
                                  f"(default: {DEFAULT_CAMPAIGN_DIR})")
    plan_parser.add_argument("--force", action="store_true",
                             help="overwrite a differing existing plan")
    plan_parser.set_defaults(handler=_cmd_campaign)

    campaign_run_parser = campaign_sub.add_parser(
        "run", help="execute (or resume) one shard of a planned campaign")
    campaign_run_parser.add_argument("--campaign-dir", type=Path,
                                     default=DEFAULT_CAMPAIGN_DIR)
    campaign_run_parser.add_argument("--shard", required=True,
                                     help="shard coordinate i/N, "
                                          "e.g. --shard 2/4")
    campaign_run_parser.add_argument("--max-jobs", type=_max_jobs,
                                     default=None,
                                     help="execute at most this many "
                                          "pending jobs, then stop "
                                          "(journal keeps the progress)")
    campaign_run_parser.add_argument("--block-size", type=_block_size,
                                     default=None,
                                     help="trace-backend generation block "
                                          "size (default: $REPRO_TRACE_BLOCK "
                                          f"or {DEFAULT_TRACE_BLOCK}; "
                                          "bit-identical results for every "
                                          "value >= 1 — pure mechanism, "
                                          "excluded from job digests and "
                                          "cache keys)")
    campaign_run_parser.add_argument("--workers", type=_worker_count,
                                     default=1,
                                     help="worker processes (default: 1)")
    campaign_run_parser.add_argument("--cache-dir", type=Path, default=None,
                                     help="result cache directory")
    campaign_run_parser.add_argument("--no-cache", action="store_true",
                                     help="disable result memoization")
    campaign_run_parser.set_defaults(handler=_cmd_campaign)

    campaign_merge_parser = campaign_sub.add_parser(
        "merge", help="validate shard coverage and aggregate the reports")
    campaign_merge_parser.add_argument("--campaign-dir", type=Path,
                                       default=DEFAULT_CAMPAIGN_DIR)
    campaign_merge_parser.add_argument("--output-dir", type=Path,
                                       default=None,
                                       help="where to write the merged "
                                            "reports (default: "
                                            "<campaign-dir>/merged)")
    campaign_merge_parser.set_defaults(handler=_cmd_campaign)

    campaign_status_parser = campaign_sub.add_parser(
        "status", help="show per-shard progress and merge state")
    campaign_status_parser.add_argument("--campaign-dir", type=Path,
                                        default=DEFAULT_CAMPAIGN_DIR)
    campaign_status_parser.set_defaults(handler=_cmd_campaign)

    cache_parser = subparsers.add_parser(
        "cache", help="inspect, prune or clear the result cache")
    cache_parser.add_argument("action", choices=("info", "clear", "prune"),
                              nargs="?", default="info")
    cache_parser.add_argument("--cache-dir", type=Path, default=None,
                              help=f"cache directory "
                                   f"(default: {default_cache_dir()})")
    cache_parser.add_argument("--max-age-days", type=float, default=None,
                              help="prune: drop entries older than this")
    cache_parser.add_argument("--max-size-mb", type=float, default=None,
                              help="prune: shrink the cache to this total "
                                   "size, dropping oldest entries first")
    cache_parser.set_defaults(handler=_cmd_cache)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
