"""Experiment drivers — one module per table or figure of the paper.

Every driver exposes a ``run(...)`` function returning structured results
and a ``main()`` that prints the same rows/series the paper reports.  The
``quick`` flag (used by the pytest-benchmark harness) shrinks the benchmark
set and instruction budgets; the full settings reproduce the complete
artefact.

==========  ===========================================================
Driver      Paper artefact
==========  ===========================================================
``fig2``    Fig. 2 — mispredict rate per MDC value, per benchmark
``fig3``    Fig. 3 — P(good path) at a fixed low-confidence count,
            across benchmarks (a) and phases (b)
``table7``  Fig. 7 (table) — PaCo RMS error and mispredict rates
``fig8``    Fig. 8 / Fig. 9 — reliability diagrams
``fig10``   Fig. 10 — pipeline gating curves
``fig12``   Fig. 12 — SMT fetch prioritization HMWIPC
``tableA1`` Appendix Table 1 — MRT vs Static MRT vs Per-branch MRT
``ablations`` re-logarithmizing period / encoding scale / log circuit
==========  ===========================================================
"""

from repro.experiments import (  # noqa: F401  (re-exported driver modules)
    fig2_mdc_rates,
    fig3_counter_goodpath,
    table7_rms,
    fig8_9_reliability,
    fig10_gating,
    fig12_smt,
    tableA1_mrt_variants,
    ablations,
)

__all__ = [
    "fig2_mdc_rates",
    "fig3_counter_goodpath",
    "table7_rms",
    "fig8_9_reliability",
    "fig10_gating",
    "fig12_smt",
    "tableA1_mrt_variants",
    "ablations",
]
