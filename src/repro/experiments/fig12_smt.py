"""Fig. 12 — SMT fetch prioritization: HMWIPC of benchmark pairs per policy.

The paper runs 16 benchmark pairs on the 8-wide 2-thread SMT machine and
compares the harmonic mean of weighted IPCs under ICOUNT, four
threshold-and-count confidence policies (JRS thresholds 3/7/11/15) and the
PaCo-based policy.  PaCo improves on the best counter-based predictor by
5.4 % on average (up to 23 %) and wins on 14 of the 16 pairs.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.applications.smt_prioritization import (
    SMT_PAIRS,
    SMTPairResult,
    SMTStudyConfig,
    run_smt_study,
    single_ipc_jobs,
    smt_jobs,
)
from repro.eval.reports import format_table
from repro.runner import Job, SweepRunner

#: Reduced pair list / budgets for the quick (pytest-benchmark) configuration.
QUICK_CONFIG = SMTStudyConfig(
    pairs=SMT_PAIRS[:4],
    jrs_thresholds=(3, 15),
    include_icount=True,
    instructions=50_000,
    warmup_instructions=20_000,
    single_thread_instructions=25_000,
)

#: The cycle backend measures the SMT study exactly; ``"trace"`` estimates
#: per-thread IPCs from interleaved replays and is parity-gated against
#: cycle (policy orderings, not absolute IPCs).
DEFAULT_BACKEND = "cycle"

#: Backends the study can run on end to end.
KNOWN_BACKENDS = ("cycle", "trace")

#: Fully campaign-plannable: SMT-stage job identities carry no measured
#: values (the HMWIPC weighting happens when the study aggregates), so
#: ``jobs()`` enumerates both stages statically, in execution order.
CAMPAIGN_PLANNABLE = True


def _check_backend(backend: Optional[str]) -> None:
    if backend not in (None,) + KNOWN_BACKENDS:
        from repro.backends import describe_backends
        raise ValueError(
            f"fig12 SMT prioritization knows backends "
            f"{', '.join(KNOWN_BACKENDS)}; got {backend!r} "
            f"(registered: {describe_backends()})")


def _config(instructions: Optional[int],
            warmup_instructions: Optional[int],
            seed: int, quick: bool,
            backend: Optional[str] = None) -> SMTStudyConfig:
    """The study configuration with campaign-level overrides applied.

    A campaign-level instruction/warm-up budget applies to both stages:
    the single-thread baselines run the same budget as the SMT pairs, so
    a paper-scale campaign plans paper-scale jobs throughout.
    """
    overrides: Dict[str, object] = {"seed": seed}
    if instructions is not None:
        overrides["instructions"] = instructions
        overrides["single_thread_instructions"] = instructions
    if warmup_instructions is not None:
        overrides["warmup_instructions"] = warmup_instructions
        overrides["single_thread_warmup_instructions"] = warmup_instructions
    if backend is not None:
        overrides["backend"] = backend
    base = QUICK_CONFIG if quick else SMTStudyConfig()
    return dataclasses.replace(base, **overrides)


def jobs(*, benchmarks: Optional[Sequence[str]] = None,
         instructions: Optional[int] = None,
         warmup_instructions: Optional[int] = None,
         seed: int = 1, quick: bool = False,
         backend: Optional[str] = None) -> List[Job]:
    """Every job ``report`` executes — stage-one single-IPC baselines
    followed by every (pair, policy) SMT run, in execution order."""
    _check_backend(backend)
    if benchmarks is not None:
        raise ValueError("fig12 runs the paper's fixed benchmark pairs; "
                         "a benchmark subset cannot be applied")
    cfg = _config(instructions, warmup_instructions, seed, quick, backend)
    return single_ipc_jobs(cfg) + smt_jobs(cfg)


@dataclass
class Fig12Result:
    """Per-pair HMWIPC tables plus the paper's summary statistics."""

    pairs: List[SMTPairResult]

    @property
    def mean_paco_improvement(self) -> float:
        """Mean fractional improvement of PaCo over the best counter policy."""
        if not self.pairs:
            return 0.0
        return (sum(p.paco_improvement_over_best_counter() for p in self.pairs)
                / len(self.pairs))

    @property
    def max_paco_improvement(self) -> float:
        if not self.pairs:
            return 0.0
        return max(p.paco_improvement_over_best_counter() for p in self.pairs)

    @property
    def paco_wins(self) -> int:
        """Number of pairs where PaCo beats every counter-based policy."""
        return sum(1 for p in self.pairs
                   if p.paco_improvement_over_best_counter() > 0.0)

    def rows(self) -> List[List[object]]:
        policies: List[str] = []
        for pair in self.pairs:
            for name in pair.hmwipc_by_policy:
                if name not in policies:
                    policies.append(name)
        rows = []
        for pair in self.pairs:
            row: List[object] = ["-".join(pair.pair)]
            for policy in policies:
                row.append(round(pair.hmwipc_by_policy.get(policy, 0.0), 3))
            row.append(round(100 * pair.paco_improvement_over_best_counter(), 2))
            rows.append(row)
        self._policies = policies  # cached for header construction
        return rows

    def headers(self) -> List[str]:
        rows = self.rows()  # ensure policy order is computed
        del rows
        return ["pair"] + list(self._policies) + ["paco vs best counter %"]


def run(config: Optional[SMTStudyConfig] = None,
        quick: bool = False,
        runner: Optional[SweepRunner] = None) -> Fig12Result:
    cfg = config if config is not None else (QUICK_CONFIG if quick
                                             else SMTStudyConfig())
    return Fig12Result(pairs=run_smt_study(cfg, runner=runner))


def report(*, runner: Optional[SweepRunner] = None,
           benchmarks: Optional[Sequence[str]] = None,
           instructions: Optional[int] = None,
           warmup_instructions: Optional[int] = None,
           seed: int = 1, quick: bool = False,
           backend: Optional[str] = None) -> str:
    """Run the study and return the paper-shaped table text."""
    _check_backend(backend)
    if benchmarks is not None:
        raise ValueError("fig12 runs the paper's fixed benchmark pairs; "
                         "a benchmark subset cannot be applied")
    result = run(config=_config(instructions, warmup_instructions,
                                seed, quick, backend),
                 runner=runner)
    text = format_table(result.headers(), result.rows(),
                        title="Fig. 12 — SMT fetch prioritization (HMWIPC)")
    text += (
        f"\n\nPaCo vs best counter policy: mean "
        f"{100 * result.mean_paco_improvement:+.2f}%, max "
        f"{100 * result.max_paco_improvement:+.2f}%, wins on "
        f"{result.paco_wins}/{len(result.pairs)} pairs"
    )
    return text


def main(runner: Optional[SweepRunner] = None, quick: bool = False,
         backend: str = "cycle") -> str:
    text = report(runner=runner, quick=quick, backend=backend)
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover - manual invocation
    main()
