"""Fig. 8 and Fig. 9 — reliability diagrams.

Fig. 8 is the reliability diagram of PaCo on parser: predicted good-path
probability (x) against observed good-path probability (y), together with a
histogram of how often each predicted probability occurred.  Fig. 9 shows
the same diagram for a range of benchmarks plus a cumulative diagram over
all of them; the paper highlights that twolf/vprRoute are extremely
accurate, crafty/bzip2/gzip good, gcc/gap noticeably worse, and perlbmk
poor (because its mispredictions come from an indirect call the JRS table
cannot see).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.stats import ReliabilityDiagram
from repro.eval.reports import format_table
from repro.runner import Job, SweepRunner, accuracy_job, resolve_runner
from repro.workloads.suite import benchmark_names

#: Benchmarks shown individually in the paper's Fig. 9.
FIG9_BENCHMARKS = ("twolf", "vprRoute", "crafty", "gcc", "perlbmk")

#: Fig. 8/9 only consume reliability-diagram statistics, so they default
#: to the fast trace-replay backend (parity with the cycle model is
#: enforced by tests/test_backends.py; pass backend="cycle" for ground
#: truth).
DEFAULT_BACKEND = "trace"

#: Full-scale budgets (the ``run`` defaults, shared with ``jobs``).
DEFAULT_INSTRUCTIONS = 40_000
DEFAULT_WARMUP_INSTRUCTIONS = 20_000

#: Both figures are enumerable up front, so campaigns can shard them.
CAMPAIGN_PLANNABLE = True


@dataclass
class ReliabilityStudyResult:
    """Reliability diagrams per benchmark plus the cumulative diagram."""

    diagrams: Dict[str, ReliabilityDiagram]
    cumulative: ReliabilityDiagram
    rms_errors: Dict[str, float] = field(default_factory=dict)

    def rows(self, benchmark: str, min_instances: int = 10) -> List[List[object]]:
        diagram = (self.cumulative if benchmark == "cumulative"
                   else self.diagrams[benchmark])
        return [
            [round(100 * p.predicted, 1), round(100 * p.observed, 1), p.instances]
            for p in diagram.points(min_instances=min_instances)
        ]


def _plan(benchmarks: Optional[Sequence[str]], instructions: int,
          warmup_instructions: int, seed: int, quick: bool,
          backend: str) -> Tuple[List[str], List[Job]]:
    """The study's benchmark list and job list (shared by run/jobs)."""
    names = list(benchmarks) if benchmarks is not None else (
        list(FIG9_BENCHMARKS) if quick else benchmark_names()
    )
    if quick:
        instructions = min(instructions, 20_000)
        warmup_instructions = min(warmup_instructions, 10_000)
    return names, [
        accuracy_job(name, instructions=instructions,
                     warmup_instructions=warmup_instructions, seed=seed,
                     backend=backend, instrument="paco")
        for name in names
    ]


def _defaults(instructions: Optional[int],
              warmup_instructions: Optional[int],
              backend: Optional[str]):
    """Resolve ``None`` overrides to this driver's full-scale defaults —
    the single resolution shared by ``jobs`` and ``report``, so planned
    and executed budgets cannot drift apart."""
    return (DEFAULT_INSTRUCTIONS if instructions is None else instructions,
            (DEFAULT_WARMUP_INSTRUCTIONS if warmup_instructions is None
             else warmup_instructions),
            DEFAULT_BACKEND if backend is None else backend)


def jobs(*, benchmarks: Optional[Sequence[str]] = None,
         instructions: Optional[int] = None,
         warmup_instructions: Optional[int] = None,
         seed: int = 1, quick: bool = False,
         backend: Optional[str] = None) -> List[Job]:
    """Every job ``report`` executes, for campaign planning / ``--dry-run``."""
    instructions, warmup_instructions, backend = _defaults(
        instructions, warmup_instructions, backend)
    return _plan(benchmarks, instructions, warmup_instructions,
                 seed, quick, backend)[1]


def run(benchmarks: Optional[Sequence[str]] = None,
        instructions: int = DEFAULT_INSTRUCTIONS,
        warmup_instructions: int = DEFAULT_WARMUP_INSTRUCTIONS,
        seed: int = 1,
        num_bins: int = 100,
        quick: bool = False,
        runner: Optional[SweepRunner] = None,
        backend: str = DEFAULT_BACKEND) -> ReliabilityStudyResult:
    """Build PaCo reliability diagrams for the requested benchmarks."""
    names, job_list = _plan(benchmarks, instructions, warmup_instructions,
                            seed, quick, backend)
    results = resolve_runner(runner).map(job_list)
    diagrams: Dict[str, ReliabilityDiagram] = {}
    rms_errors: Dict[str, float] = {}
    cumulative = ReliabilityDiagram(num_bins=num_bins)
    for name, result in zip(names, results):
        diagram = result.diagrams["paco"]
        diagrams[name] = diagram
        rms_errors[name] = diagram.rms_error()
        cumulative.merge(diagram)
    return ReliabilityStudyResult(diagrams=diagrams, cumulative=cumulative,
                                  rms_errors=rms_errors)


def run_parser_diagram(instructions: int = 60_000,
                       warmup_instructions: int = 20_000,
                       seed: int = 1,
                       quick: bool = False,
                       runner: Optional[SweepRunner] = None,
                       backend: str = DEFAULT_BACKEND
                       ) -> ReliabilityDiagram:
    """Fig. 8: the reliability diagram of PaCo on parser alone."""
    if quick:
        instructions = min(instructions, 25_000)
        warmup_instructions = min(warmup_instructions, 10_000)
    [result] = resolve_runner(runner).map([
        accuracy_job("parser", instructions=instructions,
                     warmup_instructions=warmup_instructions, seed=seed,
                     backend=backend, instrument="paco")
    ])
    return result.diagrams["paco"]


def report(*, runner: Optional[SweepRunner] = None,
           benchmarks: Optional[Sequence[str]] = None,
           instructions: Optional[int] = None,
           warmup_instructions: Optional[int] = None,
           seed: int = 1, quick: bool = False,
           backend: Optional[str] = None) -> str:
    """Run the study and return the Fig. 9 table plus the Fig. 8 diagram."""
    instructions, warmup_instructions, backend = _defaults(
        instructions, warmup_instructions, backend)
    study = run(benchmarks=benchmarks, instructions=instructions,
                warmup_instructions=warmup_instructions,
                seed=seed, quick=quick, runner=runner, backend=backend)
    rows = [[name, round(err, 4)] for name, err in study.rms_errors.items()]
    rows.append(["cumulative", round(study.cumulative.rms_error(), 4)])
    text = format_table(["benchmark", "paco RMS error"], rows,
                        title="Fig. 9 — reliability-diagram RMS error per benchmark")
    text += "\n\nFig. 8 — parser reliability diagram (predicted% / observed% / n)\n"
    text += format_table(["predicted%", "observed%", "instances"],
                         study.rows("parser" if "parser" in study.diagrams
                                    else "cumulative", min_instances=25))
    return text


def main(runner: Optional[SweepRunner] = None, quick: bool = False,
         backend: str = DEFAULT_BACKEND) -> str:
    text = report(runner=runner, quick=quick, backend=backend)
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover - manual invocation
    main()
