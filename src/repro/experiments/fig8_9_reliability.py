"""Fig. 8 and Fig. 9 — reliability diagrams.

Fig. 8 is the reliability diagram of PaCo on parser: predicted good-path
probability (x) against observed good-path probability (y), together with a
histogram of how often each predicted probability occurred.  Fig. 9 shows
the same diagram for a range of benchmarks plus a cumulative diagram over
all of them; the paper highlights that twolf/vprRoute are extremely
accurate, crafty/bzip2/gzip good, gcc/gap noticeably worse, and perlbmk
poor (because its mispredictions come from an indirect call the JRS table
cannot see).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.common.stats import ReliabilityDiagram
from repro.eval.reports import format_table
from repro.runner import SweepRunner, accuracy_job, resolve_runner
from repro.workloads.suite import benchmark_names

#: Benchmarks shown individually in the paper's Fig. 9.
FIG9_BENCHMARKS = ("twolf", "vprRoute", "crafty", "gcc", "perlbmk")

#: Fig. 8/9 only consume reliability-diagram statistics, so they default
#: to the fast trace-replay backend (parity with the cycle model is
#: enforced by tests/test_backends.py; pass backend="cycle" for ground
#: truth).
DEFAULT_BACKEND = "trace"


@dataclass
class ReliabilityStudyResult:
    """Reliability diagrams per benchmark plus the cumulative diagram."""

    diagrams: Dict[str, ReliabilityDiagram]
    cumulative: ReliabilityDiagram
    rms_errors: Dict[str, float] = field(default_factory=dict)

    def rows(self, benchmark: str, min_instances: int = 10) -> List[List[object]]:
        diagram = (self.cumulative if benchmark == "cumulative"
                   else self.diagrams[benchmark])
        return [
            [round(100 * p.predicted, 1), round(100 * p.observed, 1), p.instances]
            for p in diagram.points(min_instances=min_instances)
        ]


def run(benchmarks: Optional[Sequence[str]] = None,
        instructions: int = 40_000,
        warmup_instructions: int = 20_000,
        seed: int = 1,
        num_bins: int = 100,
        quick: bool = False,
        runner: Optional[SweepRunner] = None,
        backend: str = DEFAULT_BACKEND) -> ReliabilityStudyResult:
    """Build PaCo reliability diagrams for the requested benchmarks."""
    names = list(benchmarks) if benchmarks is not None else (
        list(FIG9_BENCHMARKS) if quick else benchmark_names()
    )
    if quick:
        instructions = min(instructions, 20_000)
        warmup_instructions = min(warmup_instructions, 10_000)
    results = resolve_runner(runner).map([
        accuracy_job(name, instructions=instructions,
                     warmup_instructions=warmup_instructions, seed=seed,
                     backend=backend, instrument="paco")
        for name in names
    ])
    diagrams: Dict[str, ReliabilityDiagram] = {}
    rms_errors: Dict[str, float] = {}
    cumulative = ReliabilityDiagram(num_bins=num_bins)
    for name, result in zip(names, results):
        diagram = result.diagrams["paco"]
        diagrams[name] = diagram
        rms_errors[name] = diagram.rms_error()
        cumulative.merge(diagram)
    return ReliabilityStudyResult(diagrams=diagrams, cumulative=cumulative,
                                  rms_errors=rms_errors)


def run_parser_diagram(instructions: int = 60_000,
                       warmup_instructions: int = 20_000,
                       seed: int = 1,
                       quick: bool = False,
                       runner: Optional[SweepRunner] = None,
                       backend: str = DEFAULT_BACKEND
                       ) -> ReliabilityDiagram:
    """Fig. 8: the reliability diagram of PaCo on parser alone."""
    if quick:
        instructions = min(instructions, 25_000)
        warmup_instructions = min(warmup_instructions, 10_000)
    [result] = resolve_runner(runner).map([
        accuracy_job("parser", instructions=instructions,
                     warmup_instructions=warmup_instructions, seed=seed,
                     backend=backend, instrument="paco")
    ])
    return result.diagrams["paco"]


def main(runner: Optional[SweepRunner] = None, quick: bool = False,
         backend: str = DEFAULT_BACKEND) -> str:
    study = run(quick=quick, runner=runner, backend=backend)
    rows = [[name, round(err, 4)] for name, err in study.rms_errors.items()]
    rows.append(["cumulative", round(study.cumulative.rms_error(), 4)])
    text = format_table(["benchmark", "paco RMS error"], rows,
                        title="Fig. 9 — reliability-diagram RMS error per benchmark")
    text += "\n\nFig. 8 — parser reliability diagram (predicted% / observed% / n)\n"
    text += format_table(["predicted%", "observed%", "instances"],
                         study.rows("parser" if "parser" in study.diagrams
                                    else "cumulative", min_instances=25))
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover - manual invocation
    main()
