"""Ablations on PaCo's design parameters.

Three design choices the paper motivates but does not sweep in detail:

* the MRT re-logarithmizing period (the paper uses 200 000 cycles and notes
  PaCo "is not very sensitive to this period"),
* the encoded-probability scale factor (1024) and its interaction with the
  12-bit clamp, and
* the use of Mitchell's approximate log circuit instead of an exact
  logarithm.

Each ablation reports PaCo's reliability RMS error under the modified
configuration over the same workloads, so regressions attributable to the
design choice are directly visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.eval.reports import format_table
from repro.runner import Job, SweepRunner, accuracy_job, resolve_runner

DEFAULT_BENCHMARKS = ("parser", "twolf", "gzip", "bzip2")

#: Ablations compare PaCo variants against each other, so they stay on the
#: cycle model by default (their golden snapshot is cycle-backend ground
#: truth); pass backend="trace" for quick exploratory sweeps.
DEFAULT_BACKEND = "cycle"

#: Full-scale sweep axes and budgets (the ``run_*`` defaults, shared with
#: ``jobs`` so campaign planning cannot drift from execution).
DEFAULT_PERIODS = (5_000, 20_000, 100_000, 200_000)
DEFAULT_SCALES = (256, 512, 1024, 2048)
DEFAULT_INSTRUCTIONS = 30_000
DEFAULT_WARMUP_INSTRUCTIONS = 15_000

#: All three ablations are enumerable up front, so campaigns can shard them.
CAMPAIGN_PLANNABLE = True


def _relog_variants(periods: Sequence[int]) -> Dict[str, dict]:
    return {f"relog={p}": {"relog_period_cycles": p} for p in periods}


def _scale_variants(scales: Sequence[int]) -> Dict[str, dict]:
    return {f"scale={s}": {"scale": s, "relog_period_cycles": 20_000}
            for s in scales}


def _log_circuit_variants() -> Dict[str, dict]:
    return {
        "mitchell-log": {"use_mitchell_log": True, "relog_period_cycles": 20_000},
        "exact-log": {"use_mitchell_log": False, "relog_period_cycles": 20_000},
    }


def _clamp(quick: bool, benchmarks: Sequence[str], instructions: int,
           warmup_instructions: int) -> Tuple[Tuple[str, ...], int, int]:
    """The shared quick-mode budget clamps of every ablation."""
    benchmarks = tuple(benchmarks)
    if quick:
        benchmarks = benchmarks[:2]
        instructions = min(instructions, 20_000)
        warmup_instructions = min(warmup_instructions, 10_000)
    return benchmarks, instructions, warmup_instructions


@dataclass
class AblationResult:
    """RMS errors of PaCo variants, keyed by variant label then benchmark."""

    rms_by_variant: Dict[str, Dict[str, float]]

    def mean_rms(self, variant: str) -> float:
        values = list(self.rms_by_variant[variant].values())
        return sum(values) / len(values) if values else 0.0

    def rows(self) -> List[List[object]]:
        rows = []
        for variant, by_benchmark in self.rms_by_variant.items():
            row: List[object] = [variant]
            row.extend(round(by_benchmark[name], 4) for name in by_benchmark)
            row.append(round(self.mean_rms(variant), 4))
            rows.append(row)
        return rows


def _points_and_jobs(variants: Dict[str, dict], benchmarks: Sequence[str],
                     instructions: int, warmup_instructions: int, seed: int,
                     backend: str
                     ) -> Tuple[List[Tuple[str, str]], List[Job]]:
    points = [(label, benchmark)
              for benchmark in benchmarks for label in variants]
    return points, [
        accuracy_job(benchmark, instructions=instructions,
                     warmup_instructions=warmup_instructions, seed=seed,
                     paco_variant=variants[label], backend=backend)
        for label, benchmark in points
    ]


def _measure(variants: Dict[str, dict], benchmarks: Sequence[str],
             instructions: int, warmup_instructions: int, seed: int,
             runner: Optional[SweepRunner] = None,
             backend: str = DEFAULT_BACKEND) -> AblationResult:
    points, job_list = _points_and_jobs(variants, benchmarks, instructions,
                                        warmup_instructions, seed, backend)
    results = resolve_runner(runner).map(job_list)
    rms: Dict[str, Dict[str, float]] = {label: {} for label in variants}
    for (label, benchmark), result in zip(points, results):
        rms[label][benchmark] = result.rms_errors["paco"]
    return AblationResult(rms_by_variant=rms)


def _variant_suites(quick: bool) -> List[Dict[str, dict]]:
    """The three ablation sweeps' variant tables, in ``main`` order."""
    return [
        _relog_variants(DEFAULT_PERIODS[:3] if quick else DEFAULT_PERIODS),
        _scale_variants(DEFAULT_SCALES[:2] if quick else DEFAULT_SCALES),
        _log_circuit_variants(),
    ]


def _defaults(benchmarks: Optional[Sequence[str]],
              instructions: Optional[int],
              warmup_instructions: Optional[int],
              backend: Optional[str]):
    """Resolve ``None`` overrides to the ablations' full-scale defaults —
    the single resolution shared by ``jobs`` and ``report``, so planned
    and executed budgets cannot drift apart."""
    return (DEFAULT_BENCHMARKS if benchmarks is None else tuple(benchmarks),
            DEFAULT_INSTRUCTIONS if instructions is None else instructions,
            (DEFAULT_WARMUP_INSTRUCTIONS if warmup_instructions is None
             else warmup_instructions),
            DEFAULT_BACKEND if backend is None else backend)


def jobs(*, benchmarks: Optional[Sequence[str]] = None,
         instructions: Optional[int] = None,
         warmup_instructions: Optional[int] = None,
         seed: int = 1, quick: bool = False,
         backend: Optional[str] = None) -> List[Job]:
    """Every job the three ablations execute, for campaign planning."""
    benchmarks, instructions, warmup_instructions, backend = _defaults(
        benchmarks, instructions, warmup_instructions, backend)
    bench, instr, warmup = _clamp(quick, benchmarks, instructions,
                                  warmup_instructions)
    job_list: List[Job] = []
    for variants in _variant_suites(quick):
        job_list.extend(_points_and_jobs(variants, bench, instr, warmup,
                                         seed, backend)[1])
    return job_list


def run_relog_period_ablation(
        periods: Sequence[int] = DEFAULT_PERIODS,
        benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
        instructions: int = DEFAULT_INSTRUCTIONS,
        warmup_instructions: int = DEFAULT_WARMUP_INSTRUCTIONS,
        seed: int = 1,
        quick: bool = False,
        runner: Optional[SweepRunner] = None,
        backend: str = DEFAULT_BACKEND) -> AblationResult:
    """Sweep the MRT re-logarithmizing period."""
    if quick:
        periods = tuple(periods)[:3]
    benchmarks, instructions, warmup_instructions = _clamp(
        quick, benchmarks, instructions, warmup_instructions)
    return _measure(_relog_variants(periods), benchmarks, instructions,
                    warmup_instructions, seed, runner, backend=backend)


def run_scale_ablation(
        scales: Sequence[int] = DEFAULT_SCALES,
        benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
        instructions: int = DEFAULT_INSTRUCTIONS,
        warmup_instructions: int = DEFAULT_WARMUP_INSTRUCTIONS,
        seed: int = 1,
        quick: bool = False,
        runner: Optional[SweepRunner] = None,
        backend: str = DEFAULT_BACKEND) -> AblationResult:
    """Sweep the encoded-probability scale factor."""
    if quick:
        scales = tuple(scales)[:2]
    benchmarks, instructions, warmup_instructions = _clamp(
        quick, benchmarks, instructions, warmup_instructions)
    return _measure(_scale_variants(scales), benchmarks, instructions,
                    warmup_instructions, seed, runner, backend=backend)


def run_log_circuit_ablation(
        benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
        instructions: int = DEFAULT_INSTRUCTIONS,
        warmup_instructions: int = DEFAULT_WARMUP_INSTRUCTIONS,
        seed: int = 1,
        quick: bool = False,
        runner: Optional[SweepRunner] = None,
        backend: str = DEFAULT_BACKEND) -> AblationResult:
    """Mitchell log circuit vs. exact floating-point logarithms."""
    benchmarks, instructions, warmup_instructions = _clamp(
        quick, benchmarks, instructions, warmup_instructions)
    return _measure(_log_circuit_variants(), benchmarks, instructions,
                    warmup_instructions, seed, runner, backend=backend)


def report(*, runner: Optional[SweepRunner] = None,
           benchmarks: Optional[Sequence[str]] = None,
           instructions: Optional[int] = None,
           warmup_instructions: Optional[int] = None,
           seed: int = 1, quick: bool = False,
           backend: Optional[str] = None) -> str:
    """Run all three ablations and return their concatenated tables."""
    benchmarks, instructions, warmup_instructions, backend = _defaults(
        benchmarks, instructions, warmup_instructions, backend)
    common = dict(
        benchmarks=benchmarks, instructions=instructions,
        warmup_instructions=warmup_instructions,
        seed=seed, quick=quick, runner=runner, backend=backend,
    )
    parts = []
    for title, result in [
        ("Re-logarithmizing period", run_relog_period_ablation(**common)),
        ("Encoded-probability scale", run_scale_ablation(**common)),
        ("Log circuit", run_log_circuit_ablation(**common)),
    ]:
        bench_columns = list(next(iter(result.rms_by_variant.values())).keys())
        headers = ["variant"] + bench_columns + ["mean"]
        parts.append(format_table(headers, result.rows(),
                                  title=f"Ablation — {title}"))
    return "\n\n".join(parts)


def main(runner: Optional[SweepRunner] = None, quick: bool = False,
         backend: str = DEFAULT_BACKEND) -> str:
    text = report(runner=runner, quick=quick, backend=backend)
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover - manual invocation
    main()
