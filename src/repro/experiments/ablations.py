"""Ablations on PaCo's design parameters.

Three design choices the paper motivates but does not sweep in detail:

* the MRT re-logarithmizing period (the paper uses 200 000 cycles and notes
  PaCo "is not very sensitive to this period"),
* the encoded-probability scale factor (1024) and its interaction with the
  12-bit clamp, and
* the use of Mitchell's approximate log circuit instead of an exact
  logarithm.

Each ablation reports PaCo's reliability RMS error under the modified
configuration over the same workloads, so regressions attributable to the
design choice are directly visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.eval.reports import format_table
from repro.runner import SweepRunner, accuracy_job, resolve_runner

DEFAULT_BENCHMARKS = ("parser", "twolf", "gzip", "bzip2")

#: Ablations compare PaCo variants against each other, so they stay on the
#: cycle model by default (their golden snapshot is cycle-backend ground
#: truth); pass backend="trace" for quick exploratory sweeps.
DEFAULT_BACKEND = "cycle"


@dataclass
class AblationResult:
    """RMS errors of PaCo variants, keyed by variant label then benchmark."""

    rms_by_variant: Dict[str, Dict[str, float]]

    def mean_rms(self, variant: str) -> float:
        values = list(self.rms_by_variant[variant].values())
        return sum(values) / len(values) if values else 0.0

    def rows(self) -> List[List[object]]:
        rows = []
        for variant, by_benchmark in self.rms_by_variant.items():
            row: List[object] = [variant]
            row.extend(round(by_benchmark[name], 4) for name in by_benchmark)
            row.append(round(self.mean_rms(variant), 4))
            rows.append(row)
        return rows


def _measure(variants: Dict[str, dict], benchmarks: Sequence[str],
             instructions: int, warmup_instructions: int, seed: int,
             runner: Optional[SweepRunner] = None,
             backend: str = DEFAULT_BACKEND) -> AblationResult:
    points = [(label, benchmark)
              for benchmark in benchmarks for label in variants]
    results = resolve_runner(runner).map([
        accuracy_job(benchmark, instructions=instructions,
                     warmup_instructions=warmup_instructions, seed=seed,
                     paco_variant=variants[label], backend=backend)
        for label, benchmark in points
    ])
    rms: Dict[str, Dict[str, float]] = {label: {} for label in variants}
    for (label, benchmark), result in zip(points, results):
        rms[label][benchmark] = result.rms_errors["paco"]
    return AblationResult(rms_by_variant=rms)


def run_relog_period_ablation(
        periods: Sequence[int] = (5_000, 20_000, 100_000, 200_000),
        benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
        instructions: int = 30_000,
        warmup_instructions: int = 15_000,
        seed: int = 1,
        quick: bool = False,
        runner: Optional[SweepRunner] = None,
        backend: str = DEFAULT_BACKEND) -> AblationResult:
    """Sweep the MRT re-logarithmizing period."""
    if quick:
        periods = tuple(periods)[:3]
        benchmarks = tuple(benchmarks)[:2]
        instructions = min(instructions, 20_000)
        warmup_instructions = min(warmup_instructions, 10_000)
    variants = {f"relog={p}": {"relog_period_cycles": p} for p in periods}
    return _measure(variants, benchmarks, instructions, warmup_instructions,
                    seed, runner, backend=backend)


def run_scale_ablation(
        scales: Sequence[int] = (256, 512, 1024, 2048),
        benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
        instructions: int = 30_000,
        warmup_instructions: int = 15_000,
        seed: int = 1,
        quick: bool = False,
        runner: Optional[SweepRunner] = None,
        backend: str = DEFAULT_BACKEND) -> AblationResult:
    """Sweep the encoded-probability scale factor."""
    if quick:
        scales = tuple(scales)[:2]
        benchmarks = tuple(benchmarks)[:2]
        instructions = min(instructions, 20_000)
        warmup_instructions = min(warmup_instructions, 10_000)
    variants = {
        f"scale={s}": {"scale": s, "relog_period_cycles": 20_000} for s in scales
    }
    return _measure(variants, benchmarks, instructions, warmup_instructions,
                    seed, runner, backend=backend)


def run_log_circuit_ablation(
        benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
        instructions: int = 30_000,
        warmup_instructions: int = 15_000,
        seed: int = 1,
        quick: bool = False,
        runner: Optional[SweepRunner] = None,
        backend: str = DEFAULT_BACKEND) -> AblationResult:
    """Mitchell log circuit vs. exact floating-point logarithms."""
    if quick:
        benchmarks = tuple(benchmarks)[:2]
        instructions = min(instructions, 20_000)
        warmup_instructions = min(warmup_instructions, 10_000)
    variants = {
        "mitchell-log": {"use_mitchell_log": True, "relog_period_cycles": 20_000},
        "exact-log": {"use_mitchell_log": False, "relog_period_cycles": 20_000},
    }
    return _measure(variants, benchmarks, instructions, warmup_instructions,
                    seed, runner, backend=backend)


def main(runner: Optional[SweepRunner] = None, quick: bool = False,
         backend: str = DEFAULT_BACKEND) -> str:
    parts = []
    for title, result in [
        ("Re-logarithmizing period",
         run_relog_period_ablation(quick=quick, runner=runner, backend=backend)),
        ("Encoded-probability scale",
         run_scale_ablation(quick=quick, runner=runner, backend=backend)),
        ("Log circuit",
         run_log_circuit_ablation(quick=quick, runner=runner, backend=backend)),
    ]:
        benchmarks = list(next(iter(result.rms_by_variant.values())).keys())
        headers = ["variant"] + benchmarks + ["mean"]
        parts.append(format_table(headers, result.rows(),
                                  title=f"Ablation — {title}"))
    text = "\n\n".join(parts)
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover - manual invocation
    main()
