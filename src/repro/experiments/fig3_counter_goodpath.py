"""Fig. 3 — good-path probability when N low-confidence branches are outstanding.

Fig. 3(a): the observed probability of being on the good path when exactly
five low-confidence branches are outstanding, for several benchmarks — the
same counter value corresponds to very different probabilities.

Fig. 3(b): the same statistic for different phases of mcf and gcc — the
best gate-count changes even within one benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.eval.reports import format_table
from repro.runner import Job, SweepRunner, accuracy_job, resolve_runner

#: Benchmarks shown in the paper's Fig. 3(a).
FIG3A_BENCHMARKS = ("crafty", "gzip", "bzip2", "vprRoute")

#: Benchmarks whose phases are shown in Fig. 3(b).  gcc is listed first
#: because its phases are short enough to appear even in quick runs; mcf's
#: two phases are 150 000 instructions long and need full-scale runs.
FIG3B_BENCHMARKS = ("gcc", "mcf")

#: Fig. 3 only consumes confidence-counter statistics, so it defaults to
#: the fast trace-replay backend (parity with the cycle model is enforced
#: by tests/test_backends.py; pass backend="cycle" for ground truth).
DEFAULT_BACKEND = "trace"

#: Full-scale budgets (the ``run`` defaults, shared with ``jobs``).
DEFAULT_INSTRUCTIONS = 40_000
DEFAULT_WARMUP_INSTRUCTIONS = 15_000

#: The whole figure is enumerable up front, so campaigns can shard it.
CAMPAIGN_PLANNABLE = True


@dataclass
class Fig3Result:
    """Observed good-path probabilities at a fixed low-confidence count."""

    counter_value: int
    across_benchmarks: Dict[str, float]
    across_phases: Dict[Tuple[str, str], float] = field(default_factory=dict)
    occupancy: Dict[str, int] = field(default_factory=dict)

    def spread(self) -> float:
        """Max minus min probability across benchmarks (the figure's point)."""
        if not self.across_benchmarks:
            return 0.0
        values = list(self.across_benchmarks.values())
        return max(values) - min(values)

    def rows_benchmarks(self) -> List[List[object]]:
        return [[name, round(prob, 3), self.occupancy.get(name, 0)]
                for name, prob in self.across_benchmarks.items()]

    def rows_phases(self) -> List[List[object]]:
        return [[f"{bench}_{phase}", round(prob, 3)]
                for (bench, phase), prob in self.across_phases.items()]


def _probability_near(counter_goodpath: Dict[int, float],
                      occupancy: Dict[int, int],
                      counter_value: int) -> Tuple[float, int]:
    """The observed probability at the counter value (or nearest populated one)."""
    if occupancy.get(counter_value, 0) > 0:
        return counter_goodpath[counter_value], occupancy[counter_value]
    populated = [c for c, n in occupancy.items() if n > 0]
    if not populated:
        return 0.0, 0
    nearest = min(populated, key=lambda c: abs(c - counter_value))
    return counter_goodpath.get(nearest, 0.0), occupancy[nearest]


def _plan(benchmarks: Optional[Sequence[str]],
          phase_benchmarks: Optional[Sequence[str]],
          instructions: int, warmup_instructions: int, seed: int,
          quick: bool, backend: str
          ) -> Tuple[List[str], List[str], List[Job]]:
    """Both panels' benchmark lists and the combined job list.

    One job list for both figure panels: benchmarks appearing in both
    groups are deduplicated by the runner and simulated only once.
    """
    names = list(benchmarks) if benchmarks is not None else list(FIG3A_BENCHMARKS)
    phase_names = (list(phase_benchmarks) if phase_benchmarks is not None
                   else list(FIG3B_BENCHMARKS))
    if quick:
        instructions = min(instructions, 25_000)
        warmup_instructions = min(warmup_instructions, 10_000)
        phase_names = phase_names[:1]

    def job(name: str) -> Job:
        return accuracy_job(name, instructions=instructions,
                            warmup_instructions=warmup_instructions,
                            seed=seed, backend=backend,
                            instrument="counter")

    return names, phase_names, (
        [job(name) for name in names] + [job(name) for name in phase_names]
    )


def _defaults(instructions: Optional[int],
              warmup_instructions: Optional[int],
              backend: Optional[str]):
    """Resolve ``None`` overrides to this driver's full-scale defaults —
    the single resolution shared by ``jobs`` and ``report``, so planned
    and executed budgets cannot drift apart."""
    return (DEFAULT_INSTRUCTIONS if instructions is None else instructions,
            (DEFAULT_WARMUP_INSTRUCTIONS if warmup_instructions is None
             else warmup_instructions),
            DEFAULT_BACKEND if backend is None else backend)


def jobs(*, benchmarks: Optional[Sequence[str]] = None,
         instructions: Optional[int] = None,
         warmup_instructions: Optional[int] = None,
         seed: int = 1, quick: bool = False,
         backend: Optional[str] = None) -> List[Job]:
    """Every job ``report`` executes, for campaign planning / ``--dry-run``.

    ``benchmarks`` overrides the Fig. 3(a) panel; the Fig. 3(b) phase
    panel keeps its paper benchmarks (gcc, mcf).
    """
    instructions, warmup_instructions, backend = _defaults(
        instructions, warmup_instructions, backend)
    return _plan(benchmarks, None, instructions, warmup_instructions,
                 seed, quick, backend)[2]


def run(counter_value: int = 5,
        benchmarks: Optional[Sequence[str]] = None,
        phase_benchmarks: Optional[Sequence[str]] = None,
        instructions: int = DEFAULT_INSTRUCTIONS,
        warmup_instructions: int = DEFAULT_WARMUP_INSTRUCTIONS,
        seed: int = 1,
        quick: bool = False,
        runner: Optional[SweepRunner] = None,
        backend: str = DEFAULT_BACKEND) -> Fig3Result:
    """Measure P(good path | low-confidence count == ``counter_value``)."""
    names, phase_names, job_list = _plan(
        benchmarks, phase_benchmarks, instructions, warmup_instructions,
        seed, quick, backend)
    results = resolve_runner(runner).map(job_list)

    across: Dict[str, float] = {}
    occupancy: Dict[str, int] = {}
    for name, result in zip(names, results[:len(names)]):
        probability, samples = _probability_near(
            result.counter_goodpath, result.counter_occupancy, counter_value
        )
        across[name] = probability
        occupancy[name] = samples

    across_phases: Dict[Tuple[str, str], float] = {}
    for name, result in zip(phase_names, results[len(names):]):
        for phase, by_count in result.phase_counter_goodpath.items():
            if counter_value in by_count:
                across_phases[(name, phase)] = by_count[counter_value]
            elif by_count:
                nearest = min(by_count, key=lambda c: abs(c - counter_value))
                across_phases[(name, phase)] = by_count[nearest]

    return Fig3Result(
        counter_value=counter_value,
        across_benchmarks=across,
        across_phases=across_phases,
        occupancy=occupancy,
    )


def report(*, runner: Optional[SweepRunner] = None,
           benchmarks: Optional[Sequence[str]] = None,
           instructions: Optional[int] = None,
           warmup_instructions: Optional[int] = None,
           seed: int = 1, quick: bool = False,
           backend: Optional[str] = None) -> str:
    """Run the experiment and return both panels' table text."""
    instructions, warmup_instructions, backend = _defaults(
        instructions, warmup_instructions, backend)
    result = run(benchmarks=benchmarks, instructions=instructions,
                 warmup_instructions=warmup_instructions,
                 seed=seed, quick=quick, runner=runner, backend=backend)
    text_a = format_table(
        ["benchmark", "P(goodpath)", "instances"],
        result.rows_benchmarks(),
        title=f"Fig. 3(a) — good-path probability at counter = {result.counter_value}",
    )
    text_b = format_table(
        ["benchmark_phase", "P(goodpath)"],
        result.rows_phases(),
        title=f"Fig. 3(b) — per-phase good-path probability at counter = "
              f"{result.counter_value}",
    )
    return text_a + "\n\n" + text_b


def main(runner: Optional[SweepRunner] = None, quick: bool = False,
         backend: str = DEFAULT_BACKEND) -> str:
    text = report(runner=runner, quick=quick, backend=backend)
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover - manual invocation
    main()
