"""Fig. 2 — mispredict rates of branches with different MDC values.

The paper's Fig. 2 plots, per benchmark, the observed mispredict rate of
branches whose miss-distance counter had a given value at prediction time.
The shape — a steep fall from MDC 0 towards the saturated bucket, with the
absolute level differing per benchmark — is what makes the MDC value a
useful stratifier and a fixed confidence threshold a poor one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.eval.reports import format_table
from repro.runner import SweepRunner, accuracy_job, resolve_runner
from repro.workloads.suite import benchmark_names

#: Benchmarks highlighted in the paper's Fig. 2 discussion.
DEFAULT_BENCHMARKS = ("gcc", "vortex", "twolf", "gzip", "parser", "bzip2")

#: Fig. 2 only consumes predictor-level statistics, so it defaults to the
#: fast trace-replay backend (parity with the cycle model is enforced by
#: tests/test_backends.py; pass backend="cycle" for ground truth).
DEFAULT_BACKEND = "trace"


@dataclass
class Fig2Result:
    """Per-benchmark, per-MDC-value mispredict rates."""

    rates: Dict[str, Dict[int, float]]
    max_mdc: int = 15

    def rows(self) -> List[List[object]]:
        rows = []
        for benchmark, by_mdc in self.rates.items():
            row: List[object] = [benchmark]
            for mdc in range(self.max_mdc + 1):
                row.append(round(100.0 * by_mdc.get(mdc, 0.0), 2))
            rows.append(row)
        return rows

    def is_monotone_decreasing_overall(self, tolerance: float = 0.05) -> bool:
        """Check the headline shape: low MDC buckets mispredict more.

        Compares the average rate of buckets 0–2 against buckets 3+ for
        every benchmark that has samples in both ranges.
        """
        for by_mdc in self.rates.values():
            low = [rate for mdc, rate in by_mdc.items() if mdc <= 2]
            high = [rate for mdc, rate in by_mdc.items() if mdc >= 3]
            if not low or not high:
                continue
            if (sum(low) / len(low)) + tolerance < (sum(high) / len(high)):
                return False
        return True


def run(benchmarks: Optional[Sequence[str]] = None,
        instructions: int = 30_000,
        warmup_instructions: int = 20_000,
        seed: int = 1,
        quick: bool = False,
        runner: Optional[SweepRunner] = None,
        backend: str = DEFAULT_BACKEND) -> Fig2Result:
    """Measure per-MDC mispredict rates for the requested benchmarks."""
    names = list(benchmarks) if benchmarks is not None else (
        list(DEFAULT_BENCHMARKS) if quick else benchmark_names()
    )
    if quick:
        instructions = min(instructions, 20_000)
        warmup_instructions = min(warmup_instructions, 10_000)
    results = resolve_runner(runner).map([
        accuracy_job(name, instructions=instructions,
                     warmup_instructions=warmup_instructions, seed=seed,
                     backend=backend, instrument="mdc")
        for name in names
    ])
    rates: Dict[str, Dict[int, float]] = {
        name: result.mdc_mispredict_rates
        for name, result in zip(names, results)
    }
    return Fig2Result(rates=rates)


def main(runner: Optional[SweepRunner] = None, quick: bool = False,
         backend: str = DEFAULT_BACKEND) -> str:
    """Run the experiment with paper-shaped defaults and return the table text."""
    result = run(quick=quick, runner=runner, backend=backend)
    headers = ["benchmark"] + [f"mdc{m}" for m in range(16)]
    text = format_table(headers, result.rows(),
                        title="Fig. 2 — mispredict rate (%) per MDC value")
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover - manual invocation
    main()
