"""Fig. 2 — mispredict rates of branches with different MDC values.

The paper's Fig. 2 plots, per benchmark, the observed mispredict rate of
branches whose miss-distance counter had a given value at prediction time.
The shape — a steep fall from MDC 0 towards the saturated bucket, with the
absolute level differing per benchmark — is what makes the MDC value a
useful stratifier and a fixed confidence threshold a poor one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.eval.reports import format_table
from repro.runner import Job, SweepRunner, accuracy_job, resolve_runner
from repro.workloads.suite import benchmark_names

#: Benchmarks highlighted in the paper's Fig. 2 discussion.
DEFAULT_BENCHMARKS = ("gcc", "vortex", "twolf", "gzip", "parser", "bzip2")

#: Fig. 2 only consumes predictor-level statistics, so it defaults to the
#: fast trace-replay backend (parity with the cycle model is enforced by
#: tests/test_backends.py; pass backend="cycle" for ground truth).
DEFAULT_BACKEND = "trace"

#: Full-scale budgets (the ``run`` defaults, shared with ``jobs``).
DEFAULT_INSTRUCTIONS = 30_000
DEFAULT_WARMUP_INSTRUCTIONS = 20_000

#: The whole figure is enumerable up front, so campaigns can shard it.
CAMPAIGN_PLANNABLE = True


@dataclass
class Fig2Result:
    """Per-benchmark, per-MDC-value mispredict rates."""

    rates: Dict[str, Dict[int, float]]
    max_mdc: int = 15

    def rows(self) -> List[List[object]]:
        rows = []
        for benchmark, by_mdc in self.rates.items():
            row: List[object] = [benchmark]
            for mdc in range(self.max_mdc + 1):
                row.append(round(100.0 * by_mdc.get(mdc, 0.0), 2))
            rows.append(row)
        return rows

    def is_monotone_decreasing_overall(self, tolerance: float = 0.05) -> bool:
        """Check the headline shape: low MDC buckets mispredict more.

        Compares the average rate of buckets 0–2 against buckets 3+ for
        every benchmark that has samples in both ranges.
        """
        for by_mdc in self.rates.values():
            low = [rate for mdc, rate in by_mdc.items() if mdc <= 2]
            high = [rate for mdc, rate in by_mdc.items() if mdc >= 3]
            if not low or not high:
                continue
            if (sum(low) / len(low)) + tolerance < (sum(high) / len(high)):
                return False
        return True


def _plan(benchmarks: Optional[Sequence[str]], instructions: int,
          warmup_instructions: int, seed: int, quick: bool,
          backend: str) -> Tuple[List[str], List[Job]]:
    """The figure's benchmark list and job list (shared by run/jobs)."""
    names = list(benchmarks) if benchmarks is not None else (
        list(DEFAULT_BENCHMARKS) if quick else benchmark_names()
    )
    if quick:
        instructions = min(instructions, 20_000)
        warmup_instructions = min(warmup_instructions, 10_000)
    return names, [
        accuracy_job(name, instructions=instructions,
                     warmup_instructions=warmup_instructions, seed=seed,
                     backend=backend, instrument="mdc")
        for name in names
    ]


def _defaults(instructions: Optional[int],
              warmup_instructions: Optional[int],
              backend: Optional[str]):
    """Resolve ``None`` overrides to this driver's full-scale defaults —
    the single resolution shared by ``jobs`` and ``report``, so planned
    and executed budgets cannot drift apart."""
    return (DEFAULT_INSTRUCTIONS if instructions is None else instructions,
            (DEFAULT_WARMUP_INSTRUCTIONS if warmup_instructions is None
             else warmup_instructions),
            DEFAULT_BACKEND if backend is None else backend)


def jobs(*, benchmarks: Optional[Sequence[str]] = None,
         instructions: Optional[int] = None,
         warmup_instructions: Optional[int] = None,
         seed: int = 1, quick: bool = False,
         backend: Optional[str] = None) -> List[Job]:
    """Every job ``report`` executes, for campaign planning / ``--dry-run``."""
    instructions, warmup_instructions, backend = _defaults(
        instructions, warmup_instructions, backend)
    return _plan(benchmarks, instructions, warmup_instructions,
                 seed, quick, backend)[1]


def run(benchmarks: Optional[Sequence[str]] = None,
        instructions: int = DEFAULT_INSTRUCTIONS,
        warmup_instructions: int = DEFAULT_WARMUP_INSTRUCTIONS,
        seed: int = 1,
        quick: bool = False,
        runner: Optional[SweepRunner] = None,
        backend: str = DEFAULT_BACKEND) -> Fig2Result:
    """Measure per-MDC mispredict rates for the requested benchmarks."""
    names, job_list = _plan(benchmarks, instructions, warmup_instructions,
                            seed, quick, backend)
    results = resolve_runner(runner).map(job_list)
    rates: Dict[str, Dict[int, float]] = {
        name: result.mdc_mispredict_rates
        for name, result in zip(names, results)
    }
    return Fig2Result(rates=rates)


def report(*, runner: Optional[SweepRunner] = None,
           benchmarks: Optional[Sequence[str]] = None,
           instructions: Optional[int] = None,
           warmup_instructions: Optional[int] = None,
           seed: int = 1, quick: bool = False,
           backend: Optional[str] = None) -> str:
    """Run the experiment and return the paper-shaped table text."""
    instructions, warmup_instructions, backend = _defaults(
        instructions, warmup_instructions, backend)
    result = run(benchmarks=benchmarks, instructions=instructions,
                 warmup_instructions=warmup_instructions,
                 seed=seed, quick=quick, runner=runner, backend=backend)
    headers = ["benchmark"] + [f"mdc{m}" for m in range(16)]
    return format_table(headers, result.rows(),
                        title="Fig. 2 — mispredict rate (%) per MDC value")


def main(runner: Optional[SweepRunner] = None, quick: bool = False,
         backend: str = DEFAULT_BACKEND) -> str:
    """Run the experiment with paper-shaped defaults and return the table text."""
    text = report(runner=runner, quick=quick, backend=backend)
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover - manual invocation
    main()
