"""Appendix Table 1 — MRT vs. Static MRT vs. Per-branch MRT.

The paper's Appendix A compares three ways of assigning a correct-prediction
probability to a branch: PaCo's dynamically measured per-MDC-bucket rates
(MRT), a statically profiled per-MDC-value table (Static MRT), and a
per-branch-context long-run rate table (Per-branch MRT).  The dynamic MRT
is the most accurate; the static table roughly triples the RMS error and
the per-branch table is far worse because it ignores recency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.eval.reports import format_table
from repro.runner import SweepRunner, accuracy_job, resolve_runner
from repro.workloads.suite import (
    PAPER_PACO_RMS_ERROR,
    PAPER_PER_BRANCH_MRT_RMS_ERROR,
    PAPER_STATIC_MRT_RMS_ERROR,
    benchmark_names,
)


#: This experiment only consumes predictor-level statistics, so it
#: defaults to the fast trace-replay backend (parity with the cycle
#: model is enforced by tests/test_backends.py; pass backend="cycle"
#: for ground truth).
DEFAULT_BACKEND = "trace"


@dataclass
class TableA1Row:
    benchmark: str
    mrt_rms: float
    static_mrt_rms: float
    per_branch_mrt_rms: float


@dataclass
class TableA1Result:
    rows: List[TableA1Row]

    def _mean(self, attribute: str) -> float:
        if not self.rows:
            return 0.0
        return sum(getattr(r, attribute) for r in self.rows) / len(self.rows)

    @property
    def mean_mrt_rms(self) -> float:
        return self._mean("mrt_rms")

    @property
    def mean_static_rms(self) -> float:
        return self._mean("static_mrt_rms")

    @property
    def mean_per_branch_rms(self) -> float:
        return self._mean("per_branch_mrt_rms")

    def dynamic_mrt_is_best_on_average(self) -> bool:
        """The appendix's conclusion: the dynamic MRT has the lowest mean error."""
        return (self.mean_mrt_rms <= self.mean_static_rms
                and self.mean_mrt_rms <= self.mean_per_branch_rms)

    def as_table_rows(self) -> List[List[object]]:
        table = []
        for row in self.rows:
            table.append([
                row.benchmark,
                round(row.mrt_rms, 4),
                round(row.static_mrt_rms, 4),
                round(row.per_branch_mrt_rms, 4),
                round(PAPER_PACO_RMS_ERROR.get(row.benchmark, 0.0), 4),
                round(PAPER_STATIC_MRT_RMS_ERROR.get(row.benchmark, 0.0), 4),
                round(PAPER_PER_BRANCH_MRT_RMS_ERROR.get(row.benchmark, 0.0), 4),
            ])
        table.append(["mean",
                      round(self.mean_mrt_rms, 4),
                      round(self.mean_static_rms, 4),
                      round(self.mean_per_branch_rms, 4),
                      "-", "-", "-"])
        return table


def run(benchmarks: Optional[Sequence[str]] = None,
        instructions: int = 40_000,
        warmup_instructions: int = 20_000,
        seed: int = 1,
        quick: bool = False,
        runner: Optional[SweepRunner] = None,
        backend: str = DEFAULT_BACKEND) -> TableA1Result:
    """Measure the three designs' RMS errors over identical executions."""
    names = list(benchmarks) if benchmarks is not None else benchmark_names()
    if quick:
        names = names[:6]
        instructions = min(instructions, 20_000)
        warmup_instructions = min(warmup_instructions, 10_000)
    results = resolve_runner(runner).map([
        accuracy_job(name, instructions=instructions,
                     warmup_instructions=warmup_instructions, seed=seed,
                     backend=backend, instrument="mrt")
        for name in names
    ])
    rows: List[TableA1Row] = []
    for name, result in zip(names, results):
        rows.append(TableA1Row(
            benchmark=name,
            mrt_rms=result.rms_errors["paco"],
            static_mrt_rms=result.rms_errors["static-mrt"],
            per_branch_mrt_rms=result.rms_errors["per-branch-mrt"],
        ))
    return TableA1Result(rows=rows)


def main(runner: Optional[SweepRunner] = None, quick: bool = False,
         backend: str = DEFAULT_BACKEND) -> str:
    result = run(quick=quick, runner=runner, backend=backend)
    headers = ["benchmark", "MRT", "StaticMRT", "PerBranchMRT",
               "MRT(paper)", "Static(paper)", "PerBranch(paper)"]
    text = format_table(headers, result.as_table_rows(),
                        title="Appendix Table 1 — RMS error of MRT variants")
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover - manual invocation
    main()
