"""Appendix Table 1 — MRT vs. Static MRT vs. Per-branch MRT.

The paper's Appendix A compares three ways of assigning a correct-prediction
probability to a branch: PaCo's dynamically measured per-MDC-bucket rates
(MRT), a statically profiled per-MDC-value table (Static MRT), and a
per-branch-context long-run rate table (Per-branch MRT).  The dynamic MRT
is the most accurate; the static table roughly triples the RMS error and
the per-branch table is far worse because it ignores recency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.eval.reports import format_table
from repro.runner import Job, SweepRunner, accuracy_job, resolve_runner
from repro.workloads.suite import (
    PAPER_PACO_RMS_ERROR,
    PAPER_PER_BRANCH_MRT_RMS_ERROR,
    PAPER_STATIC_MRT_RMS_ERROR,
    benchmark_names,
)


#: This experiment only consumes predictor-level statistics, so it
#: defaults to the fast trace-replay backend (parity with the cycle
#: model is enforced by tests/test_backends.py; pass backend="cycle"
#: for ground truth).
DEFAULT_BACKEND = "trace"

#: Full-scale budgets (the ``run`` defaults, shared with ``jobs``).
DEFAULT_INSTRUCTIONS = 40_000
DEFAULT_WARMUP_INSTRUCTIONS = 20_000

#: The whole table is enumerable up front, so campaigns can shard it.
CAMPAIGN_PLANNABLE = True


@dataclass
class TableA1Row:
    benchmark: str
    mrt_rms: float
    static_mrt_rms: float
    per_branch_mrt_rms: float


@dataclass
class TableA1Result:
    rows: List[TableA1Row]

    def _mean(self, attribute: str) -> float:
        if not self.rows:
            return 0.0
        return sum(getattr(r, attribute) for r in self.rows) / len(self.rows)

    @property
    def mean_mrt_rms(self) -> float:
        return self._mean("mrt_rms")

    @property
    def mean_static_rms(self) -> float:
        return self._mean("static_mrt_rms")

    @property
    def mean_per_branch_rms(self) -> float:
        return self._mean("per_branch_mrt_rms")

    def dynamic_mrt_is_best_on_average(self) -> bool:
        """The appendix's conclusion: the dynamic MRT has the lowest mean error."""
        return (self.mean_mrt_rms <= self.mean_static_rms
                and self.mean_mrt_rms <= self.mean_per_branch_rms)

    def as_table_rows(self) -> List[List[object]]:
        table = []
        for row in self.rows:
            table.append([
                row.benchmark,
                round(row.mrt_rms, 4),
                round(row.static_mrt_rms, 4),
                round(row.per_branch_mrt_rms, 4),
                round(PAPER_PACO_RMS_ERROR.get(row.benchmark, 0.0), 4),
                round(PAPER_STATIC_MRT_RMS_ERROR.get(row.benchmark, 0.0), 4),
                round(PAPER_PER_BRANCH_MRT_RMS_ERROR.get(row.benchmark, 0.0), 4),
            ])
        table.append(["mean",
                      round(self.mean_mrt_rms, 4),
                      round(self.mean_static_rms, 4),
                      round(self.mean_per_branch_rms, 4),
                      "-", "-", "-"])
        return table


def _plan(benchmarks: Optional[Sequence[str]], instructions: int,
          warmup_instructions: int, seed: int, quick: bool,
          backend: str) -> Tuple[List[str], List[Job]]:
    """The table's benchmark list and job list (shared by run/jobs)."""
    names = list(benchmarks) if benchmarks is not None else benchmark_names()
    if quick:
        names = names[:6]
        instructions = min(instructions, 20_000)
        warmup_instructions = min(warmup_instructions, 10_000)
    return names, [
        accuracy_job(name, instructions=instructions,
                     warmup_instructions=warmup_instructions, seed=seed,
                     backend=backend, instrument="mrt")
        for name in names
    ]


def _defaults(instructions: Optional[int],
              warmup_instructions: Optional[int],
              backend: Optional[str]):
    """Resolve ``None`` overrides to this driver's full-scale defaults —
    the single resolution shared by ``jobs`` and ``report``, so planned
    and executed budgets cannot drift apart."""
    return (DEFAULT_INSTRUCTIONS if instructions is None else instructions,
            (DEFAULT_WARMUP_INSTRUCTIONS if warmup_instructions is None
             else warmup_instructions),
            DEFAULT_BACKEND if backend is None else backend)


def jobs(*, benchmarks: Optional[Sequence[str]] = None,
         instructions: Optional[int] = None,
         warmup_instructions: Optional[int] = None,
         seed: int = 1, quick: bool = False,
         backend: Optional[str] = None) -> List[Job]:
    """Every job ``report`` executes, for campaign planning / ``--dry-run``."""
    instructions, warmup_instructions, backend = _defaults(
        instructions, warmup_instructions, backend)
    return _plan(benchmarks, instructions, warmup_instructions,
                 seed, quick, backend)[1]


def run(benchmarks: Optional[Sequence[str]] = None,
        instructions: int = DEFAULT_INSTRUCTIONS,
        warmup_instructions: int = DEFAULT_WARMUP_INSTRUCTIONS,
        seed: int = 1,
        quick: bool = False,
        runner: Optional[SweepRunner] = None,
        backend: str = DEFAULT_BACKEND) -> TableA1Result:
    """Measure the three designs' RMS errors over identical executions."""
    names, job_list = _plan(benchmarks, instructions, warmup_instructions,
                            seed, quick, backend)
    results = resolve_runner(runner).map(job_list)
    rows: List[TableA1Row] = []
    for name, result in zip(names, results):
        rows.append(TableA1Row(
            benchmark=name,
            mrt_rms=result.rms_errors["paco"],
            static_mrt_rms=result.rms_errors["static-mrt"],
            per_branch_mrt_rms=result.rms_errors["per-branch-mrt"],
        ))
    return TableA1Result(rows=rows)


def report(*, runner: Optional[SweepRunner] = None,
           benchmarks: Optional[Sequence[str]] = None,
           instructions: Optional[int] = None,
           warmup_instructions: Optional[int] = None,
           seed: int = 1, quick: bool = False,
           backend: Optional[str] = None) -> str:
    """Run the experiment and return the paper-shaped table text."""
    instructions, warmup_instructions, backend = _defaults(
        instructions, warmup_instructions, backend)
    result = run(benchmarks=benchmarks, instructions=instructions,
                 warmup_instructions=warmup_instructions,
                 seed=seed, quick=quick, runner=runner, backend=backend)
    headers = ["benchmark", "MRT", "StaticMRT", "PerBranchMRT",
               "MRT(paper)", "Static(paper)", "PerBranch(paper)"]
    return format_table(headers, result.as_table_rows(),
                        title="Appendix Table 1 — RMS error of MRT variants")


def main(runner: Optional[SweepRunner] = None, quick: bool = False,
         backend: str = DEFAULT_BACKEND) -> str:
    text = report(runner=runner, quick=quick, backend=backend)
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover - manual invocation
    main()
