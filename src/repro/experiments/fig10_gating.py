"""Fig. 10 — pipeline gating: performance loss vs. bad-path reduction.

The paper's headline gating result: PaCo gating (at a 20 % good-path
probability target) removes about a third of the bad-path instructions
executed with essentially no performance loss, while the best conventional
predictor (JRS threshold 3) removes only ~7 % at a small loss; pushing the
conventional predictors harder costs performance quickly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.applications.pipeline_gating import (
    GatingCurvePoint,
    GatingSweepConfig,
    average_curves,
    run_gating_sweep,
)
from repro.eval.reports import format_table
from repro.runner import SweepRunner

#: Reduced sweep used by the quick (pytest-benchmark) configuration.
QUICK_CONFIG = GatingSweepConfig(
    benchmarks=("twolf", "parser", "bzip2", "vprRoute", "gzip", "crafty"),
    paco_probabilities=(0.05, 0.10, 0.20, 0.40, 0.70),
    jrs_thresholds=(3, 15),
    gate_counts=(1, 2, 4, 8),
    instructions=30_000,
    warmup_instructions=12_000,
)


@dataclass
class Fig10Result:
    """The gating curve family plus per-curve best operating points."""

    curves: Dict[str, List[GatingCurvePoint]]
    best_points: Dict[str, GatingCurvePoint]

    def rows(self) -> List[List[object]]:
        rows = []
        for name, points in self.curves.items():
            for point in points:
                rows.append([
                    name,
                    point.parameter,
                    round(100 * point.performance_loss, 2),
                    round(100 * point.badpath_reduction, 1),
                    round(100 * point.badpath_fetch_reduction, 1),
                ])
        return rows

    def summary_rows(self) -> List[List[object]]:
        return [
            [name,
             point.parameter,
             round(100 * point.performance_loss, 2),
             round(100 * point.badpath_reduction, 1)]
            for name, point in self.best_points.items()
        ]

    def paco_beats_best_counter(self) -> bool:
        """The paper's comparative claim: at comparable (non-negative-impact)
        operating points, PaCo removes more bad-path work than any
        threshold-and-count configuration."""
        paco = self.best_points.get("paco")
        if paco is None:
            return False
        counters = [p for name, p in self.best_points.items() if name != "paco"]
        if not counters:
            return True
        return paco.badpath_reduction >= max(c.badpath_reduction for c in counters)


def run(config: Optional[GatingSweepConfig] = None,
        quick: bool = False,
        runner: Optional[SweepRunner] = None) -> Fig10Result:
    """Run the gating sweep and summarise it."""
    cfg = config if config is not None else (QUICK_CONFIG if quick
                                             else GatingSweepConfig())
    curves = run_gating_sweep(cfg, runner=runner)
    return Fig10Result(curves=curves, best_points=average_curves(curves))


def main(runner: Optional[SweepRunner] = None, quick: bool = False,
         backend: str = "cycle") -> str:
    if backend != "cycle":
        raise ValueError(
            "fig10 pipeline gating consumes IPC and wrong-path execution, which only the "
            "cycle backend models; re-run with --backend cycle"
        )
    result = run(quick=quick, runner=runner)
    text = format_table(
        ["policy", "parameter", "perf loss %", "badpath exec red. %",
         "badpath fetch red. %"],
        result.rows(),
        title="Fig. 10 — pipeline gating curves (averaged over benchmarks)",
    )
    text += "\n\nBest operating point per policy (<=1% performance loss)\n"
    text += format_table(
        ["policy", "parameter", "perf loss %", "badpath exec red. %"],
        result.summary_rows(),
    )
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover - manual invocation
    main()
