"""Fig. 10 — pipeline gating: performance loss vs. bad-path reduction.

The paper's headline gating result: PaCo gating (at a 20 % good-path
probability target) removes about a third of the bad-path instructions
executed with essentially no performance loss, while the best conventional
predictor (JRS threshold 3) removes only ~7 % at a small loss; pushing the
conventional predictors harder costs performance quickly.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.applications.pipeline_gating import (
    GatingCurvePoint,
    GatingSweepConfig,
    average_curves,
    run_gating_sweep,
    sweep_jobs,
)
from repro.eval.reports import format_table
from repro.runner import Job, SweepRunner

#: Reduced sweep used by the quick (pytest-benchmark) configuration.
QUICK_CONFIG = GatingSweepConfig(
    benchmarks=("twolf", "parser", "bzip2", "vprRoute", "gzip", "crafty"),
    paco_probabilities=(0.05, 0.10, 0.20, 0.40, 0.70),
    jrs_thresholds=(3, 15),
    gate_counts=(1, 2, 4, 8),
    instructions=30_000,
    warmup_instructions=12_000,
)

#: The cycle backend measures the gating trade-off exactly; ``"trace"``
#: estimates it from gated replay and is parity-gated against cycle.
DEFAULT_BACKEND = "cycle"

#: Backends the sweep can run on end to end (``trace-vec`` gating runs
#: the scalar gated replay, so its results match ``trace`` exactly).
KNOWN_BACKENDS = ("cycle", "trace", "trace-vec")

#: The whole curve family is enumerable up front, so campaigns can shard it.
CAMPAIGN_PLANNABLE = True


def _check_backend(backend: Optional[str]) -> None:
    if backend not in (None,) + KNOWN_BACKENDS:
        from repro.backends import describe_backends
        raise ValueError(
            f"fig10 pipeline gating knows backends "
            f"{', '.join(KNOWN_BACKENDS)}; got {backend!r} "
            f"(registered: {describe_backends()})")
    if backend is not None:
        from repro.backends import validate_backend_name
        validate_backend_name(backend)


def _config(benchmarks: Optional[Sequence[str]],
            instructions: Optional[int],
            warmup_instructions: Optional[int],
            seed: int, quick: bool,
            backend: Optional[str] = None) -> GatingSweepConfig:
    """The sweep configuration with campaign-level overrides applied."""
    overrides: Dict[str, object] = {"seed": seed}
    if benchmarks is not None:
        overrides["benchmarks"] = tuple(benchmarks)
    if instructions is not None:
        overrides["instructions"] = instructions
    if warmup_instructions is not None:
        overrides["warmup_instructions"] = warmup_instructions
    if backend is not None:
        overrides["backend"] = backend
    base = QUICK_CONFIG if quick else GatingSweepConfig()
    return dataclasses.replace(base, **overrides)


def jobs(*, benchmarks: Optional[Sequence[str]] = None,
         instructions: Optional[int] = None,
         warmup_instructions: Optional[int] = None,
         seed: int = 1, quick: bool = False,
         backend: Optional[str] = None) -> List[Job]:
    """Every job ``report`` executes, for campaign planning / ``--dry-run``."""
    _check_backend(backend)
    return sweep_jobs(_config(benchmarks, instructions, warmup_instructions,
                              seed, quick, backend))


@dataclass
class Fig10Result:
    """The gating curve family plus per-curve best operating points."""

    curves: Dict[str, List[GatingCurvePoint]]
    best_points: Dict[str, GatingCurvePoint]

    def rows(self) -> List[List[object]]:
        rows = []
        for name, points in self.curves.items():
            for point in points:
                rows.append([
                    name,
                    point.parameter,
                    round(100 * point.performance_loss, 2),
                    round(100 * point.badpath_reduction, 1),
                    round(100 * point.badpath_fetch_reduction, 1),
                ])
        return rows

    def summary_rows(self) -> List[List[object]]:
        return [
            [name,
             point.parameter,
             round(100 * point.performance_loss, 2),
             round(100 * point.badpath_reduction, 1)]
            for name, point in self.best_points.items()
        ]

    def paco_beats_best_counter(self) -> bool:
        """The paper's comparative claim: at comparable (non-negative-impact)
        operating points, PaCo removes more bad-path work than any
        threshold-and-count configuration."""
        paco = self.best_points.get("paco")
        if paco is None:
            return False
        counters = [p for name, p in self.best_points.items() if name != "paco"]
        if not counters:
            return True
        return paco.badpath_reduction >= max(c.badpath_reduction for c in counters)


def run(config: Optional[GatingSweepConfig] = None,
        quick: bool = False,
        runner: Optional[SweepRunner] = None) -> Fig10Result:
    """Run the gating sweep and summarise it."""
    cfg = config if config is not None else (QUICK_CONFIG if quick
                                             else GatingSweepConfig())
    curves = run_gating_sweep(cfg, runner=runner)
    return Fig10Result(curves=curves, best_points=average_curves(curves))


def report(*, runner: Optional[SweepRunner] = None,
           benchmarks: Optional[Sequence[str]] = None,
           instructions: Optional[int] = None,
           warmup_instructions: Optional[int] = None,
           seed: int = 1, quick: bool = False,
           backend: Optional[str] = None) -> str:
    """Run the gating sweep and return the paper-shaped tables."""
    _check_backend(backend)
    result = run(config=_config(benchmarks, instructions,
                                warmup_instructions, seed, quick, backend),
                 runner=runner)
    text = format_table(
        ["policy", "parameter", "perf loss %", "badpath exec red. %",
         "badpath fetch red. %"],
        result.rows(),
        title="Fig. 10 — pipeline gating curves (averaged over benchmarks)",
    )
    text += "\n\nBest operating point per policy (<=1% performance loss)\n"
    text += format_table(
        ["policy", "parameter", "perf loss %", "badpath exec red. %"],
        result.summary_rows(),
    )
    return text


def main(runner: Optional[SweepRunner] = None, quick: bool = False,
         backend: str = "cycle") -> str:
    text = report(runner=runner, quick=quick, backend=backend)
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover - manual invocation
    main()
