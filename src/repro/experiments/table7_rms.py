"""Table 7 (Fig. 7) — PaCo RMS error and mispredict rates per benchmark.

For every benchmark the paper reports the RMS error between PaCo's
predicted good-path probability and the observed probability, the overall
control-flow mispredict rate, and the conditional-branch mispredict rate.
The headline number is the mean RMS error of 0.0377.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.eval.reports import format_table
from repro.runner import Job, SweepRunner, accuracy_job, resolve_runner
from repro.workloads.suite import (
    PAPER_CONDITIONAL_MISPREDICT_RATES,
    PAPER_OVERALL_MISPREDICT_RATES,
    PAPER_PACO_RMS_ERROR,
    benchmark_names,
)


#: This experiment only consumes predictor-level statistics, so it
#: defaults to the fast trace-replay backend (parity with the cycle
#: model is enforced by tests/test_backends.py; pass backend="cycle"
#: for ground truth).
DEFAULT_BACKEND = "trace"

#: Full-scale budgets (the ``run`` defaults, shared with ``jobs``).
DEFAULT_INSTRUCTIONS = 40_000
DEFAULT_WARMUP_INSTRUCTIONS = 20_000

#: The whole table is enumerable up front, so campaigns can shard it.
CAMPAIGN_PLANNABLE = True


@dataclass
class Table7Row:
    """One benchmark's row of Table 7 (measured next to the paper's values)."""

    benchmark: str
    paco_rms_error: float
    overall_mispredict_rate: float
    conditional_mispredict_rate: float
    paper_rms_error: float
    paper_overall_rate: float
    paper_conditional_rate: float


@dataclass
class Table7Result:
    rows: List[Table7Row]

    @property
    def mean_rms_error(self) -> float:
        if not self.rows:
            return 0.0
        return sum(r.paco_rms_error for r in self.rows) / len(self.rows)

    def as_table_rows(self) -> List[List[object]]:
        table = []
        for row in self.rows:
            table.append([
                row.benchmark,
                round(row.paco_rms_error, 4),
                round(row.paper_rms_error, 4),
                round(100 * row.overall_mispredict_rate, 2),
                round(row.paper_overall_rate, 2),
                round(100 * row.conditional_mispredict_rate, 2),
                round(row.paper_conditional_rate, 2),
            ])
        table.append([
            "mean",
            round(self.mean_rms_error, 4),
            round(sum(r.paper_rms_error for r in self.rows) / max(len(self.rows), 1), 4),
            "-", "-", "-", "-",
        ])
        return table


def _plan(benchmarks: Optional[Sequence[str]], instructions: int,
          warmup_instructions: int, seed: int, quick: bool,
          backend: str) -> Tuple[List[str], List[Job]]:
    """The table's benchmark list and job list (shared by run/jobs)."""
    names = list(benchmarks) if benchmarks is not None else benchmark_names()
    if quick:
        names = names[:6]
        instructions = min(instructions, 20_000)
        warmup_instructions = min(warmup_instructions, 10_000)
    return names, [
        accuracy_job(name, instructions=instructions,
                     warmup_instructions=warmup_instructions, seed=seed,
                     backend=backend, instrument="paco")
        for name in names
    ]


def _defaults(instructions: Optional[int],
              warmup_instructions: Optional[int],
              backend: Optional[str]):
    """Resolve ``None`` overrides to this driver's full-scale defaults —
    the single resolution shared by ``jobs`` and ``report``, so planned
    and executed budgets cannot drift apart."""
    return (DEFAULT_INSTRUCTIONS if instructions is None else instructions,
            (DEFAULT_WARMUP_INSTRUCTIONS if warmup_instructions is None
             else warmup_instructions),
            DEFAULT_BACKEND if backend is None else backend)


def jobs(*, benchmarks: Optional[Sequence[str]] = None,
         instructions: Optional[int] = None,
         warmup_instructions: Optional[int] = None,
         seed: int = 1, quick: bool = False,
         backend: Optional[str] = None) -> List[Job]:
    """Every job ``report`` executes, for campaign planning / ``--dry-run``."""
    instructions, warmup_instructions, backend = _defaults(
        instructions, warmup_instructions, backend)
    return _plan(benchmarks, instructions, warmup_instructions,
                 seed, quick, backend)[1]


def run(benchmarks: Optional[Sequence[str]] = None,
        instructions: int = DEFAULT_INSTRUCTIONS,
        warmup_instructions: int = DEFAULT_WARMUP_INSTRUCTIONS,
        seed: int = 1,
        quick: bool = False,
        runner: Optional[SweepRunner] = None,
        backend: str = DEFAULT_BACKEND) -> Table7Result:
    """Measure PaCo's RMS error and the mispredict rates per benchmark."""
    names, job_list = _plan(benchmarks, instructions, warmup_instructions,
                            seed, quick, backend)
    results = resolve_runner(runner).map(job_list)
    rows: List[Table7Row] = []
    for name, result in zip(names, results):
        rows.append(Table7Row(
            benchmark=name,
            paco_rms_error=result.rms_errors["paco"],
            overall_mispredict_rate=result.overall_mispredict_rate,
            conditional_mispredict_rate=result.conditional_mispredict_rate,
            paper_rms_error=PAPER_PACO_RMS_ERROR.get(name, 0.0),
            paper_overall_rate=PAPER_OVERALL_MISPREDICT_RATES.get(name, 0.0),
            paper_conditional_rate=PAPER_CONDITIONAL_MISPREDICT_RATES.get(name, 0.0),
        ))
    return Table7Result(rows=rows)


def report(*, runner: Optional[SweepRunner] = None,
           benchmarks: Optional[Sequence[str]] = None,
           instructions: Optional[int] = None,
           warmup_instructions: Optional[int] = None,
           seed: int = 1, quick: bool = False,
           backend: Optional[str] = None) -> str:
    """Run the experiment and return the paper-shaped table text."""
    instructions, warmup_instructions, backend = _defaults(
        instructions, warmup_instructions, backend)
    result = run(benchmarks=benchmarks, instructions=instructions,
                 warmup_instructions=warmup_instructions,
                 seed=seed, quick=quick, runner=runner, backend=backend)
    headers = ["benchmark", "rms", "rms(paper)", "overall%", "overall%(paper)",
               "cond%", "cond%(paper)"]
    return format_table(headers, result.as_table_rows(),
                        title="Table 7 — PaCo RMS error and mispredict rates")


def main(runner: Optional[SweepRunner] = None, quick: bool = False,
         backend: str = DEFAULT_BACKEND) -> str:
    text = report(runner=runner, quick=quick, backend=backend)
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover - manual invocation
    main()
