"""Table 7 (Fig. 7) — PaCo RMS error and mispredict rates per benchmark.

For every benchmark the paper reports the RMS error between PaCo's
predicted good-path probability and the observed probability, the overall
control-flow mispredict rate, and the conditional-branch mispredict rate.
The headline number is the mean RMS error of 0.0377.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.eval.reports import format_table
from repro.runner import SweepRunner, accuracy_job, resolve_runner
from repro.workloads.suite import (
    PAPER_CONDITIONAL_MISPREDICT_RATES,
    PAPER_OVERALL_MISPREDICT_RATES,
    PAPER_PACO_RMS_ERROR,
    benchmark_names,
)


#: This experiment only consumes predictor-level statistics, so it
#: defaults to the fast trace-replay backend (parity with the cycle
#: model is enforced by tests/test_backends.py; pass backend="cycle"
#: for ground truth).
DEFAULT_BACKEND = "trace"


@dataclass
class Table7Row:
    """One benchmark's row of Table 7 (measured next to the paper's values)."""

    benchmark: str
    paco_rms_error: float
    overall_mispredict_rate: float
    conditional_mispredict_rate: float
    paper_rms_error: float
    paper_overall_rate: float
    paper_conditional_rate: float


@dataclass
class Table7Result:
    rows: List[Table7Row]

    @property
    def mean_rms_error(self) -> float:
        if not self.rows:
            return 0.0
        return sum(r.paco_rms_error for r in self.rows) / len(self.rows)

    def as_table_rows(self) -> List[List[object]]:
        table = []
        for row in self.rows:
            table.append([
                row.benchmark,
                round(row.paco_rms_error, 4),
                round(row.paper_rms_error, 4),
                round(100 * row.overall_mispredict_rate, 2),
                round(row.paper_overall_rate, 2),
                round(100 * row.conditional_mispredict_rate, 2),
                round(row.paper_conditional_rate, 2),
            ])
        table.append([
            "mean",
            round(self.mean_rms_error, 4),
            round(sum(r.paper_rms_error for r in self.rows) / max(len(self.rows), 1), 4),
            "-", "-", "-", "-",
        ])
        return table


def run(benchmarks: Optional[Sequence[str]] = None,
        instructions: int = 40_000,
        warmup_instructions: int = 20_000,
        seed: int = 1,
        quick: bool = False,
        runner: Optional[SweepRunner] = None,
        backend: str = DEFAULT_BACKEND) -> Table7Result:
    """Measure PaCo's RMS error and the mispredict rates per benchmark."""
    names = list(benchmarks) if benchmarks is not None else benchmark_names()
    if quick:
        names = names[:6]
        instructions = min(instructions, 20_000)
        warmup_instructions = min(warmup_instructions, 10_000)
    results = resolve_runner(runner).map([
        accuracy_job(name, instructions=instructions,
                     warmup_instructions=warmup_instructions, seed=seed,
                     backend=backend, instrument="paco")
        for name in names
    ])
    rows: List[Table7Row] = []
    for name, result in zip(names, results):
        rows.append(Table7Row(
            benchmark=name,
            paco_rms_error=result.rms_errors["paco"],
            overall_mispredict_rate=result.overall_mispredict_rate,
            conditional_mispredict_rate=result.conditional_mispredict_rate,
            paper_rms_error=PAPER_PACO_RMS_ERROR.get(name, 0.0),
            paper_overall_rate=PAPER_OVERALL_MISPREDICT_RATES.get(name, 0.0),
            paper_conditional_rate=PAPER_CONDITIONAL_MISPREDICT_RATES.get(name, 0.0),
        ))
    return Table7Result(rows=rows)


def main(runner: Optional[SweepRunner] = None, quick: bool = False,
         backend: str = DEFAULT_BACKEND) -> str:
    result = run(quick=quick, runner=runner, backend=backend)
    headers = ["benchmark", "rms", "rms(paper)", "overall%", "overall%(paper)",
               "cond%", "cond%(paper)"]
    text = format_table(headers, result.as_table_rows(),
                        title="Table 7 — PaCo RMS error and mispredict rates")
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover - manual invocation
    main()
