"""Experiment harnesses: wiring benchmarks, predictors and cores together.

These builders encapsulate the plumbing every experiment needs — construct
the workload generator, the front-end predictor, the JRS confidence table,
the path confidence predictor(s), the fetch engine and the core — so that
experiment drivers, examples and benchmarks stay short and consistent.

Scaled parameters
-----------------
The paper simulates 100 million instructions per benchmark and
re-logarithmizes PaCo's MRT every 200 000 cycles.  Pure-Python runs are
10²–10³ times shorter, so the harness defaults scale accordingly: the
default instruction budget is 60 000 and the default re-logarithmizing
period is 20 000 cycles.  Both are parameters; the paper's values can be
requested explicitly when longer runs are affordable.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.backends import (
    Instrumentation,
    SimulationSession,
    Workload,
    get_backend,
)
from repro.backends.cycle import build_confidence, build_frontend
from repro.common.stats import ReliabilityDiagram
from repro.eval.metrics import hmwipc
from repro.eval.observers import (
    CounterGoodpathObserver,
    MultiPredictorObserver,
    PhaseAwareCounterObserver,
)
from repro.eval.profiling import MDCProfiler
from repro.pathconf.base import PathConfidencePredictor
from repro.pathconf.composite import CompositePathConfidence
from repro.pathconf.paco import PaCoPredictor
from repro.pathconf.per_branch_mrt import PerBranchMRTPredictor
from repro.pathconf.static_mrt import StaticMRTPredictor
from repro.pathconf.threshold_count import ThresholdAndCountPredictor
from repro.pipeline.config import MachineConfig, SMTConfig
from repro.pipeline.core import CoreStats, OutOfOrderCore
from repro.pipeline.fetch import FetchEngine
from repro.pipeline.fetch_policy import (
    CountConfidencePolicy,
    FetchPolicy,
    ICountPolicy,
    PaCoConfidencePolicy,
    RoundRobinPolicy,
)
from repro.pipeline.gating import CountGating, GatingPolicy, NoGating, PaCoGating
from repro.pipeline.smt import SMTCore, SMTStats, SMTThread
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.spec import BenchmarkSpec
from repro.workloads.suite import get_benchmark

#: Default instruction budget per run (scaled down from the paper's 100 M).
DEFAULT_INSTRUCTIONS = 60_000

#: Default PaCo re-logarithmizing period (scaled down from 200 000 cycles).
DEFAULT_RELOG_PERIOD = 20_000


def _subtract_stats(total: CoreStats, warmup: CoreStats) -> CoreStats:
    """Return the per-field difference ``total - warmup`` of two stat records.

    Used to report measurement-window statistics when an experiment warms
    the predictors up before observing.
    """
    deltas = {
        f.name: getattr(total, f.name) - getattr(warmup, f.name)
        for f in fields(CoreStats)
    }
    return CoreStats(**deltas)


def _resolve_spec(benchmark: object) -> BenchmarkSpec:
    if isinstance(benchmark, BenchmarkSpec):
        return benchmark
    return get_benchmark(str(benchmark))


def build_session(
    benchmark: object,
    path_confidence: PathConfidencePredictor,
    config: Optional[MachineConfig] = None,
    seed: int = 1,
    gating_policy: Optional[GatingPolicy] = None,
    backend: str = "cycle",
) -> SimulationSession:
    """Wire one benchmark into a simulation session on the chosen backend."""
    spec = _resolve_spec(benchmark)
    machine = config if config is not None else MachineConfig.paper_4wide()
    return get_backend(backend).build(
        Workload(spec=spec, seed=seed),
        machine,
        Instrumentation(path_confidence=path_confidence,
                        gating_policy=gating_policy),
    )


def build_single_core(
    benchmark: object,
    path_confidence: PathConfidencePredictor,
    config: Optional[MachineConfig] = None,
    seed: int = 1,
    gating_policy: Optional[GatingPolicy] = None,
) -> Tuple[OutOfOrderCore, FetchEngine, WorkloadGenerator]:
    """Wire up a single-thread core running one benchmark (cycle backend).

    Returns the core, its fetch engine and the workload generator (the
    generator is exposed because phase-aware observers need it).
    """
    session = build_session(benchmark, path_confidence, config=config,
                            seed=seed, gating_policy=gating_policy,
                            backend="cycle")
    return session.core, session.fetch_engine, session.generator


# ---------------------------------------------------------------------- #
# accuracy experiments (Table 7, Fig. 2, Fig. 3, Fig. 8/9, Appendix A)
# ---------------------------------------------------------------------- #


@dataclass
class AccuracyResult:
    """Everything an accuracy experiment produces for one benchmark."""

    benchmark: str
    stats: CoreStats
    diagrams: Dict[str, ReliabilityDiagram]
    rms_errors: Dict[str, float]
    mdc_mispredict_rates: Dict[int, float]
    counter_goodpath: Dict[int, float]
    counter_occupancy: Dict[int, int]
    phase_counter_goodpath: Dict[str, Dict[int, float]] = field(default_factory=dict)
    conditional_mispredict_rate: float = 0.0
    overall_mispredict_rate: float = 0.0

    def rms_error(self, predictor_name: str = "paco") -> float:
        return self.rms_errors[predictor_name]


def default_accuracy_predictors(
    relog_period_cycles: int = DEFAULT_RELOG_PERIOD,
    count_threshold: int = 3,
) -> List[PathConfidencePredictor]:
    """The predictor set used by accuracy experiments: PaCo, both Appendix-A
    alternatives, and a threshold-and-count baseline."""
    return [
        PaCoPredictor(relog_period_cycles=relog_period_cycles),
        StaticMRTPredictor(),
        PerBranchMRTPredictor(),
        ThresholdAndCountPredictor(threshold=count_threshold),
    ]


def accuracy_predictors_for(
    instrument: str,
    relog_period_cycles: int = DEFAULT_RELOG_PERIOD,
    count_threshold: int = 3,
) -> List[PathConfidencePredictor]:
    """Resolve an instrumentation profile into its predictor set.

    Attached predictors only *observe* the execution (the composite fans
    events out; nothing feeds back into fetch or timing), so a slimmer
    profile produces bit-identical values for the statistics it does
    measure — it simply skips paying for the ones the caller discards.

    =========== =====================================================
    Profile     Predictors
    =========== =====================================================
    ``full``    PaCo, Static-MRT, Per-branch-MRT, threshold-and-count
    ``paco``    PaCo only (table 7, fig 8/9)
    ``counter`` threshold-and-count only (fig 3)
    ``mdc``     none — just the always-attached MDC profiler (fig 2)
    ``mrt``     PaCo, Static-MRT, Per-branch-MRT (appendix table A1)
    =========== =====================================================
    """
    if instrument == "full":
        return default_accuracy_predictors(
            relog_period_cycles=relog_period_cycles,
            count_threshold=count_threshold)
    if instrument == "paco":
        return [PaCoPredictor(relog_period_cycles=relog_period_cycles)]
    if instrument == "counter":
        return [ThresholdAndCountPredictor(threshold=count_threshold)]
    if instrument == "mdc":
        return []
    if instrument == "mrt":
        return [
            PaCoPredictor(relog_period_cycles=relog_period_cycles),
            StaticMRTPredictor(),
            PerBranchMRTPredictor(),
        ]
    raise ValueError(
        f"unknown instrumentation profile {instrument!r} "
        f"(known: full, paco, counter, mdc, mrt)"
    )


def run_accuracy_experiment(
    benchmark: object,
    instructions: int = DEFAULT_INSTRUCTIONS,
    seed: int = 1,
    predictors: Optional[Sequence[PathConfidencePredictor]] = None,
    relog_period_cycles: int = DEFAULT_RELOG_PERIOD,
    count_threshold: int = 3,
    config: Optional[MachineConfig] = None,
    max_counter: int = 16,
    warmup_instructions: int = 20_000,
    backend: str = "cycle",
    instrument: str = "full",
) -> AccuracyResult:
    """Run one benchmark and measure every predictor's accuracy over the run.

    All predictors observe exactly the same dynamic execution (they are
    wrapped in a composite), so their reliability diagrams and RMS errors
    are directly comparable.

    ``warmup_instructions`` good-path instructions are retired before any
    observer is attached and before the mispredict-rate bookkeeping starts,
    so that cold predictor tables (an artefact of the short run lengths,
    not of the mechanisms) do not dominate the measured rates.

    ``backend`` selects the simulation backend: ``"cycle"`` (the full
    out-of-order core, ground truth) or ``"trace"`` (the fast trace-replay
    engine; predictor-level statistics only, see
    :mod:`repro.backends.trace`).  ``instrument`` selects which predictor
    set rides along (see :func:`accuracy_predictors_for`); statistics the
    profile does measure are bit-identical across profiles.
    """
    spec = _resolve_spec(benchmark)
    predictor_list = (list(predictors) if predictors is not None
                      else accuracy_predictors_for(
                          instrument,
                          relog_period_cycles=relog_period_cycles,
                          count_threshold=count_threshold))
    profiler = MDCProfiler()
    count_predictor = next(
        (p for p in predictor_list if isinstance(p, ThresholdAndCountPredictor)),
        None,
    )
    composite = CompositePathConfidence(
        predictors=list(predictor_list) + [profiler],
        primary=predictor_list[0] if predictor_list else profiler,
    )
    session = build_session(spec, composite, config=config, seed=seed,
                            backend=backend)
    generator = session.generator
    probability_predictors = [
        p for p in predictor_list
        if not isinstance(p, ThresholdAndCountPredictor)
    ]

    warmup_snapshot = None
    if warmup_instructions > 0:
        session.run(max_instructions=warmup_instructions)
        warmup_snapshot = replace(session.stats)

    multi_observer = MultiPredictorObserver(probability_predictors)
    if probability_predictors:
        session.add_observer(multi_observer)
    counter_observer = None
    phase_observer = None
    if count_predictor is not None:
        counter_observer = CounterGoodpathObserver(count_predictor,
                                                   max_count=max_counter)
        session.add_observer(counter_observer)
        if spec.phases:
            phase_observer = PhaseAwareCounterObserver(count_predictor, generator,
                                                       max_count=max_counter)
            session.add_observer(phase_observer)

    stats = session.run(max_instructions=warmup_instructions + instructions)
    if warmup_snapshot is not None:
        stats = _subtract_stats(stats, warmup_snapshot)

    counter_goodpath: Dict[int, float] = {}
    counter_occupancy: Dict[int, int] = {}
    if counter_observer is not None:
        for count in range(max_counter + 1):
            counter_occupancy[count] = counter_observer.occupancy(count)
            if counter_occupancy[count]:
                counter_goodpath[count] = counter_observer.goodpath_probability(count)
    phase_counter_goodpath: Dict[str, Dict[int, float]] = {}
    if phase_observer is not None:
        for phase in phase_observer.phases():
            phase_counter_goodpath[phase] = {
                count: phase_observer.goodpath_probability(phase, count)
                for count in range(max_counter + 1)
                if phase_observer.occupancy(phase, count) > 0
            }

    return AccuracyResult(
        benchmark=spec.name,
        stats=stats,
        diagrams=dict(multi_observer.diagrams),
        rms_errors=multi_observer.rms_errors(),
        mdc_mispredict_rates=profiler.mispredict_rates(),
        counter_goodpath=counter_goodpath,
        counter_occupancy=counter_occupancy,
        phase_counter_goodpath=phase_counter_goodpath,
        conditional_mispredict_rate=stats.conditional_mispredict_rate,
        overall_mispredict_rate=stats.overall_mispredict_rate,
    )


# ---------------------------------------------------------------------- #
# pipeline gating (Fig. 10)
# ---------------------------------------------------------------------- #


@dataclass
class GatingResult:
    """Outcome of one pipeline-gating configuration on one benchmark."""

    benchmark: str
    policy: str
    ipc: float
    badpath_executed: int
    badpath_fetched: int
    gated_cycles: int
    stats: CoreStats

    def performance_loss_vs(self, baseline: "GatingResult") -> float:
        """Fractional IPC loss relative to a no-gating baseline (negative = gain)."""
        if baseline.ipc == 0.0:
            return 0.0
        return (baseline.ipc - self.ipc) / baseline.ipc

    def badpath_reduction_vs(self, baseline: "GatingResult") -> float:
        """Fractional reduction in bad-path instructions executed."""
        if baseline.badpath_executed == 0:
            return 0.0
        return ((baseline.badpath_executed - self.badpath_executed)
                / baseline.badpath_executed)

    def badpath_fetch_reduction_vs(self, baseline: "GatingResult") -> float:
        if baseline.badpath_fetched == 0:
            return 0.0
        return ((baseline.badpath_fetched - self.badpath_fetched)
                / baseline.badpath_fetched)


def run_gating_experiment(
    benchmark: object,
    mode: str = "none",
    gate_count: int = 0,
    gating_probability: float = 0.0,
    jrs_threshold: int = 3,
    instructions: int = DEFAULT_INSTRUCTIONS,
    seed: int = 1,
    relog_period_cycles: int = DEFAULT_RELOG_PERIOD,
    config: Optional[MachineConfig] = None,
    warmup_instructions: int = 15_000,
    backend: str = "cycle",
) -> GatingResult:
    """Run one benchmark under one gating configuration.

    ``mode`` is ``"none"`` (baseline), ``"count"`` (threshold-and-count
    gating at ``gate_count`` with JRS threshold ``jrs_threshold``) or
    ``"paco"`` (gate when PaCo's good-path probability is below
    ``gating_probability``).  The warm-up window (during which gating is
    already active, exactly as it would be in hardware) is excluded from
    the reported statistics.

    ``backend="cycle"`` measures gating on the out-of-order core (ground
    truth); ``backend="trace"`` runs the gated trace replay
    (:class:`~repro.backends.trace.GatedTraceSession`) — estimated IPC
    and gated-cycle counts whose throttle orderings are parity-gated
    against the cycle model by ``tests/test_backends.py``.
    """
    spec = _resolve_spec(benchmark)
    if mode == "none":
        predictor: PathConfidencePredictor = ThresholdAndCountPredictor(
            threshold=jrs_threshold
        )
        gating: GatingPolicy = NoGating()
        policy_name = "no-gating"
    elif mode == "count":
        count_predictor = ThresholdAndCountPredictor(threshold=jrs_threshold)
        predictor = count_predictor
        gating = CountGating(count_predictor, gate_count=gate_count)
        policy_name = gating.name
    elif mode == "paco":
        paco = PaCoPredictor(relog_period_cycles=relog_period_cycles)
        predictor = paco
        gating = PaCoGating(paco, target_goodpath_probability=gating_probability)
        policy_name = gating.name
    else:
        raise ValueError(f"unknown gating mode {mode!r}")

    session = build_session(
        spec, predictor, config=config, seed=seed, gating_policy=gating,
        backend=backend,
    )
    warmup_snapshot = None
    if warmup_instructions > 0:
        session.run(max_instructions=warmup_instructions)
        warmup_snapshot = replace(session.stats)
    stats = session.run(max_instructions=warmup_instructions + instructions)
    if warmup_snapshot is not None:
        stats = _subtract_stats(stats, warmup_snapshot)
    return GatingResult(
        benchmark=spec.name,
        policy=policy_name,
        ipc=stats.ipc,
        badpath_executed=stats.badpath_executed,
        badpath_fetched=stats.badpath_fetched,
        gated_cycles=stats.gated_cycles,
        stats=stats,
    )


# ---------------------------------------------------------------------- #
# SMT fetch prioritization (Fig. 12)
# ---------------------------------------------------------------------- #


@dataclass
class SMTResult:
    """Outcome of one SMT pair under one fetch policy.

    ``single_ipcs`` and ``hmwipc`` are ``None`` when the caller asked for
    the raw SMT measurement only (``measure_single_ipcs=False``) — the
    SMT study computes the HMWIPC weighting at aggregation time from its
    own single-thread stage, which is what makes the fig12 job list
    static enough to plan as a campaign.
    """

    benchmarks: Tuple[str, str]
    policy: str
    smt_ipcs: Tuple[float, float]
    single_ipcs: Optional[Tuple[float, float]]
    hmwipc: Optional[float]
    stats: SMTStats


def run_single_thread_ipc(
    benchmark: object,
    instructions: int = DEFAULT_INSTRUCTIONS,
    seed: int = 1,
    config: Optional[MachineConfig] = None,
    warmup_instructions: int = 15_000,
    backend: str = "cycle",
) -> float:
    """IPC of a benchmark running alone on the (8-wide) SMT machine.

    On ``backend="trace"`` the returned IPC is the trace estimate (bounded
    by the replay's idealized IPC-1 front end); it is only meaningful as a
    weighting denominator against SMT IPCs measured on the same backend.
    """
    machine = config if config is not None else MachineConfig.smt_8wide()
    predictor = ThresholdAndCountPredictor(threshold=3)
    session = build_session(
        benchmark, predictor, config=machine, seed=seed, backend=backend
    )
    warmup_snapshot = None
    if warmup_instructions > 0:
        session.run(max_instructions=warmup_instructions)
        warmup_snapshot = replace(session.stats)
    stats = session.run(max_instructions=warmup_instructions + instructions)
    if warmup_snapshot is not None:
        stats = _subtract_stats(stats, warmup_snapshot)
    return stats.ipc


def _make_policy_and_predictor(policy_name: str, jrs_threshold: int,
                               relog_period_cycles: int
                               ) -> Tuple[FetchPolicy, callable]:
    """Return (policy, per-thread predictor factory) for one policy name."""
    if policy_name == "icount":
        return ICountPolicy(), lambda: ThresholdAndCountPredictor(threshold=3)
    if policy_name == "round-robin":
        return RoundRobinPolicy(), lambda: ThresholdAndCountPredictor(threshold=3)
    if policy_name == "count":
        return (CountConfidencePolicy(threshold=jrs_threshold),
                lambda: ThresholdAndCountPredictor(threshold=jrs_threshold))
    if policy_name == "paco":
        return (PaCoConfidencePolicy(),
                lambda: PaCoPredictor(relog_period_cycles=relog_period_cycles))
    raise ValueError(f"unknown SMT fetch policy {policy_name!r}")


def run_smt_experiment(
    benchmark_a: object,
    benchmark_b: object,
    policy: str = "paco",
    jrs_threshold: int = 3,
    instructions: int = 2 * DEFAULT_INSTRUCTIONS,
    seed: int = 1,
    relog_period_cycles: int = DEFAULT_RELOG_PERIOD,
    single_thread_instructions: Optional[int] = None,
    single_ipcs: Optional[Tuple[float, float]] = None,
    warmup_instructions: int = 30_000,
    backend: str = "cycle",
    measure_single_ipcs: bool = True,
) -> SMTResult:
    """Run one benchmark pair in SMT mode under one fetch policy.

    ``policy`` is one of ``"icount"``, ``"round-robin"``, ``"count"``
    (threshold-and-count confidence with ``jrs_threshold``) or ``"paco"``.
    Single-thread IPCs for the HMWIPC weighting are either supplied by the
    caller (so they can be computed once and reused across policies),
    measured here, or — with ``measure_single_ipcs=False`` — skipped
    entirely (the result carries raw SMT IPCs and ``hmwipc=None``; the
    caller weighs them against its own single-thread stage).

    ``backend="cycle"`` runs the full SMT core; ``backend="trace"`` runs
    the interleaved trace replays of
    :class:`~repro.backends.smt_trace.TraceSMTCore`, whose policy
    orderings are parity-gated against the cycle model.
    ``warmup_instructions`` total retired instructions are excluded from
    the reported IPCs.
    """
    if backend not in ("cycle", "trace"):
        from repro.backends import describe_backends
        raise ValueError(
            f"unknown backend {backend!r} for the SMT experiment "
            f"(known: cycle, trace; registered: {describe_backends()})")
    spec_a = _resolve_spec(benchmark_a)
    spec_b = _resolve_spec(benchmark_b)
    smt_config = SMTConfig()
    machine = smt_config.machine
    fetch_policy, predictor_factory = _make_policy_and_predictor(
        policy, jrs_threshold, relog_period_cycles
    )

    engines: List[FetchEngine] = []
    for thread_id, spec in enumerate((spec_a, spec_b)):
        generator = WorkloadGenerator(spec, seed=seed + thread_id, thread_id=thread_id)
        frontend = build_frontend(machine)
        confidence = build_confidence(machine)
        engines.append(FetchEngine(
            generator=generator,
            frontend=frontend,
            confidence=confidence,
            path_confidence=predictor_factory(),
            wrongpath_seed=seed + 10 + thread_id,
        ))

    if backend == "trace":
        from repro.backends.smt_trace import build_trace_smt_core
        core = build_trace_smt_core(engines, smt_config,
                                    fetch_policy=fetch_policy)
    else:
        threads = [SMTThread(thread_id=thread_id, fetch_engine=engine)
                   for thread_id, engine in enumerate(engines)]
        core = SMTCore(config=smt_config, threads=threads,
                       fetch_policy=fetch_policy)
    warmup_retired = (0, 0)
    warmup_cycles = 0
    if warmup_instructions > 0:
        warm = core.run(max_total_instructions=warmup_instructions)
        warmup_retired = (warm.threads[0].retired_instructions,
                          warm.threads[1].retired_instructions)
        warmup_cycles = warm.cycles
    stats = core.run(max_total_instructions=warmup_instructions + instructions)
    measured_cycles = stats.cycles - warmup_cycles
    if measured_cycles <= 0:
        # Warm-up consumed the whole run: the per-thread retirement deltas
        # below would be divided by a clamped denominator and silently
        # report garbage IPCs.  Fail loudly instead.
        raise ValueError(
            "empty SMT measurement window: warm-up used all "
            f"{stats.cycles} cycles (warmup_instructions="
            f"{warmup_instructions}, instructions={instructions}); "
            "increase the instruction budget or shrink the warm-up"
        )

    if single_ipcs is None and measure_single_ipcs:
        budget = (single_thread_instructions if single_thread_instructions is not None
                  else instructions // 2)
        single_ipcs = (
            run_single_thread_ipc(spec_a, instructions=budget, seed=seed,
                                  backend=backend),
            run_single_thread_ipc(spec_b, instructions=budget, seed=seed + 1,
                                  backend=backend),
        )

    smt_ipcs = (
        (stats.threads[0].retired_instructions - warmup_retired[0]) / measured_cycles,
        (stats.threads[1].retired_instructions - warmup_retired[1]) / measured_cycles,
    )
    metric = hmwipc(single_ipcs, smt_ipcs) if single_ipcs is not None else None
    return SMTResult(
        benchmarks=(spec_a.name, spec_b.name),
        policy=fetch_policy.name,
        smt_ipcs=smt_ipcs,
        single_ipcs=single_ipcs,
        hmwipc=metric,
        stats=stats,
    )
