"""SMT performance metrics.

The paper uses the *harmonic mean of weighted IPCs* (HMWIPC) as the SMT
fetch-prioritization metric (Equation 6), following Luo et al.'s argument
that it balances throughput and fairness:

.. math::

    \\text{HMWIPC} = N \\Big/ \\sum_i \\frac{\\text{SingleIPC}_i}{\\text{IPC}_i}
"""

from __future__ import annotations

from typing import Sequence


def weighted_ipc(single_ipc: float, smt_ipc: float) -> float:
    """One thread's weighted IPC: its SMT IPC relative to running alone."""
    if single_ipc <= 0.0:
        raise ValueError("single-thread IPC must be positive")
    return smt_ipc / single_ipc


def hmwipc(single_ipcs: Sequence[float], smt_ipcs: Sequence[float]) -> float:
    """Harmonic mean of weighted IPCs (paper Equation 6)."""
    if len(single_ipcs) != len(smt_ipcs):
        raise ValueError("need one single-thread IPC per SMT IPC")
    if not single_ipcs:
        raise ValueError("need at least one thread")
    denominator = 0.0
    for single, smt in zip(single_ipcs, smt_ipcs):
        if single <= 0.0:
            raise ValueError("single-thread IPC must be positive")
        if smt <= 0.0:
            raise ValueError("SMT IPC must be positive")
        denominator += single / smt
    return len(single_ipcs) / denominator
