"""Instance observers.

An *instance* (paper Section 4.3) is any event that can change the path
confidence estimate — fetching an instruction or executing one.  The
observers here are attached to an :class:`~repro.pipeline.core.OutOfOrderCore`
and record, at every instance, the predictions of one or more path
confidence predictors together with the oracle's knowledge of whether the
front end is currently on the good path.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from repro.common.stats import ReliabilityDiagram
from repro.pathconf.base import PathConfidencePredictor
from repro.pathconf.threshold_count import ThresholdAndCountPredictor
from repro.pipeline.core import InstanceObserver, RunEventBatch


class PathConfidenceObserver(InstanceObserver):
    """Builds a reliability diagram for one path confidence predictor."""

    def __init__(self, predictor: PathConfidencePredictor,
                 num_bins: int = 100,
                 kinds: Optional[Sequence[str]] = None) -> None:
        self.predictor = predictor
        self.diagram = ReliabilityDiagram(num_bins=num_bins)
        self.kinds = set(kinds) if kinds is not None else None

    def record(self, kind: str, on_goodpath: bool, cycle: int) -> None:
        if self.kinds is not None and kind not in self.kinds:
            return
        self.diagram.record(self.predictor.goodpath_probability(), on_goodpath)

    def record_run(self, kind: str, on_goodpath: bool, cycle: int,
                   count: int) -> None:
        if self.kinds is not None and kind not in self.kinds:
            return
        self.diagram.record(self.predictor.goodpath_probability(), on_goodpath,
                            weight=count)

    def record_runs(self, events: list) -> None:
        # One probability read and one bin resolution for the whole
        # constant-state batch.  The (rare) kind-filtered configuration
        # falls back to per-event updates and reads the probability only
        # if some event survives the filter.
        if self.kinds is None:
            self.diagram.record_many(self.predictor.goodpath_probability(),
                                     events)
            return
        kinds = self.kinds
        probability = None
        for i in range(0, len(events), 4):
            if events[i] in kinds:
                if probability is None:
                    probability = self.predictor.goodpath_probability()
                self.diagram.record(probability, events[i + 1],
                                    weight=events[i + 3])

    @property
    def rms_error(self) -> float:
        return self.diagram.rms_error()


class MultiPredictorObserver(InstanceObserver):
    """Builds one reliability diagram per predictor over the same run."""

    def __init__(self, predictors: Iterable[PathConfidencePredictor],
                 num_bins: int = 100) -> None:
        self.diagrams: Dict[str, ReliabilityDiagram] = {}
        self._predictors = list(predictors)
        for predictor in self._predictors:
            self.diagrams[predictor.name] = ReliabilityDiagram(num_bins=num_bins)
        # (predictor, diagram) pairs resolved once: record_run runs per
        # instance run, so the per-call name lookups add up.
        self._pairs = [(predictor, self.diagrams[predictor.name])
                       for predictor in self._predictors]

    def record(self, kind: str, on_goodpath: bool, cycle: int) -> None:
        for predictor, diagram in self._pairs:
            diagram.record(predictor.goodpath_probability(), on_goodpath)

    def record_run(self, kind: str, on_goodpath: bool, cycle: int,
                   count: int) -> None:
        # One probability read and one weighted bin update per predictor
        # for the whole run (the trace backend guarantees the predictors'
        # state did not change across it).
        for predictor, diagram in self._pairs:
            diagram.record(predictor.goodpath_probability(), on_goodpath,
                           weight=count)

    def record_runs(self, events: list) -> None:
        # This is the fig8/fig9 hot path.  Single-run batches (the common
        # case when every branch is a predictor state change) skip the
        # fold machinery; longer batches compute the weight column and
        # its integer totals once — they are the same for every diagram —
        # so each predictor only pays one probability read, one bin
        # resolution and the ordered predicted_sum accumulation.
        if len(events) == 4:
            on_goodpath = events[1]
            weight = events[3]
            for predictor, diagram in self._pairs:
                diagram.record(predictor.goodpath_probability(),
                               on_goodpath, weight=weight)
            return
        if type(events) is RunEventBatch:
            # The vectorized trace session shares one fold across every
            # observer of the delivery.
            events.ensure_folded()
            weights = events.weights
            instances = events.instances
            goodpath = events.goodpath
        else:
            weights = events[3::4]
            instances = 0
            goodpath = 0
            for i in range(1, len(events), 4):
                weight = events[i + 2]
                instances += weight
                if events[i]:
                    goodpath += weight
        for predictor, diagram in self._pairs:
            diagram.record_folded(predictor.goodpath_probability(),
                                  weights, instances, goodpath)

    def rms_errors(self) -> Dict[str, float]:
        return {name: diagram.rms_error()
                for name, diagram in self.diagrams.items()}


class CounterGoodpathObserver(InstanceObserver):
    """Measures P(good path | low-confidence branch count == N).

    This is the statistic behind Fig. 3: the same counter value corresponds
    to very different good-path probabilities across benchmarks and phases,
    which is why a count is a poor path confidence estimate.
    """

    def __init__(self, predictor: ThresholdAndCountPredictor,
                 max_count: int = 16) -> None:
        self.predictor = predictor
        self.max_count = max_count
        self.instances = [0] * (max_count + 1)
        self.goodpath_instances = [0] * (max_count + 1)

    def record(self, kind: str, on_goodpath: bool, cycle: int) -> None:
        count = min(self.predictor.low_confidence_count, self.max_count)
        self.instances[count] += 1
        if on_goodpath:
            self.goodpath_instances[count] += 1

    def record_run(self, kind: str, on_goodpath: bool, cycle: int,
                   count: int) -> None:
        bucket = min(self.predictor.low_confidence_count, self.max_count)
        self.instances[bucket] += count
        if on_goodpath:
            self.goodpath_instances[bucket] += count

    def record_runs(self, events: list) -> None:
        # One counter read for the whole constant-state batch; the
        # integer totals fold exactly.  Single-run batches skip the loop.
        bucket = min(self.predictor.low_confidence_count, self.max_count)
        if len(events) == 4:
            weight = events[3]
            self.instances[bucket] += weight
            if events[1]:
                self.goodpath_instances[bucket] += weight
            return
        if type(events) is RunEventBatch:
            events.ensure_folded()
            instances = events.instances
            goodpath = events.goodpath
        else:
            instances = 0
            goodpath = 0
            for i in range(3, len(events), 4):
                weight = events[i]
                instances += weight
                if events[i - 2]:
                    goodpath += weight
        self.instances[bucket] += instances
        self.goodpath_instances[bucket] += goodpath

    def goodpath_probability(self, count: int) -> float:
        """Observed good-path probability when exactly ``count`` branches are out."""
        if not 0 <= count <= self.max_count:
            raise ValueError(f"count {count} out of range")
        if self.instances[count] == 0:
            return 0.0
        return self.goodpath_instances[count] / self.instances[count]

    def occupancy(self, count: int) -> int:
        return self.instances[count]


class PhaseAwareCounterObserver(InstanceObserver):
    """Like :class:`CounterGoodpathObserver`, but split by program phase.

    Used for Fig. 3(b): the good-path probability at a fixed counter value
    differs between phases of the same benchmark.  The observer reads the
    current phase from the workload generator at every instance.
    """

    def __init__(self, predictor: ThresholdAndCountPredictor,
                 generator, max_count: int = 16) -> None:
        self.predictor = predictor
        self.generator = generator
        self.max_count = max_count
        self._instances: Dict[str, list] = {}
        self._goodpath: Dict[str, list] = {}

    def record(self, kind: str, on_goodpath: bool, cycle: int) -> None:
        self.record_run(kind, on_goodpath, cycle, 1)

    def record_run(self, kind: str, on_goodpath: bool, cycle: int,
                   count: int) -> None:
        phase = self.generator.current_phase_label or "all"
        if phase not in self._instances:
            self._instances[phase] = [0] * (self.max_count + 1)
            self._goodpath[phase] = [0] * (self.max_count + 1)
        bucket = min(self.predictor.low_confidence_count, self.max_count)
        self._instances[phase][bucket] += count
        if on_goodpath:
            self._goodpath[phase][bucket] += count

    def record_runs(self, events: list) -> None:
        # One phase lookup and one counter read for the whole
        # constant-state batch (the trace backend closes the buffered
        # span at phase boundaries, so the label is batch-constant too).
        phase = self.generator.current_phase_label or "all"
        if phase not in self._instances:
            self._instances[phase] = [0] * (self.max_count + 1)
            self._goodpath[phase] = [0] * (self.max_count + 1)
        bucket = min(self.predictor.low_confidence_count, self.max_count)
        if type(events) is RunEventBatch:
            events.ensure_folded()
            instances = events.instances
            goodpath = events.goodpath
        else:
            instances = 0
            goodpath = 0
            for i in range(3, len(events), 4):
                weight = events[i]
                instances += weight
                if events[i - 2]:
                    goodpath += weight
        self._instances[phase][bucket] += instances
        self._goodpath[phase][bucket] += goodpath

    def phases(self) -> Sequence[str]:
        return list(self._instances)

    def goodpath_probability(self, phase: str, count: int) -> float:
        if phase not in self._instances:
            raise KeyError(f"unknown phase {phase!r}")
        if self._instances[phase][count] == 0:
            return 0.0
        return self._goodpath[phase][count] / self._instances[phase][count]

    def occupancy(self, phase: str, count: int) -> int:
        if phase not in self._instances:
            return 0
        return self._instances[phase][count]
