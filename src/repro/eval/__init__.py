"""Evaluation machinery: observers, profilers, metrics, harnesses and reports.

Everything the paper's evaluation section needs that is not itself a
hardware mechanism lives here:

* :mod:`repro.eval.observers` — instance observers that build reliability
  diagrams and conditional good-path statistics during a simulation.
* :mod:`repro.eval.profiling` — an MDC-bucket mispredict-rate profiler
  (Fig. 2) implemented as a path confidence predictor so it can ride along
  in a composite.
* :mod:`repro.eval.metrics` — HMWIPC and related SMT metrics.
* :mod:`repro.eval.harness` — convenience builders that wire a benchmark,
  the predictors and a core together, and run the standard accuracy /
  gating / SMT experiments.
* :mod:`repro.eval.reports` — plain-text table formatting shared by the
  experiment drivers and the benchmark harness.
"""

from repro.eval.observers import (
    PathConfidenceObserver,
    MultiPredictorObserver,
    CounterGoodpathObserver,
    PhaseAwareCounterObserver,
)
from repro.eval.profiling import MDCProfiler
from repro.eval.metrics import hmwipc, weighted_ipc
from repro.eval.harness import (
    AccuracyResult,
    GatingResult,
    SMTResult,
    build_single_core,
    run_accuracy_experiment,
    run_gating_experiment,
    run_smt_experiment,
    run_single_thread_ipc,
)
from repro.eval.reports import format_table

__all__ = [
    "PathConfidenceObserver",
    "MultiPredictorObserver",
    "CounterGoodpathObserver",
    "PhaseAwareCounterObserver",
    "MDCProfiler",
    "hmwipc",
    "weighted_ipc",
    "AccuracyResult",
    "GatingResult",
    "SMTResult",
    "build_single_core",
    "run_accuracy_experiment",
    "run_gating_experiment",
    "run_smt_experiment",
    "run_single_thread_ipc",
    "format_table",
]
