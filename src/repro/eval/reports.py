"""Plain-text table formatting shared by experiment drivers and benches."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render a simple aligned text table.

    Numbers are formatted with four significant decimals; everything else
    with ``str``.  Used by the experiment drivers to print the same rows
    the paper's tables and figures report.
    """
    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.4f}"
        return str(value)

    rendered_rows: List[List[str]] = [[fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
