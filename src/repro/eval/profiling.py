"""Per-MDC-bucket mispredict-rate profiling (the data behind Fig. 2).

:class:`MDCProfiler` implements the path confidence predictor interface so
it can ride along inside a :class:`~repro.pathconf.composite.CompositePathConfidence`
and observe every conditional branch's fetch-time MDC value and
resolution-time outcome without influencing the simulation.  Its output is
the per-MDC mispredict-rate profile: the quantity the paper plots in
Fig. 2 and the input to the Static-MRT ablation.

Like every path confidence predictor, the profiler's per-branch hooks
fire only for *conditional* branches (``on_branch_fetch`` assigns a path
token only to conditionals, and resolve/squash fire only on tokened
records), and its ``goodpath_probability`` is a constant.  The trace
backend's batched observer delivery leans on exactly these properties:
predictor state can change only at conditional predictions/resolutions,
re-log ticks and phase rolls, so buffered run events delivered just
before those points read the same state the per-instance calls did.
"""

from __future__ import annotations

from typing import Dict, List

from repro.pathconf.base import BranchFetchInfo, PathConfidencePredictor


class MDCProfiler(PathConfidencePredictor):
    """Counts, per MDC value, how many branch predictions were right or wrong."""

    name = "mdc-profiler"
    record_slots = ("profile_bucket",)

    def __init__(self, num_mdc_values: int = 16) -> None:
        self.num_mdc_values = num_mdc_values
        self.correct: List[int] = [0] * num_mdc_values
        self.mispredicted: List[int] = [0] * num_mdc_values

    # --- path confidence interface (profiling only) -------------------- #

    def on_branch_fetch(self, info: BranchFetchInfo) -> BranchFetchInfo:
        info.profile_bucket = min(info.mdc_value, self.num_mdc_values - 1)
        return info

    def on_branch_resolve(self, token: BranchFetchInfo, mispredicted: bool) -> None:
        bucket = token.profile_bucket
        if bucket is None:
            return
        token.profile_bucket = None
        if mispredicted:
            self.mispredicted[bucket] += 1
        else:
            self.correct[bucket] += 1

    def on_branch_squash(self, token: BranchFetchInfo) -> None:
        token.profile_bucket = None

    def goodpath_probability(self) -> float:
        return 1.0

    # --- profile outputs ------------------------------------------------ #

    def samples(self, mdc_value: int) -> int:
        return self.correct[mdc_value] + self.mispredicted[mdc_value]

    def mispredict_rate(self, mdc_value: int) -> float:
        """Observed mispredict rate of one MDC bucket (0.0 with no samples)."""
        total = self.samples(mdc_value)
        if total == 0:
            return 0.0
        return self.mispredicted[mdc_value] / total

    def mispredict_rates(self) -> Dict[int, float]:
        """Per-bucket mispredict rates for buckets that saw any samples."""
        return {
            mdc: self.mispredict_rate(mdc)
            for mdc in range(self.num_mdc_values)
            if self.samples(mdc) > 0
        }

    def static_profile(self, floor: float = 0.005) -> List[float]:
        """A mispredict-rate profile usable as a Static-MRT configuration.

        Buckets with no samples inherit the previous bucket's rate; a small
        floor keeps the encoded probabilities finite.
        """
        profile: List[float] = []
        previous = 0.25
        for mdc in range(self.num_mdc_values):
            if self.samples(mdc) > 0:
                previous = max(self.mispredict_rate(mdc), floor)
            profile.append(previous)
        return profile
