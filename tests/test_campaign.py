"""Tests for the campaign subsystem: plan, shard, resume, merge, CLI.

The acceptance contract (mirrored from the campaign design notes):

* a 2-shard campaign run of a suite, merged, produces results
  byte-identical to the unsharded run;
* killing a shard mid-run and re-invoking it resumes from the journal
  without re-executing completed jobs;
* ``--preset paper`` plans 100M-instruction trace-backend jobs
  end-to-end.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path

import pytest

import repro.__main__ as cli
from repro.campaign import (
    CampaignCoverageError,
    CampaignMergeError,
    CampaignPlan,
    CampaignPlanError,
    CampaignShardError,
    CampaignSpec,
    CampaignSpecError,
    PlannedJob,
    ReplayRunner,
    build_plan,
    campaign_status,
    load_plan,
    merge_campaign,
    preset,
    run_shard,
    save_plan,
    shard_of,
)
from repro.campaign.shard import journal_path, result_path
from repro.experiments import table7_rms
from repro.runner import Job, SweepRunner, register_experiment

# --------------------------------------------------------------------- #
# fixtures
# --------------------------------------------------------------------- #

#: Tiny but real campaign: three trace-backend table7 jobs.
MINI_SPEC = CampaignSpec(
    name="mini",
    experiments=("table7",),
    benchmarks=("twolf", "vortex", "gzip"),
    instructions=4_000,
    warmup_instructions=1_000,
    backend="trace",
)


@pytest.fixture()
def mini_plan() -> CampaignPlan:
    return build_plan(MINI_SPEC)


@register_experiment("campaign-probe")
def _probe(value: int, log: str, seed: int = 1) -> int:
    """Test-only kind: logs every execution so resume tests can count."""
    with open(log, "a", encoding="utf-8") as handle:
        handle.write(f"{value}\n")
    return value * 10 + seed


def probe_plan(log: Path, count: int = 5) -> CampaignPlan:
    """A hand-built plan over the counting probe kind."""
    planned = [
        PlannedJob(
            job=Job.make("campaign-probe", value=i, log=str(log)),
            sources=("probe@seed1",),
        )
        for i in range(count)
    ]
    return CampaignPlan(
        spec=CampaignSpec(name="probe", experiments=("table7",)),
        planned=planned,
        code_version="probe-version",
    )


def executions(log: Path):
    if not log.is_file():
        return []
    return log.read_text(encoding="utf-8").splitlines()


# --------------------------------------------------------------------- #
# spec
# --------------------------------------------------------------------- #


class TestCampaignSpec:
    def test_round_trips_through_json(self):
        spec = MINI_SPEC.validated()
        clone = CampaignSpec.from_mapping(
            json.loads(json.dumps(spec.to_mapping())))
        assert clone == spec
        assert clone.digest() == spec.digest()

    def test_rejects_unknown_experiment(self):
        with pytest.raises(CampaignSpecError, match="unknown experiment"):
            CampaignSpec(name="x", experiments=("fig99",)).validated()

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(CampaignSpecError, match="unknown benchmark"):
            CampaignSpec(name="x", experiments=("table7",),
                         benchmarks=("nosuch",)).validated()

    def test_rejects_duplicate_seeds_and_bad_budgets(self):
        with pytest.raises(CampaignSpecError, match="duplicate seeds"):
            CampaignSpec(name="x", experiments=("table7",),
                         seeds=(1, 1)).validated()
        with pytest.raises(CampaignSpecError, match="positive integer"):
            CampaignSpec(name="x", experiments=("table7",),
                         instructions=0).validated()

    def test_presets_validate(self):
        for name in ("paper", "ci"):
            preset(name).validated()

    def test_unknown_preset(self):
        with pytest.raises(CampaignSpecError, match="unknown preset"):
            preset("nightly")


# --------------------------------------------------------------------- #
# planning
# --------------------------------------------------------------------- #


class TestPlanning:
    def test_plan_is_deterministic(self, mini_plan):
        again = build_plan(MINI_SPEC)
        assert again.job_digests() == mini_plan.job_digests()
        assert again.digest() == mini_plan.digest()

    def test_paper_preset_plans_100m_trace_jobs_end_to_end(self):
        plan = build_plan(preset("paper"))
        assert len(plan.planned) > 0
        for planned in plan.planned:
            assert planned.job.backend == "trace"
            assert planned.job.params["instructions"] == 100_000_000
        # Every figure/table driver joins the paper preset uniformly.
        sources = {source.split("@")[0]
                   for planned in plan.planned
                   for source in planned.sources}
        assert sources == {"fig2", "fig3", "table7", "fig8", "fig10",
                           "fig12", "tableA1", "ablations"}
        # table7 and fig8 consume identical paco jobs: planned once,
        # attributed to both.
        shared = [planned for planned in plan.planned
                  if len(planned.sources) > 1]
        assert shared, "expected table7/fig8 to share accuracy jobs"
        assert {"table7@seed1", "fig8@seed1"} <= set(shared[0].sources)

    def test_fig9_is_an_alias_of_fig8(self):
        spec = dataclasses.replace(MINI_SPEC, experiments=("fig8", "fig9"))
        plan = build_plan(spec)
        assert all(source.startswith("fig8@")
                   for planned in plan.planned
                   for source in planned.sources)

    def test_fig12_plans_both_stages_statically(self):
        """SMT-stage job identities no longer embed measured IPCs, so the
        whole two-stage study enumerates at plan time."""
        spec = dataclasses.replace(MINI_SPEC, experiments=("fig12",),
                                   benchmarks=None)
        plan = build_plan(spec)
        kinds = {planned.job.experiment for planned in plan.planned}
        assert kinds == {"single-ipc", "smt"}
        for planned in plan.planned:
            assert planned.job.backend == "trace"
            if planned.job.experiment == "smt":
                assert "single_ipcs" not in planned.job.params
                assert planned.job.params["measure_single_ipcs"] is False

    def test_fig10_plans_on_trace_backend(self):
        spec = dataclasses.replace(MINI_SPEC, experiments=("fig10",),
                                   benchmarks=None)
        plan = build_plan(spec)
        assert all(planned.job.backend == "trace"
                   for planned in plan.planned)

    def test_driver_rejection_fails_at_plan_time(self):
        # fig12 runs fixed pairs; a benchmark-subset spec cannot plan.
        spec = dataclasses.replace(MINI_SPEC, experiments=("fig12",))
        with pytest.raises(CampaignPlanError, match="fixed benchmark pairs"):
            build_plan(spec)

    def test_multiple_seeds_multiply_jobs(self):
        spec = dataclasses.replace(MINI_SPEC, seeds=(1, 2))
        plan = build_plan(spec)
        assert len(plan.planned) == 2 * len(build_plan(MINI_SPEC).planned)


class TestSharding:
    def test_shards_partition_the_plan_exactly(self, mini_plan):
        plan = build_plan(preset("ci"))
        for count in (1, 2, 3, 5):
            seen = []
            for index in range(1, count + 1):
                seen.extend(p.digest for p in plan.shard_jobs(index, count))
            assert sorted(seen) == sorted(plan.job_digests())

    def test_assignment_is_stable_under_job_list_growth(self):
        """Adding an experiment must not move existing jobs across shards."""
        small = build_plan(dataclasses.replace(
            preset("ci"), experiments=("table7",)))
        grown = build_plan(preset("ci"))
        assert set(small.job_digests()) <= set(grown.job_digests())
        for digest in small.job_digests():
            assert shard_of(digest, 4) == shard_of(digest, 4)
        small_shard1 = {p.digest for p in small.shard_jobs(1, 4)}
        grown_shard1 = {p.digest for p in grown.shard_jobs(1, 4)}
        assert small_shard1 <= grown_shard1

    def test_bad_shard_coordinates(self, mini_plan):
        with pytest.raises(CampaignPlanError):
            mini_plan.shard_jobs(0, 2)
        with pytest.raises(CampaignPlanError):
            mini_plan.shard_jobs(3, 2)


class TestPlanFile:
    def test_save_load_round_trip(self, mini_plan, tmp_path):
        save_plan(mini_plan, tmp_path)
        loaded = load_plan(tmp_path)
        assert loaded.digest() == mini_plan.digest()
        assert [p.job for p in loaded.planned] == \
            [p.job for p in mini_plan.planned]
        assert loaded.spec == mini_plan.spec.validated()

    def test_tampered_plan_is_rejected(self, mini_plan, tmp_path):
        path = save_plan(mini_plan, tmp_path)
        mapping = json.loads(path.read_text(encoding="utf-8"))
        mapping["jobs"][0]["seed"] = 99
        path.write_text(json.dumps(mapping), encoding="utf-8")
        with pytest.raises(CampaignPlanError, match="digest mismatch"):
            load_plan(tmp_path)

    def test_missing_plan_has_helpful_error(self, tmp_path):
        with pytest.raises(CampaignPlanError, match="campaign plan"):
            load_plan(tmp_path)


# --------------------------------------------------------------------- #
# shard execution + resume
# --------------------------------------------------------------------- #


class TestShardExecution:
    def test_journal_resume_skips_completed_jobs(self, tmp_path):
        log = tmp_path / "probe.log"
        plan = probe_plan(log)
        first = run_shard(plan, 1, 1, tmp_path / "camp", SweepRunner(),
                          max_jobs=2)
        assert (first.executed, first.finished) == (2, False)
        assert len(executions(log)) == 2

        second = run_shard(plan, 1, 1, tmp_path / "camp", SweepRunner())
        assert second.resumed == 2
        assert second.executed == len(plan.planned) - 2
        assert second.finished
        # No job ran twice.
        assert len(executions(log)) == len(plan.planned)

    def test_journal_entry_without_value_file_is_reexecuted(self, tmp_path):
        log = tmp_path / "probe.log"
        plan = probe_plan(log)
        camp = tmp_path / "camp"
        status = run_shard(plan, 1, 1, camp, SweepRunner())
        assert status.finished
        # Simulate a crash between value write and journal append on one
        # job by deleting its value file: only that job may re-run.
        victim = plan.planned[0].digest
        (camp / "shards" / "values" / f"{victim}.pkl").unlink()
        again = run_shard(plan, 1, 1, camp, SweepRunner())
        assert again.executed == 1
        assert again.finished
        assert len(executions(log)) == len(plan.planned) + 1

    def test_torn_journal_tail_is_tolerated(self, tmp_path):
        log = tmp_path / "probe.log"
        plan = probe_plan(log)
        camp = tmp_path / "camp"
        run_shard(plan, 1, 1, camp, SweepRunner(), max_jobs=2)
        journal = journal_path(camp, 1, 1)
        with journal.open("a", encoding="utf-8") as handle:
            handle.write('{"digest": "interrupted-mid-wr')
        status = run_shard(plan, 1, 1, camp, SweepRunner())
        assert status.resumed == 2
        assert status.finished

    @pytest.mark.parametrize("bad", [0, -1, -5])
    def test_nonpositive_max_jobs_is_rejected(self, tmp_path, bad):
        """A zero/negative slice would silently drop every pending job
        (``pending[:max_jobs]``); the flag must fail loudly instead."""
        log = tmp_path / "probe.log"
        with pytest.raises(CampaignShardError, match="--max-jobs"):
            run_shard(probe_plan(log), 1, 1, tmp_path / "camp",
                      SweepRunner(), max_jobs=bad)
        assert executions(log) == []

    def test_interior_journal_corruption_warns_with_line_number(
            self, tmp_path):
        """Corruption before the final line is not a torn append — the
        operator is told which lines were dropped; the tail stays silent."""
        log = tmp_path / "probe.log"
        plan = probe_plan(log)
        camp = tmp_path / "camp"
        run_shard(plan, 1, 1, camp, SweepRunner(), max_jobs=3)
        journal = journal_path(camp, 1, 1)
        lines = journal.read_text(encoding="utf-8").splitlines()
        lines[1] = '{"digest": corrupted-by-a-disk-error'
        journal.write_text("\n".join(lines) + "\n", encoding="utf-8")
        messages = []
        status = run_shard(plan, 1, 1, camp, SweepRunner(),
                           echo=messages.append)
        warnings = [m for m in messages if "malformed interior" in m]
        assert len(warnings) == 1
        assert "line 2" in warnings[0]
        assert status.finished
        # The corrupted entry's job re-executed; the torn-tail test above
        # pins that a truncated *final* line stays silent.
        assert len(executions(log)) == len(plan.planned) + 1

    def test_journal_from_a_different_plan_is_rejected(self, tmp_path):
        log = tmp_path / "probe.log"
        camp = tmp_path / "camp"
        run_shard(probe_plan(log), 1, 1, camp, SweepRunner())
        other = probe_plan(log, count=2)   # fewer jobs: journal has extras
        with pytest.raises(CampaignShardError, match="different plan"):
            run_shard(other, 1, 1, camp, SweepRunner())

    def test_results_flow_through_the_sweep_cache(self, tmp_path):
        from repro.runner import ResultCache

        log = tmp_path / "probe.log"
        plan = probe_plan(log)
        cache = ResultCache(tmp_path / "cache", version="v1")
        run_shard(plan, 1, 1, tmp_path / "camp-a", SweepRunner(cache=cache))
        assert len(executions(log)) == len(plan.planned)
        # A second campaign directory, same cache: all hits, no new runs.
        run_shard(plan, 1, 1, tmp_path / "camp-b", SweepRunner(cache=cache))
        assert len(executions(log)) == len(plan.planned)


class TestCodeVersioning:
    """Journals and shard files carry the *executing* code version, so a
    source edit between invocations re-executes stale jobs (like a cache
    miss) and a merge refuses shards from mixed code states."""

    def test_resume_after_code_edit_reexecutes_stale_jobs(
            self, tmp_path, monkeypatch):
        import repro.campaign.shard as shard_mod

        log = tmp_path / "probe.log"
        plan = probe_plan(log)
        camp = tmp_path / "camp"
        monkeypatch.setattr(shard_mod, "code_version", lambda: "v1")
        run_shard(plan, 1, 1, camp, SweepRunner(), max_jobs=2)
        assert len(executions(log)) == 2

        monkeypatch.setattr(shard_mod, "code_version", lambda: "v2")
        status = run_shard(plan, 1, 1, camp, SweepRunner())
        assert status.resumed == 0            # v1 entries are stale
        assert status.executed == len(plan.planned)
        assert status.finished
        assert len(executions(log)) == 2 + len(plan.planned)

    def test_shard_result_records_executing_code_version(
            self, tmp_path, monkeypatch):
        import pickle

        import repro.campaign.shard as shard_mod

        log = tmp_path / "probe.log"
        plan = probe_plan(log)
        monkeypatch.setattr(shard_mod, "code_version", lambda: "v-exec")
        status = run_shard(plan, 1, 1, tmp_path / "camp", SweepRunner())
        with status.result_file.open("rb") as handle:
            payload = pickle.load(handle)
        # The plan-time version is recorded in campaign.json; the shard
        # file must carry what actually executed.
        assert plan.code_version == "probe-version"
        assert payload["code_version"] == "v-exec"

    def test_merge_rejects_mixed_code_version_shards(self, tmp_path,
                                                     monkeypatch):
        import repro.campaign.shard as shard_mod

        log = tmp_path / "probe.log"
        plan = probe_plan(log)
        camp = tmp_path / "camp"
        monkeypatch.setattr(shard_mod, "code_version", lambda: "v1")
        run_shard(plan, 1, 2, camp, SweepRunner())
        monkeypatch.setattr(shard_mod, "code_version", lambda: "v2")
        run_shard(plan, 2, 2, camp, SweepRunner())
        with pytest.raises(CampaignMergeError, match="code version"):
            merge_campaign(plan, camp)


# --------------------------------------------------------------------- #
# merge
# --------------------------------------------------------------------- #


class TestMerge:
    def run_all_shards(self, plan, camp, count):
        for index in range(1, count + 1):
            run_shard(plan, index, count, camp, SweepRunner())

    def test_two_shard_merge_is_byte_identical_to_unsharded(
            self, mini_plan, tmp_path):
        camp = tmp_path / "camp"
        save_plan(mini_plan, camp)
        self.run_all_shards(mini_plan, camp, 2)
        merged = merge_campaign(mini_plan, camp)

        reference = table7_rms.report(
            runner=SweepRunner(), **MINI_SPEC.driver_kwargs(1))
        assert merged.texts[("table7", 1)] == reference
        written = (camp / "merged" / "table7-seed1.txt").read_text(
            encoding="utf-8")
        assert written == reference + "\n"

    def test_shard_counts_do_not_change_the_merge(self, mini_plan,
                                                  tmp_path):
        texts = []
        for count in (1, 3):
            camp = tmp_path / f"camp-{count}"
            self.run_all_shards(mini_plan, camp, count)
            texts.append(
                merge_campaign(mini_plan, camp).texts[("table7", 1)])
        assert texts[0] == texts[1]

    def test_interrupted_then_resumed_campaign_merges_identically(
            self, mini_plan, tmp_path):
        camp = tmp_path / "camp"
        run_shard(mini_plan, 1, 2, camp, SweepRunner(), max_jobs=1)
        run_shard(mini_plan, 1, 2, camp, SweepRunner())      # resume
        run_shard(mini_plan, 2, 2, camp, SweepRunner())
        merged = merge_campaign(mini_plan, camp)
        reference = table7_rms.report(
            runner=SweepRunner(), **MINI_SPEC.driver_kwargs(1))
        assert merged.texts[("table7", 1)] == reference

    def test_missing_shard_fails_coverage(self, mini_plan, tmp_path):
        camp = tmp_path / "camp"
        run_shard(mini_plan, 1, 2, camp, SweepRunner())
        with pytest.raises(CampaignCoverageError, match="incomplete"):
            merge_campaign(mini_plan, camp)

    def test_foreign_plan_shard_is_rejected(self, mini_plan, tmp_path):
        camp = tmp_path / "camp"
        self.run_all_shards(mini_plan, camp, 1)
        other = build_plan(dataclasses.replace(
            MINI_SPEC, benchmarks=("twolf", "vortex")))
        with pytest.raises(CampaignMergeError, match="different campaign"):
            merge_campaign(other, camp)

    def test_overlapping_shards_are_rejected(self, mini_plan, tmp_path):
        import pickle
        import shutil

        camp = tmp_path / "camp"
        self.run_all_shards(mini_plan, camp, 2)
        # Copy shard 1's results into shard 2's file: duplicate coverage.
        path_1, path_2 = (result_path(camp, i, 2) for i in (1, 2))
        with path_1.open("rb") as handle:
            payload_1 = pickle.load(handle)
        with path_2.open("rb") as handle:
            payload_2 = pickle.load(handle)
        payload_2["results"].update(payload_1["results"])
        with path_2.open("wb") as handle:
            pickle.dump(payload_2, handle)
        with pytest.raises(CampaignCoverageError, match="covered by both"):
            merge_campaign(mini_plan, camp)
        del shutil

    def test_replay_runner_refuses_unknown_jobs(self):
        runner = ReplayRunner({})
        with pytest.raises(CampaignCoverageError, match="no result"):
            runner.map([Job.make("accuracy", benchmark="twolf",
                                 instructions=1000)])


# --------------------------------------------------------------------- #
# status
# --------------------------------------------------------------------- #


class TestStatus:
    def test_progress_accounting(self, mini_plan, tmp_path):
        camp = tmp_path / "camp"
        status = campaign_status(mini_plan, camp)
        assert status.shard_count is None
        assert status.completed_jobs == 0

        run_shard(mini_plan, 1, 2, camp, SweepRunner())
        status = campaign_status(mini_plan, camp)
        assert status.shard_count == 2
        assert status.started_shards == 1
        assert status.finished_shards == 1
        assert status.completed_jobs == len(mini_plan.shard_jobs(1, 2))

        run_shard(mini_plan, 2, 2, camp, SweepRunner())
        merge_campaign(mini_plan, camp)
        status = campaign_status(mini_plan, camp)
        assert status.completed_jobs == status.total_jobs
        assert len(status.merged_files) == 1

    def test_mixed_partitionings_are_flagged_not_shadowed(self, mini_plan,
                                                          tmp_path):
        camp = tmp_path / "camp"
        run_shard(mini_plan, 1, 2, camp, SweepRunner())
        run_shard(mini_plan, 1, 4, camp, SweepRunner())   # oops, wrong N
        status = campaign_status(mini_plan, camp)
        assert status.mixed_shard_counts
        assert status.shard_count is None
        assert {(s.shard_index, s.shard_count) for s in status.shards} == \
            {(1, 2), (1, 4)}

    def test_status_counts_only_current_code_version(self, mini_plan,
                                                     tmp_path, monkeypatch):
        """Status must agree with resume: after a source edit, journaled
        results are stale and the shard is no longer complete."""
        import repro.campaign.status as status_mod

        camp = tmp_path / "camp"
        run_shard(mini_plan, 1, 1, camp, SweepRunner())
        assert campaign_status(mini_plan, camp).completed_jobs == \
            len(mini_plan.planned)

        monkeypatch.setattr(status_mod, "code_version", lambda: "edited")
        stale = campaign_status(mini_plan, camp)
        assert stale.completed_jobs == 0
        assert stale.shards[0].has_result_file
        assert not stale.shards[0].finished

    def test_status_never_loads_result_pickles(self, mini_plan, tmp_path):
        camp = tmp_path / "camp"
        run_shard(mini_plan, 1, 1, camp, SweepRunner())
        # Corrupt the shard result pickle: a read-only status query must
        # neither load nor trip over it.
        result_path(camp, 1, 1).write_bytes(b"garbage")
        status = campaign_status(mini_plan, camp)
        assert status.shards[0].has_result_file
        assert status.completed_jobs == status.total_jobs

    def test_foreign_journal_entries_are_flagged_not_counted(
            self, tmp_path):
        """A journal digest the plan does not assign (another plan shared
        the directory) must not inflate ``completed`` or flip a shard to
        finished — it is reported through ``foreign`` instead."""
        import pickle

        from repro.campaign.shard import values_dir
        from repro.runner.cache import code_version

        log = tmp_path / "probe.log"
        plan = probe_plan(log)
        camp = tmp_path / "camp"
        run_shard(plan, 1, 1, camp, SweepRunner(), max_jobs=4)

        digest = "f" * 64
        with journal_path(camp, 1, 1).open("a",
                                           encoding="utf-8") as handle:
            handle.write(json.dumps({"digest": digest, "label": "foreign",
                                     "code_version": code_version()})
                         + "\n")
        (values_dir(camp) / f"{digest}.pkl").write_bytes(pickle.dumps(42))

        status = campaign_status(plan, camp)
        shard = status.shards[0]
        assert shard.foreign == 1
        # 4 of 5 planned jobs ran; the foreign entry must not make it 5.
        assert shard.completed == 4
        assert not shard.finished
        assert status.completed_jobs == 4


# --------------------------------------------------------------------- #
# drivers' jobs() must match what report() executes
# --------------------------------------------------------------------- #


class RecordingRunner(SweepRunner):
    """Executes normally but records every job that passes through."""

    def __init__(self):
        super().__init__(workers=1)
        self.seen = []

    def map(self, jobs):
        self.seen.extend(jobs)
        return super().map(jobs)


@pytest.mark.parametrize("experiment,kwargs", [
    ("fig2", {"benchmarks": ["twolf", "gzip"]}),
    ("fig3", {"benchmarks": ["twolf"], "quick": True}),
    ("table7", {"benchmarks": ["twolf", "vortex"]}),
    ("fig8", {"benchmarks": ["twolf", "gzip"]}),
    ("tableA1", {"benchmarks": ["twolf"]}),
    ("ablations", {"benchmarks": ["gzip"], "quick": True}),
    ("fig10", {"benchmarks": ["twolf", "gzip"], "quick": True}),
    # trace backend keeps the two-stage SMT study fast enough for a test.
    ("fig12", {"quick": True, "backend": "trace"}),
])
def test_driver_jobs_match_report_execution(experiment, kwargs):
    """The campaign contract: ``jobs()`` enumerates exactly the jobs
    ``report()`` hands to its runner (same digests), so a plan covers a
    merge and nothing more."""
    from repro.campaign.plan import driver_module

    module = driver_module(experiment)
    budgets = dict(instructions=3_000, warmup_instructions=1_000, **kwargs)
    recorder = RecordingRunner()
    module.report(runner=recorder, **budgets)
    executed = {job.digest() for job in recorder.seen}
    planned = {job.digest() for job in module.jobs(**budgets)}
    assert executed == planned


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #


class TestCampaignCli:
    def plan_args(self, camp):
        return ["campaign", "plan", "--experiments", "table7",
                "--benchmarks", "twolf,vortex,gzip",
                "--instructions", "4000", "--warmup-instructions", "1000",
                "--backend", "trace", "--campaign-dir", str(camp)]

    def test_plan_run_merge_round_trip(self, tmp_path, capsys):
        camp = tmp_path / "camp"
        assert cli.main(self.plan_args(camp)) == 0
        assert cli.main(["campaign", "run", "--campaign-dir", str(camp),
                         "--shard", "1/2", "--no-cache"]) == 0
        assert cli.main(["campaign", "run", "--campaign-dir", str(camp),
                         "--shard", "2/2", "--no-cache"]) == 0
        assert cli.main(["campaign", "status",
                         "--campaign-dir", str(camp)]) == 0
        assert cli.main(["campaign", "merge",
                         "--campaign-dir", str(camp)]) == 0
        output = capsys.readouterr().out
        assert "Table 7" in output
        reference = table7_rms.report(
            runner=SweepRunner(), **MINI_SPEC.driver_kwargs(1))
        written = (camp / "merged" / "table7-seed1.txt").read_text(
            encoding="utf-8")
        assert written == reference + "\n"

    def test_merge_without_all_shards_exits_1(self, tmp_path, capsys):
        camp = tmp_path / "camp"
        cli.main(self.plan_args(camp))
        cli.main(["campaign", "run", "--campaign-dir", str(camp),
                  "--shard", "1/2", "--no-cache"])
        capsys.readouterr()
        assert cli.main(["campaign", "merge",
                         "--campaign-dir", str(camp)]) == 1

    def test_replan_differing_spec_requires_force(self, tmp_path, capsys):
        camp = tmp_path / "camp"
        assert cli.main(self.plan_args(camp)) == 0
        different = self.plan_args(camp)
        different[different.index("twolf,vortex,gzip")] = "twolf,vortex"
        capsys.readouterr()
        assert cli.main(different) == 2
        assert "--force" in capsys.readouterr().err
        assert cli.main(different + ["--force"]) == 0

    def test_preset_and_experiments_are_mutually_exclusive(self, tmp_path,
                                                           capsys):
        code = cli.main(["campaign", "plan", "--preset", "ci",
                         "--experiments", "table7",
                         "--campaign-dir", str(tmp_path / "camp")])
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_fig12_campaign_plans(self, tmp_path, capsys):
        camp = tmp_path / "camp"
        code = cli.main(["campaign", "plan", "--experiments", "fig12",
                         "--backend", "trace", "--campaign-dir", str(camp)])
        assert code == 0
        assert "fig12" in capsys.readouterr().out
        plan = load_plan(camp)
        assert {p.job.experiment for p in plan.planned} == \
            {"single-ipc", "smt"}

    def test_status_warns_about_foreign_journal_entries(self, tmp_path,
                                                        capsys):
        import pickle

        from repro.campaign.shard import values_dir
        from repro.runner.cache import code_version

        camp = tmp_path / "camp"
        assert cli.main(self.plan_args(camp)) == 0
        assert cli.main(["campaign", "run", "--campaign-dir", str(camp),
                         "--shard", "1/1", "--no-cache"]) == 0
        digest = "f" * 64
        with journal_path(camp, 1, 1).open("a",
                                           encoding="utf-8") as handle:
            handle.write(json.dumps({"digest": digest, "label": "foreign",
                                     "code_version": code_version()})
                         + "\n")
        (values_dir(camp) / f"{digest}.pkl").write_bytes(pickle.dumps(42))
        capsys.readouterr()
        assert cli.main(["campaign", "status",
                         "--campaign-dir", str(camp)]) == 0
        captured = capsys.readouterr()
        assert "does not assign" in captured.err
        # The foreign entry is excluded from the completed counts.
        plan = load_plan(camp)
        assert f"{len(plan.planned)}/{len(plan.planned)} " in captured.out

    def test_bad_shard_coordinate_exits_2(self, tmp_path, capsys):
        camp = tmp_path / "camp"
        cli.main(self.plan_args(camp))
        capsys.readouterr()
        assert cli.main(["campaign", "run", "--campaign-dir", str(camp),
                         "--shard", "3/2"]) == 2

    def test_run_accepts_block_size(self, tmp_path, capsys, monkeypatch):
        """--block-size on campaign run exports the env knob (so forked
        workers inherit it) and — block size being pure mechanism —
        produces the same merged report as the default."""
        monkeypatch.delenv("REPRO_TRACE_BLOCK", raising=False)
        camp = tmp_path / "camp"
        assert cli.main(self.plan_args(camp)) == 0
        assert cli.main(["campaign", "run", "--campaign-dir", str(camp),
                         "--shard", "1/1", "--no-cache",
                         "--block-size", "7"]) == 0
        assert os.environ["REPRO_TRACE_BLOCK"] == "7"
        assert cli.main(["campaign", "merge",
                         "--campaign-dir", str(camp)]) == 0
        capsys.readouterr()
        written = (camp / "merged" / "table7-seed1.txt").read_text(
            encoding="utf-8")
        reference = table7_rms.report(
            runner=SweepRunner(), **MINI_SPEC.driver_kwargs(1))
        assert written == reference + "\n"

    def test_run_rejects_bad_block_size(self, tmp_path, capsys):
        camp = tmp_path / "camp"
        cli.main(self.plan_args(camp))
        capsys.readouterr()
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["campaign", "run", "--campaign-dir", str(camp),
                      "--shard", "1/1", "--block-size", "0"])
        assert excinfo.value.code == 2
        assert "--block-size" in capsys.readouterr().err


class TestDryRun:
    def test_run_dry_run_lists_jobs_without_executing(self, tmp_path,
                                                      capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert cli.main(["run", "table7", "--dry-run",
                         "--cache-dir", str(tmp_path / "cache")]) == 0
        captured = capsys.readouterr()
        assert "[table7] 12 planned job(s)" in captured.out
        assert "miss" in captured.out
        assert "nothing executed" in captured.err
        # Nothing was simulated and nothing was cached.
        assert not (tmp_path / "cache").exists()

    def test_dry_run_marks_cached_jobs(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert cli.main(["run", "fig2", "--quick",
                         "--cache-dir", str(cache_dir)]) == 0
        capsys.readouterr()
        assert cli.main(["run", "fig2", "--quick", "--dry-run",
                         "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "cached" in out and "miss" not in out

    def test_sweep_dry_run_covers_fig12_fully(self, capsys):
        assert cli.main(["sweep", "--experiments", "fig12", "--dry-run",
                         "--no-cache", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "static stage only" not in out
        assert "single-ipc" in out
        assert "smt[" in out

    def test_dry_run_fig10_on_trace_lists_trace_jobs(self, capsys):
        assert cli.main(["run", "fig10", "--dry-run", "--no-cache",
                         "--quick", "--backend", "trace"]) == 0
        out = capsys.readouterr().out
        assert "backend=trace" in out
        assert "backend=cycle" not in out
