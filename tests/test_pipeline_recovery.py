"""Direct unit tests for misprediction recovery.

``OutOfOrderCore._recover_from_mispredict`` (squash ordering, scheduler
filtering, redirect stall) and ``WrongPathGenerator`` resumption were
previously only exercised indirectly through whole-run goldens; these
tests pin the mechanics down one behaviour at a time.
"""

from __future__ import annotations

import pytest

from repro.eval.harness import build_single_core
from repro.isa.instruction import BranchOutcome, Instruction
from repro.isa.types import BranchKind, InstructionClass
from repro.pathconf.threshold_count import ThresholdAndCountPredictor
from repro.workloads.generator import WorkloadGenerator, WrongPathGenerator


def _branch(seq: int, taken: bool = True) -> Instruction:
    return Instruction(
        seq=seq,
        pc=0x40_0000 + seq * 4,
        iclass=InstructionClass.BRANCH,
        branch_kind=BranchKind.CONDITIONAL,
        outcome=BranchOutcome(taken=taken, target=0x40_1000),
    )


def _alu(seq: int, on_goodpath: bool = True) -> Instruction:
    return Instruction(
        seq=seq,
        pc=0x50_0000 + seq * 4,
        iclass=InstructionClass.ALU,
        on_goodpath=on_goodpath,
    )


class TestRecoverFromMispredict:
    @pytest.fixture
    def core(self, tiny_spec, small_machine):
        predictor = ThresholdAndCountPredictor(threshold=3)
        core, _, _ = build_single_core(tiny_spec, predictor,
                                       config=small_machine)
        return core

    def _stage(self, core, branch_seq=5):
        """Put a handcrafted window into the core: instructions 0..9 with a
        mispredicted branch at ``branch_seq``."""
        instructions = []
        for seq in range(10):
            instr = _branch(seq) if seq == branch_seq else _alu(
                seq, on_goodpath=seq <= branch_seq)
            if seq > branch_seq:
                instr.on_goodpath = False
            instructions.append(instr)
            core._rob.append(instr)
            core._scheduler.append(instr)
        branch = instructions[branch_seq]
        branch.mispredicted = True
        return instructions, branch

    def test_only_younger_instructions_squashed(self, core):
        instructions, branch = self._stage(core)
        core._recover_from_mispredict(branch, cycle=100)
        for instr in instructions:
            if instr.seq <= branch.seq:
                assert not instr.squashed, instr.seq
            else:
                assert instr.squashed, instr.seq

    def test_rob_keeps_branch_and_elders_in_order(self, core):
        instructions, branch = self._stage(core)
        core._recover_from_mispredict(branch, cycle=100)
        remaining = list(core._rob)
        assert [i.seq for i in remaining] == [0, 1, 2, 3, 4, 5]
        assert remaining[-1] is branch

    def test_scheduler_filtered_of_squashed_work(self, core):
        _, branch = self._stage(core)
        core._recover_from_mispredict(branch, cycle=100)
        assert all(not instr.squashed for instr in core._scheduler)
        assert {i.seq for i in core._scheduler} == {0, 1, 2, 3, 4, 5}

    def test_redirect_penalty_stalls_fetch(self, core):
        _, branch = self._stage(core)
        cycle = 100
        core._recover_from_mispredict(branch, cycle=cycle)
        expected = cycle + 1 + core.config.redirect_penalty
        assert core._fetch_stall_until == expected
        # An even later recovery must never shorten an existing stall.
        core._fetch_stall_until = expected + 50
        core._recover_from_mispredict(branch, cycle=cycle)
        assert core._fetch_stall_until == expected + 50

    def test_flush_counted_once_per_recovery(self, core):
        _, branch = self._stage(core)
        before = core.stats.flushes
        core._recover_from_mispredict(branch, cycle=100)
        assert core.stats.flushes == before + 1

    def test_squashed_branches_leave_the_confidence_window(self, core):
        """Younger in-flight branches must notify the fetch engine so the
        path confidence window drains (squash, not resolve)."""
        engine = core.fetch_engine
        predictor = engine.path_confidence
        # Fetch real instructions until a good-path mispredict flips fetch
        # onto the wrong path and wrong-path branches enter the window.
        cycle = 0
        while not engine.on_wrong_path:
            core._fetch_and_dispatch(cycle)
            cycle += 1
        for _ in range(40):
            core._fetch_and_dispatch(cycle)
            cycle += 1
        mispredicted = next(i for i in core._rob
                            if i.mispredicted and i.on_goodpath)
        outstanding_before = predictor.outstanding_branches()
        assert outstanding_before > 0
        core._recover_from_mispredict(mispredicted, cycle)
        # Every squashed wrong-path branch left the window; only branches
        # at or before the mispredict may still be outstanding.
        survivors = [i for i in core._rob if i.is_branch]
        assert predictor.outstanding_branches() <= len(survivors) + 1


class TestWrongPathResumption:
    @pytest.fixture
    def engine(self, tiny_spec, small_machine):
        predictor = ThresholdAndCountPredictor(threshold=3)
        _core, engine, _generator = build_single_core(
            tiny_spec, predictor, config=small_machine)
        return engine

    def _fetch_until_wrong_path(self, engine, max_fetches=50_000):
        seq = 0
        while not engine.on_wrong_path:
            assert seq < max_fetches, "never mispredicted"
            instr = engine.fetch_one(seq, cycle=seq)
            seq += 1
        return instr, seq  # the mispredicted branch flipped fetch

    def test_goodpath_generator_freezes_during_wrong_path(self, engine):
        mispredicted, seq = self._fetch_until_wrong_path(engine)
        generator = engine.generator
        generated_before = generator.instructions_generated
        stack_before = list(generator._call_stack)
        for _ in range(25):
            instr = engine.fetch_one(seq, cycle=seq)
            seq += 1
            assert not instr.on_goodpath
        # Wrong-path fetch never touches the architectural good path.
        assert generator.instructions_generated == generated_before
        assert list(generator._call_stack) == stack_before

    def test_recover_resumes_goodpath_exactly_once(self, engine):
        mispredicted, seq = self._fetch_until_wrong_path(engine)
        for _ in range(10):
            engine.fetch_one(seq, cycle=seq)
            seq += 1
        generated_before = engine.generator.instructions_generated
        engine.recover(mispredicted)
        assert not engine.on_wrong_path
        resumed = engine.fetch_one(seq, cycle=seq)
        assert resumed.on_goodpath
        assert engine.generator.instructions_generated == generated_before + 1

    def test_recover_ignores_other_branches(self, engine):
        mispredicted, seq = self._fetch_until_wrong_path(engine)
        other = engine.fetch_one(seq, cycle=seq)
        engine.recover(other)  # not the pending mispredict
        assert engine.on_wrong_path
        engine.recover(mispredicted)
        assert not engine.on_wrong_path

    def test_wrongpath_stream_is_deterministic(self, tiny_spec):
        parents = [WorkloadGenerator(tiny_spec, seed=4) for _ in range(2)]
        streams = []
        for parent in parents:
            wrongpath = WrongPathGenerator(parent, seed=9)
            streams.append([
                (i.pc, i.iclass, i.branch_kind)
                for i in (wrongpath.next_instruction(s) for s in range(200))
            ])
        assert streams[0] == streams[1]

    def test_wrongpath_resumes_where_it_left_off(self, tiny_spec):
        """Interleaving episodes draws one continuous wrong-path stream."""
        parent = WorkloadGenerator(tiny_spec, seed=4)
        wrongpath = WrongPathGenerator(parent, seed=9)
        first = [wrongpath.next_instruction(s) for s in range(50)]
        # A reference generator drawing 100 straight.
        reference = WrongPathGenerator(WorkloadGenerator(tiny_spec, seed=4),
                                       seed=9)
        expected = [reference.next_instruction(s) for s in range(100)]
        second = [wrongpath.next_instruction(s) for s in range(50, 100)]
        got = [(i.pc, i.branch_kind) for i in first + second]
        want = [(i.pc, i.branch_kind) for i in expected]
        assert got == want
