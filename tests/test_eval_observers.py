"""Unit tests for observers, profiling and metrics in repro.eval."""

import pytest

from repro.eval.metrics import hmwipc, weighted_ipc
from repro.eval.observers import (
    CounterGoodpathObserver,
    MultiPredictorObserver,
    PathConfidenceObserver,
    PhaseAwareCounterObserver,
)
from repro.eval.profiling import MDCProfiler
from repro.eval.reports import format_table
from repro.pathconf.base import BranchFetchInfo
from repro.pathconf.paco import PaCoPredictor
from repro.pathconf.static_mrt import StaticMRTPredictor
from repro.pathconf.threshold_count import ThresholdAndCountPredictor


def _info(mdc_value):
    return BranchFetchInfo(pc=0x400000, mdc_value=mdc_value, mdc_index=0,
                           predicted_taken=True, history=0)


class _FakeGenerator:
    def __init__(self):
        self.current_phase_label = "p0"


class TestPathConfidenceObserver:
    def test_records_instances_into_diagram(self):
        paco = PaCoPredictor()
        observer = PathConfidenceObserver(paco)
        observer.record("fetch", on_goodpath=True, cycle=0)
        paco.on_branch_fetch(_info(0))
        observer.record("execute", on_goodpath=False, cycle=1)
        assert observer.diagram.total_instances == 2

    def test_kind_filter(self):
        observer = PathConfidenceObserver(PaCoPredictor(), kinds=("fetch",))
        observer.record("execute", True, 0)
        assert observer.diagram.total_instances == 0
        observer.record("fetch", True, 0)
        assert observer.diagram.total_instances == 1

    def test_rms_error_property(self):
        paco = PaCoPredictor()
        observer = PathConfidenceObserver(paco)
        for _ in range(50):
            observer.record("fetch", True, 0)
        assert observer.rms_error == pytest.approx(0.0, abs=0.01)


class TestMultiPredictorObserver:
    def test_one_diagram_per_predictor(self):
        paco = PaCoPredictor()
        static = StaticMRTPredictor()
        observer = MultiPredictorObserver([paco, static])
        observer.record("fetch", True, 0)
        assert set(observer.diagrams) == {"paco", "static-mrt"}
        assert observer.diagrams["paco"].total_instances == 1
        assert set(observer.rms_errors()) == {"paco", "static-mrt"}


class TestCounterGoodpathObserver:
    def test_counts_by_counter_value(self):
        predictor = ThresholdAndCountPredictor(threshold=3)
        observer = CounterGoodpathObserver(predictor, max_count=8)
        observer.record("fetch", True, 0)              # count 0
        predictor.on_branch_fetch(_info(0))
        observer.record("fetch", True, 1)              # count 1
        observer.record("fetch", False, 2)             # count 1
        assert observer.occupancy(0) == 1
        assert observer.occupancy(1) == 2
        assert observer.goodpath_probability(1) == pytest.approx(0.5)

    def test_counter_values_above_max_are_clamped(self):
        predictor = ThresholdAndCountPredictor(threshold=3)
        observer = CounterGoodpathObserver(predictor, max_count=2)
        for _ in range(5):
            predictor.on_branch_fetch(_info(0))
        observer.record("fetch", True, 0)
        assert observer.occupancy(2) == 1

    def test_out_of_range_queries_raise(self):
        observer = CounterGoodpathObserver(ThresholdAndCountPredictor(), max_count=4)
        with pytest.raises(ValueError):
            observer.goodpath_probability(5)

    def test_empty_bucket_probability_is_zero(self):
        observer = CounterGoodpathObserver(ThresholdAndCountPredictor(), max_count=4)
        assert observer.goodpath_probability(3) == 0.0


class TestPhaseAwareCounterObserver:
    def test_split_by_phase(self):
        predictor = ThresholdAndCountPredictor(threshold=3)
        generator = _FakeGenerator()
        observer = PhaseAwareCounterObserver(predictor, generator, max_count=4)
        observer.record("fetch", True, 0)
        generator.current_phase_label = "p1"
        observer.record("fetch", False, 1)
        assert set(observer.phases()) == {"p0", "p1"}
        assert observer.goodpath_probability("p0", 0) == 1.0
        assert observer.goodpath_probability("p1", 0) == 0.0

    def test_unknown_phase_raises(self):
        observer = PhaseAwareCounterObserver(ThresholdAndCountPredictor(),
                                             _FakeGenerator())
        with pytest.raises(KeyError):
            observer.goodpath_probability("nope", 0)

    def test_occupancy_of_unknown_phase_is_zero(self):
        observer = PhaseAwareCounterObserver(ThresholdAndCountPredictor(),
                                             _FakeGenerator())
        assert observer.occupancy("nope", 0) == 0


class TestRecordRunsBatching:
    """Batched event delivery must equal the per-event record_run calls.

    ``events`` is the trace backend's flat stride-4 buffer; every
    observer's record_runs must leave it in the same state as looping
    record_run over the groups (the InstanceObserver default).
    """

    EVENTS = [
        "fetch", True, 5, 4,
        "execute", True, 5, 2,
        "fetch", False, 9, 3,
        "execute", False, 11, 1,
    ]

    def _loop(self, observer):
        events = self.EVENTS
        for i in range(0, len(events), 4):
            observer.record_run(events[i], events[i + 1], events[i + 2],
                                events[i + 3])

    def test_path_confidence_observer(self):
        batched = PathConfidenceObserver(PaCoPredictor())
        batched.record_runs(self.EVENTS)
        reference = PathConfidenceObserver(PaCoPredictor())
        self._loop(reference)
        assert (batched.diagram.total_instances
                == reference.diagram.total_instances == 10)
        assert (batched.diagram.total_goodpath
                == reference.diagram.total_goodpath == 6)
        for mine, theirs in zip(batched.diagram.bins, reference.diagram.bins):
            assert mine.instances == theirs.instances
            assert mine.predicted_sum == theirs.predicted_sum

    def test_path_confidence_observer_kind_filter(self):
        batched = PathConfidenceObserver(PaCoPredictor(), kinds=("fetch",))
        batched.record_runs(self.EVENTS)
        reference = PathConfidenceObserver(PaCoPredictor(), kinds=("fetch",))
        self._loop(reference)
        assert (batched.diagram.total_instances
                == reference.diagram.total_instances == 7)
        assert (batched.diagram.total_goodpath
                == reference.diagram.total_goodpath == 4)

    def test_multi_predictor_observer(self):
        def build():
            return MultiPredictorObserver([PaCoPredictor(),
                                           StaticMRTPredictor()])
        batched, reference = build(), build()
        batched.record_runs(self.EVENTS)
        self._loop(reference)
        for name in ("paco", "static-mrt"):
            assert (batched.diagrams[name].total_instances
                    == reference.diagrams[name].total_instances == 10)

    def test_counter_observer(self):
        predictor = ThresholdAndCountPredictor(threshold=3)
        predictor.on_branch_fetch(_info(0))
        batched = CounterGoodpathObserver(predictor, max_count=8)
        batched.record_runs(self.EVENTS)
        reference = CounterGoodpathObserver(predictor, max_count=8)
        self._loop(reference)
        assert batched.instances == reference.instances
        assert batched.goodpath_instances == reference.goodpath_instances
        assert batched.occupancy(1) == 10

    def test_phase_aware_observer(self):
        predictor = ThresholdAndCountPredictor(threshold=3)
        generator = _FakeGenerator()
        batched = PhaseAwareCounterObserver(predictor, generator, max_count=4)
        batched.record_runs(self.EVENTS)
        reference = PhaseAwareCounterObserver(predictor, generator,
                                              max_count=4)
        self._loop(reference)
        assert batched.phases() == reference.phases() == ["p0"]
        assert batched.occupancy("p0", 0) == reference.occupancy("p0", 0) == 10
        assert (batched.goodpath_probability("p0", 0)
                == reference.goodpath_probability("p0", 0))


class TestMDCProfiler:
    def test_counts_per_bucket(self):
        profiler = MDCProfiler()
        token = profiler.on_branch_fetch(_info(2))
        profiler.on_branch_resolve(token, mispredicted=True)
        token = profiler.on_branch_fetch(_info(2))
        profiler.on_branch_resolve(token, mispredicted=False)
        assert profiler.samples(2) == 2
        assert profiler.mispredict_rate(2) == pytest.approx(0.5)

    def test_squash_does_not_count(self):
        profiler = MDCProfiler()
        token = profiler.on_branch_fetch(_info(1))
        profiler.on_branch_squash(token)
        assert profiler.samples(1) == 0

    def test_double_resolution_counts_once(self):
        profiler = MDCProfiler()
        token = profiler.on_branch_fetch(_info(1))
        profiler.on_branch_resolve(token, mispredicted=True)
        profiler.on_branch_resolve(token, mispredicted=True)
        assert profiler.samples(1) == 1

    def test_rates_dict_only_sampled_buckets(self):
        profiler = MDCProfiler()
        token = profiler.on_branch_fetch(_info(3))
        profiler.on_branch_resolve(token, mispredicted=False)
        assert set(profiler.mispredict_rates()) == {3}

    def test_static_profile_fills_gaps(self):
        profiler = MDCProfiler()
        token = profiler.on_branch_fetch(_info(0))
        profiler.on_branch_resolve(token, mispredicted=True)
        profile = profiler.static_profile()
        assert len(profile) == 16
        assert profile[0] >= profile[15] or profile[15] == profile[0]

    def test_mdc_values_above_range_clamp(self):
        profiler = MDCProfiler(num_mdc_values=4)
        token = profiler.on_branch_fetch(_info(9))
        profiler.on_branch_resolve(token, mispredicted=False)
        assert profiler.samples(3) == 1

    def test_goodpath_probability_is_neutral(self):
        assert MDCProfiler().goodpath_probability() == 1.0


class TestMetrics:
    def test_weighted_ipc(self):
        assert weighted_ipc(2.0, 1.0) == pytest.approx(0.5)

    def test_weighted_ipc_rejects_zero_single(self):
        with pytest.raises(ValueError):
            weighted_ipc(0.0, 1.0)

    def test_hmwipc_equal_threads(self):
        assert hmwipc([2.0, 2.0], [1.0, 1.0]) == pytest.approx(0.5)

    def test_hmwipc_penalises_imbalance(self):
        balanced = hmwipc([2.0, 2.0], [1.0, 1.0])
        unbalanced = hmwipc([2.0, 2.0], [1.8, 0.2])
        assert unbalanced < balanced

    def test_hmwipc_validation(self):
        with pytest.raises(ValueError):
            hmwipc([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            hmwipc([], [])
        with pytest.raises(ValueError):
            hmwipc([1.0, 1.0], [0.0, 1.0])


class TestFormatTable:
    def test_renders_headers_and_rows(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", 3.0]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "b" in lines[2]
        assert "2.5000" in text

    def test_handles_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text
