"""Tests for the pluggable simulation-backend architecture.

Covers the backend registry and protocol, the trace-replay engine's
mechanics (windows, truncation, determinism, batched observation), the
backend field threading through jobs / sweeps / the result cache, and —
most importantly — the trace-vs-cycle parity contract the predictor-level
experiments rely on.

Parity tolerances (checked at table7-scale budgets) are stated here and
nowhere else; if the trace engine's calibration changes, this file is the
gate that must still pass.
"""

from __future__ import annotations

import pytest

from repro.backends import (
    BackendUnavailableError,
    CycleBackend,
    Instrumentation,
    TraceBackend,
    UnknownBackendError,
    Workload,
    backend_names,
    describe_backends,
    get_backend,
    register_backend,
    register_unavailable,
    unavailable_backends,
)
from repro.eval.harness import (
    accuracy_predictors_for,
    build_single_core,
    build_session,
    run_accuracy_experiment,
    run_gating_experiment,
    run_single_thread_ipc,
)
from repro.pathconf.paco import PaCoPredictor
from repro.pathconf.threshold_count import ThresholdAndCountPredictor
from repro.pipeline.core import InstanceObserver, SimulationTruncated
from repro.pipeline.gating import CountGating
from repro.runner import Job, ResultCache, SweepRunner, SweepSpec, accuracy_job
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.spec import BenchmarkSpec, MemorySpec
from repro.workloads.suite import get_benchmark

try:
    import numpy  # noqa: F401 - availability probe for trace-vec tests
    HAVE_NUMPY = True
except ImportError:
    HAVE_NUMPY = False

needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="the trace-vec backend needs numpy")


class _CountingObserver(InstanceObserver):
    def __init__(self):
        self.instances = 0
        self.goodpath = 0

    def record(self, kind, on_goodpath, cycle):
        self.record_run(kind, on_goodpath, cycle, 1)

    def record_run(self, kind, on_goodpath, cycle, count):
        self.instances += count
        if on_goodpath:
            self.goodpath += count


class _StreamObserver(InstanceObserver):
    """Captures the flattened run-event stream.

    Deliberately overrides only :meth:`record_run`: batched delivery goes
    through the default ``record_runs`` loop, so the captured stream is
    exactly the per-event call sequence — same events, same values, same
    order — that the unbatched replay delivered.  Comparing streams (not
    just final statistics) pins the event *boundaries*, which is where
    batching bugs would hide.
    """

    def __init__(self):
        self.events = []

    def record(self, kind, on_goodpath, cycle):
        self.record_run(kind, on_goodpath, cycle, 1)

    def record_run(self, kind, on_goodpath, cycle, count):
        self.events.append((kind, on_goodpath, cycle, count))


# ---------------------------------------------------------------------- #
# registry / protocol
# ---------------------------------------------------------------------- #


class TestBackendRegistry:
    def test_both_backends_registered(self):
        assert set(backend_names()) >= {"cycle", "trace"}

    def test_get_backend_by_name_and_instance(self):
        assert isinstance(get_backend("cycle"), CycleBackend)
        assert isinstance(get_backend("trace"), TraceBackend)
        backend = TraceBackend(resolve_window=8)
        assert get_backend(backend) is backend

    def test_unknown_backend_raises(self):
        with pytest.raises(UnknownBackendError):
            get_backend("rtl")

    def test_unknown_backend_error_lists_registered_names(self):
        with pytest.raises(UnknownBackendError) as excinfo:
            get_backend("rtl")
        message = str(excinfo.value)
        assert "rtl" in message
        assert "cycle (available)" in message
        assert "trace (available)" in message

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("trace", TraceBackend)
        # The rejection must not have clobbered the original factory.
        assert isinstance(get_backend("trace"), TraceBackend)

    def test_unavailable_backend_error_names_missing_dependency(self):
        from repro.backends import base
        register_unavailable("trace-rtl", "requires vhdlsim; install "
                             "the optional extra 'rtl'")
        try:
            assert unavailable_backends()["trace-rtl"].startswith(
                "requires vhdlsim")
            assert "trace-rtl (unavailable: requires vhdlsim" in (
                describe_backends())
            with pytest.raises(BackendUnavailableError) as excinfo:
                get_backend("trace-rtl")
            message = str(excinfo.value)
            assert "requires vhdlsim" in message
            assert "trace-rtl" in message
            # Unavailable is a refinement of unknown, so existing
            # handlers keep working.
            assert isinstance(excinfo.value, UnknownBackendError)
            # An unavailable name must not count as registered twice:
            # providing the dependency later re-registers it cleanly.
            register_backend("trace-rtl", TraceBackend)
            assert "trace-rtl" in backend_names()
            assert "trace-rtl" not in unavailable_backends()
        finally:
            base._BACKENDS.pop("trace-rtl", None)
            base._UNAVAILABLE.pop("trace-rtl", None)

    def test_register_unavailable_rejects_registered_name(self):
        with pytest.raises(ValueError, match="already registered"):
            register_unavailable("trace", "nonsense")

    def test_trace_vec_registered_or_unavailable(self):
        """trace-vec always appears in the registry: runnable with numpy,
        named-but-unavailable (with the install hint) without."""
        if HAVE_NUMPY:
            assert "trace-vec" in backend_names()
        else:
            assert "trace-vec" not in backend_names()
            assert "numpy" in unavailable_backends()["trace-vec"]
            with pytest.raises(BackendUnavailableError):
                get_backend("trace-vec")

    def test_capability_flags(self):
        assert CycleBackend.supports_timing and CycleBackend.supports_gating
        # The trace engine estimates timing and honours gating since the
        # calibrated timing model landed; estimates are parity-gated below.
        assert TraceBackend.supports_timing
        assert TraceBackend.supports_gating


class TestSessionContract:
    def test_cycle_session_matches_build_single_core(self, tiny_spec,
                                                     small_machine):
        session = build_session(tiny_spec, PaCoPredictor(),
                                config=small_machine, seed=3, backend="cycle")
        stats = session.run(max_instructions=2_000)
        core, _, _ = build_single_core(tiny_spec, PaCoPredictor(),
                                       config=small_machine, seed=3)
        reference = core.run(max_instructions=2_000)
        assert stats.retired_instructions == reference.retired_instructions
        assert stats.cycles == reference.cycles
        assert (stats.conditional_mispredicts_retired
                == reference.conditional_mispredicts_retired)

    def test_one_shot_run_equals_session_run(self, tiny_spec, small_machine):
        backend = get_backend("trace")
        stats = backend.run(
            Workload(spec=tiny_spec, seed=2), small_machine,
            Instrumentation(path_confidence=PaCoPredictor()),
            max_instructions=2_000,
        )
        session = get_backend("trace").build(
            Workload(spec=tiny_spec, seed=2), small_machine,
            Instrumentation(path_confidence=PaCoPredictor()),
        )
        assert session.run(2_000).retired_instructions == \
            stats.retired_instructions

    def test_generator_exposed_for_phase_observers(self, phased_spec,
                                                   small_machine):
        session = build_session(phased_spec, PaCoPredictor(),
                                config=small_machine, backend="trace")
        assert session.generator.spec is phased_spec


# ---------------------------------------------------------------------- #
# trace engine mechanics
# ---------------------------------------------------------------------- #


class TestTraceEngine:
    def _session(self, spec, machine, seed=1, **backend_kwargs):
        return TraceBackend(**backend_kwargs).build(
            Workload(spec=spec, seed=seed), machine,
            Instrumentation(path_confidence=PaCoPredictor(
                relog_period_cycles=5_000)),
        )

    def test_retires_requested_budget(self, tiny_spec, small_machine):
        session = self._session(tiny_spec, small_machine)
        stats = session.run(max_instructions=3_000)
        assert stats.retired_instructions >= 3_000
        assert stats.cycles > 0
        assert stats.conditional_branches_retired > 0
        assert 0.0 < stats.conditional_mispredict_rate < 0.35

    def test_deterministic_given_seed(self, tiny_spec, small_machine):
        runs = []
        for _ in range(2):
            session = self._session(tiny_spec, small_machine, seed=5)
            runs.append(session.run(max_instructions=3_000))
        assert runs[0] == runs[1]

    def test_resumable_runs_match_straight_run(self, tiny_spec, small_machine):
        split = self._session(tiny_spec, small_machine)
        split.run(max_instructions=1_000)
        split_stats = split.run(max_instructions=3_000)
        straight = self._session(tiny_spec, small_machine)
        straight_stats = straight.run(max_instructions=3_000)
        assert split_stats == straight_stats

    def test_window_bounded_by_resolve_window(self, tiny_spec, small_machine):
        session = self._session(tiny_spec, small_machine, resolve_window=12)
        session.run(max_instructions=2_000)
        assert session.window_occupancy <= 12

    def test_wrongpath_replay_happens(self, tiny_spec, small_machine):
        session = self._session(tiny_spec, small_machine)
        stats = session.run(max_instructions=4_000)
        assert stats.flushes > 0
        assert stats.badpath_fetched > 0
        # Each episode replays exactly the calibrated window.
        assert stats.badpath_fetched == \
            stats.flushes * session.mispredict_window

    def test_truncation_raises(self, tiny_spec, small_machine):
        session = self._session(tiny_spec, small_machine)
        with pytest.raises(SimulationTruncated) as excinfo:
            session.run(max_instructions=10_000_000, max_cycles=500)
        assert excinfo.value.stats.retired_instructions < 10_000_000

    def test_gating_honoured(self, tiny_spec, small_machine):
        """A gating policy now builds a gated replay whose gated cycles
        show up in the stats and whose wrong-path fetch volume drops."""
        def run(gated):
            predictor = ThresholdAndCountPredictor(threshold=3)
            instrument = Instrumentation(path_confidence=predictor)
            if gated:
                instrument = Instrumentation(
                    path_confidence=predictor,
                    gating_policy=CountGating(predictor, gate_count=1))
            session = TraceBackend().build(
                Workload(spec=tiny_spec, seed=4), small_machine, instrument)
            return session.run(max_instructions=6_000)

        baseline = run(gated=False)
        gated = run(gated=True)
        assert gated.gated_cycles > 0
        assert baseline.gated_cycles == 0
        assert gated.badpath_fetched < baseline.badpath_fetched

    def test_observer_attached_midway_sees_only_later_instances(
            self, tiny_spec, small_machine):
        session = self._session(tiny_spec, small_machine)
        session.run(max_instructions=2_000)
        observer = _CountingObserver()
        session.add_observer(observer)
        session.run(max_instructions=2_500)
        # ~500 more instructions -> fetch + execute instances for those
        # only (plus wrong-path ones); far fewer than the full run's.
        assert 0 < observer.instances < 2_500 * 3

    def test_harness_experiments_run_on_trace(self, tiny_spec):
        result = run_gating_experiment(tiny_spec, mode="count", gate_count=2,
                                       instructions=2_000,
                                       warmup_instructions=0,
                                       backend="trace")
        assert result.stats.retired_instructions >= 2_000
        assert result.ipc > 0.0
        ipc = run_single_thread_ipc(tiny_spec, instructions=2_000,
                                    warmup_instructions=0, backend="trace")
        # The replay's idealized front end retires at most one
        # instruction per cycle.
        assert 0.0 < ipc <= 1.0


class TestBranchStreamIdentity:
    """The replay's good-path branch stream is the cycle model's.

    For unphased benchmarks the branch-content streams are consumed only
    by branches, so next_branch() must reproduce next_instruction()'s
    branch subsequence bit-for-bit.
    """

    def test_branch_subsequence_identical(self):
        spec = get_benchmark("gzip")
        full = WorkloadGenerator(spec, seed=9)
        branch_only = WorkloadGenerator(spec, seed=9)
        reference = []
        seq = 0
        while len(reference) < 1_500:
            instr = full.next_instruction(seq)
            seq += 1
            if instr.is_branch:
                reference.append(instr)
        for expected in reference:
            got = branch_only.next_branch(0)
            assert got.pc == expected.pc
            assert got.branch_kind is expected.branch_kind
            assert got.outcome.taken == expected.outcome.taken
            assert got.outcome.target == expected.outcome.target
            assert got.static_branch_id == expected.static_branch_id


# ---------------------------------------------------------------------- #
# instrumentation profiles
# ---------------------------------------------------------------------- #


class TestInstrumentationProfiles:
    def test_profiles_resolve(self):
        assert len(accuracy_predictors_for("full")) == 4
        assert [p.name for p in accuracy_predictors_for("paco")] == ["paco"]
        assert len(accuracy_predictors_for("counter")) == 1
        assert accuracy_predictors_for("mdc") == []
        assert len(accuracy_predictors_for("mrt")) == 3
        with pytest.raises(ValueError):
            accuracy_predictors_for("everything")

    def test_slim_profile_reproduces_full_profile_values(self, tiny_spec):
        """Riding predictors never influence the simulation, so the slim
        profiles' statistics are bit-identical to the full profile's."""
        full = run_accuracy_experiment(tiny_spec, instructions=4_000,
                                       warmup_instructions=1_000,
                                       instrument="full")
        paco = run_accuracy_experiment(tiny_spec, instructions=4_000,
                                       warmup_instructions=1_000,
                                       instrument="paco")
        mdc = run_accuracy_experiment(tiny_spec, instructions=4_000,
                                      warmup_instructions=1_000,
                                      instrument="mdc")
        assert paco.rms_errors["paco"] == full.rms_errors["paco"]
        assert mdc.mdc_mispredict_rates == full.mdc_mispredict_rates
        assert paco.conditional_mispredict_rate == \
            full.conditional_mispredict_rate


# ---------------------------------------------------------------------- #
# backend threading through jobs / sweeps / cache
# ---------------------------------------------------------------------- #


class TestBackendInJobs:
    def test_backend_changes_job_digest_and_cache_key(self, tmp_path):
        cycle_job = accuracy_job("gzip", instructions=1_000,
                                 warmup_instructions=0, backend="cycle")
        trace_job = accuracy_job("gzip", instructions=1_000,
                                 warmup_instructions=0, backend="trace")
        assert cycle_job.digest() != trace_job.digest()
        cache = ResultCache(tmp_path, version="v")
        assert cache.key(cycle_job) != cache.key(trace_job)

    def test_backend_in_payload(self):
        job = Job.make("accuracy", benchmark="gzip", backend="trace")
        assert job.payload()["backend"] == "trace"
        assert Job.make("accuracy", benchmark="gzip").payload()["backend"] \
            == "cycle"

    def test_sweepspec_backend_propagates(self):
        spec = SweepSpec(experiment="accuracy",
                         axes={"benchmark": ["gzip", "mcf"]},
                         base={"instructions": 1_000,
                               "warmup_instructions": 0},
                         backend="trace")
        assert all(job.backend == "trace" for job in spec.jobs())

    def test_runner_executes_trace_jobs(self):
        runner = SweepRunner()
        [result] = runner.map([
            accuracy_job("gzip", instructions=2_000, warmup_instructions=500,
                         backend="trace", instrument="paco")
        ])
        direct = run_accuracy_experiment("gzip", instructions=2_000,
                                         warmup_instructions=500,
                                         backend="trace", instrument="paco")
        assert result.rms_errors == direct.rms_errors
        assert result.conditional_mispredict_rate == \
            direct.conditional_mispredict_rate

    def test_single_ipc_kind_runs_on_trace_backend(self):
        runner = SweepRunner()
        job = Job.make("single-ipc", benchmark="gzip", instructions=1_000,
                       warmup_instructions=0, backend="trace")
        [ipc] = runner.map([job])
        assert 0.0 < ipc <= 1.0


# ---------------------------------------------------------------------- #
# trace vs. cycle parity (the acceptance contract)
# ---------------------------------------------------------------------- #

#: Benchmarks the parity gate runs (one low-, one high-mispredict).
PARITY_BENCHMARKS = ("gzip", "twolf")
PARITY_INSTRUCTIONS = 40_000
PARITY_WARMUP = 20_000

#: Stated tolerances, table7-scale budgets.  Mispredict rates are nearly
#: exact (the replay trains the same predictors on the bit-identical
#: branch stream); reliability RMS and occupancy depend on the calibrated
#: windows and stay within a few points of the cycle model.
RATE_TOLERANCE = 0.010            # absolute, on rates in [0, 1]
MDC_RATE_TOLERANCE = 0.060        # per-bucket mispredict rate, >=200 samples
RMS_TOLERANCE = 0.090             # reliability-diagram RMS error
BRANCH_COUNT_REL_TOLERANCE = 0.05  # retired conditional branches


@pytest.fixture(scope="module")
def parity_results():
    results = {}
    for name in PARITY_BENCHMARKS:
        results[name] = {
            backend: run_accuracy_experiment(
                name, instructions=PARITY_INSTRUCTIONS,
                warmup_instructions=PARITY_WARMUP, backend=backend)
            for backend in ("cycle", "trace")
        }
    return results


class TestTraceCycleParity:
    @pytest.mark.parametrize("bench", PARITY_BENCHMARKS)
    def test_mispredict_rates(self, parity_results, bench):
        cycle = parity_results[bench]["cycle"]
        trace = parity_results[bench]["trace"]
        assert trace.conditional_mispredict_rate == pytest.approx(
            cycle.conditional_mispredict_rate, abs=RATE_TOLERANCE)
        assert trace.overall_mispredict_rate == pytest.approx(
            cycle.overall_mispredict_rate, abs=RATE_TOLERANCE)

    @pytest.mark.parametrize("bench", PARITY_BENCHMARKS)
    def test_branch_population(self, parity_results, bench):
        cycle = parity_results[bench]["cycle"].stats
        trace = parity_results[bench]["trace"].stats
        assert trace.conditional_branches_retired == pytest.approx(
            cycle.conditional_branches_retired,
            rel=BRANCH_COUNT_REL_TOLERANCE)

    @pytest.mark.parametrize("bench", PARITY_BENCHMARKS)
    def test_mdc_confidence_classification(self, parity_results, bench):
        """Fig. 2 parity: per-MDC-bucket mispredict rates.

        Buckets 0–5 carry the figure's signal (hundreds of samples each at
        this budget); higher buckets thin out and are compared only when
        both backends populated them.
        """
        cycle = parity_results[bench]["cycle"]
        trace = parity_results[bench]["trace"]
        for bucket in range(6):
            rate = cycle.mdc_mispredict_rates.get(bucket)
            trace_rate = trace.mdc_mispredict_rates.get(bucket)
            if rate is None or trace_rate is None:
                continue
            assert trace_rate == pytest.approx(
                rate, abs=MDC_RATE_TOLERANCE), (bench, bucket)

    @pytest.mark.parametrize("bench", PARITY_BENCHMARKS)
    def test_reliability_rms(self, parity_results, bench):
        """Table 7 / fig 8/9 / table A1 parity: per-predictor RMS error."""
        cycle = parity_results[bench]["cycle"]
        trace = parity_results[bench]["trace"]
        for predictor in ("paco", "static-mrt", "per-branch-mrt"):
            assert trace.rms_errors[predictor] == pytest.approx(
                cycle.rms_errors[predictor], abs=RMS_TOLERANCE), predictor

    @pytest.mark.parametrize("bench", PARITY_BENCHMARKS)
    def test_counter_occupancy_shape(self, parity_results, bench):
        """Fig. 3 parity: the outstanding-count distribution's mean."""
        cycle = parity_results[bench]["cycle"].counter_occupancy
        trace = parity_results[bench]["trace"].counter_occupancy
        def mean(occ):
            total = sum(occ.values())
            return sum(k * v for k, v in occ.items()) / total if total else 0.0
        assert mean(trace) == pytest.approx(mean(cycle), abs=0.75)


class TestTraceBlockSize:
    """Block size is pure mechanism: results are bit-identical for every
    value, the knob is validated like a worker count, and it never rides
    in a job identity or cache key."""

    def _stats(self, spec, machine, block_size):
        session = TraceBackend(block_size=block_size).build(
            Workload(spec=spec, seed=3), machine,
            Instrumentation(path_confidence=PaCoPredictor(
                relog_period_cycles=5_000)),
        )
        return session.run(max_instructions=4_000)

    @pytest.mark.parametrize("block_size", [1, 3, 17, 4096])
    def test_stats_identical_across_block_sizes(self, tiny_spec,
                                                small_machine, block_size):
        reference = self._stats(tiny_spec, small_machine, 256)
        assert self._stats(tiny_spec, small_machine, block_size) == reference

    @pytest.mark.parametrize("block_size", [1, 7, 256])
    def test_phased_observer_results_identical(self, phased_spec,
                                               monkeypatch, block_size):
        """Phase-aware observers must see the same per-phase instances at
        every block size (boundary blocks fall back to slot-by-slot)."""
        monkeypatch.setenv("REPRO_TRACE_BLOCK", str(block_size))
        result = run_accuracy_experiment(
            phased_spec, instructions=6_000, warmup_instructions=1_000,
            backend="trace", instrument="counter")
        monkeypatch.setenv("REPRO_TRACE_BLOCK", "64")
        reference = run_accuracy_experiment(
            phased_spec, instructions=6_000, warmup_instructions=1_000,
            backend="trace", instrument="counter")
        assert result == reference

    def test_env_knob_overrides_default(self, tiny_spec, small_machine,
                                        monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_BLOCK", "32")
        session = TraceBackend().build(
            Workload(spec=tiny_spec, seed=1), small_machine,
            Instrumentation(path_confidence=PaCoPredictor()),
        )
        assert session.block_size == 32

    @pytest.mark.parametrize("bad", ["0", "-3", "many", ""])
    def test_env_knob_validated_loudly(self, tiny_spec, small_machine,
                                       monkeypatch, bad):
        monkeypatch.setenv("REPRO_TRACE_BLOCK", bad)
        with pytest.raises(ValueError, match="REPRO_TRACE_BLOCK"):
            TraceBackend().build(
                Workload(spec=tiny_spec, seed=1), small_machine,
                Instrumentation(path_confidence=PaCoPredictor()),
            )

    def test_explicit_block_size_validated(self, tiny_spec, small_machine):
        with pytest.raises(ValueError):
            TraceBackend(block_size=0).build(
                Workload(spec=tiny_spec, seed=1), small_machine,
                Instrumentation(path_confidence=PaCoPredictor()),
            )

    def test_block_size_excluded_from_job_identity(self, tmp_path,
                                                   monkeypatch):
        """Different block sizes must hit the same cache entry: the knob
        cannot change results, so it must not fragment the cache."""
        def make_job():
            return accuracy_job("gzip", instructions=2_000,
                                warmup_instructions=500, seed=1,
                                backend="trace")

        monkeypatch.delenv("REPRO_TRACE_BLOCK", raising=False)
        job = make_job()
        digest_default = job.digest()
        cache = ResultCache(tmp_path)
        key_default = cache.key(job)
        assert "block" not in str(job.payload()).lower()
        monkeypatch.setenv("REPRO_TRACE_BLOCK", "8")
        assert make_job().digest() == digest_default
        assert cache.key(make_job()) == key_default


class TestBatchedObserverStream:
    """The batched observer/resolve path is bit-identical to scalar replay.

    Pins the flattened run-event stream delivered to observers — not just
    the final statistics — equal to block-size-1 replay, for the ungated
    and the gated session, for predictors with and without cycle-periodic
    work, and for a wrong-path-heavy (low-accuracy) workload whose replay
    is dominated by fused wrong-path episodes.
    """

    BLOCK_SIZES = [3, 17, 256]

    @staticmethod
    def _wrongpath_heavy_spec():
        """A low-accuracy workload: most branches hard and near-random."""
        return BenchmarkSpec(
            name="wp-heavy",
            branch_fraction=0.25,
            num_static_conditionals=12,
            hard_fraction=0.85,
            hard_taken_bias=0.55,
            loop_fraction=0.05,
            pattern_fraction=0.05,
            memory=MemorySpec(working_set_lines=128),
        )

    @staticmethod
    def _run(spec, machine, block_size, predictor="paco", gated=False,
             seed=5, instructions=4_000):
        if predictor == "paco":
            path_confidence = PaCoPredictor(relog_period_cycles=2_000)
        else:
            path_confidence = ThresholdAndCountPredictor(threshold=3)
        gating = (CountGating(path_confidence, gate_count=2)
                  if gated else None)
        observer = _StreamObserver()
        session = TraceBackend(block_size=block_size).build(
            Workload(spec=spec, seed=seed), machine,
            Instrumentation(path_confidence=path_confidence,
                            gating_policy=gating,
                            observers=(observer,)))
        stats = session.run(max_instructions=instructions)
        return observer.events, stats

    @pytest.mark.parametrize("block_size", BLOCK_SIZES)
    @pytest.mark.parametrize("predictor", ["paco", "counter"])
    def test_stream_matches_scalar(self, tiny_spec, small_machine,
                                   predictor, block_size):
        reference = self._run(tiny_spec, small_machine, 1,
                              predictor=predictor)
        result = self._run(tiny_spec, small_machine, block_size,
                           predictor=predictor)
        assert result[1] == reference[1]
        assert result[0] == reference[0]

    @pytest.mark.parametrize("block_size", BLOCK_SIZES)
    def test_gated_stream_matches_scalar(self, tiny_spec, small_machine,
                                         block_size):
        """The gated session steps scalar but shares the buffered event
        delivery and the single drain body; gated cycles must not perturb
        the stream across block sizes either."""
        reference = self._run(tiny_spec, small_machine, 1,
                              predictor="counter", gated=True)
        assert reference[1].gated_cycles > 0
        result = self._run(tiny_spec, small_machine, block_size,
                           predictor="counter", gated=True)
        assert result[1] == reference[1]
        assert result[0] == reference[0]

    @pytest.mark.parametrize("block_size", BLOCK_SIZES)
    @pytest.mark.parametrize("gated", [False, True])
    def test_wrongpath_heavy_stream_matches_scalar(self, small_machine,
                                                   gated, block_size):
        """Exercises the fused wrong-path episode hard: the low-accuracy
        spec flushes every few branches, so most events are closed and
        delivered inside episodes."""
        spec = self._wrongpath_heavy_spec()
        predictor = "counter" if gated else "paco"
        reference = self._run(spec, small_machine, 1, predictor=predictor,
                              gated=gated, instructions=3_000)
        # The workload must actually be wrong-path heavy for the test to
        # mean anything.
        assert reference[1].flushes > 50
        result = self._run(spec, small_machine, block_size,
                           predictor=predictor, gated=gated,
                           instructions=3_000)
        assert result[1] == reference[1]
        assert result[0] == reference[0]

    @pytest.mark.parametrize("block_size", [4096])
    def test_large_block_stream_matches_scalar(self, tiny_spec,
                                               small_machine, block_size):
        reference = self._run(tiny_spec, small_machine, 1)
        result = self._run(tiny_spec, small_machine, block_size)
        assert result[1] == reference[1]
        assert result[0] == reference[0]


@needs_numpy
class TestVecTraceStreamParity:
    """The vectorized trace backend is bit-identical to scalar trace.

    Extends the :class:`TestBatchedObserverStream` contract to the
    ``trace-vec`` backend: the flattened run-event stream *and* the final
    statistics must equal the pure-python trace backend's at every block
    size, for predictors with and without cycle-periodic work, for the
    gated session (which falls back to the scalar gated replay) and for a
    wrong-path-heavy workload dominated by fused episode replay.  Each
    ungated run also asserts the fused :class:`VecTraceSession` actually
    engaged, so the parity is never satisfied vacuously by the scalar
    fallback.
    """

    BLOCK_SIZES = [1, 17, 256, 4096]

    @staticmethod
    def _run_vec(spec, machine, block_size, predictor="paco", gated=False,
                 seed=5, instructions=4_000, expect_fused=True):
        from repro.backends.trace import GatedTraceSession
        from repro.backends.vec import VecTraceBackend, VecTraceSession
        if predictor == "paco":
            path_confidence = PaCoPredictor(relog_period_cycles=2_000)
        else:
            path_confidence = ThresholdAndCountPredictor(threshold=3)
        gating = (CountGating(path_confidence, gate_count=2)
                  if gated else None)
        observer = _StreamObserver()
        session = VecTraceBackend(block_size=block_size).build(
            Workload(spec=spec, seed=seed), machine,
            Instrumentation(path_confidence=path_confidence,
                            gating_policy=gating,
                            observers=(observer,)))
        if expect_fused:
            assert type(session) is VecTraceSession
        else:
            assert type(session) is GatedTraceSession
        stats = session.run(max_instructions=instructions)
        return observer.events, stats

    @pytest.mark.parametrize("block_size", BLOCK_SIZES)
    @pytest.mark.parametrize("predictor", ["paco", "counter"])
    def test_stream_matches_trace(self, tiny_spec, small_machine,
                                  predictor, block_size):
        reference = TestBatchedObserverStream._run(
            tiny_spec, small_machine, block_size, predictor=predictor)
        result = self._run_vec(tiny_spec, small_machine, block_size,
                               predictor=predictor)
        assert result[1] == reference[1]
        assert result[0] == reference[0]

    @pytest.mark.parametrize("block_size", [17, 256])
    @pytest.mark.parametrize("predictor", ["paco", "counter"])
    def test_wrongpath_heavy_stream_matches_trace(self, small_machine,
                                                  predictor, block_size):
        spec = TestBatchedObserverStream._wrongpath_heavy_spec()
        reference = TestBatchedObserverStream._run(
            spec, small_machine, block_size, predictor=predictor,
            instructions=3_000)
        assert reference[1].flushes > 50
        result = self._run_vec(spec, small_machine, block_size,
                               predictor=predictor, instructions=3_000)
        assert result[1] == reference[1]
        assert result[0] == reference[0]

    @pytest.mark.parametrize("block_size", [17, 256])
    def test_gated_falls_back_to_scalar_gated_session(self, tiny_spec,
                                                      small_machine,
                                                      block_size):
        """Gating is outside the fused loops' contract; the backend must
        route gated instrumentation to the scalar gated session and still
        produce the identical stream."""
        reference = TestBatchedObserverStream._run(
            tiny_spec, small_machine, block_size, predictor="counter",
            gated=True)
        assert reference[1].gated_cycles > 0
        result = self._run_vec(tiny_spec, small_machine, block_size,
                               predictor="counter", gated=True,
                               expect_fused=False)
        assert result[1] == reference[1]
        assert result[0] == reference[0]

    def test_capability_flags(self):
        from repro.backends.vec import VecTraceBackend
        assert VecTraceBackend.supports_timing
        assert VecTraceBackend.supports_gating
        assert VecTraceBackend.name == "trace-vec"
        assert get_backend("trace-vec").name == "trace-vec"

    @pytest.mark.parametrize("instrument", ["paco", "full"])
    def test_accuracy_diagrams_bit_identical(self, instrument):
        """The harness-level contract behind the fig8/fig9 sweep: the
        reliability diagrams — including their *float* ``predicted_sum``
        accumulators — must match the scalar trace backend bit for bit.

        The ``paco`` profile exercises the generated code's inlined
        observer delivery (a single ``(PaCo, diagram)`` pair folds into
        the diagram without materializing event batches); ``full``
        exercises the generic multi-observer delivery.  Both must replay
        ``MultiPredictorObserver``'s arithmetic exactly, so equality here
        is ``==``, not a tolerance."""
        results = {
            backend: run_accuracy_experiment(
                "gzip", instructions=8_000, warmup_instructions=3_000,
                backend=backend, instrument=instrument)
            for backend in ("trace", "trace-vec")
        }
        trace, vec = results["trace"], results["trace-vec"]
        assert set(vec.diagrams) == set(trace.diagrams)
        for name, reference in trace.diagrams.items():
            diagram = vec.diagrams[name]
            assert diagram.total_instances == reference.total_instances
            assert diagram.total_goodpath == reference.total_goodpath
            for mine, theirs in zip(diagram.bins, reference.bins):
                assert mine.instances == theirs.instances
                assert mine.goodpath_instances == theirs.goodpath_instances
                assert mine.predicted_sum == theirs.predicted_sum
        assert vec.rms_errors == trace.rms_errors
        assert (vec.conditional_mispredict_rate
                == trace.conditional_mispredict_rate)


# ---------------------------------------------------------------------- #
# fig10 / fig12 parity (the timing-estimate acceptance contract)
# ---------------------------------------------------------------------- #

#: One low- and one high-mispredict benchmark, three points per curve
#: spanning least-to-most aggressive gating.
GATING_PARITY_CONFIG = dict(
    benchmarks=("gzip", "twolf"),
    paco_probabilities=(0.10, 0.50, 0.90),
    jrs_thresholds=(3,),
    gate_counts=(1, 4, 10),
    instructions=12_000,
    warmup_instructions=4_000,
)

#: Tolerances calibrated at the budgets above.  The trace replay's IPC
#: is an estimate (idealized IPC-1 issue plus calibrated stall windows),
#: so per-point losses agree within a few points while reductions — which
#: divide two estimates — carry roughly twice the slack.
GATING_LOSS_TOLERANCE = 0.12        # absolute, fractional IPC loss
GATING_REDUCTION_TOLERANCE = 0.25   # absolute, fractional badpath reduction
MONOTONE_SLACK = 0.02               # curves may wobble this much downward


@pytest.fixture(scope="module")
def gating_parity_curves():
    from repro.applications.pipeline_gating import (GatingSweepConfig,
                                                    run_gating_sweep)
    return {
        backend: run_gating_sweep(
            GatingSweepConfig(backend=backend, **GATING_PARITY_CONFIG),
            SweepRunner(cache=None))
        for backend in ("cycle", "trace")
    }


class TestGatingSweepParity:
    """Fig. 10 parity: the gated trace replay must land each sweep point
    near the cycle model and preserve the curve shapes the figure plots."""

    def points(self, curves, curve):
        return list(zip(curves["cycle"][curve], curves["trace"][curve]))

    @pytest.mark.parametrize("curve", ["paco", "jrs-t3"])
    def test_performance_loss_tracks_cycle_model(self, gating_parity_curves,
                                                 curve):
        for cycle, trace in self.points(gating_parity_curves, curve):
            assert trace.parameter == cycle.parameter
            assert trace.performance_loss == pytest.approx(
                cycle.performance_loss, abs=GATING_LOSS_TOLERANCE), \
                (curve, cycle.parameter)

    @pytest.mark.parametrize("curve", ["paco", "jrs-t3"])
    def test_badpath_reductions_track_cycle_model(self,
                                                  gating_parity_curves,
                                                  curve):
        for cycle, trace in self.points(gating_parity_curves, curve):
            assert trace.badpath_reduction == pytest.approx(
                cycle.badpath_reduction, abs=GATING_REDUCTION_TOLERANCE), \
                (curve, cycle.parameter)
            assert trace.badpath_fetch_reduction == pytest.approx(
                cycle.badpath_fetch_reduction,
                abs=GATING_REDUCTION_TOLERANCE), (curve, cycle.parameter)

    @pytest.mark.parametrize("curve", ["paco", "jrs-t3"])
    def test_trace_curves_are_monotone_in_aggressiveness(
            self, gating_parity_curves, curve):
        """The figure's qualitative story: more aggressive gating trades
        more performance for more bad-path reduction."""
        points = gating_parity_curves["trace"][curve]
        for before, after in zip(points, points[1:]):
            assert after.performance_loss >= \
                before.performance_loss - MONOTONE_SLACK
            assert after.badpath_reduction >= \
                before.badpath_reduction - MONOTONE_SLACK
        most_aggressive = points[-1]
        assert most_aggressive.badpath_reduction > 0.5
        assert most_aggressive.performance_loss > 0.0


SMT_PARITY_CONFIG = dict(
    pairs=[("gzip", "vortex"), ("bzip2", "twolf")],
    jrs_thresholds=(3,),
    include_icount=True,
    instructions=10_000,
    warmup_instructions=3_000,
    single_thread_instructions=6_000,
    single_thread_warmup_instructions=2_000,
)

#: Per pair, the trace/cycle HMWIPC ratio must be the *same* for every
#: policy to within this relative spread — the trace estimate may sit at
#: a different absolute level, but it must rank the policies on the same
#: scale the cycle model does.  (Exact per-pair policy orderings are not
#: asserted: at these budgets the cycle model itself reorders
#: near-tied policies run to run.)
SMT_RATIO_SPREAD = 0.15
#: The absolute level may not drift arbitrarily either.
SMT_RATIO_BAND = (0.5, 2.0)


@pytest.fixture(scope="module")
def smt_parity_studies():
    from repro.applications.smt_prioritization import (SMTStudyConfig,
                                                       run_smt_study)
    return {
        backend: run_smt_study(
            SMTStudyConfig(backend=backend, **SMT_PARITY_CONFIG),
            SweepRunner(cache=None))
        for backend in ("cycle", "trace")
    }


class TestSMTStudyParity:
    """Fig. 12 parity: per pair, trace HMWIPCs must be a near-constant
    rescaling of the cycle model's."""

    def ratios(self, studies):
        for cycle, trace in zip(studies["cycle"], studies["trace"]):
            assert trace.pair == cycle.pair
            yield cycle.pair, {
                policy: (trace.hmwipc_by_policy[policy]
                         / cycle.hmwipc_by_policy[policy])
                for policy in cycle.hmwipc_by_policy
            }

    def test_all_policies_produce_sane_hmwipc(self, smt_parity_studies):
        for study in smt_parity_studies.values():
            for result in study:
                assert set(result.hmwipc_by_policy) == \
                    {"icount", "jrs-t3", "paco"}
                for value in result.hmwipc_by_policy.values():
                    assert 0.0 < value <= 2.0   # 2 threads

    def test_trace_rescales_cycle_uniformly_per_pair(self,
                                                     smt_parity_studies):
        for pair, ratios in self.ratios(smt_parity_studies):
            spread = max(ratios.values()) / min(ratios.values()) - 1.0
            assert spread <= SMT_RATIO_SPREAD, (pair, ratios)

    def test_trace_level_stays_in_band(self, smt_parity_studies):
        low, high = SMT_RATIO_BAND
        for pair, ratios in self.ratios(smt_parity_studies):
            for policy, ratio in ratios.items():
                assert low <= ratio <= high, (pair, policy, ratio)


# ---------------------------------------------------------------------- #
# Optional-dependency degradation
# ---------------------------------------------------------------------- #

class TestNumpyOptionality:
    """numpy is an optional extra: without it the scalar backends must be
    untouched and trace-vec must degrade to an *unavailable* registry
    entry with the install hint (never an ImportError or a bare
    KeyError)."""

    def test_import_without_numpy_keeps_scalar_backends(self, tmp_path):
        import os
        import subprocess
        import sys

        import repro

        # A numpy package whose import fails shadows any real numpy when
        # its directory leads PYTHONPATH.
        stub = tmp_path / "numpy"
        stub.mkdir()
        (stub / "__init__.py").write_text(
            "raise ImportError('numpy blocked for the degradation test')\n")

        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        probe = (
            "import repro.backends as B\n"
            "assert B.backend_names() == ('cycle', 'trace'), "
            "B.backend_names()\n"
            "assert B.VecTraceBackend is None\n"
            "reason = B.unavailable_backends()['trace-vec']\n"
            "assert 'numpy' in reason and 'repro-paco[vec]' in reason, "
            "reason\n"
            "try:\n"
            "    B.get_backend('trace-vec')\n"
            "except B.BackendUnavailableError as error:\n"
            "    message = str(error)\n"
            "    assert 'numpy' in message, message\n"
            "    assert 'trace-vec' in message, message\n"
            "else:\n"
            "    raise AssertionError('trace-vec resolved without numpy')\n"
            "from repro.pipeline.config import MachineConfig\n"
            "from repro.pathconf.threshold_count import "
            "ThresholdAndCountPredictor\n"
            "from repro.workloads.spec import BenchmarkSpec, MemorySpec\n"
            "spec = BenchmarkSpec(name='t', branch_fraction=0.2,\n"
            "                     num_static_conditionals=8,\n"
            "                     hard_fraction=0.25, hard_taken_bias=0.7,\n"
            "                     memory=MemorySpec(working_set_lines=64))\n"
            "stats = B.get_backend('trace').run(\n"
            "    B.Workload(spec=spec, seed=3), MachineConfig(),\n"
            "    B.Instrumentation(\n"
            "        path_confidence=ThresholdAndCountPredictor()),\n"
            "    max_instructions=500)\n"
            "assert stats.retired_instructions >= 500\n"
            "print('DEGRADED-OK')\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(tmp_path), src_dir]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
        result = subprocess.run([sys.executable, "-c", probe], env=env,
                                capture_output=True, text=True, timeout=120)
        assert result.returncode == 0, result.stderr
        assert "DEGRADED-OK" in result.stdout
