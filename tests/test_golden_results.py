"""Golden regression tests against the checked-in benchmark snapshots.

``benchmarks/results/*.txt`` are the rendered tables the quick benchmark
configurations produced on the seed code.  These tests re-run a *subset*
of each snapshot's experiment points at the exact same settings and
assert the freshly measured numbers still match the snapshot within a
small tolerance — so a refactor of the simulator, harness or runner
cannot silently drift the reproduced numbers.

Each experiment point is independent of its neighbours (same seed, own
workload), so re-running two or three rows of a table reproduces those
rows exactly; the subsets keep the suite's runtime bounded.

The expected settings mirror the quick configurations in
``repro.experiments`` (the ``quick=True`` budget clamps) and, for
Fig. 12, the ``_QUICK`` study config in
``benchmarks/test_bench_fig12_smt.py``.  If a quick configuration
changes, regenerate the snapshots (run the benchmark suite) and update
the mirrored settings here.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List

import pytest

from repro.applications.smt_prioritization import SMTStudyConfig
from repro.experiments import (
    ablations,
    fig2_mdc_rates,
    fig12_smt,
    table7_rms,
    tableA1_mrt_variants,
)

RESULTS_DIR = Path(__file__).parent.parent / "benchmarks" / "results"

#: Snapshot columns are rounded (2–4 decimals); tolerances sit well above
#: the rounding noise and well below any real behavioral drift.
RMS_TOLERANCE = 0.01
PERCENT_TOLERANCE = 0.5
HMWIPC_TOLERANCE = 0.01


def parse_table(text: str) -> List[Dict[str, str]]:
    """Parse one ``format_table`` rendering back into row dicts.

    Finds the dashed separator line, reads the headers right above it and
    the rows below it (until the first blank line); cells are split on
    runs of two or more spaces.
    """
    lines = text.splitlines()
    separator = next(
        i for i, line in enumerate(lines)
        if line.strip() and set(line.strip()) <= {"-", " "} and i > 0
    )
    headers = re.split(r"\s{2,}", lines[separator - 1].strip())
    rows = []
    for line in lines[separator + 1:]:
        if not line.strip():
            break
        cells = re.split(r"\s{2,}", line.strip())
        rows.append(dict(zip(headers, cells)))
    return rows


def load_snapshot(name: str) -> List[Dict[str, str]]:
    path = RESULTS_DIR / f"{name}.txt"
    if not path.is_file():
        pytest.skip(f"snapshot {path} not present")
    return parse_table(path.read_text(encoding="utf-8"))


def rows_by_first_column(rows: List[Dict[str, str]]) -> Dict[str, Dict[str, str]]:
    return {next(iter(row.values())): row for row in rows}


class TestSnapshotParser:
    def test_parses_headers_and_rows(self):
        from repro.eval.reports import format_table

        text = format_table(["name", "x"], [["a", 1.5], ["b", 2.0]],
                            title="demo")
        rows = parse_table(text)
        assert rows == [{"name": "a", "x": "1.5000"},
                        {"name": "b", "x": "2.0000"}]


class TestTable7Golden:
    BENCHMARKS = ("bzip2", "gcc", "mcf")

    @pytest.fixture(scope="class")
    def fresh(self):
        # The snapshots are cycle-backend ground truth; the drivers default
        # to the trace backend, so the golden re-measurement pins "cycle".
        return table7_rms.run(benchmarks=list(self.BENCHMARKS), quick=True,
                              backend="cycle")

    def test_rows_match_snapshot(self, fresh):
        golden = rows_by_first_column(load_snapshot("table7_rms"))
        for row in fresh.rows:
            expected = golden[row.benchmark]
            assert row.paco_rms_error == pytest.approx(
                float(expected["rms"]), abs=RMS_TOLERANCE), row.benchmark
            assert 100 * row.overall_mispredict_rate == pytest.approx(
                float(expected["overall%"]), abs=PERCENT_TOLERANCE), row.benchmark
            assert 100 * row.conditional_mispredict_rate == pytest.approx(
                float(expected["cond%"]), abs=PERCENT_TOLERANCE), row.benchmark


class TestFig2Golden:
    BENCHMARKS = ("twolf", "gzip")

    def test_mdc_rates_match_snapshot(self):
        golden = rows_by_first_column(load_snapshot("fig2_mdc_rates"))
        fresh = fig2_mdc_rates.run(benchmarks=list(self.BENCHMARKS), quick=True,
                                   backend="cycle")
        for name, by_mdc in fresh.rates.items():
            expected = golden[name]
            for mdc in range(16):
                assert 100 * by_mdc.get(mdc, 0.0) == pytest.approx(
                    float(expected[f"mdc{mdc}"]), abs=PERCENT_TOLERANCE
                ), (name, mdc)


class TestTableA1Golden:
    BENCHMARKS = ("crafty", "gzip")

    def test_mrt_variants_match_snapshot(self):
        golden = rows_by_first_column(load_snapshot("tableA1_mrt_variants"))
        fresh = tableA1_mrt_variants.run(benchmarks=list(self.BENCHMARKS),
                                         quick=True, backend="cycle")
        for row in fresh.rows:
            expected = golden[row.benchmark]
            assert row.mrt_rms == pytest.approx(
                float(expected["MRT"]), abs=RMS_TOLERANCE), row.benchmark
            assert row.static_mrt_rms == pytest.approx(
                float(expected["StaticMRT"]), abs=RMS_TOLERANCE), row.benchmark
            assert row.per_branch_mrt_rms == pytest.approx(
                float(expected["PerBranchMRT"]), abs=RMS_TOLERANCE), row.benchmark


class TestAblationGolden:
    def test_log_circuit_matches_snapshot(self):
        golden = rows_by_first_column(load_snapshot("ablation_log_circuit"))
        fresh = ablations.run_log_circuit_ablation(benchmarks=("parser",),
                                                   quick=True)
        for variant, by_benchmark in fresh.rms_by_variant.items():
            expected = golden[variant]
            assert by_benchmark["parser"] == pytest.approx(
                float(expected["parser"]), abs=RMS_TOLERANCE), variant


class TestFig12Golden:
    #: Mirrors ``_QUICK`` in benchmarks/test_bench_fig12_smt.py, restricted
    #: to the snapshot's first pair.
    CONFIG = SMTStudyConfig(
        pairs=[("gap", "mcf")],
        jrs_thresholds=(3,),
        include_icount=True,
        instructions=40_000,
        warmup_instructions=16_000,
        single_thread_instructions=20_000,
    )

    def test_hmwipc_matches_snapshot(self):
        golden = rows_by_first_column(load_snapshot("fig12_smt"))
        fresh = fig12_smt.run(config=self.CONFIG)
        [pair] = fresh.pairs
        expected = golden["-".join(pair.pair)]
        for policy in ("icount", "jrs-t3", "paco"):
            assert pair.hmwipc_by_policy[policy] == pytest.approx(
                float(expected[policy]), abs=HMWIPC_TOLERANCE), policy
