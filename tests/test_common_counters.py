"""Unit tests for repro.common.counters."""

import pytest

from repro.common.counters import (
    HalvingRateCounter,
    HistoryRegister,
    SaturatingCounter,
    ShiftRegister,
    UpDownCounter,
)


class TestSaturatingCounter:
    def test_starts_at_initial_value(self):
        assert SaturatingCounter(4, initial=5).value == 5

    def test_increments_until_saturation(self):
        counter = SaturatingCounter(2)
        for _ in range(10):
            counter.increment()
        assert counter.value == 3
        assert counter.is_saturated

    def test_decrement_saturates_at_zero(self):
        counter = SaturatingCounter(3, initial=1)
        counter.decrement()
        counter.decrement()
        assert counter.value == 0

    def test_reset_returns_to_zero(self):
        counter = SaturatingCounter(4, initial=9)
        counter.reset()
        assert counter.value == 0

    def test_reset_to_specific_value(self):
        counter = SaturatingCounter(4)
        counter.reset(7)
        assert counter.value == 7

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            SaturatingCounter(0)

    def test_rejects_out_of_range_initial(self):
        with pytest.raises(ValueError):
            SaturatingCounter(2, initial=4)

    def test_rejects_out_of_range_reset(self):
        with pytest.raises(ValueError):
            SaturatingCounter(2).reset(9)

    def test_int_conversion(self):
        assert int(SaturatingCounter(4, initial=6)) == 6

    def test_increment_by_amount_saturates(self):
        counter = SaturatingCounter(3, initial=5)
        counter.increment(10)
        assert counter.value == 7


class TestUpDownCounter:
    def test_increment_and_decrement(self):
        counter = UpDownCounter(max_value=8)
        counter.increment()
        counter.increment()
        counter.decrement()
        assert counter.value == 1

    def test_decrement_floors_at_zero(self):
        counter = UpDownCounter(max_value=4)
        counter.decrement()
        assert counter.value == 0

    def test_increment_caps_at_max(self):
        counter = UpDownCounter(max_value=2)
        for _ in range(5):
            counter.increment()
        assert counter.value == 2

    def test_rejects_nonpositive_max(self):
        with pytest.raises(ValueError):
            UpDownCounter(max_value=0)

    def test_reset(self):
        counter = UpDownCounter(max_value=4, initial=3)
        counter.reset()
        assert counter.value == 0


class TestShiftRegister:
    def test_shift_in_builds_value(self):
        reg = ShiftRegister(4)
        reg.shift_in(1)
        reg.shift_in(0)
        reg.shift_in(1)
        assert reg.value == 0b101

    def test_width_truncation(self):
        reg = ShiftRegister(3)
        for _ in range(5):
            reg.shift_in(1)
        assert reg.value == 0b111

    def test_bit_access(self):
        reg = ShiftRegister(4, initial=0b1010)
        assert reg.bit(0) == 0
        assert reg.bit(1) == 1
        assert reg.bit(3) == 1

    def test_bit_out_of_range(self):
        with pytest.raises(IndexError):
            ShiftRegister(4).bit(4)

    def test_load_masks_to_width(self):
        reg = ShiftRegister(4)
        reg.load(0xFF)
        assert reg.value == 0xF

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            ShiftRegister(0)


class TestHistoryRegister:
    def test_fold_with_combines_pc_and_history(self):
        history = HistoryRegister(8, initial=0b1100_0011)
        index = history.fold_with(pc=0x400100, table_bits=10)
        assert 0 <= index < (1 << 10)
        assert index == (((0x400100 >> 2) ^ 0b1100_0011) & ((1 << 10) - 1))

    def test_fold_changes_with_history(self):
        a = HistoryRegister(8, initial=0)
        b = HistoryRegister(8, initial=0xFF)
        assert a.fold_with(0x1000, 8) != b.fold_with(0x1000, 8)


class TestHalvingRateCounter:
    def test_records_correct_and_mispredicted(self):
        counter = HalvingRateCounter()
        counter.record(True)
        counter.record(True)
        counter.record(False)
        assert counter.correct == 2
        assert counter.mispredicted == 1
        assert counter.total == 3

    def test_correct_rate_with_no_samples_is_half(self):
        assert HalvingRateCounter().correct_rate == pytest.approx(0.5)

    def test_mispredict_rate_complements_correct_rate(self):
        counter = HalvingRateCounter()
        for _ in range(3):
            counter.record(True)
        counter.record(False)
        assert counter.mispredict_rate == pytest.approx(0.25)

    def test_halving_preserves_rate_on_correct_overflow(self):
        counter = HalvingRateCounter(correct_bits=4, mispredict_bits=4)
        for _ in range(8):
            counter.record(True)
        for _ in range(2):
            counter.record(False)
        rate_before = counter.mispredict_rate
        # Push the correct counter to its maximum, then once more to halve.
        while counter.correct < 15:
            counter.record(True)
        counter.record(True)
        assert counter.correct <= 15
        assert counter.mispredict_rate == pytest.approx(rate_before, abs=0.15)

    def test_halving_triggered_by_mispredict_overflow(self):
        counter = HalvingRateCounter(correct_bits=6, mispredict_bits=2)
        for _ in range(6):
            counter.record(True)
        for _ in range(3):
            counter.record(False)
        # Next mispredict overflows the 2-bit counter and halves both.
        counter.record(False)
        assert counter.mispredicted <= 3
        assert counter.correct <= 6

    def test_reset_clears_both(self):
        counter = HalvingRateCounter()
        counter.record(True)
        counter.record(False)
        counter.reset()
        assert counter.total == 0

    def test_snapshot_is_immutable_copy(self):
        counter = HalvingRateCounter()
        counter.record(True)
        snap = counter.snapshot()
        counter.record(False)
        assert snap.correct == 1
        assert snap.mispredicted == 0

    def test_rejects_nonpositive_widths(self):
        with pytest.raises(ValueError):
            HalvingRateCounter(correct_bits=0)
