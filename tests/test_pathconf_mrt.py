"""Unit tests for the Mispredict Rate Table."""

import pytest

from repro.common.logcircuit import ENCODED_PROBABILITY_MAX, encode_probability_exact
from repro.pathconf.mrt import DEFAULT_STATIC_MISPREDICT_RATES, MispredictRateTable


class TestDefaultProfile:
    def test_profile_is_monotone_decreasing(self):
        rates = DEFAULT_STATIC_MISPREDICT_RATES
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_profile_covers_16_buckets(self):
        assert len(DEFAULT_STATIC_MISPREDICT_RATES) == 16


class TestMispredictRateTable:
    def test_initial_encodings_follow_prior_profile(self):
        mrt = MispredictRateTable()
        assert (mrt.encoded_probability(0)
                == encode_probability_exact(1.0 - DEFAULT_STATIC_MISPREDICT_RATES[0]))
        assert mrt.encoded_probability(0) > mrt.encoded_probability(15)

    def test_record_and_measured_rate(self):
        mrt = MispredictRateTable()
        for _ in range(8):
            mrt.record(2, was_correct=True)
        for _ in range(2):
            mrt.record(2, was_correct=False)
        assert mrt.measured_mispredict_rate(2) == pytest.approx(0.2)

    def test_record_rejects_bad_bucket(self):
        with pytest.raises(ValueError):
            MispredictRateTable().record(16, was_correct=True)
        with pytest.raises(ValueError):
            MispredictRateTable().encoded_probability(-1)

    def test_relogarithmize_updates_encoding_and_resets_counters(self):
        mrt = MispredictRateTable()
        for _ in range(90):
            mrt.record(0, was_correct=True)
        for _ in range(10):
            mrt.record(0, was_correct=False)
        mrt.relogarithmize()
        # 90% correct → encoded ≈ -1024*log2(0.9) ≈ 156.
        assert 100 <= mrt.encoded_probability(0) <= 220
        assert mrt.counters[0].total == 0

    def test_relogarithmize_keeps_unsampled_buckets(self):
        mrt = MispredictRateTable()
        before = mrt.encoded_probability(7)
        mrt.relogarithmize()
        assert mrt.encoded_probability(7) == before

    def test_maybe_relog_respects_period(self):
        mrt = MispredictRateTable(relog_period_cycles=1000)
        mrt.record(0, was_correct=False)
        assert not mrt.maybe_relog(cycle=500)
        assert mrt.maybe_relog(cycle=1000)
        assert mrt.relog_passes == 1
        assert not mrt.maybe_relog(cycle=1500)
        assert mrt.maybe_relog(cycle=2000)

    def test_all_mispredicted_bucket_clamps(self):
        mrt = MispredictRateTable()
        for _ in range(20):
            mrt.record(1, was_correct=False)
        mrt.relogarithmize()
        assert mrt.encoded_probability(1) == ENCODED_PROBABILITY_MAX

    def test_exact_log_option(self):
        mrt = MispredictRateTable(use_mitchell_log=False)
        for _ in range(3):
            mrt.record(0, was_correct=True)
        mrt.record(0, was_correct=False)
        mrt.relogarithmize()
        assert mrt.encoded_probability(0) == encode_probability_exact(0.75)

    def test_mitchell_and_exact_agree_closely(self):
        approx = MispredictRateTable(use_mitchell_log=True)
        exact = MispredictRateTable(use_mitchell_log=False)
        for table in (approx, exact):
            for _ in range(80):
                table.record(3, was_correct=True)
            for _ in range(20):
                table.record(3, was_correct=False)
            table.relogarithmize()
        assert abs(approx.encoded_probability(3)
                   - exact.encoded_probability(3)) < 150

    def test_snapshot_rates_only_includes_sampled_buckets(self):
        mrt = MispredictRateTable()
        mrt.record(4, was_correct=True)
        rates = mrt.snapshot_rates()
        assert set(rates) == {4}

    def test_storage_budget_matches_paper(self):
        mrt = MispredictRateTable()
        # 16 buckets * (10 + 6) counter bits = 32 bytes of counters, plus
        # 16 * 12 bits of encoded-probability registers = 24 bytes.
        assert mrt.storage_bits() == 16 * 16 + 16 * 12
        assert mrt.storage_bits() // 8 <= 60  # "less than 60 bytes"

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            MispredictRateTable(num_buckets=0)
        with pytest.raises(ValueError):
            MispredictRateTable(relog_period_cycles=0)

    def test_custom_prior(self):
        mrt = MispredictRateTable(initial_mispredict_rates=[0.5] * 16)
        assert mrt.encoded_probability(0) == encode_probability_exact(0.5)

    def test_short_prior_is_extended(self):
        mrt = MispredictRateTable(initial_mispredict_rates=[0.4, 0.2])
        assert mrt.encoded_probability(15) == encode_probability_exact(0.8)
