"""Tests for the sweep runner: jobs, caching, sharding, determinism.

The determinism tests pin the runner's core contract: the same job list
produces byte-identical results whether it executes serially, sharded
across a worker pool, or from a warm on-disk cache.
"""

from __future__ import annotations

import pickle

import pytest

from repro.runner import (
    Job,
    ResultCache,
    SweepRunner,
    SweepSpec,
    UnknownExperimentError,
    accuracy_job,
    execute_job,
    register_experiment,
    registered_experiments,
    resolve_runner,
    single_ipc_job,
    smt_job,
)

_CALLS = []


def _hammer_cache_put(directory: str, worker: int) -> None:
    """Child-process body: overwrite one shared cache entry repeatedly."""
    cache = ResultCache(directory, version="shared")
    job = Job.make("test-double", value=1)
    payload = f"payload-{worker}" + "x" * 4096
    for _ in range(50):
        cache.put(job, payload)
        hit, value = cache.get(job)
        assert hit, "reader observed a missing/torn entry during puts"
        assert value.startswith("payload-"), value


@register_experiment("test-double")
def _double(value: int = 0, seed: int = 1) -> int:
    _CALLS.append((value, seed))
    return 2 * value


@register_experiment("test-axes")
def _axes(a: int = 0, b: int = 0, value: int = 0, seed: int = 1) -> tuple:
    return (a, b)


class TestJobModel:
    def test_params_roundtrip(self):
        job = Job.make("test-double", value=21, seed=3)
        assert job.params == {"value": 21}
        assert job.seed == 3

    def test_canonical_is_order_independent(self):
        a = Job.make("accuracy", benchmark="gzip", instructions=100)
        b = Job.make("accuracy", instructions=100, benchmark="gzip")
        assert a.canonical() == b.canonical()
        assert a.digest() == b.digest()

    def test_digest_changes_with_params_and_seed(self):
        base = Job.make("accuracy", benchmark="gzip", instructions=100)
        assert base.digest() != Job.make(
            "accuracy", benchmark="gzip", instructions=200).digest()
        assert base.digest() != Job.make(
            "accuracy", benchmark="gzip", instructions=100, seed=2).digest()

    def test_label_does_not_affect_identity(self):
        a = Job.make("accuracy", label="x", benchmark="gzip")
        b = Job.make("accuracy", label="y", benchmark="gzip")
        assert a.digest() == b.digest()

    def test_non_serializable_params_rejected(self):
        with pytest.raises(TypeError):
            Job.make("accuracy", benchmark=object())

    def test_unknown_experiment_raises(self):
        with pytest.raises(UnknownExperimentError):
            execute_job(Job.make("no-such-experiment"))

    def test_standard_kinds_registered(self):
        assert {"accuracy", "gating", "single-ipc",
                "smt"} <= set(registered_experiments())


class TestSweepSpec:
    def test_cartesian_product_enumeration(self):
        spec = SweepSpec(
            experiment="test-double",
            axes={"value": [1, 2, 3]},
            seed=9,
        )
        jobs = spec.jobs()
        assert len(spec) == 3
        assert [job.params["value"] for job in jobs] == [1, 2, 3]
        assert all(job.seed == 9 for job in jobs)

    def test_multi_axis_order_is_deterministic(self):
        spec = SweepSpec(
            experiment="test-axes",
            axes={"b": [1, 2], "a": [10, 20]},
            base={"value": 0},
        )
        jobs = spec.jobs()
        # Axes iterate sorted by name: 'a' is the outer loop.
        assert [(j.params["a"], j.params["b"]) for j in jobs] == [
            (10, 1), (10, 2), (20, 1), (20, 2),
        ]
        assert SweepRunner().run(spec) == [(10, 1), (10, 2), (20, 1), (20, 2)]


class TestSweepRunnerScheduling:
    def test_results_in_input_order(self):
        jobs = [Job.make("test-double", value=v) for v in (5, 1, 3)]
        assert SweepRunner().map(jobs) == [10, 2, 6]

    def test_duplicate_jobs_execute_once(self):
        _CALLS.clear()
        jobs = [Job.make("test-double", value=7),
                Job.make("test-double", value=7),
                Job.make("test-double", value=8)]
        assert SweepRunner().map(jobs) == [14, 14, 16]
        assert sorted(_CALLS) == [(7, 1), (8, 1)]

    def test_resolve_runner_defaults_to_serial_uncached(self):
        runner = resolve_runner(None)
        assert runner.workers == 1
        assert runner.cache is None
        explicit = SweepRunner(workers=3)
        assert resolve_runner(explicit) is explicit

    def test_worker_pool_matches_serial(self):
        jobs = [Job.make("test-double", value=v) for v in range(6)]
        serial = SweepRunner(workers=1).map(jobs)
        parallel = SweepRunner(workers=2).map(jobs)
        assert serial == parallel == [0, 2, 4, 6, 8, 10]

    @pytest.mark.skipif(
        "spawn" not in __import__("multiprocessing").get_all_start_methods(),
        reason="spawn start method unavailable")
    def test_spawn_workers_resolve_standard_kinds(self):
        # Executors are resolved in the parent and shipped by reference,
        # so freshly spawned workers (no inherited registry state) work.
        jobs = [single_ipc_job(name, instructions=2_000,
                               warmup_instructions=500)
                for name in ("gzip", "twolf")]
        spawned = SweepRunner(workers=2, start_method="spawn").map(jobs)
        assert spawned == SweepRunner().map(jobs)


class TestResultCache:
    def test_roundtrip_and_counters(self, tmp_path):
        cache = ResultCache(tmp_path, version="v1")
        job = Job.make("test-double", value=4)
        hit, _ = cache.get(job)
        assert not hit
        cache.put(job, 8)
        hit, value = cache.get(job)
        assert hit and value == 8
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1
        assert len(cache) == 1

    def test_config_change_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path, version="v1")
        cache.put(Job.make("accuracy", benchmark="gzip",
                           instructions=1000), "result")
        hit, _ = cache.get(Job.make("accuracy", benchmark="gzip",
                                    instructions=2000))
        assert not hit
        hit, _ = cache.get(Job.make("accuracy", benchmark="gzip",
                                    instructions=1000, seed=2))
        assert not hit

    def test_code_version_change_is_a_miss(self, tmp_path):
        job = Job.make("test-double", value=4)
        ResultCache(tmp_path, version="v1").put(job, 8)
        hit, _ = ResultCache(tmp_path, version="v2").get(job)
        assert not hit
        hit, value = ResultCache(tmp_path, version="v1").get(job)
        assert hit and value == 8

    def test_torn_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path, version="v1")
        job = Job.make("test-double", value=4)
        cache.put(job, 8)
        path = next(iter(cache.entries()))
        path.write_bytes(b"not a pickle")
        hit, _ = cache.get(job)
        assert not hit

    def test_clear_removes_everything(self, tmp_path):
        cache = ResultCache(tmp_path, version="v1")
        for value in range(3):
            cache.put(Job.make("test-double", value=value), value)
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_contains_probes_without_counting(self, tmp_path):
        cache = ResultCache(tmp_path, version="v1")
        job = Job.make("test-double", value=4)
        assert not cache.contains(job)
        cache.put(job, 8)
        assert cache.contains(job)
        assert (cache.stats.hits, cache.stats.misses) == (0, 0)


class TestResultCacheAtomicPut:
    """``put`` must publish via temp file + ``os.replace`` so concurrent
    writers — e.g. campaign shards sharing one cache directory — can
    never expose a torn entry to a reader."""

    def test_overwrite_is_atomic_for_a_concurrent_reader(self, tmp_path,
                                                         monkeypatch):
        import os

        cache = ResultCache(tmp_path, version="v1")
        job = Job.make("test-double", value=4)
        cache.put(job, "old")
        observed = []
        real_replace = os.replace

        def snooping_replace(src, dst):
            # The instant before the new entry is published, a concurrent
            # reader must still see the complete old value.
            hit, value = ResultCache(tmp_path, version="v1").get(job)
            observed.append((hit, value))
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", snooping_replace)
        cache.put(job, "new")
        monkeypatch.undo()
        assert observed == [(True, "old")]
        hit, value = ResultCache(tmp_path, version="v1").get(job)
        assert (hit, value) == (True, "new")

    def test_failed_put_leaves_no_temp_file_and_keeps_old_entry(
            self, tmp_path):
        cache = ResultCache(tmp_path, version="v1")
        job = Job.make("test-double", value=4)
        cache.put(job, "old")

        class Unpicklable:
            def __reduce__(self):
                raise RuntimeError("cannot pickle me")

        with pytest.raises(RuntimeError, match="cannot pickle me"):
            cache.put(job, Unpicklable())
        leftovers = [path for path in tmp_path.rglob("*")
                     if path.is_file() and path.suffix != ".pkl"]
        assert leftovers == []
        hit, value = cache.get(job)
        assert (hit, value) == (True, "old")

    def test_concurrent_writers_leave_a_complete_entry(self, tmp_path):
        import multiprocessing

        context = multiprocessing.get_context()
        processes = [
            context.Process(target=_hammer_cache_put,
                            args=(str(tmp_path), worker))
            for worker in range(4)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join()
            assert process.exitcode == 0
        cache = ResultCache(tmp_path, version="shared")
        hit, value = cache.get(Job.make("test-double", value=1))
        assert hit and value.startswith("payload-")
        # No temp droppings survive the stampede.
        assert [p for p in tmp_path.rglob("*.tmp")] == []


class TestResultCachePrune:
    def _fill(self, tmp_path, count=4):
        import os
        import time
        cache = ResultCache(tmp_path, version="v1")
        paths = []
        for value in range(count):
            job = Job.make("test-double", value=value)
            cache.put(job, value)
            path = cache._path(cache.key(job))
            # Entry ages increase with value: entry 0 is newest, the last
            # is oldest.
            age = time.time() - value * 1_000
            os.utime(path, (age, age))
            paths.append(path)
        return cache, paths

    def test_prune_by_age(self, tmp_path):
        cache, paths = self._fill(tmp_path)
        stats = cache.prune(max_age_seconds=1_500)
        assert stats.removed == 2            # the 2000s- and 3000s-old ones
        assert stats.remaining == 2
        assert paths[0].exists() and paths[1].exists()
        assert not paths[2].exists() and not paths[3].exists()
        assert stats.bytes_freed > 0

    def test_prune_by_size_drops_oldest_first(self, tmp_path):
        cache, paths = self._fill(tmp_path)
        entry_size = paths[0].stat().st_size
        stats = cache.prune(max_total_bytes=2 * entry_size)
        assert stats.removed == 2
        assert paths[0].exists() and paths[1].exists()
        assert not paths[3].exists()
        assert cache.size_bytes() <= 2 * entry_size

    def test_prune_noop_within_budget(self, tmp_path):
        cache, _paths = self._fill(tmp_path, count=2)
        stats = cache.prune(max_age_seconds=10_000,
                            max_total_bytes=1 << 30)
        assert stats.removed == 0
        assert stats.remaining == 2

    def test_pruned_entry_is_a_clean_miss(self, tmp_path):
        cache, _ = self._fill(tmp_path)
        cache.prune(max_age_seconds=0.0)
        hit, _ = cache.get(Job.make("test-double", value=3))
        assert not hit


#: Small budgets keep the three executions of each determinism sweep cheap.
_ACCURACY_JOBS = [
    accuracy_job(name, instructions=4_000, warmup_instructions=1_000)
    for name in ("gzip", "twolf")
]
_SMT_JOBS = [
    smt_job("gzip", "twolf", policy=policy, instructions=6_000,
            warmup_instructions=2_000, single_ipcs=(1.0, 1.0))
    for policy in ("icount", "paco")
]


class TestDeterminism:
    """Same seed => byte-identical stats across execution strategies."""

    def _stat_bytes(self, results, attribute="stats"):
        return [pickle.dumps(getattr(r, attribute)) for r in results]

    def test_accuracy_serial_parallel_cached_identical(self, tmp_path):
        serial = SweepRunner().map(_ACCURACY_JOBS)
        parallel = SweepRunner(workers=2).map(_ACCURACY_JOBS)

        cache = ResultCache(tmp_path)
        cold = SweepRunner(workers=2, cache=cache).map(_ACCURACY_JOBS)
        warm = SweepRunner(cache=cache).map(_ACCURACY_JOBS)
        assert cache.stats.hits == len(_ACCURACY_JOBS)

        reference = self._stat_bytes(serial)
        assert self._stat_bytes(parallel) == reference
        assert self._stat_bytes(cold) == reference
        assert self._stat_bytes(warm) == reference
        # The CoreStats objects compare equal field-by-field as well.
        for a, b in zip(serial, warm):
            assert a.stats == b.stats
            assert a.rms_errors == b.rms_errors

    def test_smt_serial_parallel_cached_identical(self, tmp_path):
        serial = SweepRunner().map(_SMT_JOBS)
        parallel = SweepRunner(workers=2).map(_SMT_JOBS)

        cache = ResultCache(tmp_path)
        SweepRunner(cache=cache).map(_SMT_JOBS)       # populate
        warm = SweepRunner(cache=cache).map(_SMT_JOBS)
        assert cache.stats.hits == len(_SMT_JOBS)

        reference = self._stat_bytes(serial)
        assert self._stat_bytes(parallel) == reference
        assert self._stat_bytes(warm) == reference
        for a, b in zip(serial, warm):
            assert a.hmwipc == b.hmwipc
            assert a.smt_ipcs == b.smt_ipcs

    def test_single_ipc_shared_across_policies(self):
        """The dedup layer measures a repeated baseline job exactly once."""
        jobs = [single_ipc_job("gzip", instructions=3_000,
                               warmup_instructions=1_000)
                for _ in range(4)]
        values = SweepRunner().map(jobs)
        assert len(set(values)) == 1
