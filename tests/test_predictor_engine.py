"""Unit tests for the fused predictor state engine.

The engine (``repro.branch_predictor.engine``) is the hot-path
reimplementation of the front-end predict/resolve flow plus the JRS
confidence lookup, operating on one shared :class:`BranchRecord` per
branch.  These tests pin it to the readable reference implementation —
``FrontEndPredictor.predict``/``resolve`` with their per-step objects —
because the cycle backend's golden results depend on the two being
behaviour-identical.
"""

import pytest

from repro.branch_predictor.engine import BranchRecord, PredictorStateEngine
from repro.branch_predictor.frontend import FrontEndPredictor
from repro.branch_predictor.tournament import TournamentPredictor
from repro.common.rng import DeterministicRng
from repro.confidence.jrs import JRSConfidencePredictor
from repro.isa.instruction import BranchOutcome, Instruction
from repro.isa.types import BranchKind, InstructionClass
from repro.pathconf.base import BranchFetchInfo
from repro.pathconf.composite import CompositePathConfidence
from repro.pathconf.paco import PaCoPredictor
from repro.pathconf.static_mrt import StaticMRTPredictor
from repro.pathconf.threshold_count import ThresholdAndCountPredictor


def _branch(seq, pc, kind=BranchKind.CONDITIONAL, taken=True,
            target=0x400100, static_branch_id=None):
    return Instruction(
        seq=seq, pc=pc, iclass=InstructionClass.BRANCH, branch_kind=kind,
        outcome=BranchOutcome(taken=taken, target=target),
        static_branch_id=static_branch_id,
    )


def _frontend_pair(**kwargs):
    """Two identically configured frontend+JRS stacks (reference, engine)."""
    frontends = [FrontEndPredictor(**kwargs) for _ in range(2)]
    tables = [JRSConfidencePredictor(index_bits=10) for _ in range(2)]
    return frontends, tables


class TestBranchRecord:
    def test_constructs_with_branch_fetch_info_kwargs(self):
        record = BranchRecord(pc=0x400000, mdc_value=7, mdc_index=3,
                              predicted_taken=True, history=0b1010)
        assert record.pc == 0x400000
        assert record.mdc_value == 7
        assert record.mdc_index == 3
        assert record.predicted_taken is True
        assert record.history == 0b1010
        assert record.static_branch_id is None
        assert record.thread_id == 0

    def test_branch_fetch_info_is_the_record(self):
        assert BranchFetchInfo is BranchRecord

    def test_per_predictor_slots_start_empty(self):
        record = BranchRecord()
        assert record.encoded_added is None
        assert record.static_encoded is None
        assert record.pbm_encoded is None
        assert record.counted is None
        assert record.profile_bucket is None
        assert record.path_token is None
        assert not record.resolved

    def test_history_at_predict_aliases_history(self):
        record = BranchRecord(history=0b1100)
        assert record.history_at_predict == 0b1100


class TestIndexMath:
    """The engine's precomputed indices match the component index methods."""

    def test_conditional_indices_match_components(self):
        (reference, fused), (jrs_ref, jrs_fused) = _frontend_pair(
            history_bits=8, direction_index_bits=12, btb_sets=128)
        engine = PredictorStateEngine(fused, jrs_fused)
        rng = DeterministicRng(7)
        for seq in range(300):
            pc = 0x400000 + (rng.next_u64() % 512) * 4
            # Push some history so the XOR indices are non-trivial.
            history = fused.history.value
            instr = _branch(seq, pc, taken=rng.bernoulli(0.6))
            record = engine.predict_branch(instr)
            tournament = fused.direction
            assert record.gshare_index == tournament.gshare._index(pc, history)
            assert record.bimodal_index == tournament.bimodal._index(pc)
            assert record.chooser_index == tournament._chooser_index(pc, history)
            assert record.mdc_index == jrs_fused._index(pc, history,
                                                        record.taken)
            assert record.mdc_value == jrs_fused.table[record.mdc_index]
            assert record.history == history
            engine.resolve_branch(instr, record, train=True)

    def test_prediction_values_match_tables(self):
        _, (jrs, _) = _frontend_pair()
        frontend = FrontEndPredictor(direction_index_bits=10)
        engine = PredictorStateEngine(frontend, jrs)
        instr = _branch(0, 0x400040)
        record = engine.predict_branch(instr)
        tournament = frontend.direction
        assert record.gshare_taken == (
            tournament.gshare.table[record.gshare_index]
            >= tournament.gshare._threshold)
        assert record.bimodal_taken == (
            tournament.bimodal.table[record.bimodal_index]
            >= tournament.bimodal._threshold)
        expected = (record.gshare_taken if record.chose_gshare
                    else record.bimodal_taken)
        assert record.taken == expected


class TestChooserParityWithTokenObjects:
    """Fused tournament training == the old token-object update path."""

    def test_chooser_and_component_tables_identical(self):
        reference = TournamentPredictor(index_bits=10, history_bits=8)
        frontend = FrontEndPredictor(history_bits=8, direction_index_bits=10)
        engine = PredictorStateEngine(frontend, None)
        fused = frontend.direction
        rng = DeterministicRng(11)
        history = 0
        for seq in range(2_000):
            pc = 0x400000 + (rng.next_u64() % 256) * 4
            taken = rng.bernoulli(0.55)
            # Reference path: the old BranchPredictionResult/_TournamentMeta
            # token objects.
            result = reference.predict(pc, history)
            reference.update(pc, history, taken, result)
            # Fused path: one BranchRecord, indices precomputed at fetch.
            frontend.history.value = history  # keep histories in lockstep
            instr = _branch(seq, pc, taken=taken)
            record = engine.predict_branch(instr)
            engine.resolve_branch(instr, record, train=True)
            assert record.chose_gshare == (result.meta.chose_gshare)
            assert record.taken == result.taken
            history = ((history << 1) | (1 if taken else 0)) & 0xFF
        assert fused.chooser == reference.chooser
        assert fused.gshare.table == reference.gshare.table
        assert fused.bimodal.table == reference.bimodal.table


class TestEnginePredictorParity:
    """Engine predict/resolve == FrontEndPredictor reference + JRS update."""

    KINDS = (
        BranchKind.CONDITIONAL, BranchKind.CONDITIONAL, BranchKind.CONDITIONAL,
        BranchKind.UNCONDITIONAL, BranchKind.CALL, BranchKind.RETURN,
        BranchKind.INDIRECT, BranchKind.INDIRECT_CALL,
    )

    def _run_streams(self, train):
        (reference, fused), (jrs_ref, jrs_fused) = _frontend_pair(
            history_bits=8, direction_index_bits=11, btb_sets=64, ras_depth=8)
        engine = PredictorStateEngine(fused, jrs_fused)
        rng = DeterministicRng(23)
        pending = []  # delayed resolution: (ref instr, ref pred, ref lookup,
                      #                      fused instr, fused record)
        for seq in range(1_500):
            kind = self.KINDS[rng.next_u64() % len(self.KINDS)]
            pc = 0x400000 + (rng.next_u64() % 200) * 4
            taken = rng.bernoulli(0.5) if kind is BranchKind.CONDITIONAL else True
            target = 0x410000 + (rng.next_u64() % 64) * 4
            instr_ref = _branch(seq, pc, kind, taken, target)
            instr_fused = _branch(seq, pc, kind, taken, target)

            pred = reference.predict(instr_ref)
            record = engine.predict_branch(instr_fused)
            assert record.taken == pred.taken
            assert record.target == pred.target
            assert record.btb_hit == pred.btb_hit
            assert record.history == pred.history_at_predict
            assert record.is_conditional == (kind is BranchKind.CONDITIONAL)

            if kind is BranchKind.CONDITIONAL:
                mispredicted = pred.taken != taken
                lookup = jrs_ref.lookup(pc, pred.history_at_predict, pred.taken)
                assert record.mdc_index == lookup.index
                assert record.mdc_value == lookup.mdc_value
            else:
                mispredicted = pred.target != target
                lookup = None
            pred.mispredicted = mispredicted
            record.mispredicted = mispredicted
            pending.append((instr_ref, pred, lookup, instr_fused, record))

            # Resolve a few branches out of band so histories move between
            # predict and resolve, exactly as in-flight windows do.
            while len(pending) > 4:
                i_ref, p_ref, lk, i_fused, rec = pending.pop(0)
                reference.resolve(i_ref, p_ref, train=train)
                if lk is not None and train:
                    jrs_ref.update(lk, was_correct=not p_ref.mispredicted)
                engine.resolve_branch(i_fused, rec, train=train)
        for i_ref, p_ref, lk, i_fused, rec in pending:
            reference.resolve(i_ref, p_ref, train=train)
            if lk is not None and train:
                jrs_ref.update(lk, was_correct=not p_ref.mispredicted)
            engine.resolve_branch(i_fused, rec, train=train)
        return reference, fused, jrs_ref, jrs_fused

    def test_trained_state_identical(self):
        reference, fused, jrs_ref, jrs_fused = self._run_streams(train=True)
        assert fused.direction.gshare.table == reference.direction.gshare.table
        assert fused.direction.bimodal.table == reference.direction.bimodal.table
        assert fused.direction.chooser == reference.direction.chooser
        assert fused.history.value == reference.history.value
        assert jrs_fused.table == jrs_ref.table
        assert jrs_fused.lookups == jrs_ref.lookups
        assert jrs_fused.updates == jrs_ref.updates
        assert jrs_fused.resets == jrs_ref.resets
        assert fused.indirect._table == reference.indirect._table

    def test_untrained_resolution_repairs_history_only(self):
        reference, fused, jrs_ref, jrs_fused = self._run_streams(train=False)
        assert fused.direction.gshare.table == reference.direction.gshare.table
        assert fused.direction.chooser == reference.direction.chooser
        assert fused.history.value == reference.history.value
        assert jrs_fused.updates == jrs_ref.updates == 0


class TestResetSemantics:
    """Component resets stay visible through the engine's borrowed tables."""

    def test_direction_and_jrs_reset_in_place(self):
        frontend = FrontEndPredictor(direction_index_bits=10)
        jrs = JRSConfidencePredictor(index_bits=10)
        engine = PredictorStateEngine(frontend, jrs)
        rng = DeterministicRng(3)
        for seq in range(400):
            instr = _branch(seq, 0x400000 + (rng.next_u64() % 64) * 4,
                            taken=rng.bernoulli(0.5))
            record = engine.predict_branch(instr)
            record.mispredicted = record.taken != instr.outcome.taken
            engine.resolve_branch(instr, record, train=True)
        assert any(v != 2 for v in frontend.direction.gshare.table)
        assert any(v != 0 for v in jrs.table)
        frontend.direction.reset()
        jrs.reset()
        frontend.history.restore(0)
        # The engine's borrowed references observe the cleared state.
        instr = _branch(999, 0x400000)
        record = engine.predict_branch(instr)
        assert record.mdc_value == 0
        assert record.gshare_taken and record.bimodal_taken  # weakly taken
        assert record.chose_gshare  # chooser back at its weak-gshare init

    def test_rebind_recaptures_replaced_tables(self):
        frontend = FrontEndPredictor(direction_index_bits=8)
        jrs = JRSConfidencePredictor(index_bits=8)
        engine = PredictorStateEngine(frontend, jrs)
        # Wholesale replacement (not the supported in-place reset) needs an
        # explicit rebind.
        jrs.table = [5] * jrs.size
        engine.rebind()
        record = engine.predict_branch(_branch(0, 0x400000))
        assert record.mdc_value == 5


class TestSharedRecordTokens:
    def _info(self, mdc_value=0):
        return BranchFetchInfo(pc=0x400000, mdc_value=mdc_value, mdc_index=0,
                               predicted_taken=True, history=0)

    def test_builtin_predictors_return_the_record(self):
        info = self._info(mdc_value=2)
        paco = PaCoPredictor()
        assert paco.on_branch_fetch(info) is info
        assert info.encoded_added is not None
        count = ThresholdAndCountPredictor(threshold=3)
        assert count.on_branch_fetch(info) is info
        assert info.counted is True

    def test_composite_of_sharing_predictors_uses_record_token(self):
        composite = CompositePathConfidence(
            [PaCoPredictor(), ThresholdAndCountPredictor(threshold=3),
             StaticMRTPredictor()])
        info = self._info(mdc_value=1)
        token = composite.on_branch_fetch(info)
        assert token is info
        composite.on_branch_resolve(token, mispredicted=False)
        for predictor in composite.predictors:
            assert predictor.outstanding_branches() == 0

    def test_composite_rejects_slot_collisions(self):
        with pytest.raises(ValueError, match="record slot"):
            CompositePathConfidence([PaCoPredictor(), PaCoPredictor()])

    def test_composite_with_custom_predictor_falls_back_to_lists(self):
        class Custom(ThresholdAndCountPredictor):
            record_slots = ()
            name = "custom"

            def on_branch_fetch(self, info):
                self.fetched_branches += 1
                return {"own": "token"}

            def on_branch_resolve(self, token, mispredicted):
                assert token == {"own": "token"}

            def on_branch_squash(self, token):
                assert token == {"own": "token"}

        composite = CompositePathConfidence([PaCoPredictor(), Custom()])
        info = self._info(mdc_value=0)
        token = composite.on_branch_fetch(info)
        assert type(token) is list and token[0] is info
        composite.on_branch_resolve(token, mispredicted=False)


class TestBlockEntryPointTwins:
    """predict_columns / resolve_record == predict_branch / resolve_branch.

    The trace backend's block path reads branches from BranchBlock
    columns and stashes the architectural outcome in the record; the
    twins must leave every table, history bit and counter exactly where
    the Instruction-based pair does.
    """

    KINDS = TestEnginePredictorParity.KINDS

    def test_column_twins_leave_identical_state(self):
        from repro.workloads.generator import BranchBlock

        (instr_fe, column_fe), (jrs_instr, jrs_column) = _frontend_pair(
            history_bits=8, direction_index_bits=11, btb_sets=64, ras_depth=8)
        instr_engine = PredictorStateEngine(instr_fe, jrs_instr)
        column_engine = PredictorStateEngine(column_fe, jrs_column)
        rng = DeterministicRng(29)
        block = BranchBlock(1)
        pending = []
        for seq in range(1_500):
            kind = self.KINDS[rng.next_u64() % len(self.KINDS)]
            pc = 0x400000 + (rng.next_u64() % 200) * 4
            taken = rng.bernoulli(0.5) if kind is BranchKind.CONDITIONAL else True
            target = 0x410000 + (rng.next_u64() % 64) * 4
            sid = seq % 32 if kind is BranchKind.CONDITIONAL else None
            instr = _branch(seq, pc, kind, taken, target, static_branch_id=sid)

            record_a = instr_engine.predict_branch(instr)
            block.pc[0] = pc
            block.kind[0] = kind
            block.taken[0] = taken
            block.target[0] = target
            block.static_branch_id[0] = sid
            record_b = column_engine.predict_columns(pc, kind, sid, 0)

            assert record_b.taken == record_a.taken
            assert record_b.target == record_a.target
            assert record_b.btb_hit == record_a.btb_hit
            assert record_b.history == record_a.history
            assert record_b.mdc_index == record_a.mdc_index
            assert record_b.mdc_value == record_a.mdc_value
            assert record_b.is_conditional == record_a.is_conditional

            if kind is BranchKind.CONDITIONAL:
                mispredicted = record_a.taken != taken
            else:
                mispredicted = record_a.target != target
            record_a.mispredicted = mispredicted
            record_b.mispredicted = mispredicted
            record_b.kind = kind
            record_b.out_taken = taken
            record_b.out_target = target
            pending.append((instr, record_a, record_b))

            # Resolve out of band so histories move between predict and
            # resolve, exactly as in-flight windows do.
            while len(pending) > 4:
                d_instr, d_rec_a, d_rec_b = pending.pop(0)
                train = d_instr.seq % 5 != 0  # mix trained and squashed
                instr_engine.resolve_branch(d_instr, d_rec_a, train=train)
                column_engine.resolve_record(d_rec_b, train=train)
        for d_instr, d_rec_a, d_rec_b in pending:
            instr_engine.resolve_branch(d_instr, d_rec_a, train=True)
            column_engine.resolve_record(d_rec_b, train=True)

        assert (column_fe.direction.gshare.table
                == instr_fe.direction.gshare.table)
        assert (column_fe.direction.bimodal.table
                == instr_fe.direction.bimodal.table)
        assert column_fe.direction.chooser == instr_fe.direction.chooser
        assert column_fe.history.value == instr_fe.history.value
        assert column_fe.indirect._table == instr_fe.indirect._table
        assert jrs_column.table == jrs_instr.table
        assert jrs_column.lookups == jrs_instr.lookups
        assert jrs_column.updates == jrs_instr.updates
        assert jrs_column.resets == jrs_instr.resets
