"""Unit tests for the PaCo path confidence predictor."""

import pytest

from repro.common.logcircuit import decode_probability, encode_threshold
from repro.pathconf.base import BranchFetchInfo
from repro.pathconf.paco import PaCoPredictor


def _info(mdc_value, pc=0x400000):
    return BranchFetchInfo(pc=pc, mdc_value=mdc_value, mdc_index=0,
                           predicted_taken=True, history=0)


class TestPaCoRegister:
    def test_empty_window_means_certain_goodpath(self):
        paco = PaCoPredictor()
        assert paco.path_confidence_register == 0
        assert paco.goodpath_probability() == 1.0

    def test_fetch_adds_encoded_probability(self):
        paco = PaCoPredictor()
        token = paco.on_branch_fetch(_info(mdc_value=0))
        assert paco.path_confidence_register == token.encoded_added
        assert paco.path_confidence_register > 0

    def test_low_mdc_branch_lowers_probability_more(self):
        paco_low = PaCoPredictor()
        paco_high = PaCoPredictor()
        paco_low.on_branch_fetch(_info(mdc_value=0))
        paco_high.on_branch_fetch(_info(mdc_value=15))
        assert (paco_low.goodpath_probability()
                < paco_high.goodpath_probability())

    def test_probability_is_product_of_contributions(self):
        paco = PaCoPredictor()
        paco.on_branch_fetch(_info(mdc_value=0))
        p1 = paco.goodpath_probability()
        paco.on_branch_fetch(_info(mdc_value=0))
        p2 = paco.goodpath_probability()
        assert p2 == pytest.approx(p1 * p1, rel=0.01)

    def test_resolve_removes_contribution(self):
        paco = PaCoPredictor()
        token = paco.on_branch_fetch(_info(mdc_value=2))
        paco.on_branch_resolve(token, mispredicted=False)
        assert paco.path_confidence_register == 0
        assert paco.outstanding_branches() == 0

    def test_squash_removes_contribution_without_training(self):
        paco = PaCoPredictor()
        token = paco.on_branch_fetch(_info(mdc_value=2))
        paco.on_branch_squash(token)
        assert paco.path_confidence_register == 0
        assert paco.mrt.counters[2].total == 0

    def test_resolve_trains_the_mrt_bucket(self):
        paco = PaCoPredictor()
        token = paco.on_branch_fetch(_info(mdc_value=5))
        paco.on_branch_resolve(token, mispredicted=True)
        assert paco.mrt.counters[5].mispredicted == 1

    def test_double_removal_is_idempotent(self):
        paco = PaCoPredictor()
        token = paco.on_branch_fetch(_info(mdc_value=0))
        paco.on_branch_resolve(token, mispredicted=False)
        paco.on_branch_squash(token)
        assert paco.path_confidence_register == 0

    def test_register_never_goes_negative(self):
        paco = PaCoPredictor()
        token = paco.on_branch_fetch(_info(mdc_value=3))
        # A re-logarithmizing pass between fetch and resolve changes the
        # table, but the stored token keeps the subtraction consistent.
        for _ in range(50):
            paco.mrt.record(3, was_correct=False)
        paco.mrt.relogarithmize()
        paco.on_branch_resolve(token, mispredicted=False)
        assert paco.path_confidence_register >= 0

    def test_window_reset(self):
        paco = PaCoPredictor()
        paco.on_branch_fetch(_info(mdc_value=0))
        paco.reset_window()
        assert paco.path_confidence_register == 0
        assert paco.outstanding_branches() == 0


class TestPaCoAdaptation:
    def test_learns_bucket_rates_through_relog(self):
        paco = PaCoPredictor(relog_period_cycles=100)
        # Bucket 0 mispredicts half the time in this program.
        for _ in range(50):
            token = paco.on_branch_fetch(_info(mdc_value=0))
            paco.on_branch_resolve(token, mispredicted=True)
            token = paco.on_branch_fetch(_info(mdc_value=0))
            paco.on_branch_resolve(token, mispredicted=False)
        paco.on_cycle(cycle=200)
        encoded = paco.mrt.encoded_probability(0)
        # Should be near encode(0.5) = 1024.
        assert 850 <= encoded <= 1250

    def test_on_cycle_respects_period(self):
        paco = PaCoPredictor(relog_period_cycles=1_000)
        token = paco.on_branch_fetch(_info(mdc_value=0))
        paco.on_branch_resolve(token, mispredicted=False)
        paco.on_cycle(cycle=10)
        assert paco.mrt.relog_passes == 0
        paco.on_cycle(cycle=1_000)
        assert paco.mrt.relog_passes == 1

    def test_statistics(self):
        paco = PaCoPredictor()
        t1 = paco.on_branch_fetch(_info(mdc_value=0))
        t2 = paco.on_branch_fetch(_info(mdc_value=1))
        paco.on_branch_resolve(t1, mispredicted=False)
        paco.on_branch_squash(t2)
        assert paco.fetched_branches == 2
        assert paco.resolved_branches == 1
        assert paco.squashed_branches == 1


class TestPaCoGatingInterface:
    def test_should_gate_compares_in_encoded_space(self):
        paco = PaCoPredictor()
        # Pile on low-confidence branches until the probability is tiny.
        for _ in range(12):
            paco.on_branch_fetch(_info(mdc_value=0))
        assert paco.goodpath_probability() < 0.10
        assert paco.should_gate(0.10)
        assert not PaCoPredictor().should_gate(0.10)

    def test_encoded_threshold_matches_module_function(self):
        paco = PaCoPredictor()
        assert paco.encoded_threshold(0.10) == encode_threshold(0.10)

    def test_gate_boundary_consistency(self):
        paco = PaCoPredictor()
        threshold = 0.25
        for _ in range(20):
            paco.on_branch_fetch(_info(mdc_value=1))
            decoded = decode_probability(paco.path_confidence_register)
            assert paco.should_gate(threshold) == (
                paco.path_confidence_register > paco.encoded_threshold(threshold)
            )
            # Decoded probability and encoded comparison agree to within
            # one rounding step.
            if decoded < threshold * 0.98:
                assert paco.should_gate(threshold)
