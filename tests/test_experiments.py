"""Tests for the per-figure experiment drivers (small budgets)."""

import pytest

from repro.experiments import (
    ablations,
    fig2_mdc_rates,
    fig3_counter_goodpath,
    fig8_9_reliability,
    table7_rms,
    tableA1_mrt_variants,
)

_INSTR = 6_000
_WARMUP = 4_000


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return fig2_mdc_rates.run(benchmarks=["twolf", "gzip"],
                                  instructions=_INSTR,
                                  warmup_instructions=_WARMUP)

    def test_rates_for_each_benchmark(self, result):
        assert set(result.rates) == {"twolf", "gzip"}
        assert result.rates["twolf"]

    def test_rates_are_probabilities(self, result):
        for by_mdc in result.rates.values():
            for rate in by_mdc.values():
                assert 0.0 <= rate <= 1.0

    def test_low_buckets_mispredict_more(self, result):
        assert result.is_monotone_decreasing_overall()

    def test_rows_have_17_columns(self, result):
        for row in result.rows():
            assert len(row) == 17


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return fig3_counter_goodpath.run(
            counter_value=3,
            benchmarks=["twolf", "gzip"],
            phase_benchmarks=["gcc"],
            instructions=_INSTR,
            warmup_instructions=_WARMUP,
        )

    def test_probabilities_for_each_benchmark(self, result):
        assert set(result.across_benchmarks) == {"twolf", "gzip"}
        for value in result.across_benchmarks.values():
            assert 0.0 <= value <= 1.0

    def test_spread_is_nonnegative(self, result):
        assert result.spread() >= 0.0

    def test_phase_results_present(self, result):
        assert any(bench == "gcc" for bench, _phase in result.across_phases)

    def test_row_helpers(self, result):
        assert len(result.rows_benchmarks()) == 2
        assert all(len(row) == 3 for row in result.rows_benchmarks())


class TestTable7:
    @pytest.fixture(scope="class")
    def result(self):
        return table7_rms.run(benchmarks=["twolf", "vortex"],
                              instructions=_INSTR,
                              warmup_instructions=_WARMUP)

    def test_row_per_benchmark(self, result):
        assert [row.benchmark for row in result.rows] == ["twolf", "vortex"]

    def test_mean_rms_is_average(self, result):
        values = [row.paco_rms_error for row in result.rows]
        assert result.mean_rms_error == pytest.approx(sum(values) / len(values))

    def test_paper_reference_values_attached(self, result):
        twolf = result.rows[0]
        assert twolf.paper_conditional_rate == pytest.approx(14.8)

    def test_vortex_is_more_predictable_than_twolf(self, result):
        by_name = {row.benchmark: row for row in result.rows}
        assert (by_name["vortex"].conditional_mispredict_rate
                < by_name["twolf"].conditional_mispredict_rate)

    def test_table_rows_include_mean(self, result):
        assert result.as_table_rows()[-1][0] == "mean"


class TestFig8and9:
    @pytest.fixture(scope="class")
    def study(self):
        return fig8_9_reliability.run(benchmarks=["twolf", "gzip"],
                                      instructions=_INSTR,
                                      warmup_instructions=_WARMUP)

    def test_diagram_per_benchmark_plus_cumulative(self, study):
        assert set(study.diagrams) == {"twolf", "gzip"}
        assert study.cumulative.total_instances == sum(
            d.total_instances for d in study.diagrams.values()
        )

    def test_rms_errors_reported(self, study):
        assert set(study.rms_errors) == {"twolf", "gzip"}

    def test_rows_are_percentages(self, study):
        for row in study.rows("twolf", min_instances=1):
            assert 0.0 <= row[0] <= 100.0
            assert 0.0 <= row[1] <= 100.0

    def test_parser_diagram_helper(self):
        diagram = fig8_9_reliability.run_parser_diagram(
            instructions=_INSTR, warmup_instructions=_WARMUP
        )
        assert diagram.total_instances > 0


class TestTableA1:
    @pytest.fixture(scope="class")
    def result(self):
        return tableA1_mrt_variants.run(benchmarks=["twolf", "parser"],
                                        instructions=_INSTR,
                                        warmup_instructions=_WARMUP)

    def test_three_designs_per_benchmark(self, result):
        for row in result.rows:
            assert row.mrt_rms >= 0.0
            assert row.static_mrt_rms >= 0.0
            assert row.per_branch_mrt_rms >= 0.0

    def test_means(self, result):
        assert result.mean_mrt_rms == pytest.approx(
            sum(r.mrt_rms for r in result.rows) / len(result.rows)
        )

    def test_table_rows_include_paper_columns(self, result):
        assert len(result.as_table_rows()[0]) == 7


class TestAblations:
    def test_relog_period_ablation_structure(self):
        result = ablations.run_relog_period_ablation(
            periods=(5_000, 50_000), benchmarks=("twolf",),
            instructions=5_000, warmup_instructions=2_000,
        )
        assert set(result.rms_by_variant) == {"relog=5000", "relog=50000"}
        assert result.mean_rms("relog=5000") >= 0.0

    def test_log_circuit_ablation_runs(self):
        result = ablations.run_log_circuit_ablation(
            benchmarks=("gzip",), instructions=5_000, warmup_instructions=2_000,
        )
        assert set(result.rms_by_variant) == {"mitchell-log", "exact-log"}
        # The Mitchell approximation must not be dramatically worse than the
        # exact logarithm.
        assert (result.mean_rms("mitchell-log")
                <= result.mean_rms("exact-log") + 0.05)

    def test_rows_include_mean_column(self):
        result = ablations.run_scale_ablation(
            scales=(512, 1024), benchmarks=("gzip",),
            instructions=5_000, warmup_instructions=2_000,
        )
        for row in result.rows():
            assert len(row) == 3  # variant, one benchmark, mean
