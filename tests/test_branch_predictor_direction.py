"""Unit tests for the direction predictors (bimodal, gshare, tournament)."""

import pytest

from repro.branch_predictor.bimodal import BimodalPredictor
from repro.branch_predictor.gshare import GSharePredictor
from repro.branch_predictor.tournament import TournamentPredictor
from repro.common.rng import DeterministicRng


def _train(predictor, pc, history, taken, times=1):
    for _ in range(times):
        result = predictor.predict(pc, history)
        predictor.update(pc, history, taken, result)


class TestBimodalPredictor:
    def test_initially_weakly_taken(self):
        assert BimodalPredictor(index_bits=8).predict(0x400000).taken

    def test_learns_not_taken_branch(self):
        predictor = BimodalPredictor(index_bits=8)
        _train(predictor, 0x400000, 0, taken=False, times=4)
        assert not predictor.predict(0x400000).taken

    def test_learns_taken_branch(self):
        predictor = BimodalPredictor(index_bits=8)
        _train(predictor, 0x400000, 0, taken=False, times=4)
        _train(predictor, 0x400000, 0, taken=True, times=4)
        assert predictor.predict(0x400000).taken

    def test_hysteresis_survives_single_flip(self):
        predictor = BimodalPredictor(index_bits=8)
        _train(predictor, 0x400000, 0, taken=True, times=4)
        _train(predictor, 0x400000, 0, taken=False, times=1)
        assert predictor.predict(0x400000).taken

    def test_distinct_pcs_use_distinct_entries(self):
        predictor = BimodalPredictor(index_bits=8)
        _train(predictor, 0x400000, 0, taken=False, times=4)
        assert predictor.predict(0x400404).taken

    def test_update_without_result_recomputes_index(self):
        predictor = BimodalPredictor(index_bits=8)
        for _ in range(4):
            predictor.update(0x400000, 0, taken=False)
        assert not predictor.predict(0x400000).taken

    def test_reset_restores_initial_state(self):
        predictor = BimodalPredictor(index_bits=8)
        _train(predictor, 0x400000, 0, taken=False, times=4)
        predictor.reset()
        assert predictor.predict(0x400000).taken

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            BimodalPredictor(index_bits=0)

    def test_accuracy_on_biased_stream(self):
        predictor = BimodalPredictor(index_bits=10)
        rng = DeterministicRng(1)
        correct = 0
        for _ in range(4000):
            taken = rng.bernoulli(0.9)
            result = predictor.predict(0x400100, 0)
            correct += (result.taken == taken)
            predictor.update(0x400100, 0, taken, result)
        assert correct / 4000 > 0.85


class TestGSharePredictor:
    def test_history_disambiguates_contexts(self):
        predictor = GSharePredictor(index_bits=10, history_bits=4)
        # Same PC, different history: branch is taken in context A, not in B.
        _train(predictor, 0x400000, 0b0000, taken=True, times=4)
        _train(predictor, 0x400000, 0b1111, taken=False, times=4)
        assert predictor.predict(0x400000, 0b0000).taken
        assert not predictor.predict(0x400000, 0b1111).taken

    def test_learns_alternating_pattern_with_history(self):
        predictor = GSharePredictor(index_bits=10, history_bits=4)
        history = 0
        correct = 0
        total = 2000
        for i in range(total):
            taken = (i % 2 == 0)
            result = predictor.predict(0x400040, history)
            correct += (result.taken == taken)
            predictor.update(0x400040, history, taken, result)
            history = ((history << 1) | taken) & 0xF
        assert correct / total > 0.9

    def test_rejects_history_wider_than_index(self):
        with pytest.raises(ValueError):
            GSharePredictor(index_bits=4, history_bits=8)

    def test_reset(self):
        predictor = GSharePredictor(index_bits=8)
        _train(predictor, 0x400000, 0, taken=False, times=4)
        predictor.reset()
        assert predictor.predict(0x400000, 0).taken

    def test_update_without_result(self):
        predictor = GSharePredictor(index_bits=8)
        for _ in range(4):
            predictor.update(0x400000, 0b1010, taken=False)
        assert not predictor.predict(0x400000, 0b1010).taken


class TestTournamentPredictor:
    def test_prediction_comes_from_a_component(self):
        predictor = TournamentPredictor(index_bits=10)
        result = predictor.predict(0x400000, 0)
        assert result.taken in (True, False)
        assert result.meta is not None

    def test_chooser_learns_to_prefer_bimodal(self):
        predictor = TournamentPredictor(index_bits=10, history_bits=4)
        rng = DeterministicRng(2)
        # A strongly biased branch seen under rapidly varying histories:
        # bimodal is reliable, gshare contexts stay cold, so the chooser
        # should shift towards bimodal and overall accuracy should be high.
        correct = 0
        total = 4000
        for _ in range(total):
            history = rng.randint(0, 15)
            taken = rng.bernoulli(0.95)
            result = predictor.predict(0x400200, history)
            correct += (result.taken == taken)
            predictor.update(0x400200, history, taken, result)
        assert correct / total > 0.85

    def test_chooser_prefers_gshare_for_history_correlated_branch(self):
        predictor = TournamentPredictor(index_bits=10, history_bits=4)
        history = 0
        correct = 0
        total = 3000
        for i in range(total):
            taken = (i % 2 == 0)  # pure alternation: bimodal dithers, gshare nails it
            result = predictor.predict(0x400300, history)
            correct += (result.taken == taken)
            predictor.update(0x400300, history, taken, result)
            history = ((history << 1) | taken) & 0xF
        assert correct / total > 0.85

    def test_update_trains_both_components(self):
        predictor = TournamentPredictor(index_bits=8)
        result = predictor.predict(0x400000, 0)
        predictor.update(0x400000, 0, taken=False, result=result)
        # After enough not-taken updates both components agree on not-taken.
        for _ in range(4):
            result = predictor.predict(0x400000, 0)
            predictor.update(0x400000, 0, taken=False, result=result)
        assert not predictor.gshare.predict(0x400000, 0).taken
        assert not predictor.bimodal.predict(0x400000, 0).taken

    def test_update_without_result_object(self):
        predictor = TournamentPredictor(index_bits=8)
        for _ in range(4):
            predictor.update(0x400000, 0, taken=False)
        assert not predictor.predict(0x400000, 0).taken

    def test_reset(self):
        predictor = TournamentPredictor(index_bits=8)
        for _ in range(4):
            predictor.update(0x400000, 0, taken=False)
        predictor.reset()
        assert predictor.predict(0x400000, 0).taken
