"""Tests for the experiment harnesses (accuracy, gating, SMT)."""

import pytest

from repro.eval.harness import (
    build_single_core,
    default_accuracy_predictors,
    run_accuracy_experiment,
    run_gating_experiment,
    run_single_thread_ipc,
    run_smt_experiment,
)
from repro.pathconf.paco import PaCoPredictor
from repro.pathconf.threshold_count import ThresholdAndCountPredictor
from repro.pipeline.config import MachineConfig
from repro.workloads.suite import get_benchmark

# Shared small budgets so the whole file stays fast.
_INSTR = 6_000
_WARMUP = 4_000


@pytest.fixture(scope="module")
def parser_accuracy():
    return run_accuracy_experiment("parser", instructions=_INSTR,
                                   warmup_instructions=_WARMUP, seed=3)


class TestBuildSingleCore:
    def test_accepts_spec_and_name(self, tiny_spec):
        core, engine, generator = build_single_core(tiny_spec, PaCoPredictor())
        assert generator.spec.name == "tiny"
        core, engine, generator = build_single_core("gzip", PaCoPredictor())
        assert generator.spec.name == "gzip"

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            build_single_core("not-a-benchmark", PaCoPredictor())

    def test_uses_requested_machine_config(self, tiny_spec, small_machine):
        core, _, _ = build_single_core(tiny_spec, PaCoPredictor(),
                                       config=small_machine)
        assert core.config is small_machine


class TestDefaultPredictors:
    def test_contains_paco_and_baselines(self):
        names = {p.name for p in default_accuracy_predictors()}
        assert "paco" in names
        assert "static-mrt" in names
        assert "per-branch-mrt" in names
        assert any(name.startswith("jrs-count") for name in names)


class TestAccuracyExperiment:
    def test_produces_all_outputs(self, parser_accuracy):
        result = parser_accuracy
        assert result.benchmark == "parser"
        assert result.stats.retired_instructions >= _INSTR
        assert {"paco", "static-mrt", "per-branch-mrt"} <= set(result.rms_errors)
        assert result.mdc_mispredict_rates
        assert result.counter_occupancy
        assert 0.0 < result.conditional_mispredict_rate < 0.4

    def test_rms_errors_are_probability_scaled(self, parser_accuracy):
        for error in parser_accuracy.rms_errors.values():
            assert 0.0 <= error <= 1.0

    def test_counter_goodpath_decreases_with_count(self, parser_accuracy):
        goodpath = parser_accuracy.counter_goodpath
        populated = [c for c in sorted(goodpath)
                     if parser_accuracy.counter_occupancy.get(c, 0) >= 200]
        if len(populated) >= 3:
            assert goodpath[populated[0]] > goodpath[populated[-1]]

    def test_phase_results_only_for_phased_benchmarks(self, parser_accuracy):
        assert parser_accuracy.phase_counter_goodpath == {}
        phased = run_accuracy_experiment("gcc", instructions=_INSTR,
                                         warmup_instructions=2_000, seed=3)
        assert phased.phase_counter_goodpath

    def test_custom_predictor_list(self, tiny_spec):
        paco = PaCoPredictor(relog_period_cycles=5_000)
        result = run_accuracy_experiment(tiny_spec, instructions=4_000,
                                         warmup_instructions=1_000,
                                         predictors=[paco])
        assert set(result.rms_errors) == {"paco"}

    def test_rms_accessor(self, parser_accuracy):
        assert parser_accuracy.rms_error("paco") == \
            parser_accuracy.rms_errors["paco"]


class TestGatingExperiment:
    def test_baseline_has_no_gated_cycles(self, tiny_spec):
        result = run_gating_experiment(tiny_spec, mode="none",
                                       instructions=_INSTR,
                                       warmup_instructions=2_000)
        assert result.gated_cycles == 0
        assert result.policy == "no-gating"
        assert result.ipc > 0.0

    def test_paco_gating_gates_and_reduces_badpath(self, tiny_spec):
        baseline = run_gating_experiment(tiny_spec, mode="none",
                                         instructions=_INSTR,
                                         warmup_instructions=2_000)
        gated = run_gating_experiment(tiny_spec, mode="paco",
                                      gating_probability=0.7,
                                      instructions=_INSTR,
                                      warmup_instructions=2_000)
        assert gated.gated_cycles > 0
        assert gated.badpath_fetch_reduction_vs(baseline) > 0.0

    def test_count_gating_mode(self, tiny_spec):
        result = run_gating_experiment(tiny_spec, mode="count", gate_count=1,
                                       jrs_threshold=3,
                                       instructions=_INSTR,
                                       warmup_instructions=2_000)
        assert result.gated_cycles > 0
        assert "count-gating" in result.policy

    def test_unknown_mode_rejected(self, tiny_spec):
        with pytest.raises(ValueError):
            run_gating_experiment(tiny_spec, mode="bogus")

    def test_reduction_helpers_handle_zero_baseline(self, tiny_spec):
        result = run_gating_experiment(tiny_spec, mode="none",
                                       instructions=3_000,
                                       warmup_instructions=0)
        fake_baseline = run_gating_experiment(tiny_spec, mode="none",
                                              instructions=3_000,
                                              warmup_instructions=0)
        fake_baseline.badpath_executed = 0
        fake_baseline.badpath_fetched = 0
        fake_baseline.ipc = 0.0
        assert result.badpath_reduction_vs(fake_baseline) == 0.0
        assert result.badpath_fetch_reduction_vs(fake_baseline) == 0.0
        assert result.performance_loss_vs(fake_baseline) == 0.0


class TestSMTExperiment:
    def test_single_thread_ipc_positive(self, tiny_spec):
        ipc = run_single_thread_ipc(tiny_spec, instructions=4_000,
                                    warmup_instructions=1_000)
        assert 0.0 < ipc <= MachineConfig.smt_8wide().width

    def test_smt_run_produces_hmwipc(self, tiny_spec):
        result = run_smt_experiment(tiny_spec, tiny_spec, policy="icount",
                                    instructions=8_000,
                                    warmup_instructions=2_000,
                                    single_ipcs=(1.0, 1.0))
        assert result.policy == "icount"
        assert result.hmwipc > 0.0
        assert len(result.smt_ipcs) == 2

    def test_paco_policy_smt_run(self, tiny_spec):
        result = run_smt_experiment(tiny_spec, tiny_spec, policy="paco",
                                    instructions=8_000,
                                    warmup_instructions=2_000,
                                    single_ipcs=(1.0, 1.0))
        assert result.policy == "paco-confidence"
        assert result.hmwipc > 0.0

    def test_count_policy_uses_threshold(self, tiny_spec):
        result = run_smt_experiment(tiny_spec, tiny_spec, policy="count",
                                    jrs_threshold=7,
                                    instructions=8_000,
                                    warmup_instructions=2_000,
                                    single_ipcs=(1.0, 1.0))
        assert "7" in result.policy

    def test_unknown_policy_rejected(self, tiny_spec):
        with pytest.raises(ValueError):
            run_smt_experiment(tiny_spec, tiny_spec, policy="bogus",
                               single_ipcs=(1.0, 1.0))

    def test_empty_measurement_window_raises(self, tiny_spec):
        # A zero instruction budget means warm-up consumes the entire run;
        # the harness must refuse rather than clamp the cycle denominator
        # and report garbage IPCs.
        with pytest.raises(ValueError, match="empty SMT measurement window"):
            run_smt_experiment(tiny_spec, tiny_spec, policy="icount",
                               instructions=0,
                               warmup_instructions=2_000,
                               single_ipcs=(1.0, 1.0))

    def test_real_benchmarks_resolve_by_name(self):
        result = run_smt_experiment("gzip", "twolf", policy="icount",
                                    instructions=6_000,
                                    warmup_instructions=1_000,
                                    single_ipcs=(1.0, 1.0))
        assert result.benchmarks == ("gzip", "twolf")
