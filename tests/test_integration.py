"""End-to-end integration tests reproducing the paper's comparative claims
at reduced scale.

These run real simulations (tens of thousands of instructions), so they are
the slowest tests in the suite; each one checks a *shape* claim from the
paper rather than an absolute number.
"""

import pytest

from repro.eval.harness import (
    run_accuracy_experiment,
    run_gating_experiment,
    run_smt_experiment,
)
from repro.workloads.suite import get_benchmark


@pytest.fixture(scope="module")
def twolf_accuracy():
    return run_accuracy_experiment("twolf", instructions=15_000,
                                   warmup_instructions=10_000, seed=1)


@pytest.fixture(scope="module")
def vortex_accuracy():
    return run_accuracy_experiment("vortex", instructions=15_000,
                                   warmup_instructions=10_000, seed=1)


class TestWorkloadCalibrationShape:
    def test_twolf_is_much_harder_than_vortex(self, twolf_accuracy,
                                              vortex_accuracy):
        """Table 7 shape: twolf ~15% conditional mispredicts, vortex <1%."""
        assert twolf_accuracy.conditional_mispredict_rate > 0.08
        assert vortex_accuracy.conditional_mispredict_rate < 0.05
        assert (twolf_accuracy.conditional_mispredict_rate
                > 3 * vortex_accuracy.conditional_mispredict_rate)

    def test_perlbmk_mispredicts_come_from_indirect_branches(self):
        """Section 4.4: perlbmk's conditional branches are nearly perfect but
        the overall mispredict rate is high because of one indirect call."""
        result = run_accuracy_experiment("perlbmk", instructions=15_000,
                                         warmup_instructions=10_000, seed=1)
        assert result.conditional_mispredict_rate < 0.03
        assert result.overall_mispredict_rate > 2 * result.conditional_mispredict_rate


class TestMDCStratification:
    def test_mdc_zero_mispredicts_most(self, twolf_accuracy):
        """Fig. 2 shape: the MDC-0 bucket has the highest mispredict rate."""
        rates = twolf_accuracy.mdc_mispredict_rates
        sampled = {mdc: rate for mdc, rate in rates.items()
                   if twolf_accuracy.counter_occupancy is not None}
        assert 0 in sampled
        high_buckets = [rate for mdc, rate in sampled.items() if mdc >= 6]
        if high_buckets:
            assert sampled[0] > max(high_buckets) * 0.9

    def test_counter_value_means_different_probability_across_benchmarks(
            self, twolf_accuracy, vortex_accuracy):
        """Fig. 3(a) shape: the same low-confidence count corresponds to very
        different good-path probabilities on different benchmarks."""
        count = 2
        if (twolf_accuracy.counter_occupancy.get(count, 0) > 100
                and vortex_accuracy.counter_occupancy.get(count, 0) > 100):
            assert (vortex_accuracy.counter_goodpath[count]
                    > twolf_accuracy.counter_goodpath[count])


class TestPaCoAccuracyClaims:
    def test_paco_reliability_diagram_tracks_observed_probability(
            self, twolf_accuracy):
        """Fig. 9(a) shape: predicted and observed probabilities correlate."""
        diagram = twolf_accuracy.diagrams["paco"]
        points = [p for p in diagram.points(min_instances=200)]
        assert len(points) >= 3
        # Predicted and observed should be positively correlated.
        n = len(points)
        mean_p = sum(p.predicted for p in points) / n
        mean_o = sum(p.observed for p in points) / n
        cov = sum((p.predicted - mean_p) * (p.observed - mean_o) for p in points)
        assert cov > 0

    def test_paco_beats_appendix_alternatives_on_average(self):
        """Appendix Table 1 shape: dynamic MRT <= static MRT and per-branch
        MRT in mean RMS error (measured over a small benchmark subset)."""
        benchmarks = ["twolf", "gzip", "parser", "vortex"]
        totals = {"paco": 0.0, "static-mrt": 0.0, "per-branch-mrt": 0.0}
        for name in benchmarks:
            result = run_accuracy_experiment(name, instructions=12_000,
                                             warmup_instructions=8_000, seed=2)
            for key in totals:
                totals[key] += result.rms_errors[key]
        assert totals["paco"] <= totals["static-mrt"]
        assert totals["paco"] <= totals["per-branch-mrt"]


class TestGatingClaims:
    def test_paco_gating_removes_badpath_without_large_perf_loss(self):
        """Fig. 10 shape: PaCo gating at a moderate probability removes a
        sizeable fraction of wrong-path fetch at ~no performance cost."""
        benchmark = get_benchmark("twolf")
        baseline = run_gating_experiment(benchmark, mode="none",
                                         instructions=20_000,
                                         warmup_instructions=10_000)
        gated = run_gating_experiment(benchmark, mode="paco",
                                      gating_probability=0.3,
                                      instructions=20_000,
                                      warmup_instructions=10_000)
        assert gated.badpath_fetch_reduction_vs(baseline) > 0.05
        assert gated.performance_loss_vs(baseline) < 0.05

    def test_aggressive_count_gating_costs_more_performance_than_paco(self):
        """Fig. 10 shape: pushing the conventional predictor to large badpath
        reductions (gate-count 1) costs clearly more performance than a
        moderate PaCo operating point."""
        benchmark = get_benchmark("twolf")
        baseline = run_gating_experiment(benchmark, mode="none",
                                         instructions=20_000,
                                         warmup_instructions=10_000)
        aggressive_count = run_gating_experiment(benchmark, mode="count",
                                                 gate_count=1, jrs_threshold=3,
                                                 instructions=20_000,
                                                 warmup_instructions=10_000)
        paco = run_gating_experiment(benchmark, mode="paco",
                                     gating_probability=0.3,
                                     instructions=20_000,
                                     warmup_instructions=10_000)
        assert (aggressive_count.performance_loss_vs(baseline)
                > paco.performance_loss_vs(baseline))


class TestSMTClaims:
    def test_confidence_policies_produce_valid_hmwipc(self):
        singles = (1.0, 1.0)
        outcomes = {}
        for policy in ("icount", "count", "paco"):
            result = run_smt_experiment("gap", "mcf", policy=policy,
                                        instructions=20_000,
                                        warmup_instructions=8_000,
                                        single_ipcs=singles, seed=5)
            outcomes[policy] = result.hmwipc
        assert all(value > 0.0 for value in outcomes.values())
        # All policies land in the same ballpark (no policy collapses).
        values = list(outcomes.values())
        assert max(values) < 2.5 * min(values)
