"""Unit tests for repro.common.rng."""

import pytest

from repro.common.rng import DeterministicRng, RngPool


class TestDeterministicRng:
    def test_same_seed_same_sequence(self):
        a, b = DeterministicRng(42), DeterministicRng(42)
        assert [a.next_u64() for _ in range(10)] == [b.next_u64() for _ in range(10)]

    def test_different_seeds_differ(self):
        a, b = DeterministicRng(1), DeterministicRng(2)
        assert [a.next_u64() for _ in range(5)] != [b.next_u64() for _ in range(5)]

    def test_random_in_unit_interval(self):
        rng = DeterministicRng(7)
        for _ in range(1000):
            value = rng.random()
            assert 0.0 <= value < 1.0

    def test_random_mean_is_near_half(self):
        rng = DeterministicRng(11)
        mean = sum(rng.random() for _ in range(5000)) / 5000
        assert abs(mean - 0.5) < 0.03

    def test_randint_bounds_inclusive(self):
        rng = DeterministicRng(3)
        values = {rng.randint(2, 5) for _ in range(500)}
        assert values == {2, 3, 4, 5}

    def test_randint_rejects_empty_range(self):
        with pytest.raises(ValueError):
            DeterministicRng(1).randint(5, 2)

    def test_choice_covers_items(self):
        rng = DeterministicRng(5)
        items = ["a", "b", "c"]
        seen = {rng.choice(items) for _ in range(200)}
        assert seen == set(items)

    def test_choice_rejects_empty(self):
        with pytest.raises(ValueError):
            DeterministicRng(1).choice([])

    def test_bernoulli_frequency(self):
        rng = DeterministicRng(9)
        hits = sum(rng.bernoulli(0.3) for _ in range(5000))
        assert abs(hits / 5000 - 0.3) < 0.03

    def test_geometric_mean_close_to_inverse_probability(self):
        rng = DeterministicRng(13)
        samples = [rng.geometric(0.25) for _ in range(3000)]
        assert abs(sum(samples) / len(samples) - 4.0) < 0.4

    def test_geometric_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            DeterministicRng(1).geometric(0.0)

    def test_weighted_choice_respects_weights(self):
        rng = DeterministicRng(17)
        counts = {"a": 0, "b": 0}
        for _ in range(4000):
            counts[rng.weighted_choice(["a", "b"], [3.0, 1.0])] += 1
        assert counts["a"] > 2.0 * counts["b"]

    def test_weighted_choice_length_mismatch(self):
        with pytest.raises(ValueError):
            DeterministicRng(1).weighted_choice(["a"], [1.0, 2.0])

    def test_weighted_choice_rejects_zero_total(self):
        with pytest.raises(ValueError):
            DeterministicRng(1).weighted_choice(["a", "b"], [0.0, 0.0])

    def test_fill_uniforms_matches_scalar_random(self):
        a, b = DeterministicRng(21), DeterministicRng(21)
        out = [0.0] * 64
        a.fill_uniforms(out, 64)
        assert out == [b.random() for _ in range(64)]
        assert a._state == b._state

    def test_fill_uniforms_start_offset_leaves_prefix(self):
        rng = DeterministicRng(22)
        out = [-1.0] * 10
        rng.fill_uniforms(out, 4, start=3)
        assert out[:3] == [-1.0] * 3
        assert out[7:] == [-1.0] * 3
        assert all(0.0 <= v < 1.0 for v in out[3:7])

    def test_geometric_block_matches_scalar_closed_form(self):
        import math
        log1p = math.log(1.0 - 0.17)
        a, b = DeterministicRng(31), DeterministicRng(31)
        out = [0] * 200
        a.geometric_block(log1p, out, 200)
        expected = []
        for _ in range(200):
            u = b.random()
            expected.append(int(math.log(u) / log1p) if u > 0.0 else 0)
        assert out == expected
        assert a._state == b._state

    def test_geometric_block_probability_one_draws_nothing(self):
        rng = DeterministicRng(33)
        before = rng._state
        out = [7] * 5
        rng.geometric_block(None, out, 5)
        assert out == [0] * 5
        assert rng._state == before

    def test_geometric_episode_matches_scalar_loop(self):
        """geometric_episode must draw exactly the gaps (and exactly the
        uniforms) the scalar wrong-path episode loop drew: gaps until one
        reaches the remaining budget, which is clamped and ends the
        episode without a branch."""
        import math
        log1p = math.log(1.0 - 0.17)
        for seed in (5, 91, 2024):
            a, b = DeterministicRng(seed), DeterministicRng(seed)
            for budget in (1, 2, 7, 40, 160):
                out = [-1] * budget
                n_gaps, n_branches = a.geometric_episode(log1p, out, budget)
                expected = []
                remaining = budget
                branches = 0
                while remaining:
                    u = b.random()
                    gap = int(math.log(u) / log1p) if u > 0.0 else 0
                    if gap >= remaining:
                        expected.append(remaining)
                        break
                    expected.append(gap)
                    branches += 1
                    remaining -= gap + 1
                assert out[:n_gaps] == expected
                assert n_branches == branches
                assert sum(out[:n_gaps]) + n_branches <= budget
                assert a._state == b._state

    def test_geometric_episode_probability_one(self):
        rng = DeterministicRng(33)
        before = rng._state
        out = [7] * 4
        assert rng.geometric_episode(None, out, 4) == (4, 4)
        assert out == [0] * 4
        assert rng._state == before

    def test_cumulative_choice_block_matches_scalar(self):
        items = ["a", "b", "c", "d"]
        cum, total = DeterministicRng.cumulative_weights([0.1, 0.5, 0.2, 0.2])
        a, b = DeterministicRng(41), DeterministicRng(41)
        out = [None] * 500
        a.cumulative_choice_block(items, cum, total, out, 500)
        assert out == [b.cumulative_choice(items, cum, total)
                       for _ in range(500)]
        assert a._state == b._state

    def test_zero_seed_still_produces_values(self):
        rng = DeterministicRng(0)
        assert rng.next_u64() != 0


class TestRngPool:
    def test_streams_are_independent_of_creation_order(self):
        pool_a = RngPool(1)
        pool_b = RngPool(1)
        a_first = pool_a.stream("x").next_u64()
        # Create streams in a different order in the second pool.
        pool_b.stream("y")
        b_value = pool_b.stream("x").next_u64()
        assert a_first == b_value

    def test_same_name_returns_same_stream(self):
        pool = RngPool(5)
        assert pool.stream("a") is pool.stream("a")

    def test_different_names_give_different_sequences(self):
        pool = RngPool(5)
        assert pool.stream("a").next_u64() != pool.stream("b").next_u64()

    def test_fork_produces_distinct_but_deterministic_pool(self):
        forked_1 = RngPool(2).fork("child").stream("s").next_u64()
        forked_2 = RngPool(2).fork("child").stream("s").next_u64()
        parent = RngPool(2).stream("s").next_u64()
        assert forked_1 == forked_2
        assert forked_1 != parent
