"""Unit tests for BTB, RAS, indirect predictor, history and the front end."""

import pytest

from repro.branch_predictor.btb import BranchTargetBuffer
from repro.branch_predictor.frontend import FrontEndPredictor
from repro.branch_predictor.history import GlobalHistory
from repro.branch_predictor.indirect import IndirectTargetPredictor
from repro.branch_predictor.ras import ReturnAddressStack
from repro.isa.instruction import BranchOutcome, Instruction
from repro.isa.types import BranchKind, InstructionClass


def _branch(seq, pc, kind, taken, target):
    return Instruction(
        seq=seq, pc=pc, iclass=InstructionClass.BRANCH, branch_kind=kind,
        outcome=BranchOutcome(taken=taken, target=target),
    )


class TestGlobalHistory:
    def test_push_and_snapshot(self):
        history = GlobalHistory(bits=4)
        history.push(True)
        history.push(False)
        assert history.snapshot() == 0b10

    def test_restore(self):
        history = GlobalHistory(bits=4)
        history.push(True)
        snap = history.snapshot()
        history.push(True)
        history.restore(snap)
        assert history.snapshot() == snap

    def test_repair_and_push(self):
        history = GlobalHistory(bits=4)
        history.push(True)
        snap = history.snapshot()
        history.push(True)   # speculative, wrong
        history.repair_and_push(snap, False)
        assert history.snapshot() == 0b10

    def test_width_mask(self):
        history = GlobalHistory(bits=2)
        for _ in range(5):
            history.push(True)
        assert history.snapshot() == 0b11

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            GlobalHistory(bits=0)


class TestBranchTargetBuffer:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(sets=16, ways=2)
        assert btb.predict_target(0x400000) is None
        btb.update(0x400000, 0x400100)
        assert btb.predict_target(0x400000) == 0x400100

    def test_update_overwrites_target(self):
        btb = BranchTargetBuffer(sets=16, ways=2)
        btb.update(0x400000, 0x400100)
        btb.update(0x400000, 0x400200)
        assert btb.predict_target(0x400000) == 0x400200

    def test_lru_eviction_within_a_set(self):
        btb = BranchTargetBuffer(sets=1, ways=2)
        btb.update(0x4, 0x100)
        btb.update(0x8, 0x200)
        btb.predict_target(0x4)       # make 0x4 most recently used
        btb.update(0xC, 0x300)        # evicts 0x8
        assert btb.predict_target(0x8) is None
        assert btb.predict_target(0x4) == 0x100
        assert btb.evictions >= 1

    def test_hit_rate_statistics(self):
        btb = BranchTargetBuffer(sets=16, ways=2)
        btb.predict_target(0x400000)
        btb.update(0x400000, 0x400100)
        btb.predict_target(0x400000)
        assert btb.hit_rate == pytest.approx(0.5)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(sets=12, ways=2)

    def test_reset_stats(self):
        btb = BranchTargetBuffer(sets=16, ways=2)
        btb.predict_target(0x400000)
        btb.reset_stats()
        assert btb.lookups == 0


class TestReturnAddressStack:
    def test_push_pop_lifo(self):
        ras = ReturnAddressStack(depth=4)
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100

    def test_underflow_returns_none(self):
        ras = ReturnAddressStack(depth=4)
        assert ras.pop() is None
        assert ras.underflows == 1

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(depth=2)
        ras.push(0x100)
        ras.push(0x200)
        ras.push(0x300)
        assert ras.pop() == 0x300
        assert ras.pop() == 0x200
        assert ras.pop() is None

    def test_peek_does_not_pop(self):
        ras = ReturnAddressStack(depth=2)
        ras.push(0x100)
        assert ras.peek() == 0x100
        assert len(ras) == 1

    def test_reset(self):
        ras = ReturnAddressStack(depth=2)
        ras.push(0x100)
        ras.reset()
        assert len(ras) == 0


class TestIndirectTargetPredictor:
    def test_learns_last_target(self):
        predictor = IndirectTargetPredictor()
        assert predictor.predict_target(0x400000) is None
        predictor.update(0x400000, 0x800000)
        assert predictor.predict_target(0x400000) == 0x800000

    def test_polymorphic_target_defeats_predictor(self):
        predictor = IndirectTargetPredictor()
        predictor.update(0x400000, 0x800000)
        predictor.update(0x400000, 0x810000)
        assert predictor.predict_target(0x400000) == 0x810000  # only remembers last

    def test_history_hashing_separates_contexts(self):
        predictor = IndirectTargetPredictor(index_bits=8, use_history=True)
        predictor.update(0x400000, 0x800000, history=0b0001)
        predictor.update(0x400000, 0x810000, history=0b1000)
        assert predictor.predict_target(0x400000, history=0b0001) == 0x800000
        assert predictor.predict_target(0x400000, history=0b1000) == 0x810000

    def test_reset(self):
        predictor = IndirectTargetPredictor()
        predictor.update(0x400000, 0x800000)
        predictor.reset()
        assert predictor.predict_target(0x400000) is None


class TestFrontEndPredictor:
    def test_conditional_prediction_updates_history_speculatively(self):
        frontend = FrontEndPredictor(history_bits=4, direction_index_bits=10)
        before = frontend.history.snapshot()
        instr = _branch(0, 0x400000, BranchKind.CONDITIONAL, taken=True,
                        target=0x400100)
        prediction = frontend.predict(instr)
        assert frontend.history.snapshot() != before or prediction.taken == (before & 1)
        assert prediction.history_at_predict == before

    def test_resolve_trains_direction_predictor(self):
        frontend = FrontEndPredictor(history_bits=4, direction_index_bits=10)
        instr = _branch(0, 0x400000, BranchKind.CONDITIONAL, taken=False,
                        target=0x400100)
        for _ in range(6):
            prediction = frontend.predict(instr)
            prediction.mispredicted = prediction.taken != instr.outcome.taken
            instr.mispredicted = prediction.mispredicted
            frontend.resolve(instr, prediction, train=True)
        final = frontend.predict(instr)
        assert not final.taken

    def test_mispredicted_conditional_repairs_history(self):
        frontend = FrontEndPredictor(history_bits=4, direction_index_bits=10)
        instr = _branch(0, 0x400000, BranchKind.CONDITIONAL, taken=False,
                        target=0x400100)
        prediction = frontend.predict(instr)
        if prediction.taken == instr.outcome.taken:
            # Force a mispredict scenario by flipping the outcome.
            instr = _branch(0, 0x400000, BranchKind.CONDITIONAL,
                            taken=not prediction.taken, target=0x400100)
        prediction.mispredicted = True
        instr.mispredicted = True
        frontend.resolve(instr, prediction, train=True)
        expected = ((prediction.history_at_predict << 1)
                    | (1 if instr.outcome.taken else 0)) & 0xF
        assert frontend.history.snapshot() == expected

    def test_call_pushes_return_address(self):
        frontend = FrontEndPredictor()
        call = _branch(0, 0x400000, BranchKind.CALL, taken=True, target=0x401000)
        frontend.predict(call)
        ret = _branch(1, 0x401010, BranchKind.RETURN, taken=True, target=0x400004)
        prediction = frontend.predict(ret)
        assert prediction.target == 0x400004

    def test_return_without_call_is_a_miss(self):
        frontend = FrontEndPredictor()
        ret = _branch(0, 0x401010, BranchKind.RETURN, taken=True, target=0x400004)
        prediction = frontend.predict(ret)
        assert prediction.target is None

    def test_indirect_call_learns_target_after_resolve(self):
        frontend = FrontEndPredictor()
        instr = _branch(0, 0x400000, BranchKind.INDIRECT_CALL, taken=True,
                        target=0x800000)
        prediction = frontend.predict(instr)
        assert prediction.target is None
        frontend.resolve(instr, prediction, train=True)
        prediction2 = frontend.predict(
            _branch(1, 0x400000, BranchKind.INDIRECT_CALL, taken=True,
                    target=0x800000)
        )
        assert prediction2.target == 0x800000

    def test_unconditional_uses_btb(self):
        frontend = FrontEndPredictor()
        instr = _branch(0, 0x400000, BranchKind.UNCONDITIONAL, taken=True,
                        target=0x400200)
        prediction = frontend.predict(instr)
        assert prediction.target is None
        frontend.resolve(instr, prediction, train=True)
        assert frontend.predict(instr).target == 0x400200

    def test_wrongpath_resolve_does_not_train(self):
        frontend = FrontEndPredictor()
        instr = _branch(0, 0x400000, BranchKind.UNCONDITIONAL, taken=True,
                        target=0x400200)
        prediction = frontend.predict(instr)
        frontend.resolve(instr, prediction, train=False)
        assert frontend.predict(instr).target is None

    def test_prediction_statistics(self):
        frontend = FrontEndPredictor()
        instr = _branch(0, 0x400000, BranchKind.CONDITIONAL, taken=True,
                        target=0x400100)
        prediction = frontend.predict(instr)
        frontend.note_prediction_outcome(instr, prediction, mispredicted=True)
        frontend.note_prediction_outcome(instr, prediction, mispredicted=False)
        assert frontend.conditional_predictions == 2
        assert frontend.conditional_mispredict_rate == pytest.approx(0.5)
        assert frontend.overall_mispredict_rate == pytest.approx(0.5)

    def test_predict_rejects_non_branch(self):
        frontend = FrontEndPredictor()
        with pytest.raises(ValueError):
            frontend.predict(Instruction(seq=0, pc=0x400000,
                                         iclass=InstructionClass.ALU))
