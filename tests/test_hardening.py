"""Regression tests for the sweep-infrastructure hardening fixes.

Covers the three operational bugs fixed alongside the predictor state
engine: ``ResultCache.prune`` racing with concurrent deleters, the CLI
dumping a raw traceback on :class:`SimulationTruncated`, and invalid
worker counts reaching the multiprocessing pool unvalidated.
"""

import os
import time

import pytest

import repro.__main__ as cli
from repro.pipeline.core import CoreStats, SimulationTruncated
from repro.runner import ResultCache, SweepRunner, resolve_worker_count
from repro.runner.jobs import Job


def _job(tag):
    return Job.make("accuracy", benchmark=f"bench-{tag}", instructions=1_000,
                    warmup_instructions=0)


def _fill(cache, count):
    paths = []
    for i in range(count):
        job = _job(i)
        cache.put(job, {"value": i, "blob": "x" * 512})
        paths.append(cache._path(cache.key(job)))
    return paths


class TestPruneConcurrentDeletion:
    def test_prune_survives_entries_vanishing_mid_scan(self, tmp_path):
        cache = ResultCache(tmp_path, version="v")
        paths = _fill(cache, 6)
        victims = set(paths[::2])

        original_entries = ResultCache.entries

        def racing_entries(self):
            # A concurrent `cache clear` wins the race for half the
            # entries: they are listed, then deleted before stat/unlink.
            for path in original_entries(self):
                if path in victims:
                    path.unlink(missing_ok=True)
                yield path

        ResultCache.entries = racing_entries
        try:
            stats = cache.prune(max_age_seconds=0.0)
        finally:
            ResultCache.entries = original_entries
        # The survivors were older than the (zero) age budget: all pruned,
        # the vanished ones skipped without crashing.
        assert stats.removed == 3
        assert stats.remaining == 0

    def test_final_accounting_tolerates_vanishing_entries(self, tmp_path):
        cache = ResultCache(tmp_path, version="v")
        _fill(cache, 4)

        original_entries = ResultCache.entries
        deleted = []

        def racing_entries(self):
            # One entry is listed but deleted before it can be stat'ed —
            # both size_bytes() and prune()'s final accounting must skip it.
            for path in original_entries(self):
                if not deleted:
                    deleted.append(path)
                    path.unlink(missing_ok=True)
                yield path

        ResultCache.entries = racing_entries
        try:
            assert cache.size_bytes() >= 0  # must not raise
            stats = cache.prune()
        finally:
            ResultCache.entries = original_entries
        assert deleted
        assert stats.remaining <= 3

    def test_size_eviction_is_oldest_first_with_deterministic_ties(
            self, tmp_path):
        cache = ResultCache(tmp_path, version="v")
        paths = _fill(cache, 5)
        now = time.time()
        # Two distinct age groups, identical mtimes inside each group.
        for path in paths[:3]:
            os.utime(path, (now - 1_000, now - 1_000))
        for path in paths[3:]:
            os.utime(path, (now, now))
        entry_size = paths[0].stat().st_size
        budget = entry_size * 2  # keep two entries
        stats = cache.prune(max_total_bytes=budget, now=now)
        assert stats.removed == 3
        survivors = {p for p in paths if p.exists()}
        assert survivors == set(paths[3:])
        # Tie-break inside the old group: lexicographically smallest names
        # go first, so two pruners racing would evict in the same order.
        evicted_old = sorted(p.name for p in paths[:3])
        assert all(not p.exists() for p in paths[:3])
        assert evicted_old == sorted(evicted_old)

    def test_reference_timestamp_taken_once(self, tmp_path):
        cache = ResultCache(tmp_path, version="v")
        paths = _fill(cache, 2)
        cutoff = time.time() - 100.0
        os.utime(paths[0], (cutoff - 50, cutoff - 50))
        os.utime(paths[1], (cutoff + 50, cutoff + 50))
        stats = cache.prune(max_age_seconds=100.0, now=time.time())
        assert stats.removed == 1
        assert not paths[0].exists() and paths[1].exists()


class TestCliTruncationReport:
    def _truncating_driver(self, **_kwargs):
        stats = CoreStats(cycles=500, retired_instructions=123)
        raise SimulationTruncated(stats, max_instructions=10_000,
                                  max_cycles=500)

    def test_run_reports_partial_stats_and_exits_nonzero(
            self, monkeypatch, capsys, tmp_path):
        monkeypatch.setitem(cli.EXPERIMENTS, "fig2", self._truncating_driver)
        code = cli.main(["run", "fig2", "--no-cache",
                         "--cache-dir", str(tmp_path)])
        captured = capsys.readouterr()
        assert code == 3
        assert "Traceback" not in captured.err
        assert "truncated" in captured.err
        assert "123" in captured.err           # partial retired count
        assert "500 (tripped)" in captured.err  # the limit that fired

    def test_sweep_reports_truncation(self, monkeypatch, capsys, tmp_path):
        monkeypatch.setitem(cli.EXPERIMENTS, "fig2", self._truncating_driver)
        code = cli.main(["sweep", "--experiments", "fig2", "--no-cache",
                         "--cache-dir", str(tmp_path)])
        captured = capsys.readouterr()
        assert code == 3
        assert "truncated" in captured.err


class TestWorkerValidation:
    def test_resolve_worker_count_accepts_ints_and_strings(self):
        assert resolve_worker_count(1) == 1
        assert resolve_worker_count("4") == 4
        assert resolve_worker_count(" 2 ") == 2

    @pytest.mark.parametrize("value", [0, -1, "0", "-3", "two", "", None, 1.5])
    def test_resolve_worker_count_rejects_invalid(self, value):
        with pytest.raises(ValueError, match="worker|integer"):
            resolve_worker_count(value)

    def test_error_names_the_source_knob(self):
        with pytest.raises(ValueError, match="REPRO_BENCH_WORKERS"):
            resolve_worker_count("0", source="REPRO_BENCH_WORKERS")

    def test_sweep_runner_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="worker"):
            SweepRunner(workers=0)
        with pytest.raises(ValueError, match="worker"):
            SweepRunner(workers=-2)

    def test_cli_rejects_zero_workers(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["run", "fig2", "--workers", "0"])
        assert excinfo.value.code == 2
        assert "--workers" in capsys.readouterr().err


class TestTraceBlockSizeValidation:
    def test_resolve_trace_block_size_accepts_ints_and_strings(self):
        from repro.backends.trace import resolve_trace_block_size
        assert resolve_trace_block_size(1) == 1
        assert resolve_trace_block_size("512") == 512
        assert resolve_trace_block_size(" 64 ") == 64

    @pytest.mark.parametrize("value", [0, -1, "0", "-3", "huge", "", None, 2.5])
    def test_resolve_trace_block_size_rejects_invalid(self, value):
        from repro.backends.trace import resolve_trace_block_size
        with pytest.raises(ValueError, match="block|integer"):
            resolve_trace_block_size(value)

    def test_error_names_the_source_knob(self):
        from repro.backends.trace import resolve_trace_block_size
        with pytest.raises(ValueError, match="REPRO_TRACE_BLOCK"):
            resolve_trace_block_size("0", source="REPRO_TRACE_BLOCK")

    def test_cli_rejects_zero_block_size(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["run", "fig2", "--block-size", "0"])
        assert excinfo.value.code == 2
        assert "--block-size" in capsys.readouterr().err

    def test_cli_exports_block_size_to_environment(self, monkeypatch,
                                                   tmp_path, capsys):
        monkeypatch.delenv("REPRO_TRACE_BLOCK", raising=False)
        seen = {}

        def fake_driver(runner=None, quick=False, **kwargs):
            seen["block"] = os.environ.get("REPRO_TRACE_BLOCK")
            return ""

        monkeypatch.setitem(cli.EXPERIMENTS, "fig2", fake_driver)
        code = cli.main(["run", "fig2", "--quick", "--no-cache",
                         "--block-size", "128"])
        assert code == 0
        assert seen["block"] == "128"


class TestMaxJobsValidation:
    """``campaign run --max-jobs`` must reject values that would slice
    pending jobs away silently (``pending[:0]`` runs nothing and
    ``pending[:-1]`` drops from the end)."""

    @pytest.mark.parametrize("value", ["0", "-1", "nope", ""])
    def test_cli_rejects_nonpositive_max_jobs(self, value, tmp_path,
                                              capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["campaign", "run",
                      "--campaign-dir", str(tmp_path / "camp"),
                      "--max-jobs", value])
        assert excinfo.value.code == 2
        assert "--max-jobs" in capsys.readouterr().err

    def test_run_shard_rejects_nonpositive_max_jobs(self, tmp_path):
        """Belt-and-braces: the library layer validates too, so embedders
        that bypass argparse get the same loud error."""
        from repro.campaign import (CampaignPlan, CampaignShardError,
                                    CampaignSpec, PlannedJob, run_shard)
        plan = CampaignPlan(
            spec=CampaignSpec(name="probe", experiments=("table7",)),
            planned=[PlannedJob(job=_job(0), sources=("probe@seed1",))],
            code_version="probe-version",
        )
        with pytest.raises(CampaignShardError, match="--max-jobs"):
            run_shard(plan, 1, 1, tmp_path / "camp", SweepRunner(),
                      max_jobs=0)
