"""Unit tests for Static-MRT, Per-branch-MRT, Oracle and Composite predictors."""

import pytest

from repro.pathconf.base import BranchFetchInfo
from repro.pathconf.composite import CompositePathConfidence
from repro.pathconf.oracle import OraclePathConfidence
from repro.pathconf.paco import PaCoPredictor
from repro.pathconf.per_branch_mrt import PerBranchMRTPredictor
from repro.pathconf.static_mrt import StaticMRTPredictor
from repro.pathconf.threshold_count import ThresholdAndCountPredictor


def _info(mdc_value, pc=0x400000, history=0):
    return BranchFetchInfo(pc=pc, mdc_value=mdc_value, mdc_index=0,
                           predicted_taken=True, history=history)


class TestStaticMRT:
    def test_uses_fixed_profile(self):
        predictor = StaticMRTPredictor(mispredict_rates=[0.5] + [0.01] * 15)
        predictor.on_branch_fetch(_info(mdc_value=0))
        low_mdc_probability = predictor.goodpath_probability()
        predictor.reset_window()
        predictor.on_branch_fetch(_info(mdc_value=5))
        high_mdc_probability = predictor.goodpath_probability()
        assert low_mdc_probability == pytest.approx(0.5, rel=0.02)
        assert high_mdc_probability == pytest.approx(0.99, rel=0.02)

    def test_resolution_does_not_adapt(self):
        predictor = StaticMRTPredictor()
        baseline = predictor.encoded_probabilities[0]
        for _ in range(50):
            token = predictor.on_branch_fetch(_info(mdc_value=0))
            predictor.on_branch_resolve(token, mispredicted=True)
        assert predictor.encoded_probabilities[0] == baseline

    def test_squash_and_double_removal(self):
        predictor = StaticMRTPredictor()
        token = predictor.on_branch_fetch(_info(mdc_value=1))
        predictor.on_branch_squash(token)
        predictor.on_branch_resolve(token, mispredicted=False)
        assert predictor.path_confidence_register == 0

    def test_gating_decision(self):
        predictor = StaticMRTPredictor(mispredict_rates=[0.4] * 16)
        for _ in range(6):
            predictor.on_branch_fetch(_info(mdc_value=0))
        assert predictor.should_gate(0.2)

    def test_rejects_invalid_profile(self):
        with pytest.raises(ValueError):
            StaticMRTPredictor(mispredict_rates=[1.5])

    def test_out_of_range_mdc_rejected(self):
        with pytest.raises(ValueError):
            StaticMRTPredictor().on_branch_fetch(_info(mdc_value=99))


class TestPerBranchMRT:
    def test_adapts_per_branch_context(self):
        predictor = PerBranchMRTPredictor(index_bits=10)
        bad_pc, good_pc = 0x400000, 0x400040
        for _ in range(40):
            token = predictor.on_branch_fetch(_info(0, pc=bad_pc))
            predictor.on_branch_resolve(token, mispredicted=True)
            token = predictor.on_branch_fetch(_info(0, pc=good_pc))
            predictor.on_branch_resolve(token, mispredicted=False)
        predictor.reset_window()
        predictor.on_branch_fetch(_info(0, pc=bad_pc))
        bad_probability = predictor.goodpath_probability()
        predictor.reset_window()
        predictor.on_branch_fetch(_info(0, pc=good_pc))
        good_probability = predictor.goodpath_probability()
        assert bad_probability < good_probability

    def test_no_recency_weighting(self):
        """The design flaw the paper points out: a recent mispredict does not
        make the branch look worse than an old one."""
        predictor = PerBranchMRTPredictor(index_bits=10)
        pc = 0x400000
        # 1 mispredict followed by 100 correct...
        token = predictor.on_branch_fetch(_info(0, pc=pc))
        predictor.on_branch_resolve(token, mispredicted=True)
        for _ in range(100):
            token = predictor.on_branch_fetch(_info(0, pc=pc))
            predictor.on_branch_resolve(token, mispredicted=False)
        predictor.reset_window()
        predictor.on_branch_fetch(_info(0, pc=pc))
        probability_after_old_miss = predictor.goodpath_probability()

        fresh = PerBranchMRTPredictor(index_bits=10)
        # ...versus 100 correct followed by 1 mispredict.
        for _ in range(100):
            token = fresh.on_branch_fetch(_info(0, pc=pc))
            fresh.on_branch_resolve(token, mispredicted=False)
        token = fresh.on_branch_fetch(_info(0, pc=pc))
        fresh.on_branch_resolve(token, mispredicted=True)
        fresh.reset_window()
        fresh.on_branch_fetch(_info(0, pc=pc))
        probability_after_recent_miss = fresh.goodpath_probability()

        assert probability_after_old_miss == pytest.approx(
            probability_after_recent_miss, rel=1e-6
        )

    def test_history_separates_contexts(self):
        predictor = PerBranchMRTPredictor(index_bits=10, history_bits=4)
        a = predictor.on_branch_fetch(_info(0, history=0b0001))
        b = predictor.on_branch_fetch(_info(0, history=0b1000))
        assert a.table_index != b.table_index

    def test_prior_gives_optimistic_start(self):
        predictor = PerBranchMRTPredictor(prior_correct=3, prior_total=4)
        predictor.on_branch_fetch(_info(0))
        assert predictor.goodpath_probability() == pytest.approx(0.75, rel=0.02)

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            PerBranchMRTPredictor(index_bits=0)
        with pytest.raises(ValueError):
            PerBranchMRTPredictor(prior_correct=5, prior_total=4)

    def test_squash_does_not_update_counts(self):
        predictor = PerBranchMRTPredictor(index_bits=10)
        token = predictor.on_branch_fetch(_info(0))
        before = predictor._total[token.table_index]
        predictor.on_branch_squash(token)
        assert predictor._total[token.table_index] == before


class TestOracle:
    def test_perfect_knowledge(self):
        oracle = OraclePathConfidence()
        good = oracle.on_branch_fetch(_info(0), will_mispredict=False)
        assert oracle.goodpath_probability() == 1.0
        bad = oracle.on_branch_fetch(_info(0), will_mispredict=True)
        assert oracle.goodpath_probability() == 0.0
        oracle.on_branch_resolve(bad, mispredicted=True)
        assert oracle.goodpath_probability() == 1.0
        oracle.on_branch_resolve(good, mispredicted=False)
        assert oracle.outstanding_branches() == 0

    def test_squash_restores_certainty(self):
        oracle = OraclePathConfidence()
        token = oracle.on_branch_fetch(_info(0), will_mispredict=True)
        oracle.on_branch_squash(token)
        assert oracle.goodpath_probability() == 1.0

    def test_reset_window(self):
        oracle = OraclePathConfidence()
        oracle.on_branch_fetch(_info(0), will_mispredict=True)
        oracle.reset_window()
        assert oracle.goodpath_probability() == 1.0


class TestComposite:
    def _composite(self):
        paco = PaCoPredictor()
        count = ThresholdAndCountPredictor(threshold=3)
        static = StaticMRTPredictor()
        return CompositePathConfidence([paco, count, static], primary=paco), \
            paco, count, static

    def test_fans_out_fetch_and_resolve(self):
        composite, paco, count, static = self._composite()
        token = composite.on_branch_fetch(_info(mdc_value=0))
        assert paco.outstanding_branches() == 1
        assert count.low_confidence_count == 1
        assert static.outstanding_branches() == 1
        composite.on_branch_resolve(token, mispredicted=True)
        assert paco.outstanding_branches() == 0
        assert count.low_confidence_count == 0

    def test_squash_fans_out(self):
        composite, paco, count, _static = self._composite()
        token = composite.on_branch_fetch(_info(mdc_value=0))
        composite.on_branch_squash(token)
        assert paco.outstanding_branches() == 0
        assert count.low_confidence_count == 0

    def test_primary_drives_probability_and_gating(self):
        composite, paco, _count, _static = self._composite()
        composite.on_branch_fetch(_info(mdc_value=0))
        assert composite.goodpath_probability() == paco.goodpath_probability()

    def test_on_cycle_propagates(self):
        paco = PaCoPredictor(relog_period_cycles=10)
        composite = CompositePathConfidence([paco])
        token = composite.on_branch_fetch(_info(mdc_value=0))
        composite.on_branch_resolve(token, mispredicted=False)
        composite.on_cycle(100)
        assert paco.mrt.relog_passes == 1

    def test_by_name(self):
        composite, paco, count, static = self._composite()
        names = composite.by_name()
        assert names["paco"] is paco
        assert names[count.name] is count

    def test_requires_predictors_and_valid_primary(self):
        with pytest.raises(ValueError):
            CompositePathConfidence([])
        with pytest.raises(ValueError):
            CompositePathConfidence([PaCoPredictor()],
                                    primary=ThresholdAndCountPredictor())

    def test_reset_window_fans_out(self):
        composite, paco, count, static = self._composite()
        composite.on_branch_fetch(_info(mdc_value=0))
        composite.reset_window()
        assert paco.outstanding_branches() == 0
        assert static.outstanding_branches() == 0
