"""Property-based tests (hypothesis) on the core data structures and invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.counters import HalvingRateCounter, SaturatingCounter, ShiftRegister
from repro.common.logcircuit import (
    ENCODED_PROBABILITY_MAX,
    MitchellLogCircuit,
    decode_probability,
    encode_probability_exact,
)
from repro.common.rng import DeterministicRng
from repro.common.stats import ReliabilityDiagram
from repro.pathconf.base import BranchFetchInfo
from repro.pathconf.paco import PaCoPredictor
from repro.pathconf.threshold_count import ThresholdAndCountPredictor


def _info(mdc):
    return BranchFetchInfo(pc=0x400000, mdc_value=mdc, mdc_index=0,
                           predicted_taken=True, history=0)


class TestCounterProperties:
    @given(bits=st.integers(min_value=1, max_value=12),
           operations=st.lists(st.sampled_from(["inc", "dec", "reset"]),
                               max_size=200))
    def test_saturating_counter_stays_in_range(self, bits, operations):
        counter = SaturatingCounter(bits)
        for op in operations:
            if op == "inc":
                counter.increment()
            elif op == "dec":
                counter.decrement()
            else:
                counter.reset()
            assert 0 <= counter.value <= counter.max_value

    @given(bits=st.integers(min_value=1, max_value=16),
           pushes=st.lists(st.booleans(), max_size=100))
    def test_shift_register_stays_in_range(self, bits, pushes):
        register = ShiftRegister(bits)
        for bit in pushes:
            register.shift_in(bit)
            assert 0 <= register.value < (1 << bits)

    @given(outcomes=st.lists(st.booleans(), min_size=1, max_size=3000))
    def test_halving_counter_rate_stays_in_unit_interval(self, outcomes):
        counter = HalvingRateCounter()
        for outcome in outcomes:
            counter.record(outcome)
            assert 0.0 <= counter.mispredict_rate <= 1.0
            assert counter.correct <= (1 << counter.correct_bits) - 1
            assert counter.mispredicted <= (1 << counter.mispredict_bits) - 1


class TestEncodingProperties:
    @given(probability=st.floats(min_value=0.001, max_value=1.0))
    def test_encode_decode_roundtrip_bounds(self, probability):
        encoded = encode_probability_exact(probability)
        assert 0 <= encoded <= ENCODED_PROBABILITY_MAX
        decoded = decode_probability(encoded)
        if encoded < ENCODED_PROBABILITY_MAX:
            # ceil() in the encoder rounds the probability down (or keeps it),
            # by at most one encoding step.
            assert decoded <= probability + 1e-9
            assert decoded >= probability * (2 ** (-1.5 / 1024))
        else:
            # Probabilities below the clamp (mispredict rate > ~93.75%) all
            # decode to the clamped value, which is an overestimate.
            assert decoded >= probability - 1e-9

    @given(a=st.floats(min_value=0.05, max_value=1.0),
           b=st.floats(min_value=0.05, max_value=1.0))
    def test_encoding_is_monotone(self, a, b):
        if a <= b:
            assert encode_probability_exact(a) >= encode_probability_exact(b)

    @given(value=st.integers(min_value=1, max_value=1023))
    def test_mitchell_log_error_bound(self, value):
        circuit = MitchellLogCircuit(input_bits=10)
        assert abs(circuit.log2(value) - math.log2(value)) <= 0.09

    @given(correct=st.integers(min_value=0, max_value=1023),
           mispredicted=st.integers(min_value=0, max_value=63))
    def test_encode_rate_bounds(self, correct, mispredicted):
        circuit = MitchellLogCircuit(input_bits=10)
        encoded = circuit.encode_rate(correct, correct + mispredicted)
        assert 0 <= encoded <= ENCODED_PROBABILITY_MAX


class TestRngProperties:
    @given(seed=st.integers(min_value=0, max_value=2 ** 63),
           low=st.integers(min_value=-1000, max_value=1000),
           span=st.integers(min_value=0, max_value=500))
    def test_randint_stays_in_bounds(self, seed, low, span):
        rng = DeterministicRng(seed)
        for _ in range(20):
            value = rng.randint(low, low + span)
            assert low <= value <= low + span

    @given(seed=st.integers(min_value=0, max_value=2 ** 63))
    def test_random_unit_interval(self, seed):
        rng = DeterministicRng(seed)
        for _ in range(50):
            assert 0.0 <= rng.random() < 1.0


class TestReliabilityDiagramProperties:
    @given(samples=st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=1.0), st.booleans()),
        max_size=500,
    ))
    def test_counts_and_rms_bounds(self, samples):
        diagram = ReliabilityDiagram(num_bins=20)
        for predicted, on_goodpath in samples:
            diagram.record(predicted, on_goodpath)
        assert diagram.total_instances == len(samples)
        assert diagram.total_goodpath == sum(1 for _, g in samples if g)
        assert 0.0 <= diagram.rms_error() <= 1.0
        assert sum(count for _, count in diagram.histogram()) == len(samples)


class TestPathConfidenceInvariants:
    @settings(max_examples=50, deadline=None)
    @given(events=st.lists(
        st.tuples(st.integers(min_value=0, max_value=15),   # mdc value
                  st.sampled_from(["resolve", "squash"]),    # how it leaves
                  st.booleans()),                            # mispredicted?
        max_size=200,
    ))
    def test_paco_register_returns_to_zero_when_window_drains(self, events):
        paco = PaCoPredictor()
        tokens = []
        for mdc, leave_kind, mispredicted in events:
            tokens.append((paco.on_branch_fetch(_info(mdc)), leave_kind,
                           mispredicted))
            assert paco.path_confidence_register >= 0
            assert 0.0 <= paco.goodpath_probability() <= 1.0
        for token, leave_kind, mispredicted in tokens:
            if leave_kind == "resolve":
                paco.on_branch_resolve(token, mispredicted=mispredicted)
            else:
                paco.on_branch_squash(token)
        assert paco.path_confidence_register == 0
        assert paco.outstanding_branches() == 0

    @settings(max_examples=50, deadline=None)
    @given(mdcs=st.lists(st.integers(min_value=0, max_value=15), max_size=100),
           threshold=st.integers(min_value=0, max_value=16))
    def test_count_predictor_counter_matches_definition(self, mdcs, threshold):
        predictor = ThresholdAndCountPredictor(threshold=threshold)
        tokens = [predictor.on_branch_fetch(_info(mdc)) for mdc in mdcs]
        expected = sum(1 for mdc in mdcs if mdc < threshold)
        assert predictor.low_confidence_count == expected
        for token in tokens:
            predictor.on_branch_resolve(token, mispredicted=False)
        assert predictor.low_confidence_count == 0

    @settings(max_examples=30, deadline=None)
    @given(mdcs=st.lists(st.integers(min_value=0, max_value=15), min_size=1,
                         max_size=40))
    def test_paco_probability_equals_product_of_bucket_probabilities(self, mdcs):
        paco = PaCoPredictor()
        expected = 1.0
        for mdc in mdcs:
            encoded = paco.mrt.encoded_probability(mdc)
            expected *= decode_probability(encoded)
            paco.on_branch_fetch(_info(mdc))
        assert paco.goodpath_probability() == (
            __import__("pytest").approx(expected, rel=1e-9)
        )
